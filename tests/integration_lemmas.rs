//! Integration tests for the paper's formal statements, exercised through the
//! public API of the umbrella crate.

use robogexp::core::{verify_counterfactual, verify_factual};
use robogexp::datasets::citeseer;
use robogexp::prelude::*;

fn setup() -> (robogexp::datasets::Dataset, Appnp) {
    let ds = citeseer::build(Scale::Tiny, 11);
    let appnp = ds.train_appnp(16, 11);
    (ds, appnp)
}

#[test]
fn lemma1_a_robust_witness_stays_robust_for_smaller_budgets() {
    let (ds, appnp) = setup();
    let tests = ds.pick_test_nodes(2, 3);
    let gen = RoboGExp::for_appnp(&appnp, RcwConfig::with_budgets(3, 2));
    let result = gen.generate(&ds.graph, &tests);
    if result.level == WitnessLevel::Robust {
        for k in [0usize, 1, 2] {
            let cfg = RcwConfig::with_budgets(k, if k == 0 { 0 } else { 2 });
            let out = RoboGExp::for_appnp(&appnp, cfg).verify(&ds.graph, &result.witness);
            assert_eq!(out.level, WitnessLevel::Robust, "failed at k={k}");
        }
    }
}

#[test]
fn factual_is_a_precondition_of_counterfactual() {
    let (ds, appnp) = setup();
    let tests = ds.pick_test_nodes(2, 5);
    let gen = RoboGExp::for_appnp(&appnp, RcwConfig::with_budgets(1, 1));
    let witness = gen.generate(&ds.graph, &tests).witness;
    let (cw, _) = verify_counterfactual(&appnp, &ds.graph, &witness);
    if cw {
        let (factual, _) = verify_factual(&appnp, &ds.graph, &witness);
        assert!(factual, "a counterfactual witness must also be factual");
    }
}

#[test]
fn whole_graph_is_always_a_factual_witness() {
    let (ds, appnp) = setup();
    let v = ds.test_pool[0];
    let label = appnp.predict(v, &GraphView::full(&ds.graph)).unwrap();
    let full = Witness::trivial_full(&ds.graph, vec![v], vec![label]);
    let (factual, _) = verify_factual(&appnp, &ds.graph, &full);
    assert!(factual);
}

#[test]
fn verification_is_deterministic() {
    let (ds, appnp) = setup();
    let tests = ds.pick_test_nodes(2, 7);
    let gen = RoboGExp::for_appnp(&appnp, RcwConfig::with_budgets(2, 1));
    let witness = gen.generate(&ds.graph, &tests).witness;
    let a = gen.verify(&ds.graph, &witness);
    let b = gen.verify(&ds.graph, &witness);
    assert_eq!(a.level, b.level);
    assert_eq!(a.counterexample, b.counterexample);
}

#[test]
fn k_zero_verification_equals_cw_verification() {
    let (ds, appnp) = setup();
    let tests = ds.pick_test_nodes(2, 9);
    let gen0 = RoboGExp::for_appnp(&appnp, RcwConfig::with_budgets(0, 0));
    let witness = gen0.generate(&ds.graph, &tests).witness;
    let out = gen0.verify(&ds.graph, &witness);
    let (cw, _) = verify_counterfactual(&appnp, &ds.graph, &witness);
    assert_eq!(out.level == WitnessLevel::Robust, cw);
}
