//! Exact-equivalence sweep for the localized inference engine.
//!
//! `predict` and `margin` run an induced receptive-field forward pass; this
//! suite pins them against the full-graph `logits` path with **no tolerance**:
//! the same floats and the same argmax, for all four model families, over
//! random SBM graphs under restricted / removed / flipped views, plus the
//! boundary cases (isolated node, edgeless view, receptive field covering the
//! whole graph).

use robogexp::gnn::model::{localized_logits_row, margin_of_row};
use robogexp::gnn::{Gat, GraphSage, KernelScratch};
use robogexp::graph::generators::{ensure_connected, stochastic_block_model};
use robogexp::linalg::rng::Rng;
use robogexp::linalg::vector;
use robogexp::prelude::*;

/// A random labeled/featured SBM graph, deterministic in the seed.
fn sbm_graph(seed: u64) -> Graph {
    let per_block = 8 + (seed as usize % 5);
    let (mut g, blocks) =
        stochastic_block_model(&[per_block, per_block, per_block], 0.4, 0.06, seed);
    ensure_connected(&mut g, seed.wrapping_add(77));
    let mut rng = Rng::seed_from_u64(seed ^ 0x51ED);
    for (v, &b) in blocks.iter().enumerate() {
        let mut feats = vec![0.0; 4];
        feats[b] = 1.0;
        feats[3] = rng.gen_range(0usize..10) as f64 / 10.0;
        g.set_features(v, feats);
        g.set_label(v, b);
    }
    g
}

fn models(seed: u64) -> Vec<(&'static str, Box<dyn GnnModel>)> {
    let dims = [4usize, 6, 3];
    vec![
        (
            "GCN",
            Box::new(Gcn::new(&[4, 6, 6, 3], seed)) as Box<dyn GnnModel>,
        ),
        ("APPNP", Box::new(Appnp::new(&dims, 0.2, 7, seed))),
        ("GraphSAGE", Box::new(GraphSage::new(&dims, seed))),
        ("GAT", Box::new(Gat::new(&dims, seed))),
    ]
}

/// Asserts bit-exact agreement between the localized and full paths for one
/// node under one view.
fn assert_node_equivalence(name: &str, model: &dyn GnnModel, v: NodeId, view: &GraphView<'_>) {
    let full = model.logits(view);
    let full_row = full.row(v);
    let local_row = localized_logits_row(model, v, view);
    assert_eq!(
        local_row,
        full_row.to_vec(),
        "{name}: localized logits row differs from the full pass for node {v}"
    );
    assert_eq!(
        model.predict(v, view),
        Some(vector::argmax(full_row)),
        "{name}: predict differs from full-pass argmax for node {v}"
    );
    for label in 0..model.num_classes() {
        let localized = model.margin(v, label, view);
        let reference = margin_of_row(full_row, label);
        assert!(
            localized == reference,
            "{name}: margin({v}, {label}) localized {localized} != full {reference}"
        );
    }
}

#[test]
fn localized_equals_full_over_sbm_views() {
    for seed in 0u64..6 {
        let g = sbm_graph(seed);
        let n = g.num_nodes();
        let edges = g.edge_vec();
        // a witness-sized edge subset and a disturbance-sized pair set
        let witness: EdgeSet = edges.iter().copied().step_by(5).take(8).collect();
        let flips: EdgeSet = edges
            .iter()
            .copied()
            .skip(2)
            .step_by(7)
            .take(3)
            .chain([(0, n - 1)])
            .collect();
        let restricted = GraphView::restricted_to(&g, &witness);
        let removed = GraphView::without(&g, &witness);
        let flipped = GraphView::full(&g).flipped(&flips);
        let probes = [0, n / 3, n / 2, n - 1];
        for (name, model) in models(seed) {
            for view in [&restricted, &removed, &flipped] {
                for &v in &probes {
                    assert_node_equivalence(name, model.as_ref(), v, view);
                }
            }
            // predict_all restricted to the probes must agree with the
            // localized per-node path
            let preds = model.predict_all(&removed);
            for &v in &probes {
                assert_eq!(
                    model.predict(v, &removed),
                    Some(preds[v]),
                    "{name}: predict_all[{v}] disagrees with localized predict"
                );
            }
        }
    }
}

#[test]
fn shared_ball_margin_batch_equals_per_view_margins() {
    // margin_many_removed shares one receptive-field ball across the whole
    // candidate pool; it must be bit-exact against building each
    // single-removal view explicitly and calling margin — for every model
    // family, from base views of all three kinds, including removals far
    // outside the ball.
    for seed in 0u64..4 {
        let g = sbm_graph(seed);
        let edges = g.edge_vec();
        let witness: EdgeSet = edges.iter().copied().step_by(6).take(6).collect();
        let bases = [
            GraphView::full(&g),
            GraphView::without(&g, &witness),
            GraphView::restricted_to(&g, &edges.iter().copied().step_by(2).collect::<EdgeSet>()),
        ];
        for base in &bases {
            let v = edges[0].0;
            // candidates: every base-visible edge (near and far from v)
            let removals: Vec<(NodeId, NodeId)> = edges
                .iter()
                .copied()
                .filter(|&(a, b)| base.has_edge(a, b))
                .step_by(3)
                .take(12)
                .collect();
            if removals.is_empty() {
                continue;
            }
            for (name, model) in models(seed) {
                for label in [0usize, 2] {
                    let batched = model.margin_many_removed(v, label, base, &removals);
                    for (i, &(a, b)) in removals.iter().enumerate() {
                        let mut variant = base.clone();
                        variant.remove_edge(a, b);
                        let reference = model.margin(v, label, &variant);
                        assert!(
                            batched[i] == reference,
                            "{name}: seed {seed}, removal ({a},{b}): shared-ball margin \
                             {} != per-view margin {reference}",
                            batched[i],
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn union_ball_predict_many_equals_per_node_predict() {
    // predict_many_with runs one forward pass over the union receptive-field
    // ball of the whole batch; it must be bit-exact against per-node
    // predict_with for every model family, under all three view kinds,
    // including duplicate centers and batches whose balls overlap.
    let mut batch_scratch = KernelScratch::default();
    let mut single_scratch = KernelScratch::default();
    for seed in 0u64..4 {
        let g = sbm_graph(seed);
        let n = g.num_nodes();
        let edges = g.edge_vec();
        let witness: EdgeSet = edges.iter().copied().step_by(5).take(8).collect();
        let views = [
            GraphView::full(&g),
            GraphView::without(&g, &witness),
            GraphView::restricted_to(&g, &witness),
        ];
        let batches: Vec<Vec<NodeId>> = vec![
            vec![0],
            vec![0, n / 2],
            vec![n - 1, 0, n / 3, n / 2],
            vec![1, 1, 2], // duplicates collapse in the union ball
        ];
        for view in &views {
            for (name, model) in models(seed) {
                for centers in &batches {
                    let batched = model
                        .predict_many_with(centers, view, &mut batch_scratch)
                        .expect("valid centers");
                    for (i, &v) in centers.iter().enumerate() {
                        let single = model.predict_with(v, view, &mut single_scratch);
                        assert_eq!(
                            Some(batched[i]),
                            single,
                            "{name}: seed {seed}, batch {centers:?}, node {v}: \
                             union-ball predict differs from per-node predict"
                        );
                    }
                }
                // invalid center and empty batch edge cases
                assert_eq!(
                    model.predict_many_with(&[n + 5], view, &mut batch_scratch),
                    None
                );
                assert_eq!(
                    model.predict_many_with(&[], view, &mut batch_scratch),
                    Some(Vec::new())
                );
            }
        }
    }
}

#[test]
fn one_scratch_reused_across_models_views_and_nodes_stays_exact() {
    // The zero-allocation entry points thread one KernelScratch through every
    // call; reusing the same scratch across different models, views, nodes
    // and ball sizes must leave no residue — each call's output is bit-exact
    // against the fresh-allocation path.
    let mut scratch = KernelScratch::default();
    for seed in 0u64..3 {
        let g = sbm_graph(seed);
        let n = g.num_nodes();
        let edges = g.edge_vec();
        let witness: EdgeSet = edges.iter().copied().step_by(4).take(7).collect();
        let views = [
            GraphView::full(&g),
            GraphView::without(&g, &witness),
            GraphView::restricted_to(&g, &witness),
        ];
        for (name, model) in models(seed) {
            for view in &views {
                for &v in &[0, n / 2, n - 1] {
                    assert_eq!(
                        model.predict_with(v, view, &mut scratch),
                        model.predict(v, view),
                        "{name}: predict_with over a reused scratch diverged for node {v}"
                    );
                    for label in 0..model.num_classes() {
                        let reused = model.margin_with(v, label, view, &mut scratch);
                        let fresh = model.margin(v, label, view);
                        assert!(
                            reused == fresh,
                            "{name}: margin_with({v}, {label}) reused-scratch {reused} \
                             != fresh {fresh}"
                        );
                    }
                }
                let removals: Vec<(NodeId, NodeId)> = edges
                    .iter()
                    .copied()
                    .filter(|&(a, b)| view.has_edge(a, b))
                    .step_by(5)
                    .take(6)
                    .collect();
                if removals.is_empty() {
                    continue;
                }
                let v = removals[0].0;
                assert_eq!(
                    model.margin_many_removed_with(v, 1, view, &removals, &mut scratch),
                    model.margin_many_removed(v, 1, view, &removals),
                    "{name}: batched margins over a reused scratch diverged"
                );
            }
        }
    }
}

#[test]
fn boundary_cases_stay_exact() {
    let mut g = sbm_graph(1);
    let iso = g.add_labeled_node(vec![0.3, 0.1, 0.0, 0.5], 0);
    let n = g.num_nodes();
    let full_view = GraphView::full(&g);
    let edgeless = GraphView::restricted_to(&g, &EdgeSet::new());
    for (name, model) in models(9) {
        // isolated node under the full view
        assert_node_equivalence(name, model.as_ref(), iso, &full_view);
        // edgeless view: every node classifies from its own features
        for v in [0, n / 2, iso] {
            assert_node_equivalence(name, model.as_ref(), v, &edgeless);
        }
    }
}

#[test]
fn whole_graph_receptive_field_is_exact() {
    // A small path graph: any model with depth >= diameter sees the whole
    // graph from every node, so the induced "ball" is the graph itself.
    let mut g = Graph::with_nodes(6);
    for uv in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)] {
        g.add_edge(uv.0, uv.1);
    }
    for v in 0..6 {
        g.set_features(v, vec![v as f64 / 6.0, 1.0 - v as f64 / 6.0, 0.0, 1.0]);
        g.set_label(v, v % 3);
    }
    let view = GraphView::full(&g);
    // APPNP with 7 propagation rounds and GCN with depth 2 both have
    // receptive fields at or beyond the diameter from the middle nodes.
    for (name, model) in models(4) {
        for v in 0..6 {
            assert_node_equivalence(name, model.as_ref(), v, &view);
        }
    }
}
