//! Incremental-repair equivalence sweep: after small edge disturbances, the
//! engine's repaired witnesses must (a) verify at the level the engine
//! reports, (b) be at least as valid as from-scratch regeneration on the
//! disturbed graph, and (c) stay size-comparable to the from-scratch witness
//! — the paper's GED experiment shows witnesses barely move under
//! disturbance, and repair exploits exactly that.
//!
//! The sweep runs over pinned-seed SBM graphs with both a GCN (model-agnostic
//! sampling verification) and an APPNP (tractable policy-iteration
//! verification), exercising both verification families through the engine.

use robogexp::core::{RcwConfig, RoboGExp, VerifiableModel, WitnessEngine};
use robogexp::graph::{generators, shrink, Disturbance, Edge};
use robogexp::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Pinned seeds exercised by default. Setting `RCW_REPAIR_SEEDS=<n>` widens
/// the sweep to `n` deterministic seeds instead (nightly CI runs deeper
/// fuzzing without slowing the tier-1 suite; the default is unchanged when
/// the variable is unset).
fn sweep_seeds() -> Vec<u64> {
    const DEFAULT: [u64; 6] = [1, 5, 9, 13, 21, 33];
    match std::env::var("RCW_REPAIR_SEEDS") {
        Ok(n) => {
            let n: u64 = n
                .parse()
                .expect("RCW_REPAIR_SEEDS must be a seed count, e.g. RCW_REPAIR_SEEDS=64");
            (0..n).map(|i| i.wrapping_mul(4).wrapping_add(1)).collect()
        }
        Err(_) => DEFAULT.to_vec(),
    }
}

fn quick_cfg(k: usize) -> RcwConfig {
    RcwConfig {
        k,
        local_budget: 2,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::with_budgets(k, 2)
    }
}

/// A connected two-block SBM with block-aligned features and labels.
fn sbm(seed: u64) -> Graph {
    let (mut g, blocks) = generators::stochastic_block_model(&[9, 9], 0.65, 0.06, seed);
    generators::ensure_connected(&mut g, seed);
    for (v, &b) in blocks.iter().enumerate() {
        let feats = if b == 0 {
            vec![1.0, 0.0]
        } else {
            vec![0.0, 1.0]
        };
        g.set_features(v, feats);
        g.set_label(v, b);
    }
    g
}

fn train_gcn(g: &Graph, seed: u64) -> Gcn {
    let mut gcn = Gcn::new(&[2, 8, 2], seed);
    let nodes: Vec<usize> = (0..g.num_nodes()).collect();
    gcn.train(
        &GraphView::full(g),
        &nodes,
        &TrainConfig {
            epochs: 70,
            learning_rate: 0.05,
            ..TrainConfig::default()
        },
    );
    gcn
}

fn train_appnp(g: &Graph, seed: u64) -> Appnp {
    let mut appnp = Appnp::new(&[2, 6, 2], 0.2, 10, seed);
    let nodes: Vec<usize> = (0..g.num_nodes()).collect();
    appnp.train(
        &GraphView::full(g),
        &nodes,
        &TrainConfig {
            epochs: 70,
            learning_rate: 0.05,
            ..TrainConfig::default()
        },
    );
    appnp
}

/// Two edges not protected by the witness — a small (2-pair) disturbance of
/// the kind the paper's GED experiment applies.
fn small_disturbance(g: &Graph, witness: &Witness) -> Option<Disturbance> {
    let free: Vec<Edge> = g
        .edges()
        .filter(|&(u, v)| !witness.subgraph.contains_edge(u, v))
        .collect();
    if free.len() < 2 {
        return None;
    }
    Some(Disturbance::from_pairs([free[0], free[free.len() / 2]]))
}

/// The shared sweep body: generate, disturb, repair through the engine;
/// regenerate from scratch on the disturbed graph; compare.
fn sweep<M: VerifiableModel + ?Sized>(model: &M, g: &Graph, seed: u64) {
    let cfg = quick_cfg(1);
    let tests = vec![0usize, g.num_nodes() - 1];
    let engine = WitnessEngine::new(Arc::new(g.clone()), model, cfg.clone());
    let original = engine.generate(&tests);

    let Some(d) = small_disturbance(g, &original.witness) else {
        return;
    };
    let report = engine.disturb(std::slice::from_ref(&d));
    assert_eq!(report.flips_applied, 2, "seed {seed}: both pairs applied");
    assert_eq!(
        report.untouched + report.reverified + report.repaired,
        1,
        "seed {seed}: the stored witness was processed"
    );

    // (a) the repaired witness verifies at the level the engine reports
    let repaired = engine.generate(&tests);
    assert_eq!(
        engine.stats().warm_hits,
        1,
        "seed {seed}: repair left the store warm"
    );
    let recheck = engine.verify(&repaired.witness);
    assert_eq!(
        recheck.level, repaired.level,
        "seed {seed}: repaired witness must re-verify at its reported level"
    );
    assert!(
        repaired.witness.subgraph.is_subgraph_of(&engine.graph()),
        "seed {seed}: repaired witness stays inside the disturbed host"
    );

    // (b) validity matches from-scratch regeneration on the disturbed graph
    let disturbed = d.apply(g);
    let scratch = RoboGExp::new(model, cfg).generate(&disturbed, &tests);
    assert!(
        repaired.level.rank() >= scratch.level.rank(),
        "seed {seed}: repair (got {:?}) must not be weaker than regeneration ({:?})",
        repaired.level,
        scratch.level,
    );

    // (c) witness size within tolerance of the from-scratch witness: seeding
    // from the old witness may keep a few extra edges, but repair must not
    // blow the explanation up (the paper reports RCWs half the baseline size)
    let tolerance = scratch.witness.size() + scratch.witness.size() / 2 + 4;
    assert!(
        repaired.witness.size() <= tolerance,
        "seed {seed}: repaired size {} vs scratch size {} exceeds tolerance {}",
        repaired.witness.size(),
        scratch.witness.size(),
        tolerance,
    );
}

/// Runs one sweep case; on failure, greedily shrinks the graph to a
/// locally-minimal counterexample (retraining the model on every candidate)
/// and panics with that instead of the full generated graph. The shrinker
/// only runs on the failure path, so the passing sweep costs nothing extra.
fn sweep_shrinking<M: VerifiableModel>(train: impl Fn(&Graph, u64) -> M, g: &Graph, seed: u64) {
    let run = |g: &Graph| {
        let model = train(g, seed);
        sweep(&model, g, seed);
    };
    let Err(original) = catch_unwind(AssertUnwindSafe(|| run(g))) else {
        return;
    };
    let message = original
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| original.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_else(|| "non-string panic".to_string());
    // Silence the per-candidate panic spew while probing reductions.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let minimal = shrink::shrink_graph(g, &|candidate| {
        candidate.num_nodes() >= 2 && catch_unwind(AssertUnwindSafe(|| run(candidate))).is_err()
    });
    std::panic::set_hook(prev_hook);
    panic!(
        "seed {seed}: {message}\nminimal failing graph: {}",
        shrink::describe_graph(&minimal),
    );
}

#[test]
fn repaired_witnesses_match_regeneration_for_gcn() {
    for seed in sweep_seeds() {
        let g = sbm(seed);
        sweep_shrinking(train_gcn, &g, seed);
    }
}

#[test]
fn repaired_witnesses_match_regeneration_for_appnp() {
    for seed in sweep_seeds() {
        let g = sbm(seed);
        sweep_shrinking(train_appnp, &g, seed);
    }
}

#[test]
fn repair_survives_a_disturbance_stream() {
    // A stream of disturbances against one engine: every repair must keep the
    // store consistent (witness re-verifies at its recorded level) and the
    // graph must track the accumulated flips exactly.
    let g = sbm(17);
    let appnp = train_appnp(&g, 17);
    let tests = vec![1usize, g.num_nodes() - 2];
    let engine = WitnessEngine::new(Arc::new(g.clone()), &appnp, quick_cfg(1));
    engine.generate(&tests);

    let mut reference = g.clone();
    let edges = g.edge_vec();
    for (round, chunk) in edges.chunks(3).take(4).enumerate() {
        let witness = engine.stored(&tests).expect("stored").witness.clone();
        let free: Vec<Edge> = chunk
            .iter()
            .copied()
            .filter(|&(u, v)| !witness.subgraph.contains_edge(u, v))
            .collect();
        if free.is_empty() {
            continue;
        }
        let d = Disturbance::from_pairs(free.iter().copied());
        engine.disturb(std::slice::from_ref(&d));
        reference.flip_edges_in_place(&free);
        assert_eq!(
            engine.graph().num_edges(),
            reference.num_edges(),
            "round {round}: engine graph tracks the flips"
        );
        let stored = engine.stored(&tests).expect("stored after disturb");
        assert_eq!(
            stored.epoch,
            engine.epoch(),
            "round {round}: store is fresh"
        );
        let recheck = engine.verify(&stored.witness);
        assert_eq!(
            recheck.level, stored.level,
            "round {round}: stored level is truthful"
        );
    }
    // after the stream, a fresh engine over the final graph agrees on validity
    let final_graph = engine.graph().as_ref().clone();
    let scratch = RoboGExp::for_appnp(&appnp, quick_cfg(1)).generate(&final_graph, &tests);
    let stored = engine.stored(&tests).expect("stored");
    assert!(
        stored.level.rank() + 1 >= scratch.level.rank(),
        "stream repair ({:?}) must stay within one level of regeneration ({:?})",
        stored.level,
        scratch.level,
    );
}
