//! Cross-crate tests of the GNN substrate: every model family can be
//! explained through the same witness machinery (model-agnosticism), and
//! inference respects the edge-masked views that the explainers rely on.

use robogexp::datasets::bahouse;
use robogexp::gnn::{Gat, GraphSage};
use robogexp::prelude::*;

#[test]
fn all_model_families_work_with_the_generic_generator() {
    let ds = bahouse::build(Scale::Tiny, 3);
    let tests = ds.pick_test_nodes(2, 3);
    let cfg = RcwConfig {
        k: 1,
        local_budget: 1,
        max_expand_rounds: 1,
        sampled_disturbances: 2,
        ..RcwConfig::with_budgets(1, 1)
    };
    let dims = [ds.feature_dim(), 8, ds.num_classes()];
    let models: Vec<(&str, Box<dyn GnnModel>)> = vec![
        (
            "GCN",
            Box::new(Gcn::new(&[ds.feature_dim(), 8, 8, ds.num_classes()], 1)),
        ),
        ("APPNP", Box::new(Appnp::new(&dims, 0.2, 8, 2))),
        ("GraphSAGE", Box::new(GraphSage::new(&dims, 3))),
        ("GAT", Box::new(Gat::new(&dims, 4))),
    ];
    for (name, model) in &models {
        let result = RoboGExp::for_model(model.as_ref(), cfg.clone()).generate(&ds.graph, &tests);
        assert!(
            result.witness.subgraph.num_nodes() >= tests.len(),
            "{name}: witness must cover the test nodes"
        );
        // inference over the witness view must be well-defined for every model
        let view = GraphView::restricted_to(&ds.graph, result.witness.subgraph.edges());
        for &t in &tests {
            assert!(
                model.predict(t, &view).is_some(),
                "{name}: prediction undefined"
            );
        }
    }
}

#[test]
fn edge_masking_is_consistent_across_model_families() {
    let ds = bahouse::build(Scale::Tiny, 5);
    let gcn = ds.train_gcn(12, 5);
    let v = ds.pick_test_nodes(1, 1)[0];
    let full = GraphView::full(&ds.graph);
    // removing all edges incident to v must change its receptive field:
    // its logits with and without edges must differ unless v is isolated
    let incident: EdgeSet = ds
        .graph
        .neighbors_vec(v)
        .into_iter()
        .map(|u| (v, u))
        .collect();
    if incident.is_empty() {
        return;
    }
    let masked = GraphView::without(&ds.graph, &incident);
    let a = gcn.logits(&full);
    let b = gcn.logits(&masked);
    let diff: f64 = a
        .row(v)
        .iter()
        .zip(b.row(v))
        .map(|(x, y)| (x - y).abs())
        .sum();
    assert!(
        diff > 0.0,
        "masking all incident edges must change node {v}'s logits"
    );
}

#[test]
fn training_is_reproducible_across_runs() {
    let ds = bahouse::build(Scale::Tiny, 9);
    let a = ds.train_gcn(12, 42);
    let b = ds.train_gcn(12, 42);
    let view = GraphView::full(&ds.graph);
    assert_eq!(a.predict_all(&view), b.predict_all(&view));
}
