//! Workspace smoke test for the unified dispatch layer: every model family
//! (GCN, APPNP, GraphSAGE, GAT) runs through `RoboGExp::generate` as a
//! type-erased `&dyn GnnModel` on a tiny stochastic-block-model graph, and a
//! factual witness is found for each. Seeds are pinned for determinism.

use robogexp::core::verify_factual;
use robogexp::gnn::{Gat, GraphSage};
use robogexp::graph::generators;
use robogexp::prelude::*;

/// Two well-separated blocks with one-hot block features; the SBM seed and
/// all model seeds are fixed.
fn sbm_setup() -> (Graph, Vec<NodeId>) {
    let (mut g, blocks) = generators::stochastic_block_model(&[8, 8], 0.8, 0.05, 17);
    generators::ensure_connected(&mut g, 17);
    for (v, &b) in blocks.iter().enumerate() {
        let feats = if b == 0 {
            vec![1.0, 0.0]
        } else {
            vec![0.0, 1.0]
        };
        g.set_features(v, feats);
        g.set_label(v, b);
    }
    // one test node per block
    (g, vec![0, 15])
}

fn train_nodes(g: &Graph) -> Vec<usize> {
    (0..g.num_nodes()).collect()
}

#[test]
fn every_model_family_yields_a_factual_witness_via_dyn_dispatch() {
    let (g, tests) = sbm_setup();
    let view = GraphView::full(&g);
    let train = train_nodes(&g);
    let tc = TrainConfig {
        epochs: 120,
        learning_rate: 0.05,
        ..TrainConfig::default()
    };

    let mut gcn = Gcn::new(&[2, 8, 2], 1);
    gcn.train(&view, &train, &tc);
    let mut appnp = Appnp::new(&[2, 8, 2], 0.2, 10, 2);
    appnp.train(&view, &train, &tc);
    let sage = GraphSage::new(&[2, 8, 2], 3);
    let gat = Gat::new(&[2, 8, 2], 4);

    let models: Vec<(&str, &dyn GnnModel)> = vec![
        ("GCN", &gcn),
        ("APPNP", &appnp),
        ("GraphSAGE", &sage),
        ("GAT", &gat),
    ];

    let cfg = RcwConfig {
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        ..RcwConfig::with_budgets(1, 1)
    };

    for (name, model) in models {
        let result = RoboGExp::for_model(model, cfg.clone()).generate(&g, &tests);
        for &t in &tests {
            assert!(
                result.witness.subgraph.contains_node(t),
                "{name}: witness must contain test node {t}"
            );
        }
        let (factual, _) = verify_factual(model, &g, &result.witness);
        assert!(factual, "{name}: generator must reach a factual witness");
        assert!(
            result.stats.inference_calls > 0,
            "{name}: generation must exercise the model"
        );
    }
}

#[test]
fn erased_and_concrete_dispatch_agree_on_inference() {
    let (g, tests) = sbm_setup();
    let view = GraphView::full(&g);
    let train = train_nodes(&g);
    let mut appnp = Appnp::new(&[2, 8, 2], 0.2, 10, 2);
    appnp.train(&view, &train, &TrainConfig::default());

    // The same model dispatched concretely (tractable verification) and
    // type-erased (sampling verification) must agree on what it predicts —
    // only the verification strategy differs.
    let erased: &dyn GnnModel = &appnp;
    for &t in &tests {
        assert_eq!(appnp.predict(t, &view), erased.predict(t, &view));
    }

    let cfg = RcwConfig::with_budgets(1, 1);
    let concrete = RoboGExp::for_appnp(&appnp, cfg.clone()).generate(&g, &tests);
    let generic = RoboGExp::for_model(erased, cfg).generate(&g, &tests);
    // both strategies must produce witnesses covering the test nodes
    for &t in &tests {
        assert!(concrete.witness.subgraph.contains_node(t));
        assert!(generic.witness.subgraph.contains_node(t));
    }
}
