//! Seeded equivalence sweep: batched `generate_batch` must be bit-identical
//! to issuing the same queries one at a time through `generate`.
//!
//! The admission scheduler in `rcw-server` answers micro-batches of
//! `/generate` requests through `WitnessEngine::generate_batch_with` — one
//! warm pass under a single store lock, then the cold tail through the
//! per-request path. The claim this sweep pins: for any batch (all-warm,
//! all-cold, mixed, with in-batch duplicates, before and after a
//! disturbance), the witnesses, levels, and final engine counters are
//! exactly what per-request execution produces. The sweep runs GCN and APPNP
//! over pinned-seed SBM graphs so both verification families go through the
//! batched path.

use robogexp::core::{RcwConfig, SessionBudget, WitnessEngine};
use robogexp::graph::{generators, Disturbance};
use robogexp::prelude::*;
use std::sync::Arc;

fn quick_cfg() -> RcwConfig {
    RcwConfig {
        k: 1,
        local_budget: 1,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::default()
    }
}

/// A connected two-block SBM with block-aligned features and labels.
fn sbm(seed: u64) -> Graph {
    let (mut g, blocks) = generators::stochastic_block_model(&[9, 9], 0.65, 0.06, seed);
    generators::ensure_connected(&mut g, seed);
    for (v, &b) in blocks.iter().enumerate() {
        let feats = if b == 0 {
            vec![1.0, 0.0]
        } else {
            vec![0.0, 1.0]
        };
        g.set_features(v, feats);
        g.set_label(v, b);
    }
    g
}

/// The batch script one engine pair runs: three batches (cold, mixed with
/// duplicates, warm) with a disturbance between the second and third.
fn batches(n: usize) -> Vec<Vec<Vec<usize>>> {
    vec![
        // all cold
        vec![vec![0], vec![n - 1], vec![1, n / 2]],
        // mixed: two warm repeats (one re-ordered), one fresh, an in-batch
        // duplicate pair (first instance cold, second must hit the store)
        vec![vec![0], vec![n / 2, 1], vec![2], vec![n / 3], vec![n / 3]],
        // all warm after the disturbance (the repair sweep re-tags entries)
        vec![vec![0], vec![n - 1], vec![2]],
    ]
}

fn run_sweep<M: robogexp::core::VerifiableModel>(seed: u64, graph: &Arc<Graph>, model: &M) {
    let batched = WitnessEngine::new(Arc::clone(graph), model, quick_cfg());
    let sequential = WitnessEngine::new(Arc::clone(graph), model, quick_cfg());
    let n = graph.num_nodes();
    let flip = graph.edge_vec()[seed as usize % graph.num_edges()];

    for (round, batch) in batches(n).into_iter().enumerate() {
        if round == 2 {
            // Disturbance between batches: both engines repair their stores
            // identically, so the equivalence must survive the epoch change.
            batched.disturb(&[Disturbance::from_pairs([flip])]);
            sequential.disturb(&[Disturbance::from_pairs([flip])]);
        }
        let from_batch = batched.generate_batch(&batch);
        let from_seq: Vec<_> = batch.iter().map(|q| sequential.generate(q)).collect();
        for (i, (b, s)) in from_batch.iter().zip(&from_seq).enumerate() {
            assert_eq!(
                b.witness, s.witness,
                "seed {seed} round {round} query {i}: batched witness differs"
            );
            assert_eq!(b.level, s.level, "seed {seed} round {round} query {i}");
            assert_eq!(b.stale, s.stale, "seed {seed} round {round} query {i}");
            assert_eq!(
                b.nontrivial, s.nontrivial,
                "seed {seed} round {round} query {i}"
            );
        }
        // Counters agree after every batch: warm hits, sessions, queries.
        assert_eq!(
            batched.stats(),
            sequential.stats(),
            "seed {seed} round {round}: engine counters diverged"
        );
        assert_eq!(batched.stored_count(), sequential.stored_count());
    }

    // Expired budgets in a batch reject without touching store or counters,
    // exactly like the per-request path.
    let stats_before = batched.stats();
    let expired = SessionBudget::expiring_in(std::time::Duration::ZERO);
    let budgets = vec![expired, SessionBudget::unlimited()];
    let queries = vec![vec![0usize], vec![0usize]];
    let mut outcomes: Vec<Option<bool>> = vec![None, None];
    batched.generate_batch_with(&queries, &budgets, &mut |i, result| {
        outcomes[i] = Some(result.is_ok());
    });
    assert_eq!(outcomes, vec![Some(false), Some(true)]);
    let stats_after = batched.stats();
    assert_eq!(stats_after.queries, stats_before.queries + 1);
    assert_eq!(stats_after.warm_hits, stats_before.warm_hits + 1);
}

#[test]
fn batched_generation_is_bit_identical_to_per_request() {
    for seed in [2u64, 7, 19] {
        let g = Arc::new(sbm(seed));
        let view = GraphView::full(&g);
        let train: Vec<usize> = (0..g.num_nodes()).collect();
        let tc = robogexp::gnn::TrainConfig {
            epochs: 60,
            learning_rate: 0.05,
            ..robogexp::gnn::TrainConfig::default()
        };
        let mut gcn = Gcn::new(&[2, 8, 2], 2);
        gcn.train(&view, &train, &tc);
        run_sweep(seed, &g, &gcn);
        let mut appnp = Appnp::new(&[2, 6, 2], 0.2, 10, 2);
        appnp.train(&view, &train, &tc);
        run_sweep(seed, &g, &appnp);
    }
}
