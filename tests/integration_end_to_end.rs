//! End-to-end integration tests spanning every crate: datasets -> trained
//! classifiers -> witness generation -> verification -> metrics.

use robogexp::datasets::{bahouse, citeseer, molecules, provenance};
use robogexp::prelude::*;

fn quick_cfg(k: usize) -> RcwConfig {
    RcwConfig {
        k,
        local_budget: 2,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::with_budgets(k, 2)
    }
}

#[test]
fn bahouse_gcn_pipeline_produces_useful_witnesses() {
    let ds = bahouse::build(Scale::Tiny, 1);
    let gcn = ds.train_gcn(16, 1);
    let tests = ds.pick_test_nodes(3, 5);
    let result = RoboGExp::for_model(&gcn, quick_cfg(2)).generate(&ds.graph, &tests);
    // witnesses contain the test nodes, stay inside the host graph, and
    // achieve at least factuality for the motif-labeled nodes
    for &t in &tests {
        assert!(result.witness.subgraph.contains_node(t));
    }
    assert!(
        result.witness.subgraph.is_subgraph_of(&ds.graph)
            || result.witness.subgraph.num_edges() == 0
    );
    let fm = fidelity_minus(&gcn, &ds.graph, &result.witness.subgraph, &tests);
    assert!(fm <= 1.0);
}

#[test]
fn citeseer_appnp_pipeline_verifies_what_it_generates() {
    let ds = citeseer::build(Scale::Tiny, 2);
    let appnp = ds.train_appnp(16, 2);
    let tests = ds.pick_test_nodes(3, 7);
    let gen = RoboGExp::for_appnp(&appnp, quick_cfg(2));
    let result = gen.generate(&ds.graph, &tests);
    let recheck = gen.verify(&ds.graph, &result.witness);
    assert_eq!(
        recheck.level, result.level,
        "generation and verification must agree"
    );
}

#[test]
fn parallel_generation_matches_sequential_quality() {
    let ds = citeseer::build(Scale::Tiny, 4);
    let appnp = ds.train_appnp(16, 4);
    let tests = ds.pick_test_nodes(3, 9);
    let seq = RoboGExp::for_appnp(&appnp, quick_cfg(2)).generate(&ds.graph, &tests);
    let par = ParaRoboGExp::for_appnp(&appnp, quick_cfg(2), 3).generate(&ds.graph, &tests);
    // Both are best-effort searches; the parallel result must be a valid
    // subgraph and reach a comparable fidelity.
    assert!(
        par.result.witness.subgraph.is_subgraph_of(&ds.graph)
            || par.result.witness.subgraph.num_edges() == 0
    );
    let f_seq = fidelity_minus(&appnp, &ds.graph, &seq.witness.subgraph, &tests);
    let f_par = fidelity_minus(&appnp, &ds.graph, &par.result.witness.subgraph, &tests);
    assert!(
        f_par <= f_seq + 0.5,
        "parallel fidelity- {f_par} vs sequential {f_seq}"
    );
}

#[test]
fn molecule_family_witnesses_are_more_stable_than_baseline() {
    let ds = molecules::build(Scale::Tiny, 1);
    let appnp = ds.train_appnp(12, 1);
    let family = molecules::molecule_family();
    let cfg = quick_cfg(1);
    let mut rcw_geds = Vec::new();
    let mut base: Option<EdgeSubgraph> = None;
    for molecule in &family {
        let t = molecule.test_node();
        let w = RoboGExp::for_appnp(&appnp, cfg.clone())
            .generate(&molecule.graph, &[t])
            .witness
            .subgraph;
        if let Some(b) = &base {
            rcw_geds.push(normalized_ged(b, &w));
        } else {
            base = Some(w);
        }
    }
    // the toxicophore is untouched by the variants, so the witnesses must
    // stay close (the paper's invariance claim)
    for g in rcw_geds {
        assert!(
            g <= 0.6,
            "witness drifted too much across the family: GED {g}"
        );
    }
}

#[test]
fn provenance_witness_prefers_the_true_attack_path_over_decoys() {
    let (graph, meta) = provenance::provenance_graph(6, 20, 2);
    let labeled: Vec<NodeId> = graph
        .node_ids()
        .filter(|&v| graph.label(v).is_some())
        .collect();
    let mut appnp = Appnp::new(&[graph.feature_dim(), 12, 2], 0.15, 10, 3);
    appnp.train(
        &GraphView::full(&graph),
        &labeled,
        &TrainConfig {
            epochs: 80,
            learning_rate: 0.05,
            ..TrainConfig::default()
        },
    );
    let result = RoboGExp::for_appnp(&appnp, quick_cfg(3)).generate(&graph, &[meta.breach_sh]);
    let witness = &result.witness.subgraph;
    // the witness should involve far fewer decoys than attack-path nodes
    let decoys_in = meta
        .decoys
        .iter()
        .filter(|&&d| witness.contains_node(d))
        .count();
    assert!(
        decoys_in <= meta.decoys.len() / 2,
        "witness should not be dominated by decoy targets ({decoys_in} of {})",
        meta.decoys.len()
    );
}

#[test]
fn baselines_and_robogexp_are_comparable_through_the_metrics_layer() {
    use robogexp::baselines::{Cf2Explainer, CfGnnExplainer};
    let ds = citeseer::build(Scale::Tiny, 6);
    let gcn = ds.train_gcn(16, 6);
    let tests = ds.pick_test_nodes(3, 11);
    let rcw = RoboGExp::for_model(&gcn, quick_cfg(2))
        .generate(&ds.graph, &tests)
        .witness
        .subgraph;
    let cf2 = Cf2Explainer::default().explain(&gcn, &ds.graph, &tests);
    let cfg_exp = CfGnnExplainer::default().explain(&gcn, &ds.graph, &tests);
    for (name, exp) in [("RoboGExp", &rcw), ("CF2", &cf2), ("CF-GNNExp", &cfg_exp)] {
        let fp = fidelity_plus(&gcn, &ds.graph, exp, &tests);
        let fm = fidelity_minus(&gcn, &ds.graph, exp, &tests);
        assert!((0.0..=1.0).contains(&fp), "{name} fidelity+ out of range");
        assert!((0.0..=1.0).contains(&fm), "{name} fidelity- out of range");
    }
}
