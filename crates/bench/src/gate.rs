//! The CI bench-regression gate.
//!
//! Benches write machine-readable medians (`BENCH_*.json`, produced by
//! [`crate::timing::BenchGroup::render_json`]); the committed files are the
//! baseline. On a PR runner, CI re-runs the benches and feeds both files to
//! [`find_regressions`] (via the `bench_gate` binary): a case regresses when
//! its fresh median exceeds the baseline median by more than `max_ratio`
//! **and** is above an absolute noise floor — shared-runner jitter on
//! microsecond-scale cases routinely exceeds any ratio, so tiny medians are
//! never gated, only reported.

use rcw_server::wire::Json;

/// Default regression threshold: fresh median > 3× baseline median.
pub const DEFAULT_MAX_RATIO: f64 = 3.0;
/// Default noise floor: cases whose fresh median is under 50µs are never
/// flagged (cache and scheduler jitter dominates at that scale).
pub const DEFAULT_MIN_NS: u64 = 50_000;

/// One case parsed from a `BENCH_*.json` report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchCase {
    /// Case name (unique within a report).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub ns_per_iter: u64,
}

/// A case whose fresh median regressed past the gate's threshold.
#[derive(Clone, Debug)]
pub struct Regression {
    /// Case name.
    pub name: String,
    /// Committed baseline median (ns).
    pub baseline_ns: u64,
    /// Freshly measured median (ns).
    pub fresh_ns: u64,
    /// `fresh / baseline`.
    pub ratio: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}ns -> {}ns ({:.1}x)",
            self.name, self.baseline_ns, self.fresh_ns, self.ratio
        )
    }
}

/// Parses a `BENCH_*.json` report into its cases.
pub fn parse_bench_json(text: &str) -> Result<Vec<BenchCase>, String> {
    let root = Json::parse(text).map_err(|e| format!("not a bench report: {e}"))?;
    let results = root
        .field("results")
        .and_then(|r| r.as_arr())
        .map_err(|e| format!("not a bench report: {e}"))?;
    results
        .iter()
        .map(|case| {
            let name = case
                .field("name")
                .and_then(|n| n.as_str())
                .map_err(|e| format!("bad case: {e}"))?
                .to_string();
            let ns_per_iter = case
                .field("ns_per_iter")
                .and_then(|n| n.as_u64())
                .map_err(|e| format!("bad case '{name}': {e}"))?;
            Ok(BenchCase { name, ns_per_iter })
        })
        .collect()
}

/// Compares a fresh report against the committed baseline, case by case
/// (matched by name). Cases present on only one side are ignored: a renamed
/// or new bench must not fail the gate, it just starts a new baseline.
pub fn find_regressions(
    baseline: &[BenchCase],
    fresh: &[BenchCase],
    max_ratio: f64,
    min_ns: u64,
) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for fresh_case in fresh {
        let Some(base) = baseline.iter().find(|b| b.name == fresh_case.name) else {
            continue;
        };
        if base.ns_per_iter == 0 || fresh_case.ns_per_iter < min_ns {
            continue;
        }
        let ratio = fresh_case.ns_per_iter as f64 / base.ns_per_iter as f64;
        if ratio > max_ratio {
            regressions.push(Regression {
                name: fresh_case.name.clone(),
                baseline_ns: base.ns_per_iter,
                fresh_ns: fresh_case.ns_per_iter,
                ratio,
            });
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str, ns: u64) -> BenchCase {
        BenchCase {
            name: name.to_string(),
            ns_per_iter: ns,
        }
    }

    #[test]
    fn parses_the_bench_group_json_shape() {
        let text = "{\n  \"group\": \"engine\",\n  \"results\": [\n    \
                    {\"name\": \"a\", \"iters\": 5, \"ns_per_iter\": 1200},\n    \
                    {\"name\": \"b\", \"iters\": 5, \"ns_per_iter\": 99}\n  ]\n}\n";
        let cases = parse_bench_json(text).expect("parse");
        assert_eq!(cases, vec![case("a", 1200), case("b", 99)]);
        assert!(parse_bench_json("{}").is_err());
        assert!(parse_bench_json("not json").is_err());
        assert!(parse_bench_json("{\"results\": [{\"name\": \"x\"}]}").is_err());
    }

    #[test]
    fn flags_only_matched_cases_above_ratio_and_floor() {
        let baseline = [case("hot", 1_000_000), case("tiny", 1_000), case("old", 5)];
        let fresh = [
            case("hot", 4_000_000),        // 4x, above floor -> flagged
            case("tiny", 40_000),          // 40x but under the 50µs floor -> ignored
            case("brand_new", 9e9 as u64), // no baseline -> ignored
        ];
        let regressions = find_regressions(&baseline, &fresh, DEFAULT_MAX_RATIO, DEFAULT_MIN_NS);
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].name, "hot");
        assert!((regressions[0].ratio - 4.0).abs() < 1e-9);
        assert!(regressions[0].to_string().contains("4.0x"));
    }

    /// A schema widening — the server bench growing `mixed/*` cases next to
    /// the three it always had — must pass against the old baseline: new
    /// cases have no match and matched names gate as usual.
    #[test]
    fn tolerates_added_cases_in_fresh_schema() {
        let baseline = [
            case("latency/p50/warm_generate", 20_000),
            case("latency/p99/warm_generate", 53_000),
            case("saturation/ns_per_request", 31_000),
        ];
        let fresh = [
            case("latency/p50/warm_generate", 21_000),
            case("latency/p99/warm_generate", 50_000),
            case("saturation/ns_per_request", 15_000),
            case("mixed/latency/p50/warm_generate", 25_000),
            case("mixed/latency/p99/warm_generate", 90_000),
            case("mixed/saturation/ns_per_request", 35_000),
        ];
        assert!(find_regressions(&baseline, &fresh, DEFAULT_MAX_RATIO, DEFAULT_MIN_NS).is_empty());
    }

    #[test]
    fn within_threshold_is_clean() {
        let baseline = [case("hot", 1_000_000)];
        let fresh = [case("hot", 2_900_000)]; // 2.9x < 3x
        assert!(find_regressions(&baseline, &fresh, DEFAULT_MAX_RATIO, DEFAULT_MIN_NS).is_empty());
        // improvements are never flagged
        let better = [case("hot", 100_000)];
        assert!(find_regressions(&baseline, &better, DEFAULT_MAX_RATIO, DEFAULT_MIN_NS).is_empty());
    }
}
