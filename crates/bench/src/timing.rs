//! A minimal, dependency-free micro-benchmark harness.
//!
//! The workspace builds offline, so the bench targets cannot depend on
//! Criterion. This module provides the small slice of its surface the
//! experiment benches need: named groups, per-case warmup + timed samples,
//! and a median/min/max report on stdout. Bench targets are plain binaries
//! (`harness = false`) calling [`BenchGroup::bench`].

use std::time::{Duration, Instant};

/// A named collection of benchmark cases, reported together.
pub struct BenchGroup {
    name: String,
    samples: usize,
    results: Vec<(String, Duration, Duration, Duration)>,
}

impl BenchGroup {
    /// Creates a group; `samples` timed iterations are run per case (after
    /// one untimed warmup iteration).
    pub fn new(name: impl Into<String>, samples: usize) -> Self {
        BenchGroup {
            name: name.into(),
            samples: samples.max(1),
            results: Vec::new(),
        }
    }

    /// Times `f` and records the case under `label`. The closure's return
    /// value is passed through a black-box sink so the work is not optimized
    /// away.
    pub fn bench<T>(&mut self, label: impl Into<String>, mut f: impl FnMut() -> T) {
        std::hint::black_box(f()); // warmup
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        let min = times[0];
        let max = *times.last().expect("at least one sample");
        self.results.push((label.into(), median, min, max));
    }

    /// Renders the group report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "## {} ({} samples per case)\n{:<40} {:>12} {:>12} {:>12}\n",
            self.name, self.samples, "case", "median", "min", "max"
        );
        for (label, median, min, max) in &self.results {
            out.push_str(&format!(
                "{:<40} {:>12} {:>12} {:>12}\n",
                label,
                format_duration(*median),
                format_duration(*min),
                format_duration(*max)
            ));
        }
        out
    }

    /// Prints the report to stdout (call once at the end of the bench).
    pub fn finish(&self) {
        println!("{}", self.render());
    }
}

/// Human-readable duration with automatic unit selection.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_record_and_render() {
        let mut g = BenchGroup::new("demo", 3);
        g.bench("sum", || (0..1000u64).sum::<u64>());
        g.bench("prod", || (1..20u64).product::<u64>());
        let report = g.render();
        assert!(report.contains("demo"));
        assert!(report.contains("sum"));
        assert!(report.contains("prod"));
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.5ms");
        assert_eq!(format_duration(Duration::from_millis(2500)), "2.50s");
        assert!(format_duration(Duration::from_micros(12)).ends_with("us"));
    }
}
