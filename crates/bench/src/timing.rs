//! A minimal, dependency-free micro-benchmark harness.
//!
//! The workspace builds offline, so the bench targets cannot depend on
//! Criterion. This module provides the small slice of its surface the
//! experiment benches need: named groups, per-case warmup + timed samples,
//! and a median/min/max report on stdout. Bench targets are plain binaries
//! (`harness = false`) calling [`BenchGroup::bench`].

use std::time::{Duration, Instant};

/// One reported benchmark case.
struct Case {
    label: String,
    iters: usize,
    median: Duration,
    min: Duration,
    max: Duration,
}

/// A named collection of benchmark cases, reported together.
pub struct BenchGroup {
    name: String,
    samples: usize,
    results: Vec<Case>,
}

impl BenchGroup {
    /// Creates a group; `samples` timed iterations are run per case (after
    /// one untimed warmup iteration).
    pub fn new(name: impl Into<String>, samples: usize) -> Self {
        BenchGroup {
            name: name.into(),
            samples: samples.max(1),
            results: Vec::new(),
        }
    }

    /// Times `f` and records the case under `label`. The closure's return
    /// value is passed through a black-box sink so the work is not optimized
    /// away.
    pub fn bench<T>(&mut self, label: impl Into<String>, mut f: impl FnMut() -> T) {
        std::hint::black_box(f()); // warmup
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        let median = times[times.len() / 2];
        let min = times[0];
        let max = *times.last().expect("at least one sample");
        self.record(label, self.samples, median, min, max);
    }

    /// Records a pre-computed case — for measurements the closure-timing
    /// shape cannot express, like latency percentiles over a request stream
    /// or saturation throughput (`iters` requests over a wall-clock window).
    pub fn record(
        &mut self,
        label: impl Into<String>,
        iters: usize,
        median: Duration,
        min: Duration,
        max: Duration,
    ) {
        self.results.push(Case {
            label: label.into(),
            iters,
            median,
            min,
            max,
        });
    }

    /// Renders the group report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "## {} ({} samples per case)\n{:<40} {:>12} {:>12} {:>12}\n",
            self.name, self.samples, "case", "median", "min", "max"
        );
        for case in &self.results {
            out.push_str(&format!(
                "{:<40} {:>12} {:>12} {:>12}\n",
                case.label,
                format_duration(case.median),
                format_duration(case.min),
                format_duration(case.max)
            ));
        }
        out
    }

    /// Prints the report to stdout (call once at the end of the bench).
    pub fn finish(&self) {
        println!("{}", self.render());
    }

    /// Renders the group as machine-readable JSON: one record per case with
    /// the case name, timed iteration count, and median nanoseconds per
    /// iteration. Used to track the perf trajectory across PRs and enforced
    /// by the CI bench-regression gate (`bench_gate`).
    pub fn render_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"group\": \"{}\",\n  \"results\": [\n",
            escape_json(&self.name)
        );
        for (i, case) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"iters\": {}, \"ns_per_iter\": {}}}{sep}\n",
                escape_json(&case.label),
                case.iters,
                case.median.as_nanos()
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the JSON report next to the stdout table (call once at the end
    /// of the bench). Errors are reported, not fatal — a read-only working
    /// directory must not fail the bench run.
    pub fn write_json(&self, path: &str) {
        if let Err(e) = std::fs::write(path, self.render_json()) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Human-readable duration with automatic unit selection.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_record_and_render() {
        let mut g = BenchGroup::new("demo", 3);
        g.bench("sum", || (0..1000u64).sum::<u64>());
        g.bench("prod", || (1..20u64).product::<u64>());
        let report = g.render();
        assert!(report.contains("demo"));
        assert!(report.contains("sum"));
        assert!(report.contains("prod"));
    }

    #[test]
    fn json_report_is_machine_readable() {
        let mut g = BenchGroup::new("demo \"quoted\"", 4);
        g.bench("case-a", || 1 + 1);
        g.bench("case-b", || 2 * 2);
        let json = g.render_json();
        assert!(json.contains("\"group\": \"demo \\\"quoted\\\"\""));
        assert!(json.contains("\"name\": \"case-a\""));
        assert!(json.contains("\"iters\": 4"));
        assert!(json.contains("\"ns_per_iter\": "));
        // two records: one comma-separated, one trailing without a comma
        assert_eq!(json.matches("},\n").count(), 1);
        assert_eq!(json.matches("\"name\"").count(), 2);
    }

    #[test]
    fn recorded_cases_keep_their_own_iteration_count() {
        let mut g = BenchGroup::new("server", 2);
        g.bench("timed", || 1 + 1);
        g.record(
            "latency/p99",
            500,
            Duration::from_micros(120),
            Duration::from_micros(80),
            Duration::from_micros(400),
        );
        let json = g.render_json();
        assert!(json.contains("\"name\": \"timed\", \"iters\": 2"));
        assert!(json.contains("\"name\": \"latency/p99\", \"iters\": 500, \"ns_per_iter\": 120000"));
        assert!(g.render().contains("latency/p99"));
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.5ms");
        assert_eq!(format_duration(Duration::from_millis(2500)), "2.50s");
        assert!(format_duration(Duration::from_micros(12)).ends_with("us"));
    }
}
