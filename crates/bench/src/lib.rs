//! # rcw-bench
//!
//! The experiment harness: shared plumbing for the binaries and Criterion
//! benches that regenerate every table and figure of the paper's evaluation
//! (§VII). Each experiment binary prints the same rows/series the paper
//! reports; `EXPERIMENTS.md` records paper-reported vs measured values.
//!
//! The harness always compares three explainers on the same trained
//! classifier:
//! * **RoboGExp** — this repository's k-RCW generator;
//! * **CF²** — factual + counterfactual baseline (re-implemented);
//! * **CF-GNNExp** — counterfactual-only baseline (re-implemented).

pub mod gate;
pub mod replay;
pub mod timing;

use rcw_baselines::{Cf2Explainer, CfGnnExplainer};
use rcw_core::{ParaRoboGExp, RcwConfig, RoboGExp};
use rcw_datasets::{bahouse, citeseer, ppi, reddit, Dataset, Scale};
use rcw_gnn::{Appnp, Gcn, GnnModel};
use rcw_graph::{
    disturbance::random_disturbance, normalized_ged, DisturbanceStrategy, EdgeSet, EdgeSubgraph,
    Graph, NodeId,
};
use rcw_metrics::{fidelity_minus, fidelity_plus, ExplanationEval, Table};
use std::time::Instant;

/// The three explainers compared throughout the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// The paper's contribution.
    RoboGExp,
    /// CF² (factual + counterfactual, no robustness).
    Cf2,
    /// CF-GNNExplainer (counterfactual only).
    CfGnnExp,
}

impl Method {
    /// All methods, in the order the paper's tables list them.
    pub fn all() -> [Method; 3] {
        [Method::RoboGExp, Method::Cf2, Method::CfGnnExp]
    }

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::RoboGExp => "RoboGExp",
            Method::Cf2 => "CF2",
            Method::CfGnnExp => "CF-GNNExp",
        }
    }
}

/// A dataset together with the classifiers trained on it.
pub struct ExperimentContext {
    /// The dataset (graph + split).
    pub dataset: Dataset,
    /// The paper's default classifier (3-layer GCN).
    pub gcn: Gcn,
    /// The APPNP classifier used for the tractable verification path and the
    /// parallel-scalability experiment.
    pub appnp: Appnp,
}

impl ExperimentContext {
    /// Builds a dataset by name ("bahouse", "citeseer", "ppi", "reddit") and
    /// trains both classifiers.
    pub fn prepare(name: &str, scale: Scale, seed: u64) -> Self {
        let dataset = match name {
            "bahouse" => bahouse::build(scale, seed),
            "citeseer" => citeseer::build(scale, seed),
            "ppi" => ppi::build(scale, seed),
            "reddit" => reddit::build(scale, seed),
            other => panic!("unknown dataset {other}"),
        };
        let gcn = dataset.train_gcn(24, seed);
        let appnp = dataset.train_appnp(24, seed);
        ExperimentContext {
            dataset,
            gcn,
            appnp,
        }
    }

    /// The default RoboGExp configuration for experiments with budget `k`.
    pub fn rcw_config(&self, k: usize) -> RcwConfig {
        RcwConfig {
            k,
            local_budget: 2,
            strategy: DisturbanceStrategy::RemovalOnly,
            candidate_hops: 2,
            max_insert_candidates: 16,
            sampled_disturbances: 6,
            exhaustive_limit: 8,
            max_candidate_pairs: 256,
            max_expand_rounds: 3,
            pri_rounds: 6,
            ppr_iters: 30,
            seed: 7,
        }
    }
}

/// Output of running one method once: its explanation and timing.
pub struct MethodRun {
    /// Which method ran.
    pub method: Method,
    /// The explanation subgraph produced for the test nodes.
    pub explanation: EdgeSubgraph,
    /// Wall-clock generation time in milliseconds.
    pub generation_ms: f64,
}

/// Runs one explainer on the given graph/model and test nodes.
pub fn run_method(
    method: Method,
    model: &dyn GnnModel,
    graph: &Graph,
    test_nodes: &[NodeId],
    cfg: &RcwConfig,
) -> MethodRun {
    let start = Instant::now();
    let explanation = match method {
        Method::RoboGExp => {
            RoboGExp::for_model(model, cfg.clone())
                .generate(graph, test_nodes)
                .witness
                .subgraph
        }
        Method::Cf2 => Cf2Explainer::default().explain(model, graph, test_nodes),
        Method::CfGnnExp => CfGnnExplainer::default().explain(model, graph, test_nodes),
    };
    MethodRun {
        method,
        explanation,
        generation_ms: start.elapsed().as_secs_f64() * 1000.0,
    }
}

/// A disturbance used by the robustness (GED) evaluation: `k` random edge
/// removals that avoid the immediate vicinity of the test nodes, modelling
/// graph changes elsewhere (e.g. new deceptive attack targets, missing bonds).
pub fn evaluation_disturbance(
    graph: &Graph,
    test_nodes: &[NodeId],
    k: usize,
    seed: u64,
) -> EdgeSet {
    use rcw_graph::traversal::k_hop_neighborhood_multi;
    let protected: EdgeSet = test_nodes
        .iter()
        .flat_map(|&t| graph.neighbors_vec(t).into_iter().map(move |u| (t, u)))
        .collect();
    // Restrict the removals to the 2-hop neighborhood of the test nodes so the
    // disturbance actually stresses the explanations (edges incident to the
    // test nodes themselves stay protected).
    let hood = k_hop_neighborhood_multi(graph, test_nodes, 2);
    let candidates: Vec<rcw_graph::Edge> = graph
        .edges()
        .filter(|&(u, v)| hood.contains(&u) && hood.contains(&v) && !protected.contains(u, v))
        .collect();
    let mut local = Graph::with_nodes(graph.num_nodes());
    for &(u, v) in &candidates {
        local.add_edge(u, v);
    }
    random_disturbance(
        &local,
        &EdgeSet::new(),
        k,
        0,
        DisturbanceStrategy::RemovalOnly,
        seed,
    )
    .pairs()
    .clone()
}

/// Evaluates one method end to end the way Table III does: generate on `G`,
/// compute Fidelity+/− and size, then re-generate on a k-disturbed `G~` and
/// report the normalized GED between the two explanations (the baselines'
/// "re-generation" is exactly the retraining cost the paper charges them).
pub fn evaluate_method(
    method: Method,
    model: &dyn GnnModel,
    graph: &Graph,
    test_nodes: &[NodeId],
    cfg: &RcwConfig,
) -> ExplanationEval {
    let run = run_method(method, model, graph, test_nodes, cfg);
    let mut eval = ExplanationEval {
        method: method.name().to_string(),
        normalized_ged: 0.0,
        fidelity_plus: fidelity_plus(model, graph, &run.explanation, test_nodes),
        fidelity_minus: fidelity_minus(model, graph, &run.explanation, test_nodes),
        size: run.explanation.size(),
        generation_ms: run.generation_ms,
    };
    // robustness of the explanation structure: re-generate on a disturbed graph
    let disturbance = evaluation_disturbance(graph, test_nodes, cfg.k, cfg.seed.wrapping_add(99));
    let disturbed = graph.flip_edges(&disturbance.to_vec());
    let rerun_start = Instant::now();
    let rerun = run_method(method, model, &disturbed, test_nodes, cfg);
    eval.normalized_ged = normalized_ged(&run.explanation, &rerun.explanation);
    // total response time under disturbance = original + re-generation
    eval.generation_ms += rerun_start.elapsed().as_secs_f64() * 1000.0;
    eval
}

/// Experiment E1 (Table III): explanation quality on the CiteSeer-like dataset.
pub fn table3(ctx: &ExperimentContext, k: usize, num_test_nodes: usize) -> Table {
    let test_nodes = ctx.dataset.pick_test_nodes(num_test_nodes, 13);
    let cfg = ctx.rcw_config(k);
    let mut table = Table::new(
        format!(
            "Table III: quality of explanations ({}; k={k}, |VT|={})",
            ctx.dataset.name,
            test_nodes.len()
        ),
        &[
            "Method",
            "NormGED",
            "Fidelity+",
            "Fidelity-",
            "Size",
            "Time(ms)",
        ],
    );
    for method in Method::all() {
        let eval = evaluate_method(method, &ctx.gcn, &ctx.dataset.graph, &test_nodes, &cfg);
        table.push_row(vec![
            eval.method.clone(),
            format!("{:.2}", eval.normalized_ged),
            format!("{:.2}", eval.fidelity_plus),
            format!("{:.2}", eval.fidelity_minus),
            format!("{}", eval.size),
            format!("{:.1}", eval.generation_ms),
        ]);
    }
    table
}

/// Experiments E2/E3 (Fig. 3): quality metrics as `k` or `|VT|` varies.
/// `vary_k = true` sweeps `k` with `|VT|` fixed; otherwise sweeps `|VT|`.
pub fn fig3(ctx: &ExperimentContext, vary_k: bool, values: &[usize], fixed: usize) -> Table {
    let what = if vary_k { "k" } else { "|VT|" };
    let mut table = Table::new(
        format!("Fig 3: effectiveness vs {what} ({})", ctx.dataset.name),
        &[what, "Method", "NormGED", "Fidelity+", "Fidelity-"],
    );
    for &value in values {
        let (k, vt) = if vary_k {
            (value, fixed)
        } else {
            (fixed, value)
        };
        let test_nodes = ctx.dataset.pick_test_nodes(vt, 13);
        let cfg = ctx.rcw_config(k);
        for method in Method::all() {
            let eval = evaluate_method(method, &ctx.gcn, &ctx.dataset.graph, &test_nodes, &cfg);
            table.push_row(vec![
                value.to_string(),
                eval.method.clone(),
                format!("{:.2}", eval.normalized_ged),
                format!("{:.2}", eval.fidelity_plus),
                format!("{:.2}", eval.fidelity_minus),
            ]);
        }
    }
    table
}

/// Experiment E4 (Fig. 4a): generation time across datasets.
pub fn fig4a(contexts: &[ExperimentContext], k: usize, vt: usize) -> Table {
    let mut table = Table::new(
        format!("Fig 4(a): generation time per dataset (k={k}, |VT|={vt})"),
        &["Dataset", "Method", "Time(ms)"],
    );
    for ctx in contexts {
        let test_nodes = ctx.dataset.pick_test_nodes(vt, 13);
        let cfg = ctx.rcw_config(k);
        for method in Method::all() {
            let run = run_method(method, &ctx.gcn, &ctx.dataset.graph, &test_nodes, &cfg);
            table.push_row(vec![
                ctx.dataset.name.clone(),
                method.name().to_string(),
                format!("{:.1}", run.generation_ms),
            ]);
        }
    }
    table
}

/// Experiments E5/E6 (Fig. 4b/4c): generation time as `k` or `|VT|` varies.
pub fn fig4bc(ctx: &ExperimentContext, vary_k: bool, values: &[usize], fixed: usize) -> Table {
    let what = if vary_k { "k" } else { "|VT|" };
    let mut table = Table::new(
        format!(
            "Fig 4(b/c): generation time vs {what} ({})",
            ctx.dataset.name
        ),
        &[what, "Method", "Time(ms)"],
    );
    for &value in values {
        let (k, vt) = if vary_k {
            (value, fixed)
        } else {
            (fixed, value)
        };
        let test_nodes = ctx.dataset.pick_test_nodes(vt, 13);
        let cfg = ctx.rcw_config(k);
        for method in Method::all() {
            // the time the paper reports includes re-generation after a
            // disturbance, which is where the baselines pay their retraining
            let eval = evaluate_method(method, &ctx.gcn, &ctx.dataset.graph, &test_nodes, &cfg);
            table.push_row(vec![
                value.to_string(),
                method.name().to_string(),
                format!("{:.1}", eval.generation_ms),
            ]);
        }
    }
    table
}

/// Experiment E7 (Fig. 4d): paraRoboGExp generation time vs worker count on
/// the Reddit-like dataset, for each `k` in `ks`.
pub fn fig4d(ctx: &ExperimentContext, threads: &[usize], ks: &[usize], vt: usize) -> Table {
    let mut table = Table::new(
        format!("Fig 4(d): paraRoboGExp scalability ({})", ctx.dataset.name),
        &["Threads", "k", "Time(ms)", "Rounds", "SyncBytes"],
    );
    let test_nodes = ctx.dataset.pick_test_nodes(vt, 13);
    for &k in ks {
        for &t in threads {
            let cfg = ctx.rcw_config(k);
            let start = Instant::now();
            let out = ParaRoboGExp::for_appnp(&ctx.appnp, cfg, t)
                .generate(&ctx.dataset.graph, &test_nodes);
            let ms = start.elapsed().as_secs_f64() * 1000.0;
            table.push_row(vec![
                t.to_string(),
                k.to_string(),
                format!("{ms:.1}"),
                out.parallel.rounds.to_string(),
                out.parallel.bytes_synchronized.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext::prepare("citeseer", Scale::Tiny, 3)
    }

    #[test]
    fn context_prepares_and_models_are_usable() {
        let ctx = tiny_ctx();
        assert!(ctx.dataset.graph.num_nodes() > 0);
        assert!(ctx.dataset.test_accuracy(&ctx.gcn) > 0.0);
        let cfg = ctx.rcw_config(4);
        assert_eq!(cfg.k, 4);
    }

    #[test]
    fn all_methods_produce_explanations() {
        let ctx = tiny_ctx();
        let tests = ctx.dataset.pick_test_nodes(3, 1);
        let cfg = ctx.rcw_config(2);
        for m in Method::all() {
            let run = run_method(m, &ctx.gcn, &ctx.dataset.graph, &tests, &cfg);
            assert!(run.generation_ms >= 0.0);
            for &t in &tests {
                assert!(
                    run.explanation.contains_node(t),
                    "{} explanation misses test node {t}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn evaluate_method_fills_all_fields() {
        let ctx = tiny_ctx();
        let tests = ctx.dataset.pick_test_nodes(3, 1);
        let cfg = ctx.rcw_config(2);
        let eval = evaluate_method(Method::RoboGExp, &ctx.gcn, &ctx.dataset.graph, &tests, &cfg);
        assert!(eval.normalized_ged >= 0.0 && eval.normalized_ged <= 2.0);
        assert!(eval.fidelity_plus >= 0.0 && eval.fidelity_plus <= 1.0);
        assert!(eval.fidelity_minus >= 0.0 && eval.fidelity_minus <= 1.0);
        assert!(eval.generation_ms > 0.0);
    }

    #[test]
    fn table3_has_one_row_per_method() {
        let ctx = tiny_ctx();
        let t = table3(&ctx, 2, 3);
        assert_eq!(t.rows.len(), 3);
        assert!(t.render().contains("RoboGExp"));
    }

    #[test]
    fn fig4d_scales_down_to_one_thread() {
        let ctx = tiny_ctx();
        let t = fig4d(&ctx, &[1, 2], &[1], 2);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn evaluation_disturbance_avoids_test_node_edges() {
        let ctx = tiny_ctx();
        let tests = ctx.dataset.pick_test_nodes(3, 1);
        let d = evaluation_disturbance(&ctx.dataset.graph, &tests, 5, 1);
        for (u, v) in d.iter() {
            assert!(!tests.contains(&u) && !tests.contains(&v));
        }
    }
}
