//! Deterministic disturbance replay: turns a dataset graph into a timed
//! stream of edge-flip events that can be fired at a serving tier.
//!
//! A [`ReplayPlan`] is a pure function of `(graph, seed, shape)` — the same
//! inputs always produce the same event sequence, byte for byte, which is
//! what lets the replay harness (`rcw_replay`) and the determinism tests
//! assert that two runs of the same stream produce the same wire traffic.
//! [`sequence_digest`] folds received `witness_update` frames back through
//! their canonical encoding into one order-sensitive hash, so "identical
//! update sequence" is a single `u64` comparison.

use rcw_graph::Graph;
use rcw_linalg::Rng;
use rcw_server::wire::{self, WitnessUpdate};
use std::time::Duration;

/// One timed event in a replay stream: a set of edge flips to POST as a
/// single `/disturb`, `at` after the stream starts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayEvent {
    /// Offset from stream start. A paced runner sleeps until this point;
    /// an unpaced one (the determinism tests) fires events back to back.
    pub at: Duration,
    /// Edge flips applied by this event (`u < v`, no duplicates). Flips
    /// are involutions, so an edge removed by one event can be restored
    /// by a later one — long streams keep the graph near its seed shape.
    pub flips: Vec<(usize, usize)>,
}

/// A deterministic, timed disturbance stream over one graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayPlan {
    /// The seed the stream was derived from (recorded for reports).
    pub seed: u64,
    /// Events in firing order, with non-decreasing `at` offsets.
    pub events: Vec<ReplayEvent>,
}

impl ReplayPlan {
    /// Derives a plan from a graph: `events` events of `flips_per_event`
    /// distinct edges each, drawn seeded from the graph's edge list, paced
    /// `pace` apart. Pure in its inputs — same arguments, same plan.
    pub fn from_graph(
        graph: &Graph,
        seed: u64,
        events: usize,
        flips_per_event: usize,
        pace: Duration,
    ) -> Self {
        let edges: Vec<(usize, usize)> = graph.edges().collect();
        assert!(!edges.is_empty(), "replay needs a graph with edges");
        let per_event = flips_per_event.min(edges.len());
        let mut rng = Rng::seed_from_u64(seed);
        let events = (0..events)
            .map(|i| {
                let mut flips: Vec<(usize, usize)> = Vec::with_capacity(per_event);
                while flips.len() < per_event {
                    let edge = edges[rng.gen_range(0..edges.len())];
                    if !flips.contains(&edge) {
                        flips.push(edge);
                    }
                }
                ReplayEvent {
                    at: pace * i as u32,
                    flips,
                }
            })
            .collect();
        ReplayPlan { seed, events }
    }

    /// Total flips across all events.
    pub fn total_flips(&self) -> usize {
        self.events.iter().map(|e| e.flips.len()).sum()
    }

    /// Order-sensitive content hash of the plan (FNV-1a over the event
    /// offsets and flips). Two plans with equal digests fire the same
    /// disturbances at the same offsets.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for event in &self.events {
            h.write_u64(event.at.as_micros() as u64);
            h.write_u64(event.flips.len() as u64);
            for &(u, v) in &event.flips {
                h.write_u64(u as u64);
                h.write_u64(v as u64);
            }
        }
        h.finish()
    }
}

/// Order-sensitive digest of a received update sequence: each frame is
/// re-encoded through its canonical wire form ([`wire::update_frame_to_body`])
/// and folded into one FNV-1a hash. Two subscribers saw the same stream iff
/// their digests match — same frames, same order, same bytes.
///
/// For cross-run comparison, rebase epochs first ([`rebase_epochs`]): the
/// engine epoch is a process-global clock, so absolute epochs differ
/// between runs even when everything else is byte-identical.
pub fn sequence_digest<'a>(updates: impl IntoIterator<Item = &'a WitnessUpdate>) -> u64 {
    let mut h = Fnv::new();
    for update in updates {
        h.write(wire::update_frame_to_body(update).as_bytes());
    }
    h.finish()
}

/// Rewrites each update's epoch relative to `base` (normally the
/// subscription ack's epoch). Epoch *deltas* are deterministic per stream;
/// the absolute values are positions on a process-global clock.
pub fn rebase_epochs(base: u64, updates: &mut [WitnessUpdate]) {
    for update in updates {
        update.epoch = update.epoch.saturating_sub(base);
    }
}

/// FNV-1a, 64-bit. Stable across platforms and runs — exactly the property
/// the digests need (std's `DefaultHasher` is randomly keyed per process).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ladder(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn plans_are_pure_functions_of_their_inputs() {
        let g = ladder(24);
        let a = ReplayPlan::from_graph(&g, 11, 6, 2, Duration::from_millis(5));
        let b = ReplayPlan::from_graph(&g, 11, 6, 2, Duration::from_millis(5));
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());

        let c = ReplayPlan::from_graph(&g, 12, 6, 2, Duration::from_millis(5));
        assert_ne!(a.digest(), c.digest(), "seed changes the stream");
    }

    #[test]
    fn events_are_paced_and_flips_are_distinct_in_range() {
        let g = ladder(16);
        let plan = ReplayPlan::from_graph(&g, 3, 4, 3, Duration::from_millis(10));
        assert_eq!(plan.events.len(), 4);
        assert_eq!(plan.total_flips(), 12);
        for (i, event) in plan.events.iter().enumerate() {
            assert_eq!(event.at, Duration::from_millis(10) * i as u32);
            let mut seen = event.flips.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(
                seen.len(),
                event.flips.len(),
                "flips within an event are distinct"
            );
            for &(u, v) in &event.flips {
                assert!(u < v && v < 16, "flips are normalized graph edges");
            }
        }
    }

    #[test]
    fn flips_per_event_caps_at_the_edge_count() {
        let g = ladder(3); // two edges
        let plan = ReplayPlan::from_graph(&g, 1, 2, 9, Duration::ZERO);
        assert!(plan.events.iter().all(|e| e.flips.len() == 2));
    }
}
