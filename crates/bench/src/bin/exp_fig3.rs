//! Experiments E2/E3 — reproduce Fig. 3: explanation quality (NormGED,
//! Fidelity+, Fidelity−) as k varies (a/c/e) and as |VT| varies (b/d/f).
//!
//! Usage: `cargo run --release -p rcw-bench --bin exp_fig3 [-- --vary k|vt] [--quick]`

use rcw_bench::{fig3, ExperimentContext};
use rcw_datasets::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let vary = args
        .iter()
        .position(|a| a == "--vary")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("both")
        .to_string();
    let scale = if quick { Scale::Small } else { Scale::Full };
    let ctx = ExperimentContext::prepare("citeseer", scale, 3);
    let (ks, vts, fixed_vt, fixed_k) = if quick {
        (vec![2, 4, 8], vec![4, 8, 12], 6, 4)
    } else {
        (vec![4, 8, 12, 16, 20], vec![20, 40, 60, 80, 100], 20, 20)
    };
    if vary == "k" || vary == "both" {
        let t = fig3(&ctx, true, &ks, fixed_vt);
        println!("{}", t.render());
    }
    if vary == "vt" || vary == "both" {
        let t = fig3(&ctx, false, &vts, fixed_k);
        println!("{}", t.render());
    }
}
