//! Experiments E8–E10 — the paper's case studies (Fig. 5 and Examples 1–4):
//! the invariant mutagenic toxicophore across a molecule family, and the
//! topic-change response on the citation network.
//!
//! Usage: `cargo run --release -p rcw-bench --bin exp_case_studies [-- --case mutagenic|citeseer]`

use rcw_baselines::Cf2Explainer;
use rcw_core::{RcwConfig, RoboGExp};
use rcw_datasets::{citeseer, molecules, Scale};
use rcw_gnn::GnnModel;
use rcw_graph::{normalized_ged, EdgeSet, GraphView};
use rcw_metrics::Table;

fn mutagenic_case() {
    println!("== Case study 1: invariant toxicophore across a molecule family ==");
    let ds = molecules::build(Scale::Small, 1);
    let appnp = ds.train_appnp(16, 1);
    let family = molecules::molecule_family();
    let cfg = RcwConfig::with_budgets(1, 1);

    let mut table = Table::new(
        "RCW vs CF2 stability across molecule variants (GED to the base explanation)",
        &[
            "Variant",
            "RoboGExp GED",
            "CF2 GED",
            "RoboGExp size",
            "CF2 size",
        ],
    );
    let mut base_rcw = None;
    let mut base_cf2 = None;
    for (i, molecule) in family.iter().enumerate() {
        let t = molecule.test_node();
        let rcw = RoboGExp::for_appnp(&appnp, cfg.clone())
            .generate(&molecule.graph, &[t])
            .witness
            .subgraph;
        let cf2 = Cf2Explainer::default().explain(&appnp, &molecule.graph, &[t]);
        let (g_r, g_c) = match (&base_rcw, &base_cf2) {
            (Some(br), Some(bc)) => (normalized_ged(br, &rcw), normalized_ged(bc, &cf2)),
            _ => (0.0, 0.0),
        };
        table.push_row(vec![
            format!("G3^{i}"),
            format!("{g_r:.2}"),
            format!("{g_c:.2}"),
            rcw.size().to_string(),
            cf2.size().to_string(),
        ]);
        if i == 0 {
            base_rcw = Some(rcw);
            base_cf2 = Some(cf2);
        }
    }
    println!("{}", table.render());
}

fn citeseer_topic_case() {
    println!("== Case study 2: explaining a topic change with new citations ==");
    let ds = citeseer::build(Scale::Small, 3);
    let appnp = ds.train_appnp(24, 3);
    let cfg = RcwConfig::with_budgets(2, 1);
    // pick a test node and rewire it towards a different topic block
    let v = ds.test_pool[0];
    let before = RoboGExp::for_appnp(&appnp, cfg.clone()).generate(&ds.graph, &[v]);
    let old_label = appnp
        .predict(v, &GraphView::full(&ds.graph))
        .expect("valid node");
    // add citations to another topic
    let other: Vec<usize> = ds
        .graph
        .node_ids()
        .filter(|&u| ds.graph.label(u).is_some() && ds.graph.label(u) != Some(old_label))
        .take(6)
        .collect();
    let new_edges: EdgeSet = other.iter().map(|&u| (v, u)).collect();
    let disturbed = ds.graph.flip_edges(&new_edges.to_vec());
    let new_label = appnp
        .predict(v, &GraphView::full(&disturbed))
        .expect("valid node");
    let after = RoboGExp::for_appnp(&appnp, cfg).generate(&disturbed, &[v]);
    println!(
        "node {v}: label {old_label} -> {new_label} after adding {} cross-topic citations",
        new_edges.len()
    );
    println!(
        "explanation size before = {}, after = {}, normalized GED = {:.2}",
        before.witness.subgraph.size(),
        after.witness.subgraph.size(),
        normalized_ged(&before.witness.subgraph, &after.witness.subgraph)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let case = args
        .iter()
        .position(|a| a == "--case")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all")
        .to_string();
    if case == "mutagenic" || case == "all" {
        mutagenic_case();
    }
    if case == "citeseer" || case == "all" {
        citeseer_topic_case();
    }
}
