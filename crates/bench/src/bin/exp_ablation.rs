//! Ablations A1–A4 (DESIGN.md §6): design-choice studies for the RoboGExp
//! pipeline — PRI vs exhaustive verification, exact vs iterative PPR,
//! guided vs random expansion, and bitmap dedup on/off in paraRoboGExp.
//!
//! Usage: `cargo run --release -p rcw-bench --bin exp_ablation`

use rcw_bench::ExperimentContext;
use rcw_core::{ParaRoboGExp, RcwConfig, RoboGExp};
use rcw_datasets::Scale;
use rcw_gnn::GnnModel;
use rcw_graph::{Csr, GraphView};
use rcw_metrics::Table;
use rcw_pagerank::{ppr_matrix_exact, ppr_row};
use std::time::Instant;

fn main() {
    let ctx = ExperimentContext::prepare("citeseer", Scale::Small, 3);
    let tests = ctx.dataset.pick_test_nodes(6, 13);

    // A1: tractable APPNP verification (PRI) vs sampled generic verification
    let mut a1 = Table::new(
        "A1: APPNP PRI path vs generic sampling path",
        &["Path", "Time(ms)", "Level"],
    );
    for (name, use_appnp) in [("PRI (APPNP)", true), ("Sampling (generic)", false)] {
        let cfg = ctx.rcw_config(4);
        let start = Instant::now();
        let result = if use_appnp {
            RoboGExp::for_appnp(&ctx.appnp, cfg).generate(&ctx.dataset.graph, &tests)
        } else {
            // erase the concrete type to force the model-agnostic sampling path
            RoboGExp::for_model(&ctx.appnp as &dyn GnnModel, cfg)
                .generate(&ctx.dataset.graph, &tests)
        };
        a1.push_row(vec![
            name.to_string(),
            format!("{:.1}", start.elapsed().as_secs_f64() * 1000.0),
            format!("{:?}", result.level),
        ]);
    }
    println!("{}", a1.render());

    // A2: exact PPR (dense solve) vs iterative PPR row
    let mut a2 = Table::new(
        "A2: exact vs iterative personalized PageRank",
        &["Variant", "Time(ms)", "MaxAbsDiff"],
    );
    let view = GraphView::full(&ctx.dataset.graph);
    let v = tests[0];
    let start = Instant::now();
    let exact = ppr_matrix_exact(&view, 0.15);
    let exact_ms = start.elapsed().as_secs_f64() * 1000.0;
    let csr = Csr::from_view(&view);
    let start = Instant::now();
    let iterative = ppr_row(&csr, v, 0.15, 60);
    let iter_ms = start.elapsed().as_secs_f64() * 1000.0;
    let diff = iterative
        .iter()
        .enumerate()
        .map(|(u, x)| (x - exact.get(v, u)).abs())
        .fold(0.0f64, f64::max);
    a2.push_row(vec![
        "exact (dense solve, full matrix)".into(),
        format!("{exact_ms:.1}"),
        "0".into(),
    ]);
    a2.push_row(vec![
        "iterative (one row, 60 iters)".into(),
        format!("{iter_ms:.1}"),
        format!("{diff:.2e}"),
    ]);
    println!("{}", a2.render());

    // A3: guided expansion (margin/PRI driven) vs a single-round expansion
    let mut a3 = Table::new(
        "A3: expand-verify rounds vs single-round expansion",
        &["Rounds", "Witness size", "Level"],
    );
    for rounds in [1usize, 3, 6] {
        let cfg = RcwConfig {
            max_expand_rounds: rounds,
            ..ctx.rcw_config(4)
        };
        let result = RoboGExp::for_appnp(&ctx.appnp, cfg).generate(&ctx.dataset.graph, &tests);
        a3.push_row(vec![
            rounds.to_string(),
            result.witness.subgraph.size().to_string(),
            format!("{:?}", result.level),
        ]);
    }
    println!("{}", a3.render());

    // A4: parallel generation with different worker counts (bitmap sync cost)
    let mut a4 = Table::new(
        "A4: paraRoboGExp workers vs synchronized bytes",
        &["Workers", "Time(ms)", "SyncBytes"],
    );
    for workers in [1usize, 2, 4] {
        let cfg = ctx.rcw_config(4);
        let start = Instant::now();
        let out =
            ParaRoboGExp::for_appnp(&ctx.appnp, cfg, workers).generate(&ctx.dataset.graph, &tests);
        a4.push_row(vec![
            workers.to_string(),
            format!("{:.1}", start.elapsed().as_secs_f64() * 1000.0),
            out.parallel.bytes_synchronized.to_string(),
        ]);
    }
    println!("{}", a4.render());
}
