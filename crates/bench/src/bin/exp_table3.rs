//! Experiment E1 — reproduces Table III (quality of explanations on the
//! CiteSeer-like dataset, k=20, |VT|=20).
//!
//! Usage: `cargo run --release -p rcw-bench --bin exp_table3 [-- --quick]`

use rcw_bench::{table3, ExperimentContext};
use rcw_datasets::Scale;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, k, vt) = if quick {
        (Scale::Small, 8, 8)
    } else {
        (Scale::Full, 20, 20)
    };
    eprintln!("preparing CiteSeer-like dataset ({scale:?}) and training classifiers...");
    let ctx = ExperimentContext::prepare("citeseer", scale, 3);
    eprintln!(
        "dataset: {} nodes, {} edges; GCN test accuracy {:.2}",
        ctx.dataset.graph.num_nodes(),
        ctx.dataset.graph.num_edges(),
        ctx.dataset.test_accuracy(&ctx.gcn)
    );
    let table = table3(&ctx, k, vt);
    println!("{}", table.render());
    println!("{}", table.to_csv());
}
