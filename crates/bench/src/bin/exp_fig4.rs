//! Experiments E4–E7 — reproduce Fig. 4: (a) generation time per dataset,
//! (b) time vs k, (c) time vs |VT|, (d) paraRoboGExp thread scalability.
//!
//! Usage: `cargo run --release -p rcw-bench --bin exp_fig4 [-- --part a|b|c|d] [--quick]`

use rcw_bench::{fig4a, fig4bc, fig4d, ExperimentContext};
use rcw_datasets::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let part = args
        .iter()
        .position(|a| a == "--part")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all")
        .to_string();
    let scale = if quick { Scale::Small } else { Scale::Full };
    let (k, vt) = if quick { (4, 6) } else { (20, 20) };

    if part == "a" || part == "all" {
        let contexts = vec![
            ExperimentContext::prepare("bahouse", scale, 3),
            ExperimentContext::prepare("citeseer", scale, 3),
            ExperimentContext::prepare("ppi", scale, 3),
        ];
        println!("{}", fig4a(&contexts, k, vt).render());
    }
    if part == "b" || part == "all" {
        let ctx = ExperimentContext::prepare("citeseer", scale, 3);
        let ks = if quick {
            vec![2, 4, 8]
        } else {
            vec![4, 8, 12, 16, 20]
        };
        println!("{}", fig4bc(&ctx, true, &ks, vt).render());
    }
    if part == "c" || part == "all" {
        let ctx = ExperimentContext::prepare("citeseer", scale, 3);
        let vts = if quick {
            vec![4, 8, 12]
        } else {
            vec![20, 40, 60, 80, 100]
        };
        println!("{}", fig4bc(&ctx, false, &vts, k).render());
    }
    if part == "d" || part == "all" {
        let reddit_scale = if quick { Scale::Small } else { Scale::Full };
        let ctx = ExperimentContext::prepare("reddit", reddit_scale, 3);
        let threads = if quick {
            vec![1, 2, 4]
        } else {
            vec![2, 4, 6, 8, 10]
        };
        let ks = if quick { vec![2] } else { vec![5, 10] };
        println!("{}", fig4d(&ctx, &threads, &ks, vt).render());
    }
}
