//! Replay harness: drives a serving tier with a timed, seeded disturbance
//! stream while subscriber clients hold witness subscriptions, then checks
//! the delivery ledger balances exactly:
//! `updates_delivered + updates_shed == updates_owed`.
//!
//! The stream is a [`ReplayPlan`] — a pure function of (dataset, seed,
//! shape) — so two runs with the same arguments fire byte-identical
//! disturbances, and each subscriber reports an order-sensitive digest of
//! the frames it received ([`rcw_bench::replay::sequence_digest`]).
//!
//! Usage:
//!   cargo run --release -p rcw-bench --bin rcw_replay -- \
//!     [--dataset citeseer|bahouse|ppi|reddit] [--scale tiny|small|full] \
//!     [--seed N] [--events N] [--flips N] [--pace-ms N] [--subs N] \
//!     [--chaos] [--quick]
//!
//! `--chaos` arms the fault-injection plan (worker panics, dropped and
//! truncated writes, forced repair/regeneration failures); the ledger must
//! balance either way. `--quick` is the CI smoke shape: tiny dataset, short
//! stream, no pacing. Exits non-zero if the ledger does not balance or a
//! received frame is malformed.

use rcw_bench::replay::{rebase_epochs, sequence_digest, ReplayPlan};
use rcw_core::{RcwConfig, WitnessEngine};
use rcw_datasets::{bahouse, citeseer, ppi, reddit, Dataset, Scale};
use rcw_server::client::{Client, ClientError};
use rcw_server::faults::FaultPlan;
use rcw_server::{RcwServer, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wire + engine fault mix used under `--chaos` (same shape as the
/// subscription-storm test, paced for a longer run).
const CHAOS_SPEC: &str =
    "worker_panic=1@2,conn_drop=1@3,write_drop=1@2,write_truncate=1@2,repair_fail=1@3,regen_fail=1@2";

struct Args {
    dataset: String,
    scale: Scale,
    seed: u64,
    events: usize,
    flips: usize,
    pace: Duration,
    subs: usize,
    chaos: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        dataset: "citeseer".to_string(),
        scale: Scale::Small,
        seed: 7,
        events: 16,
        flips: 2,
        pace: Duration::from_millis(25),
        subs: 3,
        chaos: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{what} expects a value"))
        };
        match flag.as_str() {
            "--dataset" => args.dataset = value("--dataset"),
            "--scale" => {
                args.scale = match value("--scale").as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => panic!("unknown scale {other}"),
                }
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed is a number"),
            "--events" => args.events = value("--events").parse().expect("--events is a number"),
            "--flips" => args.flips = value("--flips").parse().expect("--flips is a number"),
            "--pace-ms" => {
                args.pace = Duration::from_millis(
                    value("--pace-ms").parse().expect("--pace-ms is a number"),
                )
            }
            "--subs" => args.subs = value("--subs").parse().expect("--subs is a number"),
            "--chaos" => args.chaos = true,
            "--quick" => {
                args.scale = Scale::Tiny;
                args.events = 6;
                args.pace = Duration::ZERO;
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn build_dataset(name: &str, scale: Scale, seed: u64) -> Dataset {
    match name {
        "citeseer" => citeseer::build(scale, seed),
        "bahouse" => bahouse::build(scale, seed),
        "ppi" => ppi::build(scale, seed),
        "reddit" => reddit::build(scale, seed),
        other => panic!("unknown dataset {other}"),
    }
}

fn replay_cfg() -> RcwConfig {
    RcwConfig {
        k: 1,
        local_budget: 1,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::default()
    }
}

fn main() {
    let args = parse_args();
    let ds = build_dataset(&args.dataset, args.scale, args.seed);
    let appnp = ds.train_appnp(8, args.seed);
    let plan = ReplayPlan::from_graph(&ds.graph, args.seed, args.events, args.flips, args.pace);
    println!(
        "{}: |V|={}, |E|={}; stream: {} events x {} flips, digest {:016x}{}",
        ds.name,
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        plan.events.len(),
        args.flips,
        plan.digest(),
        if args.chaos { " (chaos armed)" } else { "" },
    );

    let faults = Arc::new(if args.chaos {
        FaultPlan::parse(CHAOS_SPEC, args.seed).expect("chaos spec parses")
    } else {
        FaultPlan::none()
    });
    let engine = WitnessEngine::new(Arc::new(ds.graph.clone()), &appnp, replay_cfg())
        .with_fault_hook(faults.engine_hook());
    let server = RcwServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let config = ServerConfig::single(&engine)
        .with_workers(2)
        .with_io_timeout(Duration::from_secs(2))
        .with_faults(Arc::clone(&faults));

    let report = std::thread::scope(|scope| {
        let config_ref = &config;
        let server_thread = scope.spawn(move || server.serve_config(config_ref).expect("serve"));

        // Subscribers first: each holds a stream over its own seeded node
        // set and drains it to the end, reporting (frames, digest). Under
        // chaos a subscribe may die at birth — that is shed traffic, and
        // the ledger accounts for it.
        let sub_threads: Vec<_> = (0..args.subs)
            .map(|i| {
                let nodes = ds.pick_test_nodes(2, args.seed + 100 + i as u64);
                let addr = addr.clone();
                scope.spawn(move || {
                    // Chaos can eat the connect or the subscribe itself;
                    // retry until the bounded fault budget is spent so the
                    // storm actually exercises live subscriptions.
                    let mut sub = None;
                    for _ in 0..16 {
                        let Ok(client) = Client::connect(&addr) else {
                            continue;
                        };
                        if let Ok(s) = client.subscribe(&nodes) {
                            sub = Some(s);
                            break;
                        }
                    }
                    let mut sub = sub?;
                    let base_epoch = sub.epoch();
                    let mut updates = Vec::new();
                    loop {
                        match sub.next_update() {
                            Ok(Some(update)) => updates.push(update),
                            // Clean end-of-stream (shutdown) or a chaos-cut
                            // connection: report what arrived either way.
                            Ok(None) | Err(ClientError::Io(_)) => break,
                            Err(e) => panic!("malformed frame on stream {i}: {e}"),
                        }
                    }
                    // Rebase epochs on the ack so the digest is comparable
                    // across runs (the engine epoch is a process-global
                    // clock; only the deltas are a function of the stream).
                    rebase_epochs(base_epoch, &mut updates);
                    Some((nodes, updates))
                })
            })
            .collect();

        // The control client fires the plan on schedule, reconnecting when
        // chaos kills its connection mid-disturb. The tight read timeout
        // keeps a fault-dropped response from stalling the stream for the
        // default 60 s.
        let mut control = Client::connect(&addr).expect("connect control");
        control
            .set_read_timeout(Duration::from_secs(2))
            .expect("read timeout");
        let start = Instant::now();
        let mut fired = 0usize;
        for event in &plan.events {
            if let Some(wait) = event.at.checked_sub(start.elapsed()) {
                std::thread::sleep(wait);
            }
            let mut attempts = 0;
            loop {
                match control.disturb(&event.flips) {
                    Ok(_) => {
                        fired += 1;
                        break;
                    }
                    // Fault rules are `1@N` — they exhaust after N hits — so
                    // a budget above the spec's total hit count always gets
                    // the event through.
                    Err(_) if attempts < 16 => {
                        attempts += 1;
                        control = Client::connect(&addr).expect("reconnect control");
                        control
                            .set_read_timeout(Duration::from_secs(2))
                            .expect("read timeout");
                    }
                    Err(e) => panic!("disturb kept failing: {e}"),
                }
            }
        }
        println!(
            "fired {fired}/{} events in {:?}",
            plan.events.len(),
            start.elapsed()
        );

        // Shutdown rides the same chaos: a dropped response does not mean
        // the shutdown was not processed. If a retry cannot even connect,
        // the listener is already gone — that IS the shutdown.
        let mut attempts = 0;
        loop {
            match control.shutdown() {
                Ok(_) => break,
                Err(e) if attempts >= 5 => panic!("shutdown kept failing: {e}"),
                Err(_) => {
                    attempts += 1;
                    match Client::connect(&addr) {
                        Ok(c) => {
                            control = c;
                            control
                                .set_read_timeout(Duration::from_secs(2))
                                .expect("read timeout");
                        }
                        Err(_) => break,
                    }
                }
            }
        }
        let report = server_thread.join().expect("server thread");

        for (i, t) in sub_threads.into_iter().enumerate() {
            match t.join().expect("subscriber thread") {
                Some((nodes, updates)) => println!(
                    "subscriber {i} (nodes {nodes:?}): {} frames, digest {:016x}",
                    updates.len(),
                    sequence_digest(updates.iter()),
                ),
                None => println!("subscriber {i}: connection lost before the ack"),
            }
        }
        report
    });

    println!(
        "ledger: owed={} delivered={} shed={}",
        report.updates_owed, report.updates_delivered, report.updates_shed
    );
    if report.updates_delivered + report.updates_shed != report.updates_owed {
        eprintln!("FAIL: delivery ledger does not balance");
        std::process::exit(1);
    }
    println!("ledger balances exactly");
}
