//! `bench_gate` — the CI bench-regression gate.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [--max-ratio 3] [--min-ns 50000]
//! ```
//!
//! Compares a freshly measured `BENCH_*.json` (written by the benches'
//! `BenchGroup::render_json`) against the committed baseline and exits
//! non-zero when any matched case's median regressed by more than
//! `--max-ratio` while being above the `--min-ns` noise floor. Cases present
//! on only one side are reported but never fail the gate.

use rcw_bench::gate::{find_regressions, parse_bench_json, DEFAULT_MAX_RATIO, DEFAULT_MIN_NS};
use std::process::ExitCode;

fn run() -> Result<bool, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut max_ratio = DEFAULT_MAX_RATIO;
    let mut min_ns = DEFAULT_MIN_NS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--max-ratio" => {
                max_ratio = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r| r > 1.0)
                    .ok_or("--max-ratio needs a number > 1")?
            }
            "--min-ns" => {
                min_ns = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--min-ns needs a non-negative integer")?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: bench_gate <baseline.json> <fresh.json> [--max-ratio R] [--min-ns N]"
                        .to_string(),
                )
            }
            other => positional.push(other.to_string()),
        }
    }
    let [baseline_path, fresh_path] = positional.as_slice() else {
        return Err("expected exactly two files: <baseline.json> <fresh.json>".to_string());
    };

    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let baseline =
        parse_bench_json(&read(baseline_path)?).map_err(|e| format!("{baseline_path}: {e}"))?;
    let fresh = parse_bench_json(&read(fresh_path)?).map_err(|e| format!("{fresh_path}: {e}"))?;

    println!(
        "bench_gate: {} baseline vs {} fresh cases (max ratio {max_ratio}x, noise floor {min_ns}ns)",
        baseline.len(),
        fresh.len()
    );
    for fresh_case in &fresh {
        match baseline.iter().find(|b| b.name == fresh_case.name) {
            Some(base) if base.ns_per_iter > 0 => println!(
                "  {:<44} {:>12}ns -> {:>12}ns ({:.2}x)",
                fresh_case.name,
                base.ns_per_iter,
                fresh_case.ns_per_iter,
                fresh_case.ns_per_iter as f64 / base.ns_per_iter as f64
            ),
            _ => println!(
                "  {:<44} {:>12}    -> {:>12}ns (no baseline)",
                fresh_case.name, "-", fresh_case.ns_per_iter
            ),
        }
    }

    let regressions = find_regressions(&baseline, &fresh, max_ratio, min_ns);
    if regressions.is_empty() {
        println!("bench_gate: OK — no case regressed past {max_ratio}x");
        Ok(true)
    } else {
        eprintln!("bench_gate: FAIL — {} regression(s):", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        Ok(false)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench_gate: {message}");
            ExitCode::FAILURE
        }
    }
}
