//! Localized vs full-graph inference: single-node predict latency and
//! end-to-end witness generation.
//!
//! `GnnModel::predict` / `margin` now run on the node's induced receptive
//! field (`rcw_graph::Locality`); this bench pins the speedup against the
//! pre-PR behavior — a full-graph `logits` pass per single-node query —
//! reconstructed here by a wrapper model that overrides the localized
//! defaults. Results land in `BENCH_inference.json` (name, iters, ns/iter)
//! so the perf trajectory is tracked across PRs.

use rcw_bench::timing::BenchGroup;
use rcw_core::{RcwConfig, RoboGExp};
use rcw_datasets::{citeseer, Scale};
use rcw_gnn::model::margin_of_row;
use rcw_gnn::GnnModel;
use rcw_graph::{EdgeSet, ForwardCtx, GraphView, NodeId};
use rcw_linalg::{vector, Matrix};

/// The pre-PR inference path: every single-node query pays a full-graph
/// forward pass. Wraps any model and disables its localized defaults.
struct FullPass<'a>(&'a dyn GnnModel);

impl GnnModel for FullPass<'_> {
    fn num_classes(&self) -> usize {
        self.0.num_classes()
    }
    fn num_layers(&self) -> usize {
        self.0.num_layers()
    }
    fn feature_dim(&self) -> usize {
        self.0.feature_dim()
    }
    fn receptive_hops(&self) -> usize {
        self.0.receptive_hops()
    }
    fn forward(&self, ctx: &ForwardCtx<'_>, x: &Matrix) -> Matrix {
        self.0.forward(ctx, x)
    }
    fn predict(&self, v: NodeId, view: &GraphView<'_>) -> Option<usize> {
        if v >= view.num_nodes() {
            return None;
        }
        let z = self.0.logits(view);
        Some(vector::argmax(z.row(v)))
    }
    fn margin(&self, v: NodeId, label: usize, view: &GraphView<'_>) -> f64 {
        let z = self.0.logits(view);
        margin_of_row(z.row(v), label)
    }
}

fn main() {
    let samples = 5;
    let mut group = BenchGroup::new("inference: localized vs full-graph", samples);
    let mut generate_pairs: Vec<(String, f64, f64)> = Vec::new();

    for (scale, scale_name) in [(Scale::Tiny, "tiny"), (Scale::Small, "small")] {
        let ds = citeseer::build(scale, 7);
        let gcn = ds.train_gcn(24, 7);
        let full_path = FullPass(&gcn);
        let graph = &ds.graph;
        let test_nodes = ds.pick_test_nodes(4, 13);
        let probe = test_nodes[0];
        println!(
            "citeseer/{scale_name}: |V|={}, |E|={}, probe node {probe}",
            graph.num_nodes(),
            graph.num_edges()
        );

        // Single-node predict latency on a disturbed view (the verifier's
        // inner loop shape: a handful of overrides on the full graph).
        let flips: EdgeSet = graph.edge_vec().into_iter().step_by(9).take(6).collect();
        let disturbed = GraphView::full(graph).flipped(&flips);
        group.bench(format!("predict/{scale_name}/localized"), || {
            gcn.predict(probe, &disturbed)
        });
        group.bench(format!("predict/{scale_name}/full"), || {
            full_path.predict(probe, &disturbed)
        });

        // End-to-end witness generation, localized vs the pre-PR full path.
        let cfg = RcwConfig {
            k: 2,
            local_budget: 2,
            candidate_hops: 2,
            sampled_disturbances: 6,
            exhaustive_limit: 8,
            max_expand_rounds: 3,
            ..RcwConfig::default()
        };
        let localized_gen = RoboGExp::for_model(&gcn as &dyn GnnModel, cfg.clone());
        let fullpass_gen = RoboGExp::for_model(&full_path as &dyn GnnModel, cfg);
        group.bench(format!("generate/{scale_name}/localized"), || {
            localized_gen.generate(graph, &test_nodes).stats.elapsed
        });
        group.bench(format!("generate/{scale_name}/full"), || {
            fullpass_gen.generate(graph, &test_nodes).stats.elapsed
        });

        // one-shot speedup probe for the stdout summary
        let t0 = std::time::Instant::now();
        std::hint::black_box(localized_gen.generate(graph, &test_nodes));
        let local_s = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        std::hint::black_box(fullpass_gen.generate(graph, &test_nodes));
        let full_s = t1.elapsed().as_secs_f64();
        generate_pairs.push((scale_name.to_string(), local_s, full_s));
    }

    group.finish();
    for (name, local_s, full_s) in &generate_pairs {
        println!(
            "generate/{name}: localized {:.1}ms vs full {:.1}ms -> {:.1}x speedup",
            local_s * 1e3,
            full_s * 1e3,
            full_s / local_s
        );
    }
    // anchor at the workspace root so the record is stable across invokers
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_inference.json");
    group.write_json(path);
}
