//! Subscription fan-out: an in-process `RcwServer` with live witness
//! subscriptions, driven over real TCP by a seeded disturbance replay.
//!
//! Reported cases (medians land in `BENCH_subscribe.json`):
//! * `subscribe/ack_latency` — connect + `/subscribe` + ack frame for a
//!   warm (store-hit) node set;
//! * `fanout/p50|p99/update_latency` — wall-clock from issuing a
//!   `/disturb` to a subscriber holding an intersecting subscription
//!   having its `witness_update` frame in hand;
//! * `replay/ns_per_event` — mean service time per replay event (disturb
//!   round-trip plus stream drain) across the whole stream.
//!
//! The run also checks the delivery ledger balances exactly
//! (`delivered + shed == owed`) — a fan-out bench that loses frames would
//! be measuring the wrong thing.
//!
//! `RCW_BENCH_QUICK=1` shrinks the stream for the nightly smoke leg.

use rcw_bench::replay::{rebase_epochs, sequence_digest, ReplayPlan};
use rcw_bench::timing::BenchGroup;
use rcw_core::{RcwConfig, WitnessEngine};
use rcw_datasets::{citeseer, Scale};
use rcw_server::client::{Client, ClientError, SubscriptionStream};
use rcw_server::{RcwServer, ServerConfig};
use std::io::ErrorKind;
use std::sync::Arc;
use std::time::{Duration, Instant};

const HTTP_WORKERS: usize = 2;
const SUBSCRIBERS: usize = 4;

fn bench_cfg() -> RcwConfig {
    RcwConfig {
        k: 1,
        local_budget: 1,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::default()
    }
}

/// The server-wide owed counter, read off the versioned `/stats` payload.
fn owed_updates(client: &mut Client) -> u64 {
    let (status, body) = client.request("GET", "/stats", None).expect("stats");
    assert_eq!(status, 200);
    body.field("server")
        .expect("server counters")
        .field("updates_owed")
        .expect("owed counter on the wire")
        .as_u64()
        .expect("owed is a count")
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    sorted[(sorted.len() - 1) * p / 100]
}

fn main() {
    let quick = std::env::var("RCW_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let events: usize = if quick { 10 } else { 60 };
    let ack_samples: usize = if quick { 6 } else { 24 };

    let seed = 7u64;
    let ds = citeseer::build(Scale::Tiny, seed);
    let appnp = ds.train_appnp(8, seed);
    let graph = Arc::new(ds.graph.clone());
    let engine = WitnessEngine::new(Arc::clone(&graph), &appnp, bench_cfg());
    let plan = ReplayPlan::from_graph(&graph, seed, events, 2, Duration::ZERO);
    println!(
        "citeseer/tiny: |V|={}, |E|={}, {} http workers, {} subscribers, \
         {} replay events (digest {:016x}){}",
        graph.num_nodes(),
        graph.num_edges(),
        HTTP_WORKERS,
        SUBSCRIBERS,
        plan.events.len(),
        plan.digest(),
        if quick { " (quick)" } else { "" },
    );

    let mut group = BenchGroup::new("server: subscription fan-out", events);

    let server = RcwServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let config = ServerConfig::single(&engine)
        .with_workers(HTTP_WORKERS)
        .with_queue_bound(256);

    let (ack_lat, update_lat, per_event, delivered, report) = std::thread::scope(|scope| {
        let config_ref = &config;
        let server_thread = scope.spawn(move || server.serve_config(config_ref).expect("serve"));

        // Warm one node set, then time fresh connect+subscribe+ack cycles
        // against it — the steady ack path is a store hit behind the wire.
        let ack_nodes = ds.pick_test_nodes(2, seed + 50);
        let mut warmup = Client::connect(&addr).expect("connect");
        warmup.generate(&ack_nodes).expect("warm the store");
        let mut ack_lat: Vec<Duration> = (0..ack_samples)
            .map(|_| {
                let start = Instant::now();
                let sub = Client::connect(&addr)
                    .expect("connect")
                    .subscribe(&ack_nodes)
                    .expect("subscribe");
                let elapsed = start.elapsed();
                drop(sub);
                elapsed
            })
            .collect();
        ack_lat.sort_unstable();

        // The measured fleet: SUBSCRIBERS streams all watching the SAME
        // node set, so each intersecting disturbance owes exactly one
        // frame per stream and the read loop never waits on a stream that
        // has nothing coming.
        let fleet_nodes = ds.pick_test_nodes(2, seed + 100);
        let mut subs: Vec<SubscriptionStream> = (0..SUBSCRIBERS)
            .map(|_| {
                Client::connect(&addr)
                    .expect("connect")
                    .subscribe(&fleet_nodes)
                    .expect("subscribe")
            })
            .collect();
        for sub in &mut subs {
            // Safety net only: owed frames are flushed before the disturb
            // 200 lands, so a read that hits this timeout is a bug.
            sub.set_read_timeout(Some(Duration::from_secs(5)))
                .expect("read timeout");
        }
        let base_epoch = subs[0].epoch();

        // Replay: each event is one /disturb. The /stats owed delta says
        // how many frames each stream must produce (0 or 1 — one shared
        // entry), so the reads measure fan-out latency, not poll timeouts.
        let mut update_lat: Vec<Duration> = Vec::new();
        let mut per_event: Vec<Duration> = Vec::with_capacity(plan.events.len());
        let mut collected: Vec<rcw_server::wire::WitnessUpdate> = Vec::new();
        let mut owed_before = owed_updates(&mut warmup);
        for event in &plan.events {
            let start = Instant::now();
            warmup.disturb(&event.flips).expect("disturb");
            let owed_now = owed_updates(&mut warmup);
            let owed = owed_now - owed_before;
            owed_before = owed_now;
            assert_eq!(
                owed % SUBSCRIBERS as u64,
                0,
                "one shared entry: every stream is owed the same count"
            );
            let per_sub = owed / SUBSCRIBERS as u64;
            for sub in &mut subs {
                for _ in 0..per_sub {
                    match sub.next_update() {
                        Ok(Some(update)) => {
                            update_lat.push(start.elapsed());
                            collected.push(update);
                        }
                        Ok(None) => panic!("stream closed mid-bench"),
                        Err(ClientError::Io(e))
                            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
                        {
                            panic!("owed frame never arrived")
                        }
                        Err(e) => panic!("stream error: {e}"),
                    }
                }
            }
            per_event.push(start.elapsed());
        }
        update_lat.sort_unstable();

        warmup.shutdown().expect("shutdown");
        for mut sub in subs {
            // Drain the shutdown close so late frames still count.
            sub.set_read_timeout(None).expect("clear timeout");
            while let Ok(Some(update)) = sub.next_update() {
                collected.push(update);
            }
        }
        // Rebase epochs on the first ack so the printed digest is
        // comparable across runs (the engine epoch is process-global).
        rebase_epochs(base_epoch, &mut collected);
        let report = server_thread.join().expect("server thread");
        (ack_lat, update_lat, per_event, collected, report)
    });

    assert_eq!(
        report.updates_delivered + report.updates_shed,
        report.updates_owed,
        "delivery ledger must balance exactly"
    );
    assert_eq!(
        report.updates_delivered,
        delivered.len() as u64,
        "every delivered frame was read"
    );

    group.record(
        "subscribe/ack_latency",
        ack_lat.len(),
        percentile(&ack_lat, 50),
        ack_lat[0],
        *ack_lat.last().expect("ack samples"),
    );
    if !update_lat.is_empty() {
        let (p50, p99) = (percentile(&update_lat, 50), percentile(&update_lat, 99));
        group.record("fanout/p50/update_latency", update_lat.len(), p50, p50, p99);
        group.record("fanout/p99/update_latency", update_lat.len(), p99, p50, p99);
    }
    let mean_event = per_event.iter().sum::<Duration>() / per_event.len() as u32;
    group.record(
        "replay/ns_per_event",
        per_event.len(),
        mean_event,
        mean_event,
        mean_event,
    );

    println!(
        "ledger: owed={} delivered={} shed={}; received digest {:016x}\n",
        report.updates_owed,
        report.updates_delivered,
        report.updates_shed,
        sequence_digest(delivered.iter()),
    );

    group.finish();
    // anchor at the workspace root so the record is stable across invokers
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_subscribe.json");
    group.write_json(path);
}
