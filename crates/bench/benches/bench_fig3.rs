//! Bench for experiments E2/E3 (Fig. 3): explanation generation as the
//! disturbance budget k grows.

use rcw_bench::timing::BenchGroup;
use rcw_bench::{run_method, ExperimentContext, Method};
use rcw_datasets::Scale;

fn main() {
    let ctx = ExperimentContext::prepare("citeseer", Scale::Tiny, 3);
    let tests = ctx.dataset.pick_test_nodes(4, 13);
    let mut group = BenchGroup::new("fig3_vary_k", 10);
    for k in [1usize, 2, 4] {
        let cfg = ctx.rcw_config(k);
        group.bench(format!("RoboGExp/k={k}"), || {
            run_method(Method::RoboGExp, &ctx.gcn, &ctx.dataset.graph, &tests, &cfg)
        });
    }
    group.finish();
}
