//! Criterion bench for experiments E2/E3 (Fig. 3): explanation generation as
//! the disturbance budget k grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcw_bench::{run_method, ExperimentContext, Method};
use rcw_datasets::Scale;

fn bench_fig3(c: &mut Criterion) {
    let ctx = ExperimentContext::prepare("citeseer", Scale::Tiny, 3);
    let tests = ctx.dataset.pick_test_nodes(4, 13);
    let mut group = c.benchmark_group("fig3_vary_k");
    group.sample_size(10);
    for k in [1usize, 2, 4] {
        let cfg = ctx.rcw_config(k);
        group.bench_with_input(BenchmarkId::new("RoboGExp", k), &k, |b, _| {
            b.iter(|| run_method(Method::RoboGExp, &ctx.gcn, &ctx.dataset.graph, &tests, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
