//! Compute-kernel microbenchmarks: the SpMM and matmul hot loops behind every
//! forward pass, plus the localized-ball machinery they feed.
//!
//! Each vectorized kernel is benchmarked next to the retained scalar
//! reference (`*_deg_ref`, `matmul_reference`) so kernel-level regressions —
//! or a toolchain change that stops the autovectorizer from firing — show up
//! directly instead of being smeared across the end-to-end numbers. Results
//! land in `BENCH_kernels.json` (name, iters, ns/iter) and are enforced by
//! the CI bench-regression gate next to the other committed records.

use rcw_bench::timing::BenchGroup;
use rcw_gnn::{Gcn, GnnModel, KernelScratch};
use rcw_graph::generators::{ensure_connected, stochastic_block_model};
use rcw_graph::{BallScratch, Csr, CsrNorms, GraphView, Locality, NodeId};
use rcw_linalg::matrix::{matmul_packed_rows, matmul_pret_rows};
use rcw_linalg::{Matrix, PackedWeights, Rng};

/// A connected SBM graph with 4-dim features, deterministic in the seed.
fn sbm(blocks: &[usize], seed: u64) -> rcw_graph::Graph {
    let (mut g, membership) = stochastic_block_model(blocks, 0.25, 0.02, seed);
    ensure_connected(&mut g, seed.wrapping_add(3));
    for (v, &b) in membership.iter().enumerate() {
        let mut feats = vec![0.0; 4];
        feats[b % 4] = 1.0;
        g.set_features(v, feats);
        g.set_label(v, b % 3);
    }
    g
}

/// A dense random matrix with a sprinkling of exact zeros (the kernels skip
/// zero multiplicands, so the mix must resemble post-ReLU activations).
fn random_data(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.15) {
                0.0
            } else {
                rng.gen_f64() * 2.0 - 1.0
            }
        })
        .collect()
}

fn main() {
    let samples = 21;
    let mut group = BenchGroup::new("kernels: SpMM / matmul / localized balls", samples);

    // --- SpMM: vectorized cached kernels vs the scalar references ---------
    let g = sbm(&[160, 160, 160], 11);
    let view = GraphView::full(&g);
    let csr = Csr::from_view(&view);
    let norms = CsrNorms::from_csr(&csr);
    let n = csr.num_nodes();
    for dim in [4usize, 24] {
        let x = random_data(n * dim, 29 ^ dim as u64);
        let mut out = vec![0.0; n * dim];
        group.bench(format!("spmm/sym/d{dim}/vectorized"), || {
            csr.spmm_sym_norm_cached(&norms, &x, dim, &mut out, None);
            out[0]
        });
        group.bench(format!("spmm/sym/d{dim}/scalar_ref"), || {
            csr.spmm_sym_norm_deg_ref(norms.degrees(), &x, dim, &mut out, None);
            out[0]
        });
    }
    {
        let dim = 8usize;
        let x = random_data(n * dim, 31);
        let mut out = vec![0.0; n * dim];
        group.bench(format!("spmm/row/d{dim}/vectorized"), || {
            csr.spmm_row_norm_cached(&norms, &x, dim, &mut out, None);
            out[0]
        });
        group.bench(format!("spmm/row/d{dim}/scalar_ref"), || {
            csr.spmm_row_norm_deg_ref(norms.degrees(), &x, dim, &mut out, None);
            out[0]
        });
    }

    // --- Dense matmul: pre-transposed lane kernel vs the strided loop -----
    // The forward-pass shape: tall activation matrix times a small weight.
    let (rows, inner, cols) = (512usize, 24usize, 3usize);
    let a = Matrix::from_vec(rows, inner, random_data(rows * inner, 41));
    let w = Matrix::from_vec(inner, cols, random_data(inner * cols, 43));
    let wt = w.transpose();
    let pw = PackedWeights::pack(&w);
    let mut out = vec![0.0; rows * cols];
    group.bench("matmul/512x24x3/packed", || {
        out.fill(0.0);
        matmul_packed_rows(a.data(), inner, &pw, &mut out, None, false);
        out[0]
    });
    group.bench("matmul/512x24x3/pretransposed", || {
        out.fill(0.0);
        matmul_pret_rows(a.data(), inner, &wt, &mut out, None, false);
        out[0]
    });
    group.bench("matmul/512x24x3/reference", || a.matmul_reference(&w));
    // the models' actual layer-0 shape: wide sparse features into a hidden dim
    let (r2, i2, c2) = (512usize, 48usize, 24usize);
    let a2 = Matrix::from_vec(r2, i2, random_data(r2 * i2, 47));
    let w2 = Matrix::from_vec(i2, c2, random_data(i2 * c2, 49));
    let pw2 = PackedWeights::pack(&w2);
    let mut out2 = vec![0.0; r2 * c2];
    group.bench("matmul/512x48x24/packed", || {
        out2.fill(0.0);
        matmul_packed_rows(a2.data(), i2, &pw2, &mut out2, None, false);
        out2[0]
    });
    group.bench("matmul/512x48x24/reference", || a2.matmul_reference(&w2));

    // --- Localized balls: fresh build vs scratch-reusing rebuild ----------
    let probe: NodeId = n / 2;
    group.bench("locality/build/fresh", || {
        Locality::build(&view, probe, 2).nodes().len()
    });
    let mut ball = Locality::default();
    let mut bfs = BallScratch::default();
    group.bench("locality/rebuild/reused", || {
        ball.rebuild(&view, probe, 2, &mut bfs);
        ball.nodes().len()
    });

    // --- Candidate scoring: the session's expand-verify inner loop --------
    let gcn = Gcn::new(&[4, 16, 3], 5);
    let removals: Vec<(NodeId, NodeId)> = g
        .edge_vec()
        .into_iter()
        .filter(|&(u, v2)| u == probe || v2 == probe || u == probe + 1)
        .take(16)
        .collect();
    assert!(!removals.is_empty(), "probe node must have incident edges");
    let mut scratch = KernelScratch::default();
    group.bench("margin_many_removed/16-candidates", || {
        gcn.margin_many_removed_with(probe, 1, &view, &removals, &mut scratch)
            .len()
    });

    group.finish();
    // anchor at the workspace root so the record is stable across invokers
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    group.write_json(path);
}
