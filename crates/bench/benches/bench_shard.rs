//! Sharded-engine scaling: how generate and disturb costs move as the graph
//! is cut into more shards, against the CiteSeer stand-in.
//!
//! Shards answer queries on their halo subgraph, so per-session inference and
//! verification run over a fraction of the full graph; the benchmark tracks
//! that effect at 1, 2 and 4 shards for cold engines, warm steady state, and
//! disturb fan-out. Results land in `BENCH_shard.json` for the CI gate. Note
//! the scaling here is *work-per-query* scaling on one core — shard engines
//! are independent, so multi-core deployments additionally parallelize
//! across shards.

use rcw_bench::timing::BenchGroup;
use rcw_core::{RcwConfig, WitnessEngine};
use rcw_datasets::{citeseer, Scale};
use rcw_gnn::GnnModel;
use rcw_graph::{Disturbance, Edge};
use rcw_shard::{RoutePolicy, ShardedEngine};
use std::sync::Arc;
use std::time::Instant;

fn bench_cfg() -> RcwConfig {
    RcwConfig {
        k: 2,
        local_budget: 2,
        candidate_hops: 2,
        sampled_disturbances: 6,
        exhaustive_limit: 8,
        max_expand_rounds: 3,
        ..RcwConfig::default()
    }
}

fn main() {
    let samples = 5;
    let mut group = BenchGroup::new("shard: scaling with shard count", samples);

    let ds = citeseer::build(Scale::Small, 7);
    let gcn = ds.train_gcn(24, 7);
    let model = &gcn as &dyn GnnModel;
    let graph = Arc::new(ds.graph.clone());
    let cfg = bench_cfg();
    let halo = RoutePolicy::for_model(model, &cfg).ball_radius;
    let queries: Vec<Vec<usize>> = ds
        .pick_test_nodes(8, 13)
        .into_iter()
        .map(|t| vec![t])
        .collect();
    println!(
        "citeseer/small: |V|={}, |E|={}, halo L={halo}, {} single-node queries",
        graph.num_nodes(),
        graph.num_edges(),
        queries.len()
    );

    let mut warm_ns: Vec<(usize, f64)> = Vec::new();
    for shards in [1usize, 2, 4] {
        // Cold: fresh sharded engine (partition + halo extraction included),
        // then the full query set generated from scratch.
        group.bench(format!("generate/{shards}-shards/cold"), || {
            let engine = ShardedEngine::new(Arc::clone(&graph), model, cfg.clone(), shards, halo);
            let mut calls = 0usize;
            for q in &queries {
                calls += engine.generate(q).stats.inference_calls;
            }
            calls
        });

        // Warm steady state on a persistent engine.
        let engine = ShardedEngine::new(Arc::clone(&graph), model, cfg.clone(), shards, halo);
        for q in &queries {
            engine.generate(q);
        }
        group.bench(format!("generate/{shards}-shards/warm"), || {
            let mut nontrivial = 0usize;
            for q in &queries {
                nontrivial += engine.generate(q).nontrivial as usize;
            }
            nontrivial
        });
        let t = Instant::now();
        for q in &queries {
            std::hint::black_box(engine.generate(q));
        }
        warm_ns.push((shards, t.elapsed().as_nanos() as f64));

        // Disturb fan-out: toggle one intra-fragment edge back and forth so
        // every sample sees the same graph. Each engine covering the edge
        // applies the flip and repairs its stored witnesses.
        let plan = engine.plan();
        let flip: Edge = graph
            .edges()
            .find(|&(u, v)| plan.partition.owner[u] == plan.partition.owner[v])
            .expect("an intra-fragment edge exists");
        let d = [Disturbance::from_pairs([flip])];
        group.bench(format!("disturb/{shards}-shards/fanout-repair"), || {
            let report = engine.disturb(&d);
            report.flips_applied
        });

        let stats = engine.shard_stats();
        println!(
            "{shards} shards: routed {} / escaped {} of {} queries",
            stats.routed, stats.halo_escapes, stats.queries
        );
    }

    // Reference point: the pre-shard single WitnessEngine on the full graph.
    let single = WitnessEngine::new(Arc::clone(&graph), model, cfg.clone());
    for q in &queries {
        single.generate(q);
    }
    group.bench("generate/single-engine/warm", || {
        let mut nontrivial = 0usize;
        for q in &queries {
            nontrivial += single.generate(q).nontrivial as usize;
        }
        nontrivial
    });

    group.finish();
    if let (Some((_, one)), Some((_, four))) = (
        warm_ns.iter().find(|(s, _)| *s == 1),
        warm_ns.iter().find(|(s, _)| *s == 4),
    ) {
        println!(
            "warm-throughput scaling: 4 shards vs 1 shard = {:.2}x (one core; shards also parallelize across cores)",
            one / four.max(1.0)
        );
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    group.write_json(path);
}
