//! Serving-layer throughput and latency: an in-process `RcwServer` fronting
//! a warm `WitnessEngine`, driven over real TCP by the blocking client.
//!
//! Reported cases (medians land in `BENCH_server.json`):
//! * `latency/p50|p99/warm_generate` — per-request wall-clock of a single
//!   kept-alive client issuing warm (store-hit) `/generate` queries;
//! * `saturation/ns_per_request` — mean service time per request when
//!   2× the pool size of concurrent clients hammer the server (the inverse
//!   of saturation throughput; the printed summary shows requests/s);
//! * `mixed/latency/p50|p99/warm_generate` and
//!   `mixed/saturation/ns_per_request` — the same two measurements while
//!   background clients stream always-fresh (cold) queries that run full
//!   expand-verify sessions, so the numbers show how well short warm hits
//!   interleave with long sessions through the admission scheduler. Only
//!   warm requests are timed/counted; the cold stream is load, not signal.
//!
//! `RCW_BENCH_QUICK=1` shrinks the sample counts for the nightly mixed-load
//! smoke leg (bounded wall-clock, same code paths).

use rcw_bench::timing::{format_duration, BenchGroup};
use rcw_core::{RcwConfig, WitnessEngine};
use rcw_datasets::{citeseer, Dataset, Scale};
use rcw_server::client::Client;
use rcw_server::{RcwServer, ServerConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const HTTP_WORKERS: usize = 4;
const SATURATION_CLIENTS: usize = 2 * HTTP_WORKERS;
/// Background cold-traffic clients for the `mixed/*` cases.
const COLD_CLIENTS: usize = 2;

fn bench_cfg() -> RcwConfig {
    RcwConfig {
        k: 2,
        local_budget: 2,
        candidate_hops: 2,
        sampled_disturbances: 6,
        exhaustive_limit: 8,
        max_expand_rounds: 3,
        ..RcwConfig::default()
    }
}

/// One warm-latency distribution over a kept-alive connection: issues
/// `samples` store-hit generates and returns `(p50, p99)`.
fn warm_latency(
    client: &mut Client,
    queries: &[Vec<usize>],
    samples: usize,
) -> (Duration, Duration) {
    let mut latencies: Vec<Duration> = Vec::with_capacity(samples);
    for i in 0..samples {
        let nodes = &queries[i % queries.len()];
        let start = Instant::now();
        client.generate(nodes).expect("warm generate");
        latencies.push(start.elapsed());
    }
    latencies.sort_unstable();
    (
        latencies[latencies.len() / 2],
        latencies[latencies.len() * 99 / 100],
    )
}

/// Saturation sweep: `SATURATION_CLIENTS` concurrent connections each issue
/// `per_client` warm requests; returns `(ns_per_request, requests_per_sec)`
/// over the wall-clock window. Only these warm requests are counted — any
/// concurrent cold traffic is extra load on the same pool. The drivers send
/// prebuilt bodies and only status-check the answers (`generate_text`):
/// response decoding is harness work, and on a shared core it would steal
/// the very cycles being measured.
fn warm_saturation(addr: &str, queries: &[Vec<usize>], per_client: usize) -> (u64, f64) {
    let bodies: Vec<String> = queries
        .iter()
        .map(|nodes| {
            let list: Vec<String> = nodes.iter().map(|n| n.to_string()).collect();
            format!("{{\"v\":1,\"nodes\":[{}]}}", list.join(","))
        })
        .collect();
    let start = Instant::now();
    std::thread::scope(|clients| {
        for c in 0..SATURATION_CLIENTS {
            let bodies = &bodies;
            clients.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..per_client {
                    let body = &bodies[(c + i) % bodies.len()];
                    let (status, text) = client.generate_text(body).expect("saturation generate");
                    assert_eq!(status, 200, "saturation generate failed: {text}");
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let total = SATURATION_CLIENTS * per_client;
    (
        elapsed.as_nanos() as u64 / total as u64,
        total as f64 / elapsed.as_secs_f64(),
    )
}

/// Cold-traffic loop: every request queries an always-fresh node set (a new
/// seed per request), so each one misses the store and runs a full
/// expand-verify session. Returns how many it served before `stop`.
fn cold_stream(addr: &str, ds: &Dataset, seed: &AtomicU64, stop: &AtomicBool) -> usize {
    let mut client = Client::connect(addr).expect("connect cold");
    let mut served = 0usize;
    while !stop.load(Ordering::Relaxed) {
        let nodes = ds.pick_test_nodes(2, seed.fetch_add(1, Ordering::Relaxed));
        client.generate(&nodes).expect("cold generate");
        served += 1;
    }
    served
}

fn main() {
    // The nightly mixed-load smoke leg runs the same code paths on a bounded
    // budget; the committed baseline always comes from a full run.
    let quick = std::env::var("RCW_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let latency_samples: usize = if quick { 60 } else { 600 };
    let requests_per_client: usize = if quick { 40 } else { 400 };

    let mut group = BenchGroup::new("server: latency and saturation throughput", latency_samples);

    let ds = citeseer::build(Scale::Tiny, 7);
    let gcn = ds.train_gcn(24, 7);
    let graph = Arc::new(ds.graph.clone());
    let engine = WitnessEngine::new(Arc::clone(&graph), &gcn, bench_cfg());
    println!(
        "citeseer/tiny: |V|={}, |E|={}, {} http workers, {} saturation clients, {} cold clients{}",
        graph.num_nodes(),
        graph.num_edges(),
        HTTP_WORKERS,
        SATURATION_CLIENTS,
        COLD_CLIENTS,
        if quick { " (quick)" } else { "" },
    );

    // A small working set of distinct queries, warmed once so every timed
    // request is the steady serving state: a store hit behind the wire.
    let queries: Vec<Vec<usize>> = (0..8)
        .map(|i| ds.pick_test_nodes(2, 31 + i as u64))
        .collect();

    let server = RcwServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let config = ServerConfig::single(&engine)
        .with_workers(HTTP_WORKERS)
        .with_queue_bound(1024);

    let (warm, mixed, cold_served, batches_formed) = std::thread::scope(|scope| {
        let config_ref = &config;
        let server_thread = scope.spawn(move || server.serve_config(config_ref).expect("serve"));

        let mut warmup = Client::connect(&addr).expect("connect");
        for nodes in &queries {
            warmup.generate(nodes).expect("warm the store");
        }

        // Warm-only baseline: latency distribution, then saturation.
        let (p50, p99) = warm_latency(&mut warmup, &queries, latency_samples);
        let (sat_ns, rps) = warm_saturation(&addr, &queries, requests_per_client);

        // Mixed load: cold clients stream always-fresh queries (full
        // sessions) for the whole window while the same two warm
        // measurements repeat. No disturbances here — cold traffic must not
        // stale the warm working set, or the warm numbers would measure
        // repair instead of interleaving.
        let stop = AtomicBool::new(false);
        let cold_seed = AtomicU64::new(10_000);
        let (m_p50, m_p99, m_sat_ns, m_rps, cold_served) = std::thread::scope(|mixed| {
            let cold_threads: Vec<_> = (0..COLD_CLIENTS)
                .map(|_| {
                    let (addr, ds, seed, stop) = (&addr, &ds, &cold_seed, &stop);
                    mixed.spawn(move || cold_stream(addr, ds, seed, stop))
                })
                .collect();

            let (m_p50, m_p99) = warm_latency(&mut warmup, &queries, latency_samples);
            let (m_sat_ns, m_rps) = warm_saturation(&addr, &queries, requests_per_client);

            stop.store(true, Ordering::Relaxed);
            let cold_served: usize = cold_threads
                .into_iter()
                .map(|t| t.join().expect("cold client"))
                .sum();
            (m_p50, m_p99, m_sat_ns, m_rps, cold_served)
        });

        warmup.shutdown().expect("shutdown");
        let report = server_thread.join().expect("server thread");
        assert_eq!(report.overloaded, 0, "bench must not shed under this queue");
        (
            (p50, p99, sat_ns, rps),
            (m_p50, m_p99, m_sat_ns, m_rps),
            cold_served,
            report.batches_formed,
        )
    });

    let (p50, p99, sat_ns, rps) = warm;
    let (m_p50, m_p99, m_sat_ns, m_rps) = mixed;
    let warm_total = SATURATION_CLIENTS * requests_per_client;

    group.record("latency/p50/warm_generate", latency_samples, p50, p50, p99);
    group.record("latency/p99/warm_generate", latency_samples, p99, p50, p99);
    let sat = Duration::from_nanos(sat_ns);
    group.record("saturation/ns_per_request", warm_total, sat, sat, sat);
    group.record(
        "mixed/latency/p50/warm_generate",
        latency_samples,
        m_p50,
        m_p50,
        m_p99,
    );
    group.record(
        "mixed/latency/p99/warm_generate",
        latency_samples,
        m_p99,
        m_p50,
        m_p99,
    );
    let m_sat = Duration::from_nanos(m_sat_ns);
    group.record(
        "mixed/saturation/ns_per_request",
        warm_total,
        m_sat,
        m_sat,
        m_sat,
    );

    println!(
        "warm saturation:  {rps:.0} req/s over {SATURATION_CLIENTS} clients ({} per request)",
        format_duration(sat),
    );
    println!(
        "mixed saturation: {m_rps:.0} req/s warm over {SATURATION_CLIENTS} clients \
         ({} per request) with {COLD_CLIENTS} cold clients serving {cold_served} sessions",
        format_duration(m_sat),
    );
    println!("micro-batches formed across the run: {batches_formed}\n");

    group.finish();
    group.write_json("BENCH_server.json");
}
