//! Serving-layer throughput and latency: an in-process `RcwServer` fronting
//! a warm `WitnessEngine`, driven over real TCP by the blocking client.
//!
//! Reported cases (medians land in `BENCH_server.json`):
//! * `latency/p50|p99/warm_generate` — per-request wall-clock of a single
//!   kept-alive client issuing warm (store-hit) `/generate` queries;
//! * `saturation/ns_per_request` — mean service time per request when
//!   2× the pool size of concurrent clients hammer the server (the inverse
//!   of saturation throughput; the printed summary shows requests/s).

use rcw_bench::timing::{format_duration, BenchGroup};
use rcw_core::{RcwConfig, WitnessEngine};
use rcw_datasets::{citeseer, Scale};
use rcw_server::client::Client;
use rcw_server::{RcwServer, ServerConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const HTTP_WORKERS: usize = 4;
const LATENCY_SAMPLES: usize = 600;
const SATURATION_CLIENTS: usize = 2 * HTTP_WORKERS;
const REQUESTS_PER_CLIENT: usize = 400;

fn bench_cfg() -> RcwConfig {
    RcwConfig {
        k: 2,
        local_budget: 2,
        candidate_hops: 2,
        sampled_disturbances: 6,
        exhaustive_limit: 8,
        max_expand_rounds: 3,
        ..RcwConfig::default()
    }
}

fn main() {
    let mut group = BenchGroup::new("server: latency and saturation throughput", LATENCY_SAMPLES);

    let ds = citeseer::build(Scale::Tiny, 7);
    let gcn = ds.train_gcn(24, 7);
    let graph = Arc::new(ds.graph.clone());
    let engine = WitnessEngine::new(Arc::clone(&graph), &gcn, bench_cfg());
    println!(
        "citeseer/tiny: |V|={}, |E|={}, {} http workers, {} saturation clients",
        graph.num_nodes(),
        graph.num_edges(),
        HTTP_WORKERS,
        SATURATION_CLIENTS,
    );

    // A small working set of distinct queries, warmed once so every timed
    // request is the steady serving state: a store hit behind the wire.
    let queries: Vec<Vec<usize>> = (0..8)
        .map(|i| ds.pick_test_nodes(2, 31 + i as u64))
        .collect();

    let server = RcwServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let config = ServerConfig::single(&engine)
        .with_workers(HTTP_WORKERS)
        .with_queue_bound(1024);

    let (p50, p99, saturation_ns, rps) = std::thread::scope(|scope| {
        let config_ref = &config;
        let server_thread = scope.spawn(move || server.serve_config(config_ref).expect("serve"));

        let mut warmup = Client::connect(&addr).expect("connect");
        for nodes in &queries {
            warmup.generate(nodes).expect("warm the store");
        }

        // Warm-generate latency distribution over one kept-alive connection.
        let mut latencies: Vec<Duration> = Vec::with_capacity(LATENCY_SAMPLES);
        for i in 0..LATENCY_SAMPLES {
            let nodes = &queries[i % queries.len()];
            let start = Instant::now();
            warmup.generate(nodes).expect("warm generate");
            latencies.push(start.elapsed());
        }
        latencies.sort_unstable();
        let p50 = latencies[latencies.len() / 2];
        let p99 = latencies[latencies.len() * 99 / 100];

        // Saturation: 2x the pool size of concurrent clients, each issuing a
        // fixed number of warm requests; throughput is total requests over
        // the wall-clock window.
        let sat_start = Instant::now();
        std::thread::scope(|clients| {
            for c in 0..SATURATION_CLIENTS {
                let addr = &addr;
                let queries = &queries;
                clients.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for i in 0..REQUESTS_PER_CLIENT {
                        let nodes = &queries[(c + i) % queries.len()];
                        client.generate(nodes).expect("saturation generate");
                    }
                });
            }
        });
        let sat_elapsed = sat_start.elapsed();
        let total_requests = SATURATION_CLIENTS * REQUESTS_PER_CLIENT;
        let saturation_ns = sat_elapsed.as_nanos() as u64 / total_requests as u64;
        let rps = total_requests as f64 / sat_elapsed.as_secs_f64();

        warmup.shutdown().expect("shutdown");
        let report = server_thread.join().expect("server thread");
        assert_eq!(report.overloaded, 0, "bench must not shed under this queue");
        (p50, p99, saturation_ns, rps)
    });

    group.record("latency/p50/warm_generate", LATENCY_SAMPLES, p50, p50, p99);
    group.record("latency/p99/warm_generate", LATENCY_SAMPLES, p99, p50, p99);
    let sat = Duration::from_nanos(saturation_ns);
    group.record(
        "saturation/ns_per_request",
        SATURATION_CLIENTS * REQUESTS_PER_CLIENT,
        sat,
        sat,
        sat,
    );
    println!(
        "saturation throughput: {rps:.0} req/s over {} clients ({} per request)\n",
        SATURATION_CLIENTS,
        format_duration(sat),
    );

    group.finish();
    group.write_json("BENCH_server.json");
}
