//! Ablation A2: exact dense personalized PageRank vs the iterative row/value
//! computations used inside the verifier.

use rcw_bench::timing::BenchGroup;
use rcw_datasets::{citeseer, Scale};
use rcw_graph::{Csr, GraphView};
use rcw_pagerank::{ppr_matrix_exact, ppr_row, value_function};

fn main() {
    let ds = citeseer::build(Scale::Tiny, 3);
    let view = GraphView::full(&ds.graph);
    let csr = Csr::from_view(&view);
    let n = ds.graph.num_nodes();
    let r: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();

    let mut group = BenchGroup::new("ablation_ppr", 10);
    group.bench("exact_dense_matrix", || ppr_matrix_exact(&view, 0.15));
    for iters in [20usize, 50] {
        group.bench(format!("iterative_row/{iters}"), || {
            ppr_row(&csr, 0, 0.15, iters)
        });
        group.bench(format!("iterative_value_function/{iters}"), || {
            value_function(&csr, &r, 0.15, iters)
        });
    }
    group.finish();
}
