//! Ablation A2: exact dense personalized PageRank vs the iterative row/value
//! computations used inside the verifier.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcw_datasets::{citeseer, Scale};
use rcw_graph::{Csr, GraphView};
use rcw_pagerank::{ppr_matrix_exact, ppr_row, value_function};

fn bench_ppr(c: &mut Criterion) {
    let ds = citeseer::build(Scale::Tiny, 3);
    let view = GraphView::full(&ds.graph);
    let csr = Csr::from_view(&view);
    let n = ds.graph.num_nodes();
    let r: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();

    let mut group = c.benchmark_group("ablation_ppr");
    group.sample_size(10);
    group.bench_function("exact_dense_matrix", |b| {
        b.iter(|| ppr_matrix_exact(&view, 0.15))
    });
    for iters in [20usize, 50] {
        group.bench_with_input(BenchmarkId::new("iterative_row", iters), &iters, |b, &it| {
            b.iter(|| ppr_row(&csr, 0, 0.15, it))
        });
        group.bench_with_input(
            BenchmarkId::new("iterative_value_function", iters),
            &iters,
            |b, &it| b.iter(|| value_function(&csr, &r, 0.15, it)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ppr);
criterion_main!(benches);
