//! Ablation A1: policy-iteration (PRI) disturbance search vs exhaustive
//! enumeration of (k, b)-disturbances, as the candidate set grows.

use rcw_bench::timing::BenchGroup;
use rcw_datasets::{citeseer, Scale};
use rcw_graph::disturbance::enumerate_disturbances_up_to;
use rcw_graph::GraphView;
use rcw_pagerank::{pri_search, PriConfig};

fn main() {
    let ds = citeseer::build(Scale::Tiny, 3);
    let appnp = ds.train_appnp(16, 1);
    let view = GraphView::full(&ds.graph);
    let h = appnp.local_logits(&view);
    let v = ds.test_pool[0];
    let r: Vec<f64> = (0..ds.graph.num_nodes())
        .map(|u| h.get(u, 1) - h.get(u, 0))
        .collect();
    let edges = ds.graph.edge_vec();

    let mut group = BenchGroup::new("ablation_pri", 10);
    for n_candidates in [6usize, 10, 16] {
        let candidates = &edges[..n_candidates.min(edges.len())];
        let cfg = PriConfig {
            alpha: appnp.alpha(),
            local_budget: 2,
            max_rounds: 6,
            value_iters: 30,
        };
        group.bench(format!("pri_greedy/{n_candidates}"), || {
            pri_search(&view, candidates, &r, v, &cfg)
        });
        group.bench(format!("exhaustive_enumeration/{n_candidates}"), || {
            enumerate_disturbances_up_to(candidates, 3).len()
        });
    }
    group.finish();
}
