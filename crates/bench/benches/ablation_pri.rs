//! Ablation A1: policy-iteration (PRI) disturbance search vs exhaustive
//! enumeration of (k, b)-disturbances, as the candidate set grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcw_datasets::{citeseer, Scale};
use rcw_graph::disturbance::enumerate_disturbances_up_to;
use rcw_graph::GraphView;
use rcw_pagerank::{pri_search, PriConfig};

fn bench_pri_vs_exhaustive(c: &mut Criterion) {
    let ds = citeseer::build(Scale::Tiny, 3);
    let appnp = ds.train_appnp(16, 1);
    let view = GraphView::full(&ds.graph);
    let h = appnp.local_logits(&view);
    let v = ds.test_pool[0];
    let r: Vec<f64> = (0..ds.graph.num_nodes())
        .map(|u| h.get(u, 1) - h.get(u, 0))
        .collect();
    let edges = ds.graph.edge_vec();

    let mut group = c.benchmark_group("ablation_pri");
    group.sample_size(10);
    for n_candidates in [6usize, 10, 16] {
        let candidates = &edges[..n_candidates.min(edges.len())];
        group.bench_with_input(BenchmarkId::new("pri_greedy", n_candidates), &(), |b, _| {
            let cfg = PriConfig {
                alpha: appnp.alpha(),
                local_budget: 2,
                max_rounds: 6,
                value_iters: 30,
            };
            b.iter(|| pri_search(&view, candidates, &r, v, &cfg))
        });
        group.bench_with_input(
            BenchmarkId::new("exhaustive_enumeration", n_candidates),
            &(),
            |b, _| b.iter(|| enumerate_disturbances_up_to(candidates, 3).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pri_vs_exhaustive);
criterion_main!(benches);
