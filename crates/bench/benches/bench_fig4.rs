//! Bench for experiments E4–E7 (Fig. 4): generation time per method and
//! paraRoboGExp thread scaling.

use rcw_bench::timing::BenchGroup;
use rcw_bench::{run_method, ExperimentContext, Method};
use rcw_core::ParaRoboGExp;
use rcw_datasets::Scale;

fn main() {
    let ctx = ExperimentContext::prepare("citeseer", Scale::Tiny, 3);
    let tests = ctx.dataset.pick_test_nodes(4, 13);
    let cfg = ctx.rcw_config(2);
    let mut group = BenchGroup::new("fig4a_generation_time", 10);
    for method in Method::all() {
        group.bench(method.name(), || {
            run_method(method, &ctx.gcn, &ctx.dataset.graph, &tests, &cfg)
        });
    }
    group.finish();

    let ctx = ExperimentContext::prepare("reddit", Scale::Tiny, 3);
    let tests = ctx.dataset.pick_test_nodes(3, 13);
    let mut group = BenchGroup::new("fig4d_parallel_scaling", 10);
    for workers in [1usize, 2, 4] {
        let cfg = ctx.rcw_config(2);
        group.bench(format!("workers/{workers}"), || {
            ParaRoboGExp::for_appnp(&ctx.appnp, cfg.clone(), workers)
                .generate(&ctx.dataset.graph, &tests)
        });
    }
    group.finish();
}
