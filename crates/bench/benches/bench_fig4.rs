//! Bench for experiments E4–E7 (Fig. 4): generation time per method and
//! paraRoboGExp thread scaling.

use rcw_bench::timing::BenchGroup;
use rcw_bench::{run_method, ExperimentContext, Method};
use rcw_core::ParaRoboGExp;
use rcw_datasets::Scale;

fn main() {
    let ctx = ExperimentContext::prepare("citeseer", Scale::Tiny, 3);
    let tests = ctx.dataset.pick_test_nodes(4, 13);
    let cfg = ctx.rcw_config(2);
    let mut group = BenchGroup::new("fig4a_generation_time", 10);
    for method in Method::all() {
        group.bench(method.name(), || {
            run_method(method, &ctx.gcn, &ctx.dataset.graph, &tests, &cfg)
        });
    }
    group.finish();

    // CI runs the tiny scale; `RCW_FIG4_SCALE=full` reproduces the
    // parallel-scaling table recorded in the README (§ experiments).
    let (scale, samples) = match std::env::var("RCW_FIG4_SCALE").as_deref() {
        Ok("full") => (Scale::Full, 3),
        Ok("small") => (Scale::Small, 5),
        _ => (Scale::Tiny, 10),
    };
    let ctx = ExperimentContext::prepare("reddit", scale, 3);
    let tests = ctx.dataset.pick_test_nodes(3, 13);
    let mut group = BenchGroup::new("fig4d_parallel_scaling", samples);
    for workers in [1usize, 2, 4] {
        let cfg = ctx.rcw_config(2);
        group.bench(format!("workers/{workers}"), || {
            ParaRoboGExp::for_appnp(&ctx.appnp, cfg.clone(), workers)
                .generate(&ctx.dataset.graph, &tests)
        });
    }
    group.finish();
}
