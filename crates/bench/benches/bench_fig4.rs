//! Criterion bench for experiments E4–E7 (Fig. 4): generation time per method
//! and paraRoboGExp thread scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcw_bench::{run_method, ExperimentContext, Method};
use rcw_core::ParaRoboGExp;
use rcw_datasets::Scale;

fn bench_methods(c: &mut Criterion) {
    let ctx = ExperimentContext::prepare("citeseer", Scale::Tiny, 3);
    let tests = ctx.dataset.pick_test_nodes(4, 13);
    let cfg = ctx.rcw_config(2);
    let mut group = c.benchmark_group("fig4a_generation_time");
    group.sample_size(10);
    for method in Method::all() {
        group.bench_function(method.name(), |b| {
            b.iter(|| run_method(method, &ctx.gcn, &ctx.dataset.graph, &tests, &cfg))
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let ctx = ExperimentContext::prepare("reddit", Scale::Tiny, 3);
    let tests = ctx.dataset.pick_test_nodes(3, 13);
    let mut group = c.benchmark_group("fig4d_parallel_scaling");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let cfg = ctx.rcw_config(2);
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| ParaRoboGExp::for_appnp(&ctx.appnp, cfg.clone(), w).generate(&ctx.dataset.graph, &tests))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_parallel);
criterion_main!(benches);
