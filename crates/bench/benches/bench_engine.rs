//! Session-oriented engine throughput: cold one-shot calls vs warm
//! steady-state queries against a long-lived [`WitnessEngine`], and witness
//! repair after a small disturbance vs full regeneration.
//!
//! Results land in `BENCH_engine.json` (name, iters, ns/iter) so the serving
//! trajectory is tracked across PRs alongside `BENCH_inference.json`.

use rcw_bench::timing::BenchGroup;
use rcw_core::{RcwConfig, RoboGExp, WitnessEngine};
use rcw_datasets::{citeseer, Scale};
use rcw_gnn::GnnModel;
use rcw_graph::{traversal::k_hop_neighborhood_multi, Disturbance, Edge};
use std::sync::Arc;
use std::time::Instant;

fn bench_cfg() -> RcwConfig {
    RcwConfig {
        k: 2,
        local_budget: 2,
        candidate_hops: 2,
        sampled_disturbances: 6,
        exhaustive_limit: 8,
        max_expand_rounds: 3,
        ..RcwConfig::default()
    }
}

fn main() {
    let samples = 5;
    let mut group = BenchGroup::new("engine: warm sessions and repair", samples);
    let mut summaries: Vec<String> = Vec::new();

    for (scale, scale_name) in [(Scale::Tiny, "tiny"), (Scale::Small, "small")] {
        let ds = citeseer::build(scale, 7);
        let gcn = ds.train_gcn(24, 7);
        let model = &gcn as &dyn GnnModel;
        let graph = Arc::new(ds.graph.clone());
        let tests = ds.pick_test_nodes(4, 13);
        let cfg = bench_cfg();
        println!(
            "citeseer/{scale_name}: |V|={}, |E|={}, {} test nodes",
            graph.num_nodes(),
            graph.num_edges(),
            tests.len()
        );

        // Cold: a fresh engine per call — the pre-engine one-shot cost
        // (cache build + full expand–verify search every time).
        group.bench(format!("generate/{scale_name}/cold"), || {
            let engine = WitnessEngine::new(Arc::clone(&graph), model, cfg.clone());
            engine.generate(&tests).stats.inference_calls
        });

        // Warm steady state: a persistent engine answering the same query.
        let engine = WitnessEngine::new(Arc::clone(&graph), model, cfg.clone());
        engine.generate(&tests);
        group.bench(format!("generate/{scale_name}/warm"), || {
            engine.generate(&tests).level
        });

        // Repair vs regenerate after a small disturbance. The disturbance
        // toggles one unprotected edge *inside* the test nodes' candidate
        // region, so every repair round actually re-verifies rather than
        // skipping on a disjoint footprint.
        let witness = engine
            .stored(&tests)
            .expect("witness stored by the warm run")
            .witness
            .clone();
        let hood = k_hop_neighborhood_multi(&graph, &tests, cfg.candidate_hops);
        let flip: Edge = graph
            .edges()
            .find(|&(u, v)| {
                hood.contains(&u) && hood.contains(&v) && !witness.subgraph.contains_edge(u, v)
            })
            .expect("an unprotected edge near the test nodes exists");
        let d = Disturbance::from_pairs([flip]);
        group.bench(format!("repair/{scale_name}/disturb-repair"), || {
            let report = engine.disturb(std::slice::from_ref(&d));
            report.reverified + report.repaired + report.untouched
        });
        let disturbed = d.apply(&graph);
        group.bench(format!("repair/{scale_name}/regenerate"), || {
            RoboGExp::for_model(model, cfg.clone())
                .generate(&disturbed, &tests)
                .stats
                .inference_calls
        });

        // One-shot speedup probes for the stdout summary.
        let t0 = Instant::now();
        let cold_engine = WitnessEngine::new(Arc::clone(&graph), model, cfg.clone());
        std::hint::black_box(cold_engine.generate(&tests));
        let cold_s = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        std::hint::black_box(engine.generate(&tests));
        let warm_s = t1.elapsed().as_secs_f64();
        let t2 = Instant::now();
        std::hint::black_box(engine.disturb(std::slice::from_ref(&d)));
        let repair_s = t2.elapsed().as_secs_f64();
        let t3 = Instant::now();
        std::hint::black_box(RoboGExp::for_model(model, cfg.clone()).generate(&disturbed, &tests));
        let regen_s = t3.elapsed().as_secs_f64();
        summaries.push(format!(
            "{scale_name}: cold {:.2}ms vs warm {:.4}ms -> {:.0}x; repair {:.2}ms vs regenerate {:.2}ms -> {:.1}x",
            cold_s * 1e3,
            warm_s * 1e3,
            cold_s / warm_s.max(1e-9),
            repair_s * 1e3,
            regen_s * 1e3,
            regen_s / repair_s.max(1e-9),
        ));
    }

    group.finish();
    for line in &summaries {
        println!("{line}");
    }
    // anchor at the workspace root so the record is stable across invokers
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    group.write_json(path);
}
