//! Bench for experiment E1 (Table III): end-to-end explanation generation
//! quality pipeline on the CiteSeer-like dataset at test scale.

use rcw_bench::timing::BenchGroup;
use rcw_bench::{evaluate_method, ExperimentContext, Method};
use rcw_datasets::Scale;

fn main() {
    let ctx = ExperimentContext::prepare("citeseer", Scale::Tiny, 3);
    let tests = ctx.dataset.pick_test_nodes(4, 13);
    let cfg = ctx.rcw_config(3);
    let mut group = BenchGroup::new("table3_quality", 10);
    for method in Method::all() {
        group.bench(method.name(), || {
            evaluate_method(method, &ctx.gcn, &ctx.dataset.graph, &tests, &cfg)
        });
    }
    group.finish();
}
