//! Criterion bench for experiment E1 (Table III): end-to-end explanation
//! generation quality pipeline on the CiteSeer-like dataset at test scale.

use criterion::{criterion_group, criterion_main, Criterion};
use rcw_bench::{evaluate_method, ExperimentContext, Method};
use rcw_datasets::Scale;

fn bench_table3(c: &mut Criterion) {
    let ctx = ExperimentContext::prepare("citeseer", Scale::Tiny, 3);
    let tests = ctx.dataset.pick_test_nodes(4, 13);
    let cfg = ctx.rcw_config(3);
    let mut group = c.benchmark_group("table3_quality");
    group.sample_size(10);
    for method in Method::all() {
        group.bench_function(method.name(), |b| {
            b.iter(|| evaluate_method(method, &ctx.gcn, &ctx.dataset.graph, &tests, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
