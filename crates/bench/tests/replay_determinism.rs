//! Replay determinism: the same seed and the same disturbance stream
//! produce the identical update sequence — byte for byte — across two
//! independent server runs.
//!
//! This is the property that makes the replay harness (`rcw_replay`) usable
//! as a regression oracle: a subscriber's [`sequence_digest`] is a pure
//! function of (dataset seed, plan seed, stream shape), because repaired
//! entries are captured under the store lock with zeroed per-request stats
//! and every other frame field (subscription id, disturbance id, epoch,
//! witness) is deterministic given the same request order.

use rcw_bench::replay::{rebase_epochs, sequence_digest, ReplayPlan};
use rcw_core::{RcwConfig, WitnessEngine};
use rcw_datasets::{citeseer, Scale};
use rcw_server::client::Client;
use rcw_server::{RcwServer, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

const SEED: u64 = 11;

fn quick_cfg() -> RcwConfig {
    RcwConfig {
        k: 1,
        local_budget: 1,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::default()
    }
}

/// One full run: build the dataset and engine from `SEED`, subscribe a
/// single stream, fire the plan's events sequentially, then drain the
/// stream to the end. Epochs are rebased against the subscription ack —
/// the engine epoch is a process-global clock, so only the deltas are a
/// function of the stream. Returns `(frames, digest, encoded frames)`.
fn run_stream(plan: &ReplayPlan, extra: &[(usize, usize)]) -> (u64, u64, Vec<String>) {
    let ds = citeseer::build(Scale::Tiny, SEED);
    let appnp = ds.train_appnp(8, SEED);
    let engine = WitnessEngine::new(Arc::new(ds.graph.clone()), &appnp, quick_cfg());
    let nodes = ds.pick_test_nodes(2, SEED + 100);
    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let config = ServerConfig::single(&engine).with_workers(2);

    std::thread::scope(|scope| {
        let config_ref = &config;
        let server_thread = scope.spawn(move || server.serve_config(config_ref).expect("serve"));

        let mut sub = Client::connect(&addr)
            .expect("connect sub")
            .subscribe(&nodes)
            .expect("subscribe");

        let mut control = Client::connect(&addr).expect("connect control");
        for event in &plan.events {
            control.disturb(&event.flips).expect("disturb");
        }
        // One deterministic event aimed straight at the subscription: an
        // edge incident to a subscribed node is always inside the entry's
        // footprint, so the run is guaranteed at least one update frame.
        control.disturb(extra).expect("targeted disturb");
        control.shutdown().expect("shutdown");

        let base_epoch = sub.epoch();
        let mut updates = Vec::new();
        loop {
            match sub.next_update() {
                Ok(Some(update)) => updates.push(update),
                Ok(None) => break,
                Err(e) => panic!("stream error: {e}"),
            }
        }
        let report = server_thread.join().expect("server thread");
        assert_eq!(
            report.updates_delivered + report.updates_shed,
            report.updates_owed,
            "ledger balances"
        );
        assert_eq!(report.updates_shed, 0, "fault-free run sheds nothing");
        assert_eq!(report.updates_delivered as usize, updates.len());

        rebase_epochs(base_epoch, &mut updates);
        let frames: Vec<String> = updates
            .iter()
            .map(rcw_server::wire::update_frame_to_body)
            .collect();
        (
            updates.len() as u64,
            sequence_digest(updates.iter()),
            frames,
        )
    })
}

#[test]
fn same_seed_and_stream_produce_the_identical_update_sequence() {
    let ds = citeseer::build(Scale::Tiny, SEED);
    let plan = ReplayPlan::from_graph(&ds.graph, SEED, 5, 2, Duration::ZERO);

    // The targeted flip: the first graph edge incident to a subscribed node.
    let nodes = ds.pick_test_nodes(2, SEED + 100);
    let target = ds
        .graph
        .edges()
        .find(|&(u, v)| nodes.contains(&u) || nodes.contains(&v))
        .expect("subscribed node has an incident edge");
    let extra = [target];

    let (count_a, digest_a, frames_a) = run_stream(&plan, &extra);
    let (count_b, digest_b, frames_b) = run_stream(&plan, &extra);

    assert!(
        count_a > 0,
        "the targeted disturbance owed at least one frame"
    );
    assert_eq!(count_a, count_b, "same stream, same number of updates");
    assert_eq!(
        frames_a, frames_b,
        "update frames are byte-identical across runs"
    );
    assert_eq!(digest_a, digest_b, "sequence digests agree");
}

#[test]
fn plan_digest_is_stable_for_a_dataset_seed() {
    let ds = citeseer::build(Scale::Tiny, SEED);
    let a = ReplayPlan::from_graph(&ds.graph, SEED, 5, 2, Duration::from_millis(3));
    let b = ReplayPlan::from_graph(&ds.graph, SEED, 5, 2, Duration::from_millis(3));
    assert_eq!(a, b);
    assert_eq!(a.digest(), b.digest());
    let c = ReplayPlan::from_graph(&ds.graph, SEED + 1, 5, 2, Duration::from_millis(3));
    assert_ne!(a.digest(), c.digest());
}
