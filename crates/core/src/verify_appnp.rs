//! Tractable k-RCW verification for APPNP under (k, b)-disturbances
//! (Algorithm 1, `verifyRCW-APPNP`).
//!
//! The verifier first runs the PTIME `verifyW` / `verifyCW` checks, then — per
//! Lemma 4 — only needs to examine the *single worst* (k, b)-disturbance for
//! every competitor class `c != l`: the one that maximizes
//! `pi_E(v)^T (H[:, c] - H[:, l])`. That disturbance is found with the greedy
//! policy-iteration search (`rcw-pagerank::pri_search`), and its effect is
//! confirmed with two inference calls (the disturbed graph must keep label
//! `l`, and the disturbed remainder must still flip it).

use crate::config::RcwConfig;
use crate::engine::EngineCaches;
use crate::verify::{
    candidate_pairs, candidate_pairs_bounded, disturbance_preserves_cw, verify_counterfactual,
    verify_factual,
};
use crate::witness::{VerifyOutcome, Witness, WitnessLevel};
use rcw_gnn::{Appnp, GnnModel};
use rcw_graph::{EdgeSet, Graph, GraphView, NodeId};
use rcw_linalg::Matrix;
use rcw_pagerank::{pri_search, truncate_to_k, PriConfig};

/// Shared inputs the APPNP verifier can receive from a long-lived engine
/// instead of recomputing per call: the local logits `H = f_theta(X)` (one
/// MLP pass over all nodes) and the engine cache tier (k-hop neighborhoods,
/// PPR rows for candidate pruning).
#[derive(Default)]
pub struct AppnpVerifyCtx<'a> {
    /// Precomputed `Appnp::local_logits` over the full view of the graph.
    /// `None` computes them lazily, only if verification reaches the
    /// robustness phase — the factual / counterfactual early exits never pay
    /// the MLP pass.
    pub logits: Option<&'a Matrix>,
    /// The shared cache tier, if the caller keeps one alive.
    pub caches: Option<&'a EngineCaches>,
}

/// Verifies that `witness` is a k-RCW for a *single* test node under
/// (k, b)-disturbances, using the APPNP-specific policy-iteration search.
pub fn verify_rcw_appnp_node(
    appnp: &Appnp,
    graph: &Graph,
    witness: &Witness,
    node: NodeId,
    cfg: &RcwConfig,
) -> VerifyOutcome {
    verify_rcw_appnp_node_ctx(appnp, graph, witness, node, cfg, &AppnpVerifyCtx::default())
}

/// [`verify_rcw_appnp_node`] with engine-shared state. Bit-identical to the
/// standalone entry point — the context only removes recomputation.
pub fn verify_rcw_appnp_node_ctx(
    appnp: &Appnp,
    graph: &Graph,
    witness: &Witness,
    node: NodeId,
    cfg: &RcwConfig,
    ctx: &AppnpVerifyCtx<'_>,
) -> VerifyOutcome {
    let label = witness
        .label_of(node)
        .expect("verify_rcw_appnp_node: node is not a test node of the witness");
    let single = Witness::new(witness.subgraph.clone(), vec![node], vec![label]);

    let (factual, calls_f) = verify_factual(appnp, graph, &single);
    if !factual {
        return VerifyOutcome {
            level: WitnessLevel::NotAWitness,
            counterexample: None,
            inference_calls: calls_f,
            disturbances_checked: 0,
        };
    }
    let (cw, calls_cw) = verify_counterfactual(appnp, graph, &single);
    let mut calls = calls_f + calls_cw;
    if !cw {
        return VerifyOutcome {
            level: WitnessLevel::Factual,
            counterexample: None,
            inference_calls: calls,
            disturbances_checked: 0,
        };
    }
    if cfg.k == 0 {
        return VerifyOutcome {
            level: WitnessLevel::Robust,
            counterexample: None,
            inference_calls: calls,
            disturbances_checked: 0,
        };
    }

    let full = GraphView::full(graph);
    // Lazy logits: only reached past the factual / counterfactual early
    // exits. With a cache tier the MLP pass is shared across calls (keyed by
    // the graph's feature epoch); without one it is computed here, once.
    let (cached_logits, computed_logits);
    let h: &Matrix = match (ctx.logits, ctx.caches) {
        (Some(h), _) => h,
        (None, Some(caches)) => {
            cached_logits = appnp.local_logits_cached(&full, caches.appnp_logits());
            &cached_logits
        }
        (None, None) => {
            computed_logits = appnp.local_logits(&full);
            &computed_logits
        }
    };
    let candidates = match ctx.caches {
        Some(caches) => {
            let hood = caches.hood(graph, &[node], cfg.candidate_hops);
            candidate_pairs_bounded(
                graph,
                witness.edges(),
                &[node],
                &hood,
                cfg,
                Some(caches.ppr()),
            )
        }
        None => candidate_pairs(graph, witness.edges(), &[node], cfg),
    };
    let pri_cfg = PriConfig {
        alpha: appnp.alpha(),
        local_budget: cfg.local_budget.max(1),
        max_rounds: cfg.pri_rounds,
        value_iters: cfg.ppr_iters,
    };

    let mut checked = 0usize;
    for c in 0..appnp.num_classes() {
        if c == label {
            continue;
        }
        // Objective direction: make class c overtake label l at `node`.
        let r: Vec<f64> = (0..graph.num_nodes())
            .map(|u| h.get(u, c) - h.get(u, label))
            .collect();
        let result = pri_search(&full, &candidates, &r, node, &pri_cfg);
        let mut e_star: EdgeSet = result.disturbance;
        if e_star.len() > cfg.k {
            // Keep the best-k subset as the candidate counterexample (the
            // strict reading of Algorithm 1 would reject outright; truncating
            // keeps the verifier useful inside the generator while remaining
            // sound: the truncated set is a valid (k, b)-disturbance).
            e_star = truncate_to_k(&full, &e_star, &r, appnp.alpha(), cfg.k);
        }
        if e_star.is_empty() {
            continue;
        }
        checked += 1;
        let (ok, c_calls) = disturbance_preserves_cw(appnp, graph, &single, &e_star);
        calls += c_calls;
        if !ok {
            return VerifyOutcome {
                level: WitnessLevel::Counterfactual,
                counterexample: Some(e_star),
                inference_calls: calls,
                disturbances_checked: checked,
            };
        }
    }

    VerifyOutcome {
        level: WitnessLevel::Robust,
        counterexample: None,
        inference_calls: calls,
        disturbances_checked: checked,
    }
}

/// Verifies a witness against *all* of its test nodes (the configuration's
/// `VT`), returning the weakest per-node outcome together with the first
/// counterexample found.
pub fn verify_rcw_appnp(
    appnp: &Appnp,
    graph: &Graph,
    witness: &Witness,
    cfg: &RcwConfig,
) -> VerifyOutcome {
    verify_rcw_appnp_ctx(appnp, graph, witness, cfg, &AppnpVerifyCtx::default())
}

/// [`verify_rcw_appnp`] with engine-shared state: the local logits are
/// computed (or cached) once for the whole test set instead of per node.
pub fn verify_rcw_appnp_ctx(
    appnp: &Appnp,
    graph: &Graph,
    witness: &Witness,
    cfg: &RcwConfig,
    ctx: &AppnpVerifyCtx<'_>,
) -> VerifyOutcome {
    let mut total_calls = 0usize;
    let mut total_checked = 0usize;
    let mut weakest = WitnessLevel::Robust;
    let mut counterexample = None;
    for &v in &witness.test_nodes {
        let out = verify_rcw_appnp_node_ctx(appnp, graph, witness, v, cfg, ctx);
        total_calls += out.inference_calls;
        total_checked += out.disturbances_checked;
        if out.level.rank() < weakest.rank() {
            weakest = out.level;
            if counterexample.is_none() {
                counterexample = out.counterexample;
            }
        }
        if weakest == WitnessLevel::NotAWitness {
            break;
        }
    }
    VerifyOutcome {
        level: weakest,
        counterexample,
        inference_calls: total_calls,
        disturbances_checked: total_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_gnn::TrainConfig;
    use rcw_graph::EdgeSubgraph;

    /// Two cliques bridged at a featureless test node; an APPNP trained on the
    /// clique nodes.
    fn setup() -> (Graph, Appnp, usize) {
        let mut g = Graph::new();
        for i in 0..12 {
            let class = usize::from(i >= 6);
            let feats = if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..6 {
            for v in (u + 1)..6 {
                g.add_edge(u, v);
            }
        }
        for u in 6..12 {
            for v in (u + 1)..12 {
                g.add_edge(u, v);
            }
        }
        let t = g.add_labeled_node(vec![0.05, 0.25], 0);
        g.add_edge(t, 0);
        g.add_edge(t, 1);
        g.add_edge(t, 2);
        // a weak tie to the other community so disturbances have room to act
        g.add_edge(t, 6);
        let mut appnp = Appnp::new(&[2, 8, 2], 0.2, 15, 5);
        let view = GraphView::full(&g);
        let train: Vec<usize> = (0..12).collect();
        appnp.train(
            &view,
            &train,
            &TrainConfig {
                epochs: 150,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
        );
        (g, appnp, t)
    }

    fn witness_of(g: &Graph, m: &Appnp, t: usize, edges: &[(usize, usize)]) -> Witness {
        let l = m.predict(t, &GraphView::full(g)).unwrap();
        Witness::new(
            EdgeSubgraph::from_edges(edges.iter().copied()),
            vec![t],
            vec![l],
        )
    }

    #[test]
    fn non_factual_witness_is_rejected_early() {
        let (g, appnp, t) = setup();
        let w = witness_of(&g, &appnp, t, &[(8, 9)]);
        let out = verify_rcw_appnp_node(&appnp, &g, &w, t, &RcwConfig::with_budgets(2, 1));
        // an edge inside the other community cannot be a counterfactual
        // witness for t; the verifier must stop before the robustness phase
        assert!(!out.is_counterfactual(), "unexpected level {:?}", out.level);
        assert_eq!(out.disturbances_checked, 0);
    }

    #[test]
    fn strong_witness_reaches_at_least_cw() {
        let (g, appnp, t) = setup();
        let w = witness_of(
            &g,
            &appnp,
            t,
            &[(t, 0), (t, 1), (t, 2), (0, 1), (0, 2), (1, 2)],
        );
        let cfg = RcwConfig::with_budgets(1, 1);
        let out = verify_rcw_appnp_node(&appnp, &g, &w, t, &cfg);
        assert!(
            out.is_counterfactual() || out.level == WitnessLevel::Factual,
            "a witness containing all of t's class-0 support should be at least factual, got {:?}",
            out.level
        );
    }

    #[test]
    fn verifier_spends_inference_calls_and_checks_disturbances() {
        let (g, appnp, t) = setup();
        let w = witness_of(&g, &appnp, t, &[(t, 0), (t, 1), (t, 2)]);
        let cfg = RcwConfig::with_budgets(2, 1);
        let out = verify_rcw_appnp_node(&appnp, &g, &w, t, &cfg);
        assert!(out.inference_calls >= 2);
        if out.is_counterfactual() {
            // robustness analysis ran for the competitor class
            assert!(out.disturbances_checked <= appnp.num_classes());
        }
    }

    #[test]
    fn k_zero_is_equivalent_to_cw() {
        let (g, appnp, t) = setup();
        let w = witness_of(&g, &appnp, t, &[(t, 0), (t, 1), (t, 2)]);
        let out = verify_rcw_appnp_node(&appnp, &g, &w, t, &RcwConfig::with_budgets(0, 0));
        let (cw, _) = verify_counterfactual(&appnp, &g, &w);
        assert_eq!(out.is_robust(), cw);
    }

    #[test]
    fn counterexample_if_any_respects_budgets() {
        let (g, appnp, t) = setup();
        let w = witness_of(&g, &appnp, t, &[(t, 0)]);
        let cfg = RcwConfig::with_budgets(2, 1);
        let out = verify_rcw_appnp_node(&appnp, &g, &w, t, &cfg);
        if let Some(ce) = &out.counterexample {
            assert!(ce.len() <= cfg.k, "counterexample larger than k");
            // it must not touch witness edges
            assert!(ce.iter().all(|(u, v)| !w.edges().contains(u, v)));
        }
    }

    #[test]
    fn multi_node_verification_aggregates_the_weakest_level() {
        let (g, appnp, t) = setup();
        let l_t = appnp.predict(t, &GraphView::full(&g)).unwrap();
        let l_8 = appnp.predict(8, &GraphView::full(&g)).unwrap();
        // witness covers t's support but nothing relevant for node 8
        let w = Witness::new(
            EdgeSubgraph::from_edges([(t, 0), (t, 1), (t, 2)]),
            vec![t, 8],
            vec![l_t, l_8],
        );
        let out = verify_rcw_appnp(&appnp, &g, &w, &RcwConfig::with_budgets(1, 1));
        // node 8 cannot be factual over this witness (isolated from its clique),
        // so the aggregate level must degrade below Robust.
        assert!(out.level != WitnessLevel::Robust);
    }
}
