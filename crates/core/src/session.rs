//! Per-query witness-generation sessions.
//!
//! This module is the query tier of the engine/session split: everything here
//! is *per-call* work — labels, localities, candidate pools, expand–verify
//! scratch — parameterized by the shared immutable tier
//! ([`crate::engine::EngineCaches`]: host CSR, partition, k-hop
//! neighborhoods, PPR rows, APPNP local logits). The public drivers
//! ([`crate::RoboGExp`], [`crate::ParaRoboGExp`]) and the long-lived
//! [`crate::WitnessEngine`] all run the same session code; they differ only
//! in how long the shared tier lives.
//!
//! Sessions optionally start from a **seed subgraph** (a previous witness):
//! the expand–verify loop then repairs the seed instead of growing from the
//! trivial witness, which is how the engine repairs witnesses after a
//! disturbance — test nodes whose seeded witness still verifies exit the
//! per-node expansion after a couple of localized inference calls.

use crate::config::RcwConfig;
use crate::engine::EngineCaches;
use crate::generate::{GenerationResult, GenerationStats};
use crate::model::VerifiableModel;
use crate::parallel::{ParallelGenerationResult, ParallelStats};
use crate::verify::candidate_pairs_bounded;
use crate::witness::{VerifyOutcome, Witness, WitnessLevel};
use rcw_gnn::{GnnModel, KernelScratch};
use rcw_graph::{
    traversal::k_hop_neighborhood, AdjacencyBitmap, Edge, EdgeSubgraph, Graph, GraphView, NodeId,
    VerifiedPairBitmap,
};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A cooperative cancellation hook for expand–verify sessions.
///
/// Sessions are long-running loops over model inference; a serving layer in
/// front of the engine needs to bound how long a single query may run (a
/// request deadline) without preemption. The budget is checked *between*
/// session phases — before each per-node expansion and at the top of every
/// expand–verify round — so cancellation is cooperative and the engine's
/// shared caches are never left mid-update.
///
/// An unlimited budget (the default) never expires, which is what the
/// one-shot drivers and the engine's un-deadlined entry points use.
///
/// ```
/// use rcw_core::SessionBudget;
/// use std::time::Duration;
///
/// assert!(SessionBudget::unlimited().check().is_ok());
/// let expired = SessionBudget::expiring_in(Duration::ZERO);
/// assert!(expired.check().is_err());
/// ```
#[derive(Clone, Debug, Default)]
pub struct SessionBudget {
    deadline: Option<Instant>,
}

impl SessionBudget {
    /// A budget that never expires.
    pub fn unlimited() -> Self {
        SessionBudget { deadline: None }
    }

    /// A budget that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        SessionBudget {
            deadline: Some(deadline),
        }
    }

    /// A budget that expires `window` from now.
    pub fn expiring_in(window: Duration) -> Self {
        SessionBudget {
            deadline: Instant::now().checked_add(window),
        }
    }

    /// The absolute deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Whether this budget can ever expire.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The cooperative checkpoint: `Err(BudgetExceeded)` once the deadline
    /// has passed, `Ok(())` otherwise (always `Ok` for unlimited budgets).
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if self.expired() {
            Err(BudgetExceeded)
        } else {
            Ok(())
        }
    }
}

/// A session hit its [`SessionBudget`] deadline and stopped cooperatively.
/// No partial witness is returned: the caller decides whether to retry with
/// a larger budget or report the overload upstream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded;

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "session budget exceeded before the witness search finished"
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Builds the session's starting subgraph: the trivial witness over the test
/// nodes, extended with a seed witness pruned to pairs that still exist in
/// the (possibly disturbed) host graph.
pub(crate) fn seeded_subgraph(
    graph: &Graph,
    test_nodes: &[NodeId],
    seed: Option<&EdgeSubgraph>,
) -> EdgeSubgraph {
    let mut sg = EdgeSubgraph::from_nodes(test_nodes.iter().copied());
    if let Some(seed) = seed {
        for (u, v) in seed.edges().iter() {
            if graph.has_edge(u, v) {
                sg.add_edge(u, v);
            }
        }
    }
    sg
}

/// One sequential expand–verify session (Algorithm 2 over the shared tier).
/// The budget is checked before each per-node expansion and at the top of
/// every robustness round; an expired budget aborts with [`BudgetExceeded`].
pub(crate) fn run_sequential<M: VerifiableModel + ?Sized>(
    model: &M,
    graph: &Graph,
    caches: &EngineCaches,
    cfg: &RcwConfig,
    test_nodes: &[NodeId],
    seed: Option<&EdgeSubgraph>,
    budget: &SessionBudget,
) -> Result<GenerationResult, BudgetExceeded> {
    assert!(!test_nodes.is_empty(), "witness session: empty test set");
    assert!(
        test_nodes.iter().all(|&v| graph.contains_node(v)),
        "witness session: invalid test node"
    );
    cfg.validate().expect("invalid RcwConfig");
    budget.check()?;
    let start = Instant::now();
    let gnn = model.as_gnn();
    let mut stats = GenerationStats::default();
    // One set of kernel scratch buffers for the whole session: every localized
    // inference below reuses it, so the expand-verify loop stops allocating
    // once the buffers have seen the largest receptive field.
    let mut scratch = KernelScratch::default();

    // M(v, G) for every test node: one forward pass over the union
    // receptive-field ball of the whole test set (bit-exact against
    // per-node prediction; the per-node accounting is preserved).
    let full = GraphView::full(graph);
    stats.inference_calls += test_nodes.len();
    let labels: Vec<usize> = gnn
        .predict_many_with(test_nodes, &full, &mut scratch)
        .expect("valid node");

    let mut subgraph = seeded_subgraph(graph, test_nodes, seed);

    // Phase 1: per-node expansion for factuality and counterfactuality.
    for (i, &v) in test_nodes.iter().enumerate() {
        budget.check()?;
        ensure_factual(
            graph,
            gnn,
            cfg,
            v,
            labels[i],
            &mut subgraph,
            &mut stats,
            &mut scratch,
        );
        ensure_counterfactual(
            graph,
            gnn,
            cfg,
            v,
            labels[i],
            &mut subgraph,
            &mut stats,
            &mut scratch,
        );
    }

    // Phase 2: robustness expand–verify loop.
    let mut witness = Witness::new(subgraph, test_nodes.to_vec(), labels.clone());
    let mut level = WitnessLevel::NotAWitness;
    for round in 0..cfg.max_expand_rounds {
        budget.check()?;
        stats.expand_rounds = round + 1;
        let outcome = model.verify_rcw_shared(graph, &witness, cfg, caches);
        stats.inference_calls += outcome.inference_calls;
        stats.disturbances_verified += outcome.disturbances_checked;
        level = outcome.level;
        match outcome.level {
            WitnessLevel::Robust => break,
            WitnessLevel::Counterfactual => {
                // Absorb the counterexample's existing edges; pairs inside
                // the witness cannot be disturbed any more.
                let Some(ce) = outcome.counterexample else {
                    break;
                };
                let mut grew = false;
                for (u, v) in ce.iter() {
                    if graph.has_edge(u, v) && !witness.subgraph.contains_edge(u, v) {
                        witness.subgraph.add_edge(u, v);
                        grew = true;
                    }
                }
                if !grew {
                    // counterexample consists purely of insertions we
                    // cannot protect against by growing the witness
                    break;
                }
            }
            WitnessLevel::Factual | WitnessLevel::NotAWitness => {
                // Re-run the per-node expansion: some node lost factuality
                // or counterfactuality (e.g. after the witness grew).
                let mut sg = witness.subgraph.clone();
                for (i, &v) in test_nodes.iter().enumerate() {
                    ensure_factual(
                        graph,
                        gnn,
                        cfg,
                        v,
                        labels[i],
                        &mut sg,
                        &mut stats,
                        &mut scratch,
                    );
                    ensure_counterfactual(
                        graph,
                        gnn,
                        cfg,
                        v,
                        labels[i],
                        &mut sg,
                        &mut stats,
                        &mut scratch,
                    );
                }
                if sg == witness.subgraph {
                    // no further progress possible
                    break;
                }
                witness.subgraph = sg;
            }
        }
        if witness.subgraph.num_edges() >= graph.num_edges() {
            // degenerated to the trivial k-RCW `G`
            witness = Witness::trivial_full(graph, test_nodes.to_vec(), labels.clone());
            level = WitnessLevel::Robust;
            break;
        }
    }

    stats.elapsed = start.elapsed();
    let nontrivial = witness.is_nontrivial(graph);
    Ok(GenerationResult {
        witness,
        level,
        nontrivial,
        stale: false,
        stats,
    })
}

/// Expands the witness around `v` until `M(v, Gs) = l`, adding the ego
/// network hop by hop (the L-hop receptive field reproduces the full-graph
/// prediction for message-passing GNNs).
#[allow(clippy::too_many_arguments)]
fn ensure_factual(
    graph: &Graph,
    model: &dyn GnnModel,
    cfg: &RcwConfig,
    v: NodeId,
    label: usize,
    subgraph: &mut EdgeSubgraph,
    stats: &mut GenerationStats,
    scratch: &mut KernelScratch,
) {
    let max_hops = cfg
        .candidate_hops
        .max(model.num_layers())
        .min(graph.num_nodes());
    for hop in 1..=max_hops {
        let view = GraphView::restricted_to(graph, subgraph.edges());
        stats.inference_calls += 1;
        if model.predict_with(v, &view, scratch) == Some(label) {
            return;
        }
        // add all edges with at least one endpoint within `hop - 1` hops of v
        let inner = k_hop_neighborhood(graph, v, hop - 1);
        for &u in &inner {
            for w in graph.neighbors(u) {
                subgraph.add_edge(u, w);
            }
        }
    }
    // final check is implicit; if still not factual the verification
    // rounds will report it
}

/// Expands the witness around `v` until removing it flips the label,
/// absorbing the strongest remaining support edges near `v`.
#[allow(clippy::too_many_arguments)]
fn ensure_counterfactual(
    graph: &Graph,
    model: &dyn GnnModel,
    cfg: &RcwConfig,
    v: NodeId,
    label: usize,
    subgraph: &mut EdgeSubgraph,
    stats: &mut GenerationStats,
    scratch: &mut KernelScratch,
) {
    // quick exit: already counterfactual for v
    {
        let remainder = GraphView::without(graph, subgraph.edges());
        stats.inference_calls += 1;
        if model.predict_with(v, &remainder, scratch) != Some(label) {
            return;
        }
    }

    // Candidate support edges near v, nearest first: edges incident to v,
    // then edges among its neighborhood, capped so the witness stays concise.
    let hood = k_hop_neighborhood(graph, v, cfg.candidate_hops.min(2));
    let cap = (graph.degree(v) * 3 + 12).min(48);
    let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
    for u in graph.neighbors(v) {
        candidates.push((v, u));
    }
    'outer: for &u in &hood {
        if u == v {
            continue;
        }
        for w in graph.neighbors(u) {
            if w != v && hood.contains(&w) {
                candidates.push((u, w));
                if candidates.len() >= cap {
                    break 'outer;
                }
            }
        }
    }

    // Score every candidate by how much removing it (together with the
    // current witness) hurts the label's margin — the pairs "most likely
    // to change the label if flipped" that Procedure Expand targets. Every
    // trial view is the shared remainder view plus one extra removal, so
    // the batched entry point shares a single receptive-field ball across
    // the whole pool instead of re-running BFS per candidate.
    let base_removed = GraphView::without(graph, subgraph.edges());
    let pairs: Vec<(NodeId, NodeId)> = candidates
        .iter()
        .copied()
        .filter(|&(a, b)| !subgraph.contains_edge(a, b) && graph.has_edge(a, b))
        .collect();
    stats.inference_calls += pairs.len();
    let margins = model.margin_many_removed_with(v, label, &base_removed, &pairs, scratch);
    let mut scored: Vec<(f64, (NodeId, NodeId))> = margins.into_iter().zip(pairs).collect();
    scored.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));

    // Greedily absorb the most label-critical support edges until the
    // remainder flips, with a hard bound so that an unattainable
    // counterfactual does not blow the witness up.
    let max_add = graph.degree(v).max(3) + 6;
    let mut added = 0usize;
    let mut added_edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut flipped = false;
    for (_, (a, b)) in scored {
        if added >= max_add {
            break;
        }
        if subgraph.contains_edge(a, b) {
            continue;
        }
        subgraph.add_edge(a, b);
        added_edges.push((a, b));
        added += 1;
        let remainder = GraphView::without(graph, subgraph.edges());
        stats.inference_calls += 1;
        if model.predict_with(v, &remainder, scratch) != Some(label) {
            flipped = true;
            break; // counterfactual achieved
        }
    }
    if flipped {
        // Backward pruning pass: drop absorbed edges that are not needed
        // for the flip, keeping the witness concise (the paper's RCWs are
        // roughly half the size of the baselines' explanations).
        for &(a, b) in added_edges.iter().rev().skip(1) {
            subgraph.remove_edge(a, b);
            let remainder = GraphView::without(graph, subgraph.edges());
            stats.inference_calls += 1;
            let still_flipped = model.predict_with(v, &remainder, scratch) != Some(label);
            let view_only = GraphView::restricted_to(graph, subgraph.edges());
            stats.inference_calls += 1;
            let still_factual = model.predict_with(v, &view_only, scratch) == Some(label);
            if !(still_flipped && still_factual) {
                subgraph.add_edge(a, b);
            }
        }
    }
}

/// One parallel expand–verify session (Algorithm 3 over the shared tier):
/// partition and candidate neighborhood come from the shared caches, so a
/// long-lived engine pays them once per mutation epoch instead of per call.
/// The budget is threaded into the bootstrap workers' sequential sessions and
/// checked at the top of every parallel robustness round.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel<M: VerifiableModel + ?Sized>(
    model: &M,
    graph: &Graph,
    caches: &EngineCaches,
    cfg: &RcwConfig,
    num_workers: usize,
    test_nodes: &[NodeId],
    seed: Option<&EdgeSubgraph>,
    budget: &SessionBudget,
) -> Result<ParallelGenerationResult, BudgetExceeded> {
    assert!(!test_nodes.is_empty(), "witness session: empty test set");
    cfg.validate().expect("invalid RcwConfig");
    budget.check()?;
    let start = Instant::now();
    let gnn = model.as_gnn();
    let mut stats = GenerationStats::default();
    let mut pstats = ParallelStats {
        workers: num_workers,
        ..ParallelStats::default()
    };

    // Shared structures: adjacency bitmap (built once) and verified pairs.
    let adjacency_bitmap = AdjacencyBitmap::from_graph(graph);
    let mut verified_pairs = VerifiedPairBitmap::new(graph.num_nodes());
    pstats.bytes_synchronized += adjacency_bitmap.byte_size();

    // Inference-preserving partition: replicate the model's receptive field.
    // Cached across calls keyed by the graph's mutation epoch.
    let hops = gnn.num_layers().max(1);
    let partition = caches.partition(graph, num_workers, hops);
    // Surplus workers beyond the fragment count would all re-search the
    // last fragment's candidates; clamp the search fan-out instead.
    let active_workers = num_workers.min(partition.num_fragments()).max(1);
    // The candidate neighborhood depends only on the host graph, the test
    // nodes and the hop budget — cached across rounds *and* calls.
    let hood = caches.hood(graph, test_nodes, cfg.candidate_hops);

    // Full-graph labels of the test nodes, via one union-ball forward pass.
    let full = GraphView::full(graph);
    let mut scratch = KernelScratch::default();
    stats.inference_calls += test_nodes.len();
    let labels: Vec<usize> = gnn
        .predict_many_with(test_nodes, &full, &mut scratch)
        .expect("valid node");

    // Phase 1 (paraExpand): factual / counterfactual bootstrap of every
    // test node, distributed across the workers — each worker runs a
    // sequential session for its chunk of test nodes, the coordinator unions
    // the partial witnesses (the test nodes' expansions are independent).
    let chunk = test_nodes.len().div_ceil(num_workers);
    type Partial = Result<(EdgeSubgraph, usize), BudgetExceeded>;
    let partial: Mutex<Vec<Partial>> = Mutex::new(Vec::new());
    let boot_start = Instant::now();
    std::thread::scope(|scope| {
        for nodes in test_nodes.chunks(chunk.max(1)) {
            let cfg = bootstrap_config(cfg);
            let partial_ref = &partial;
            scope.spawn(move || {
                let outcome = run_sequential(model, graph, caches, &cfg, nodes, seed, budget)
                    .map(|result| (result.witness.subgraph, result.stats.inference_calls));
                partial_ref
                    .lock()
                    .expect("bootstrap mutex poisoned")
                    .push(outcome);
            });
        }
    });
    pstats.parallel_time += boot_start.elapsed();
    let mut merged = EdgeSubgraph::from_nodes(test_nodes.iter().copied());
    for outcome in partial.into_inner().expect("bootstrap mutex poisoned") {
        let (sub, calls) = outcome?;
        merged.extend(&sub);
        stats.inference_calls += calls;
    }
    let mut witness = Witness::new(merged, test_nodes.to_vec(), labels.clone());

    // Phase 2: parallel robustness rounds.
    let mut level = WitnessLevel::NotAWitness;
    for round in 0..cfg.max_expand_rounds {
        budget.check()?;
        pstats.rounds = round + 1;
        stats.expand_rounds = round + 1;

        // Global candidate pairs not yet verified, split by fragment
        // owner. One active worker per fragment; each pair is handed to
        // the worker(s) owning an endpoint and counted once in the shared
        // bitmap.
        let all_candidates = candidate_pairs_bounded(
            graph,
            witness.edges(),
            test_nodes,
            &hood,
            cfg,
            Some(caches.ppr()),
        );
        let fresh: Vec<Edge> = all_candidates
            .into_iter()
            .filter(|&(u, v)| !verified_pairs.is_marked(u, v))
            .collect();
        // Each pair is searched by exactly one worker. Intra-fragment pairs
        // go to their owner; cross-fragment pairs go to whichever owning
        // worker currently holds fewer pairs. (Giving cross pairs to both
        // owners would duplicate the search, and hood-concentrated
        // candidates would pile every pair onto one worker.)
        let mut per_worker: Vec<Vec<Edge>> = vec![Vec::new(); active_workers];
        for &(u, v) in &fresh {
            let wu = partition.owner.get(u).copied().unwrap_or(0) % active_workers;
            let wv = partition.owner.get(v).copied().unwrap_or(0) % active_workers;
            let w = if per_worker[wu].len() <= per_worker[wv].len() {
                wu
            } else {
                wv
            };
            per_worker[w].push((u, v));
        }
        // Each worker is additionally responsible only for the test nodes
        // its fragment owns (falling back to round-robin so every test
        // node has exactly one responsible worker).
        let nodes_per_worker: Vec<(Vec<NodeId>, Vec<usize>)> = (0..active_workers)
            .map(|w| {
                let mut nodes = Vec::new();
                let mut node_labels = Vec::new();
                for (i, &v) in test_nodes.iter().enumerate() {
                    let frag = &partition.fragments[w];
                    let owner = partition.owner.get(v).copied().unwrap_or(0);
                    let responsible = if owner < partition.num_fragments() {
                        owner == frag.id
                    } else {
                        i % active_workers == w
                    };
                    if responsible {
                        nodes.push(v);
                        node_labels.push(labels[i]);
                    }
                }
                (nodes, node_labels)
            })
            .collect();

        let reports = Mutex::new(Vec::<crate::model::DisturbanceSearch>::new());
        let par_start = Instant::now();
        std::thread::scope(|scope| {
            for (wid, cands) in per_worker.iter().enumerate() {
                let witness_ref = &witness;
                let reports_ref = &reports;
                let (own_nodes, own_labels) = &nodes_per_worker[wid];
                scope.spawn(move || {
                    let report = model.search_disturbance_shared(
                        graph,
                        witness_ref,
                        own_nodes,
                        own_labels,
                        cands,
                        cfg,
                        wid as u64,
                        caches,
                    );
                    reports_ref
                        .lock()
                        .expect("worker mutex poisoned")
                        .push(report);
                });
            }
        });
        pstats.parallel_time += par_start.elapsed();

        // Synchronize: mark every candidate pair handed to a worker as
        // examined, merge the reports, collect counterexamples.
        for cands in &per_worker {
            for &(u, v) in cands {
                verified_pairs.mark(u, v);
            }
        }
        let reports = reports.into_inner().expect("worker mutex poisoned");
        let mut any_counterexample = false;
        let mut grew = false;
        for report in reports {
            stats.inference_calls += report.inference_calls;
            stats.disturbances_verified += report.disturbances_checked;
            if let Some(ce) = report.counterexample {
                any_counterexample = true;
                pstats.local_counterexamples += 1;
                for (u, v) in ce.iter() {
                    if graph.has_edge(u, v) && !witness.subgraph.contains_edge(u, v) {
                        witness.subgraph.add_edge(u, v);
                        grew = true;
                    }
                }
            }
        }
        pstats.bytes_synchronized += verified_pairs.byte_size();
        pstats.pairs_marked = verified_pairs.count();

        // Coordinator-side verification of the merged witness. The
        // per-node checks are independent (Lemma 6), so they are fanned
        // out across the workers for every model family (paraverifyRCW).
        let outcome = parallel_verify(model, graph, &witness, cfg, num_workers, caches);
        stats.inference_calls += outcome.inference_calls;
        stats.disturbances_verified += outcome.disturbances_checked;
        level = outcome.level;
        if outcome.level == WitnessLevel::Robust {
            break;
        }
        if let Some(ce) = outcome.counterexample {
            for (u, v) in ce.iter() {
                if graph.has_edge(u, v) && !witness.subgraph.contains_edge(u, v) {
                    witness.subgraph.add_edge(u, v);
                    grew = true;
                }
            }
        }
        if !any_counterexample && !grew {
            // fixed point: nothing left to explore or absorb
            break;
        }
        if witness.subgraph.num_edges() >= graph.num_edges() {
            witness = Witness::trivial_full(graph, test_nodes.to_vec(), labels.clone());
            level = WitnessLevel::Robust;
            break;
        }
    }

    stats.elapsed = start.elapsed();
    let nontrivial = witness.is_nontrivial(graph);
    Ok(ParallelGenerationResult {
        result: GenerationResult {
            witness,
            level,
            nontrivial,
            stale: false,
            stats,
        },
        parallel: pstats,
    })
}

/// Coordinator verification fanned out over worker threads: each worker
/// verifies a chunk of test nodes with the model's per-node verifier; the
/// coordinator keeps the weakest level and the first counterexample (Lemma 6
/// makes any locally found counterexample globally valid).
pub(crate) fn parallel_verify<M: VerifiableModel + ?Sized>(
    model: &M,
    graph: &Graph,
    witness: &Witness,
    cfg: &RcwConfig,
    num_workers: usize,
    caches: &EngineCaches,
) -> VerifyOutcome {
    let nodes = witness.test_nodes.clone();
    if nodes.len() <= 1 || num_workers <= 1 {
        return model.verify_rcw_shared(graph, witness, cfg, caches);
    }
    let chunk = nodes.len().div_ceil(num_workers);
    let outcomes: Mutex<Vec<VerifyOutcome>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for part in nodes.chunks(chunk.max(1)) {
            let outcomes_ref = &outcomes;
            scope.spawn(move || {
                for &v in part {
                    let out = model.verify_rcw_node_shared(graph, witness, v, cfg, caches);
                    outcomes_ref
                        .lock()
                        .expect("verify mutex poisoned")
                        .push(out);
                }
            });
        }
    });
    let mut merged = VerifyOutcome::at_level(WitnessLevel::Robust);
    for out in outcomes.into_inner().expect("verify mutex poisoned") {
        merged.inference_calls += out.inference_calls;
        merged.disturbances_checked += out.disturbances_checked;
        if out.level.rank() < merged.level.rank() {
            merged.level = out.level;
        }
        if merged.counterexample.is_none() {
            merged.counterexample = out.counterexample;
        }
    }
    merged
}

/// The bootstrap (phase 1) reuses the sequential session but with zero
/// robustness rounds — robustness is handled by the parallel loop.
fn bootstrap_config(cfg: &RcwConfig) -> RcwConfig {
    RcwConfig {
        max_expand_rounds: 1,
        ..cfg.clone()
    }
}
