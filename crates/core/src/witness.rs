//! Witness structures and their status.
//!
//! A witness is a subgraph of the host graph associated with a set of test
//! nodes and the labels the fixed classifier assigns to them over the full
//! graph. The three properties of interest (§II-B):
//!
//! * **factual** — evaluating the model on the witness alone reproduces every
//!   test node's label;
//! * **counterfactual** — additionally, removing the witness's edges from the
//!   graph changes every test node's label;
//! * **k-robust** — additionally, both properties survive every admissible
//!   k-disturbance of the remainder of the graph.

use rcw_graph::{EdgeSet, EdgeSubgraph, Graph, NodeId};

/// A candidate explanation: a subgraph plus the test nodes it explains and the
/// labels the classifier assigned to them on the full graph.
#[derive(Clone, Debug, PartialEq)]
pub struct Witness {
    /// The explanation subgraph `Gs`.
    pub subgraph: EdgeSubgraph,
    /// The test nodes `VT` this witness explains.
    pub test_nodes: Vec<NodeId>,
    /// `M(v, G)` for each test node, in the same order as `test_nodes`.
    pub labels: Vec<usize>,
}

impl Witness {
    /// Creates a witness from its parts.
    ///
    /// # Panics
    /// Panics if `test_nodes` and `labels` have different lengths.
    pub fn new(subgraph: EdgeSubgraph, test_nodes: Vec<NodeId>, labels: Vec<usize>) -> Self {
        assert_eq!(
            test_nodes.len(),
            labels.len(),
            "Witness::new: test node / label length mismatch"
        );
        let mut subgraph = subgraph;
        for &v in &test_nodes {
            subgraph.add_node(v);
        }
        Witness {
            subgraph,
            test_nodes,
            labels,
        }
    }

    /// The trivial witness containing only the test nodes (no edges).
    pub fn trivial_nodes(test_nodes: Vec<NodeId>, labels: Vec<usize>) -> Self {
        Witness::new(
            EdgeSubgraph::from_nodes(test_nodes.clone()),
            test_nodes,
            labels,
        )
    }

    /// The trivial witness equal to the whole graph (always a k-RCW, never
    /// interesting). `RoboGExp` falls back to this when no non-trivial witness
    /// exists.
    pub fn trivial_full(graph: &Graph, test_nodes: Vec<NodeId>, labels: Vec<usize>) -> Self {
        Witness::new(EdgeSubgraph::full(graph), test_nodes, labels)
    }

    /// Label recorded for test node `v`, if `v` is one of the test nodes.
    pub fn label_of(&self, v: NodeId) -> Option<usize> {
        self.test_nodes
            .iter()
            .position(|&t| t == v)
            .map(|i| self.labels[i])
    }

    /// The witness's edge set (`Gs`'s edges).
    pub fn edges(&self) -> &EdgeSet {
        self.subgraph.edges()
    }

    /// Number of nodes plus edges — the "size" reported in the paper's tables.
    pub fn size(&self) -> usize {
        self.subgraph.size()
    }

    /// Whether this witness is non-trivial with respect to a host graph: at
    /// least one edge and not all of the host's edges.
    pub fn is_nontrivial(&self, host: &Graph) -> bool {
        self.subgraph.is_nontrivial(host)
    }
}

/// The robustness level established for a witness by a verification run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WitnessLevel {
    /// Not even factual.
    NotAWitness,
    /// Factual but not counterfactual.
    Factual,
    /// Factual and counterfactual (a CW, i.e. a 0-RCW).
    Counterfactual,
    /// Factual, counterfactual, and robust to every admissible k-disturbance
    /// that the verifier explored.
    Robust,
}

impl WitnessLevel {
    /// Strength ordering of the levels: `NotAWitness < Factual <
    /// Counterfactual < Robust`. Used wherever the weakest per-node outcome
    /// must win (multi-node aggregation, repair decisions).
    pub fn rank(self) -> u8 {
        match self {
            WitnessLevel::NotAWitness => 0,
            WitnessLevel::Factual => 1,
            WitnessLevel::Counterfactual => 2,
            WitnessLevel::Robust => 3,
        }
    }
}

/// Outcome of verifying one witness against one test node (or a whole test set).
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyOutcome {
    /// The strongest level established.
    pub level: WitnessLevel,
    /// A disturbance disproving robustness, when one was found.
    pub counterexample: Option<EdgeSet>,
    /// Number of model inference calls spent.
    pub inference_calls: usize,
    /// Number of disturbances examined.
    pub disturbances_checked: usize,
}

impl VerifyOutcome {
    /// Convenience constructor for a given level with zero counters.
    pub fn at_level(level: WitnessLevel) -> Self {
        VerifyOutcome {
            level,
            counterexample: None,
            inference_calls: 0,
            disturbances_checked: 0,
        }
    }

    /// Whether the witness was verified to be a k-RCW.
    pub fn is_robust(&self) -> bool {
        self.level == WitnessLevel::Robust
    }

    /// Whether the witness is at least a counterfactual witness.
    pub fn is_counterfactual(&self) -> bool {
        matches!(
            self.level,
            WitnessLevel::Counterfactual | WitnessLevel::Robust
        )
    }

    /// Whether the witness is at least factual.
    pub fn is_factual(&self) -> bool {
        !matches!(self.level, WitnessLevel::NotAWitness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witness_always_contains_its_test_nodes() {
        let w = Witness::new(EdgeSubgraph::from_edges([(1, 2)]), vec![5], vec![0]);
        assert!(w.subgraph.contains_node(5));
        assert_eq!(w.label_of(5), Some(0));
        assert_eq!(w.label_of(1), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_labels_rejected() {
        Witness::new(EdgeSubgraph::new(), vec![1, 2], vec![0]);
    }

    #[test]
    fn trivial_witnesses() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        let nodes = Witness::trivial_nodes(vec![0], vec![1]);
        assert_eq!(nodes.size(), 1);
        assert!(!nodes.is_nontrivial(&g));
        let full = Witness::trivial_full(&g, vec![0], vec![1]);
        assert_eq!(full.size(), 5);
        assert!(!full.is_nontrivial(&g));
    }

    #[test]
    fn level_predicates() {
        assert!(VerifyOutcome::at_level(WitnessLevel::Robust).is_robust());
        assert!(VerifyOutcome::at_level(WitnessLevel::Robust).is_counterfactual());
        assert!(VerifyOutcome::at_level(WitnessLevel::Counterfactual).is_counterfactual());
        assert!(!VerifyOutcome::at_level(WitnessLevel::Counterfactual).is_robust());
        assert!(VerifyOutcome::at_level(WitnessLevel::Factual).is_factual());
        assert!(!VerifyOutcome::at_level(WitnessLevel::NotAWitness).is_factual());
        let levels = [
            WitnessLevel::NotAWitness,
            WitnessLevel::Factual,
            WitnessLevel::Counterfactual,
            WitnessLevel::Robust,
        ];
        assert!(levels.windows(2).all(|w| w[0].rank() < w[1].rank()));
    }
}
