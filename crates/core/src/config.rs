//! Configuration of verification and generation runs.
//!
//! The paper packages its inputs as a configuration
//! `C = (G, Gs, VT, M, k)`; [`RcwConfig`] holds the scalar part of that tuple
//! (the budgets and search knobs), while graphs, witnesses, test nodes and
//! models are passed explicitly to the verification / generation entry points
//! so they can be borrowed rather than owned.

use rcw_graph::DisturbanceStrategy;

/// Budgets and search parameters for k-RCW verification and generation.
#[derive(Clone, Debug)]
pub struct RcwConfig {
    /// Global disturbance budget `k`: the adversary may flip at most `k`
    /// node pairs outside the witness. `k = 0` degenerates to plain
    /// counterfactual-witness verification.
    pub k: usize,
    /// Local budget `b` of the (k, b)-disturbance model: at most `b` flips
    /// incident to any single node. The tractable APPNP verification requires
    /// `b >= 1`.
    pub local_budget: usize,
    /// Which node pairs the adversary may flip. The paper's experiments use a
    /// removal-dominant strategy; [`DisturbanceStrategy::Mixed`] also exposes
    /// insertion candidates near the test nodes.
    pub strategy: DisturbanceStrategy,
    /// Number of hops around a test node considered when collecting candidate
    /// pairs (defaults to the classifier depth `L` plus one).
    pub candidate_hops: usize,
    /// Cap on insertion candidates per test node (insertions grow
    /// quadratically; removals are never capped).
    pub max_insert_candidates: usize,
    /// For non-APPNP models the robustness check samples this many random
    /// disturbances per test node when exhaustive enumeration is infeasible.
    pub sampled_disturbances: usize,
    /// Exhaustive enumeration threshold: if the number of candidate pairs is
    /// at most this, the generic verifier enumerates all `<= k` disturbances
    /// instead of sampling.
    pub exhaustive_limit: usize,
    /// Upper bound `m` on the candidate-pair pool. Dense neighborhoods grow
    /// quadratically many pairs; beyond this bound the pool is pruned to the
    /// `m` pairs carrying the most personalized-PageRank mass from the test
    /// nodes (the pairs a disturbance can use to move the most PPR weight).
    /// The default is high enough that sparse graphs never hit it.
    pub max_candidate_pairs: usize,
    /// Maximum expand–verify rounds per test node during generation before
    /// falling back to the trivial witness.
    pub max_expand_rounds: usize,
    /// PRI policy-iteration rounds (APPNP path).
    pub pri_rounds: usize,
    /// Fixed-point iterations for PPR/value-function evaluations.
    pub ppr_iters: usize,
    /// Seed for any randomized sampling.
    pub seed: u64,
}

impl Default for RcwConfig {
    fn default() -> Self {
        RcwConfig {
            k: 5,
            local_budget: 2,
            strategy: DisturbanceStrategy::RemovalOnly,
            candidate_hops: 3,
            max_insert_candidates: 32,
            sampled_disturbances: 24,
            exhaustive_limit: 10,
            max_candidate_pairs: 256,
            max_expand_rounds: 8,
            pri_rounds: 8,
            ppr_iters: 40,
            seed: 7,
        }
    }
}

impl RcwConfig {
    /// Convenience constructor fixing the two budgets and keeping defaults for
    /// the search knobs.
    pub fn with_budgets(k: usize, local_budget: usize) -> Self {
        RcwConfig {
            k,
            local_budget,
            ..RcwConfig::default()
        }
    }

    /// Returns a copy with a different disturbance strategy.
    pub fn with_strategy(mut self, strategy: DisturbanceStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different candidate-pair bound `m`.
    pub fn with_max_candidate_pairs(mut self, m: usize) -> Self {
        self.max_candidate_pairs = m;
        self
    }

    /// Basic sanity checks; called by the entry points.
    pub fn validate(&self) -> Result<(), String> {
        if self.k > 0 && self.local_budget == 0 {
            return Err("local_budget must be >= 1 when k > 0".to_string());
        }
        if self.candidate_hops == 0 {
            return Err("candidate_hops must be >= 1".to_string());
        }
        if self.max_candidate_pairs == 0 {
            return Err("max_candidate_pairs must be >= 1".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(RcwConfig::default().validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let cfg = RcwConfig::with_budgets(10, 3)
            .with_strategy(DisturbanceStrategy::Mixed)
            .with_seed(99);
        assert_eq!(cfg.k, 10);
        assert_eq!(cfg.local_budget, 3);
        assert_eq!(cfg.strategy, DisturbanceStrategy::Mixed);
        assert_eq!(cfg.seed, 99);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut cfg = RcwConfig::with_budgets(5, 0);
        assert!(cfg.validate().is_err());
        cfg.local_budget = 1;
        cfg.candidate_hops = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn k_zero_allows_zero_local_budget() {
        let cfg = RcwConfig::with_budgets(0, 0);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn candidate_pair_bound_is_validated_and_buildable() {
        let cfg = RcwConfig::default().with_max_candidate_pairs(64);
        assert_eq!(cfg.max_candidate_pairs, 64);
        assert!(cfg.validate().is_ok());
        assert!(RcwConfig::default()
            .with_max_candidate_pairs(0)
            .validate()
            .is_err());
    }
}
