//! Verification of factual witnesses, counterfactual witnesses, and k-RCWs
//! for arbitrary (model-agnostic) classifiers.
//!
//! * `verifyW` (Lemma 2) and `verifyCW` (Lemma 3) are PTIME: they are one and
//!   two inference calls per test node respectively.
//! * k-RCW verification is NP-hard in general (Theorem 1). The model-agnostic
//!   verifier in this module therefore either enumerates all admissible
//!   disturbances (small candidate sets — exact) or samples a configurable
//!   number of random (k, b)-disturbances (large candidate sets — a sound
//!   "no" / probabilistic "yes"). The tractable APPNP-specific verifier lives
//!   in [`crate::verify_appnp`].

use crate::config::RcwConfig;
use crate::witness::{VerifyOutcome, Witness, WitnessLevel};
use rcw_gnn::{GnnModel, KernelScratch};
use rcw_graph::{
    disturbance::{enumerate_disturbances_up_to, random_disturbance_from},
    traversal::k_hop_neighborhood_multi,
    Edge, EdgeSet, Graph, GraphView,
};
use rcw_pagerank::PprCache;

/// Teleport probability used by the PPR-weighted candidate pruning. A fixed
/// heuristic value: the ranking only decides *which* pairs enter the
/// disturbance search, never the verdict on any individual disturbance.
pub const PRUNE_ALPHA: f64 = 0.2;

/// Collects the node pairs an adversary may flip: existing edges near the test
/// nodes that are not protected by the witness, plus (depending on the
/// strategy) a bounded number of insertion candidates incident to the test
/// nodes.
pub fn candidate_pairs(
    graph: &Graph,
    protected: &EdgeSet,
    test_nodes: &[rcw_graph::NodeId],
    cfg: &RcwConfig,
) -> Vec<Edge> {
    candidate_pairs_cached(graph, protected, test_nodes, cfg, None)
}

/// [`candidate_pairs`] threading an optional shared PPR-row cache into the
/// top-m pruning (engine sessions pass theirs so repeated queries over the
/// same test nodes reuse the rows).
pub fn candidate_pairs_cached(
    graph: &Graph,
    protected: &EdgeSet,
    test_nodes: &[rcw_graph::NodeId],
    cfg: &RcwConfig,
    ppr: Option<&PprCache>,
) -> Vec<Edge> {
    let hood = k_hop_neighborhood_multi(graph, test_nodes, cfg.candidate_hops);
    candidate_pairs_bounded(graph, protected, test_nodes, &hood, cfg, ppr)
}

/// [`candidate_pairs`] with a precomputed k-hop neighborhood of the test
/// nodes. The neighborhood depends only on the host graph, the test nodes and
/// `cfg.candidate_hops` — none of which change within a generation run — so
/// drivers compute it once and reuse it across expand–verify rounds; only the
/// `protected` filter varies per round.
pub fn candidate_pairs_in_hood(
    graph: &Graph,
    protected: &EdgeSet,
    test_nodes: &[rcw_graph::NodeId],
    hood: &std::collections::BTreeSet<rcw_graph::NodeId>,
    cfg: &RcwConfig,
) -> Vec<Edge> {
    candidate_pairs_bounded(graph, protected, test_nodes, hood, cfg, None)
}

/// The full candidate-pair pipeline: collect pairs inside the precomputed
/// neighborhood, then — only when the pool exceeds `cfg.max_candidate_pairs`
/// — keep the top-m pairs by personalized-PageRank mass from the test nodes.
/// Dense neighborhoods produce quadratically many pairs; the PPR weighting
/// keeps the ones a disturbance could use to move the most probability mass
/// toward or away from the test nodes, which is exactly the quantity the
/// APPNP worst-case analysis maximizes.
pub fn candidate_pairs_bounded(
    graph: &Graph,
    protected: &EdgeSet,
    test_nodes: &[rcw_graph::NodeId],
    hood: &std::collections::BTreeSet<rcw_graph::NodeId>,
    cfg: &RcwConfig,
    ppr: Option<&PprCache>,
) -> Vec<Edge> {
    let mut out: Vec<Edge> = Vec::new();
    // Removal candidates: existing edges inside the neighborhood, unprotected.
    for (u, v) in graph.edges() {
        if hood.contains(&u) && hood.contains(&v) && !protected.contains(u, v) {
            out.push((u, v));
        }
    }
    // Insertion candidates: non-edges between a test node and a nearby node.
    if !matches!(cfg.strategy, rcw_graph::DisturbanceStrategy::RemovalOnly) {
        let mut inserted = 0usize;
        'outer: for &t in test_nodes {
            for &u in hood {
                if inserted >= cfg.max_insert_candidates {
                    break 'outer;
                }
                if u != t && !graph.has_edge(t, u) && !protected.contains(t, u) {
                    out.push(rcw_graph::norm_edge(t, u));
                    inserted += 1;
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    if out.len() <= cfg.max_candidate_pairs {
        return out;
    }
    top_m_by_ppr(graph, out, test_nodes, cfg, ppr)
}

/// Keeps the `cfg.max_candidate_pairs` pairs carrying the most PPR mass from
/// the test nodes (score of `(u, v)` = summed mass the test nodes place on
/// `u` and `v`). Deterministic: ties break by pair order; output is sorted.
fn top_m_by_ppr(
    graph: &Graph,
    pairs: Vec<Edge>,
    test_nodes: &[rcw_graph::NodeId],
    cfg: &RcwConfig,
    ppr: Option<&PprCache>,
) -> Vec<Edge> {
    let fallback;
    let cache = match ppr {
        Some(cache) => cache,
        None => {
            fallback = PprCache::new(PRUNE_ALPHA, cfg.ppr_iters);
            &fallback
        }
    };
    let csr = graph.csr();
    let epoch = graph.epoch();
    let mut mass = vec![0.0f64; graph.num_nodes()];
    for &t in test_nodes {
        let row = cache.row(csr, t, epoch);
        for (i, &p) in row.iter().enumerate() {
            mass[i] += p;
        }
    }
    let mut scored: Vec<(f64, Edge)> = pairs
        .into_iter()
        .map(|(u, v)| (mass[u] + mass[v], (u, v)))
        .collect();
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let mut kept: Vec<Edge> = scored
        .into_iter()
        .take(cfg.max_candidate_pairs)
        .map(|(_, e)| e)
        .collect();
    kept.sort_unstable();
    kept
}

/// `verifyW`: is the witness a factual witness for every test node?
/// Returns the verdict and the number of inference calls spent.
pub fn verify_factual(model: &dyn GnnModel, graph: &Graph, witness: &Witness) -> (bool, usize) {
    verify_factual_with(model, graph, witness, &mut KernelScratch::default())
}

/// [`verify_factual`] over caller-provided kernel scratch buffers.
fn verify_factual_with(
    model: &dyn GnnModel,
    graph: &Graph,
    witness: &Witness,
    scratch: &mut KernelScratch,
) -> (bool, usize) {
    let view = GraphView::restricted_to(graph, witness.edges());
    let mut calls = 0;
    for (i, &v) in witness.test_nodes.iter().enumerate() {
        calls += 1;
        if model.predict_with(v, &view, scratch) != Some(witness.labels[i]) {
            return (false, calls);
        }
    }
    (true, calls)
}

/// `verifyCW`: is the witness a counterfactual witness for every test node?
/// (Factuality is a precondition and is checked first.)
pub fn verify_counterfactual(
    model: &dyn GnnModel,
    graph: &Graph,
    witness: &Witness,
) -> (bool, usize) {
    verify_counterfactual_with(model, graph, witness, &mut KernelScratch::default())
}

/// [`verify_counterfactual`] over caller-provided kernel scratch buffers.
fn verify_counterfactual_with(
    model: &dyn GnnModel,
    graph: &Graph,
    witness: &Witness,
    scratch: &mut KernelScratch,
) -> (bool, usize) {
    let (factual, mut calls) = verify_factual_with(model, graph, witness, scratch);
    if !factual {
        return (false, calls);
    }
    let remainder = GraphView::without(graph, witness.edges());
    if remainder.num_edges() == 0 {
        // The paper's trivial case: when the witness covers every edge the
        // remainder is (edge-)empty, `M(v, ∅)` is undefined, and the witness
        // counts as a counterfactual witness by convention.
        return (true, calls);
    }
    for (i, &v) in witness.test_nodes.iter().enumerate() {
        calls += 1;
        if model.predict_with(v, &remainder, scratch) == Some(witness.labels[i]) {
            return (false, calls);
        }
    }
    (true, calls)
}

/// Checks whether one specific disturbance leaves the witness a CW for every
/// test node: the disturbed graph must still assign the original label, and
/// removing the witness from the disturbed graph must still flip it.
pub fn disturbance_preserves_cw(
    model: &dyn GnnModel,
    graph: &Graph,
    witness: &Witness,
    disturbance: &EdgeSet,
) -> (bool, usize) {
    disturbance_preserves_cw_with(
        model,
        graph,
        witness,
        disturbance,
        &mut KernelScratch::default(),
    )
}

/// [`disturbance_preserves_cw`] over caller-provided kernel scratch buffers.
fn disturbance_preserves_cw_with(
    model: &dyn GnnModel,
    graph: &Graph,
    witness: &Witness,
    disturbance: &EdgeSet,
    scratch: &mut KernelScratch,
) -> (bool, usize) {
    let disturbed = GraphView::full(graph).flipped(disturbance);
    let mut calls = 0;
    for (i, &v) in witness.test_nodes.iter().enumerate() {
        calls += 1;
        if model.predict_with(v, &disturbed, scratch) != Some(witness.labels[i]) {
            return (false, calls);
        }
    }
    let mut remainder = GraphView::without(graph, witness.edges());
    remainder.flip_edges(disturbance);
    for (i, &v) in witness.test_nodes.iter().enumerate() {
        calls += 1;
        if model.predict_with(v, &remainder, scratch) == Some(witness.labels[i]) {
            return (false, calls);
        }
    }
    (true, calls)
}

/// Model-agnostic k-RCW verification (`verifyRCW`).
///
/// When the candidate-pair set is at most `cfg.exhaustive_limit`, every
/// disturbance of size `1..=k` respecting the local budget is enumerated and
/// the verdict is exact. Otherwise `cfg.sampled_disturbances` random
/// (k, b)-disturbances are tested: a returned counterexample is always sound,
/// while a "robust" verdict is probabilistic.
pub fn verify_rcw(
    model: &dyn GnnModel,
    graph: &Graph,
    witness: &Witness,
    cfg: &RcwConfig,
) -> VerifyOutcome {
    verify_rcw_cached(model, graph, witness, cfg, None)
}

/// [`verify_rcw`] threading an optional shared PPR-row cache into the
/// candidate-pair bounding.
pub fn verify_rcw_cached(
    model: &dyn GnnModel,
    graph: &Graph,
    witness: &Witness,
    cfg: &RcwConfig,
    ppr: Option<&PprCache>,
) -> VerifyOutcome {
    verify_rcw_impl(model, graph, witness, cfg, || {
        candidate_pairs_cached(graph, witness.edges(), &witness.test_nodes, cfg, ppr)
    })
}

/// [`verify_rcw`] over an engine's full shared tier: the candidate
/// neighborhood comes from the hood cache and the pruning rows from the PPR
/// cache, so steady-state re-verification pays neither BFS nor PPR.
pub(crate) fn verify_rcw_with_caches(
    model: &dyn GnnModel,
    graph: &Graph,
    witness: &Witness,
    cfg: &RcwConfig,
    caches: &crate::engine::EngineCaches,
) -> VerifyOutcome {
    verify_rcw_impl(model, graph, witness, cfg, || {
        let hood = caches.hood(graph, &witness.test_nodes, cfg.candidate_hops);
        candidate_pairs_bounded(
            graph,
            witness.edges(),
            &witness.test_nodes,
            &hood,
            cfg,
            Some(caches.ppr()),
        )
    })
}

/// The shared `verifyRCW` body; `candidates_fn` supplies the pool lazily so
/// the factual / counterfactual early exits never pay for it.
fn verify_rcw_impl(
    model: &dyn GnnModel,
    graph: &Graph,
    witness: &Witness,
    cfg: &RcwConfig,
    candidates_fn: impl FnOnce() -> Vec<Edge>,
) -> VerifyOutcome {
    cfg.validate().expect("invalid RcwConfig");
    // One scratch for the whole verification: every localized predict below
    // reuses the same ball/forward buffers.
    let mut scratch = KernelScratch::default();
    let (factual, calls_f) = verify_factual_with(model, graph, witness, &mut scratch);
    if !factual {
        return VerifyOutcome {
            level: WitnessLevel::NotAWitness,
            counterexample: None,
            inference_calls: calls_f,
            disturbances_checked: 0,
        };
    }
    let (cw, calls_cw) = verify_counterfactual_with(model, graph, witness, &mut scratch);
    let mut calls = calls_f + calls_cw;
    if !cw {
        return VerifyOutcome {
            level: WitnessLevel::Factual,
            counterexample: None,
            inference_calls: calls,
            disturbances_checked: 0,
        };
    }
    if cfg.k == 0 {
        return VerifyOutcome {
            level: WitnessLevel::Robust,
            counterexample: None,
            inference_calls: calls,
            disturbances_checked: 0,
        };
    }

    let candidates = candidates_fn();
    let mut checked = 0usize;

    let disturbances: Vec<EdgeSet> = if candidates.len() <= cfg.exhaustive_limit {
        enumerate_disturbances_up_to(&candidates, cfg.k.min(candidates.len()))
            .into_iter()
            .filter(|d| d.respects_local_budget(cfg.local_budget))
            .map(|d| d.pairs().clone())
            .collect()
    } else {
        // Sample from the hood-local candidate pool, not the whole graph: a
        // flip far from every test node cannot move a localized margin, so
        // global draws only waste checks — and pool-local draws make the
        // verdict a function of the query's neighborhood alone, which the
        // sharded tier relies on for bit-exact shard answers.
        (0..cfg.sampled_disturbances)
            .map(|i| {
                random_disturbance_from(
                    &candidates,
                    witness.edges(),
                    cfg.k,
                    cfg.local_budget,
                    cfg.seed.wrapping_add(i as u64),
                )
                .pairs()
                .clone()
            })
            .filter(|d| !d.is_empty())
            .collect()
    };

    for d in disturbances {
        checked += 1;
        let (ok, c) = disturbance_preserves_cw_with(model, graph, witness, &d, &mut scratch);
        calls += c;
        if !ok {
            return VerifyOutcome {
                level: WitnessLevel::Counterfactual,
                counterexample: Some(d),
                inference_calls: calls,
                disturbances_checked: checked,
            };
        }
    }

    VerifyOutcome {
        level: WitnessLevel::Robust,
        counterexample: None,
        inference_calls: calls,
        disturbances_checked: checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_gnn::{Gcn, TrainConfig};
    use rcw_graph::{DisturbanceStrategy, EdgeSubgraph};

    /// Builds a two-community graph and a GCN trained to classify membership,
    /// where community membership is carried by the *edges* (the boundary
    /// node has uninformative features), so witnesses are meaningful.
    fn setup() -> (Graph, Gcn, usize) {
        let mut g = Graph::new();
        for i in 0..12 {
            let class = usize::from(i >= 6);
            let feats = if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..6 {
            for v in (u + 1)..6 {
                g.add_edge(u, v);
            }
        }
        for u in 6..12 {
            for v in (u + 1)..12 {
                g.add_edge(u, v);
            }
        }
        // test node: featureless node attached to community 0
        let t = g.add_labeled_node(vec![0.05, 0.25], 0);
        g.add_edge(t, 0);
        g.add_edge(t, 1);
        g.add_edge(t, 2);
        let mut gcn = Gcn::new(&[2, 8, 2], 11);
        let view = GraphView::full(&g);
        let train: Vec<usize> = (0..12).collect();
        gcn.train(
            &view,
            &train,
            &TrainConfig {
                epochs: 150,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
        );
        (g, gcn, t)
    }

    fn witness_for(g: &Graph, model: &Gcn, t: usize, edges: &[Edge]) -> Witness {
        let label = model.predict(t, &GraphView::full(g)).unwrap();
        Witness::new(
            EdgeSubgraph::from_edges(edges.iter().copied()),
            vec![t],
            vec![label],
        )
    }

    #[test]
    fn ego_edges_are_a_factual_witness() {
        let (g, gcn, t) = setup();
        let w = witness_for(
            &g,
            &gcn,
            t,
            &[(t, 0), (t, 1), (t, 2), (0, 1), (0, 2), (1, 2)],
        );
        let (ok, calls) = verify_factual(&gcn, &g, &w);
        assert!(ok, "the ego network must reproduce the label");
        assert_eq!(calls, 1);
    }

    #[test]
    fn empty_witness_is_not_counterfactual() {
        let (g, gcn, t) = setup();
        // The whole graph minus nothing still classifies t as before, so a
        // node-only witness cannot be counterfactual (and here not factual
        // either, because t's own features are uninformative).
        let label = gcn.predict(t, &GraphView::full(&g)).unwrap();
        let w = Witness::trivial_nodes(vec![t], vec![label]);
        let (cf, _) = verify_counterfactual(&gcn, &g, &w);
        assert!(!cf);
    }

    #[test]
    fn ego_witness_is_counterfactual() {
        let (g, gcn, t) = setup();
        let w = witness_for(&g, &gcn, t, &[(t, 0), (t, 1), (t, 2)]);
        let (factual, _) = verify_factual(&gcn, &g, &w);
        if factual {
            let (cf, _) = verify_counterfactual(&gcn, &g, &w);
            // removing every edge that connects t to its community must
            // destroy the evidence for class 0
            assert!(
                cf,
                "cutting all of t's edges must flip or undefine its label"
            );
        }
    }

    #[test]
    fn verify_rcw_reports_levels_monotonically() {
        let (g, gcn, t) = setup();
        let bad = witness_for(&g, &gcn, t, &[(6, 7)]); // unrelated edge far from t
        let cfg = RcwConfig::with_budgets(2, 1);
        let out = verify_rcw(&gcn, &g, &bad, &cfg);
        // an edge unrelated to t can never be counterfactual: removing it
        // from G cannot flip t's label
        assert!(!out.is_counterfactual(), "unexpected level {:?}", out.level);

        let ego = witness_for(
            &g,
            &gcn,
            t,
            &[(t, 0), (t, 1), (t, 2), (0, 1), (0, 2), (1, 2)],
        );
        let out = verify_rcw(&gcn, &g, &ego, &cfg);
        assert!(out.is_factual());
        assert!(out.inference_calls > 0);
    }

    #[test]
    fn k_zero_reduces_to_cw_verification() {
        let (g, gcn, t) = setup();
        let w = witness_for(&g, &gcn, t, &[(t, 0), (t, 1), (t, 2)]);
        let cfg = RcwConfig::with_budgets(0, 0);
        let out = verify_rcw(&gcn, &g, &w, &cfg);
        assert_eq!(out.disturbances_checked, 0);
        if out.is_counterfactual() {
            assert_eq!(out.level, WitnessLevel::Robust, "k=0 robustness == CW");
        }
    }

    #[test]
    fn candidate_pairs_exclude_protected_edges() {
        let (g, _gcn, t) = setup();
        let protected: EdgeSet = [(t, 0usize)].into_iter().collect();
        let cfg = RcwConfig::with_budgets(3, 1);
        let cands = candidate_pairs(&g, &protected, &[t], &cfg);
        assert!(!cands.contains(&rcw_graph::norm_edge(t, 0)));
        assert!(!cands.is_empty());
        // all candidates are real edges under RemovalOnly
        assert!(cands.iter().all(|&(u, v)| g.has_edge(u, v)));
    }

    #[test]
    fn candidate_pairs_can_include_insertions() {
        let (g, _gcn, t) = setup();
        let cfg = RcwConfig::with_budgets(3, 1).with_strategy(DisturbanceStrategy::Mixed);
        let cands = candidate_pairs(&g, &EdgeSet::new(), &[t], &cfg);
        let insertions = cands.iter().filter(|&&(u, v)| !g.has_edge(u, v)).count();
        assert!(insertions > 0);
        assert!(insertions <= cfg.max_insert_candidates);
    }

    #[test]
    fn candidate_pool_is_bounded_by_ppr_top_m() {
        // dense double-clique: the unbounded pool is far larger than m
        let (g, _gcn, t) = setup();
        let cfg = RcwConfig::with_budgets(2, 1);
        let unbounded = candidate_pairs(&g, &EdgeSet::new(), &[t], &cfg);
        assert!(unbounded.len() > 8, "setup graph must be dense enough");
        let bounded_cfg = cfg.clone().with_max_candidate_pairs(8);
        let bounded = candidate_pairs(&g, &EdgeSet::new(), &[t], &bounded_cfg);
        assert_eq!(bounded.len(), 8);
        assert!(bounded.iter().all(|e| unbounded.contains(e)));
        // deterministic, and identical with or without a shared cache
        let cache = rcw_pagerank::PprCache::new(PRUNE_ALPHA, bounded_cfg.ppr_iters);
        let via_cache =
            candidate_pairs_cached(&g, &EdgeSet::new(), &[t], &bounded_cfg, Some(&cache));
        assert_eq!(bounded, via_cache);
        assert!(cache.stats().1 > 0, "pruning populated the cache");
        // the kept pairs are t-adjacent or in t's own community: the ones
        // carrying t's PPR mass, not the far clique's internal edges
        assert!(
            bounded
                .iter()
                .all(|&(u, v)| u == t || v == t || (u < 6 && v < 6)),
            "PPR pruning kept far-community pairs: {bounded:?}"
        );
    }

    #[test]
    fn a_fragile_witness_yields_a_counterexample() {
        // Witness = only one of t's three support edges. Removing the other
        // two support edges (a 2-disturbance outside the witness) should flip
        // the label, so the witness must not be reported 2-robust.
        let (g, gcn, t) = setup();
        let w = witness_for(&g, &gcn, t, &[(t, 0)]);
        let (factual, _) = verify_factual(&gcn, &g, &w);
        if !factual {
            return; // single edge not factual for this trained model; nothing to assert
        }
        let cfg = RcwConfig {
            k: 2,
            local_budget: 2,
            exhaustive_limit: 64,
            candidate_hops: 1,
            ..RcwConfig::default()
        };
        let out = verify_rcw(&gcn, &g, &w, &cfg);
        if out.level == WitnessLevel::Robust {
            // If it is robust even then, the counterexample machinery never
            // fired; the disturbance count must still be positive.
            assert!(out.disturbances_checked > 0);
        } else {
            assert!(out.counterexample.is_some() || out.level != WitnessLevel::Counterfactual);
        }
    }
}
