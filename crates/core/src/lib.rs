//! # rcw-core
//!
//! The paper's primary contribution: robust counterfactual witnesses (k-RCWs)
//! for GNN-based node classification.
//!
//! * [`witness`] — witness structures and verification outcomes.
//! * [`config`] — the configuration `C = (G, Gs, VT, M, k)` (budgets + knobs).
//! * [`verify`] — PTIME `verifyW` / `verifyCW` and the model-agnostic
//!   (NP-hard, bounded) `verifyRCW`.
//! * [`verify_appnp`] — the tractable `verifyRCW-APPNP` (Algorithm 1) built on
//!   policy-iteration disturbance search under (k, b)-disturbances.
//! * [`model`] — the [`VerifiableModel`] dispatch layer: one calling
//!   convention for every classifier, with APPNP overriding the default
//!   sampling strategy by the tractable policy-iteration path.
//! * [`generate`] — the `RoboGExp` expand–verify generator (Algorithm 2).
//! * [`parallel`] — `paraRoboGExp` (Algorithm 3): partitioned, multi-threaded
//!   generation with bitmap-synchronized verification.
//! * [`session`] — the per-query tier: the expand–verify sessions both
//!   drivers and the engine execute, parameterized by shared caches, plus
//!   [`SessionBudget`] — the cooperative request-deadline hook a serving
//!   layer threads into budgeted queries.
//! * [`engine`] — the long-lived [`WitnessEngine`]: engine-lifetime shared
//!   state (graph + CSR, partition, neighborhoods, PPR rows, APPNP logits),
//!   a witness store answering repeated queries warm, and
//!   [`WitnessEngine::disturb`] — mutation epochs with footprint-based cache
//!   invalidation and in-place witness repair.
//!
//! ## Quick start
//!
//! ```
//! use rcw_core::{RcwConfig, RoboGExp};
//! use rcw_gnn::{Appnp, GnnModel, TrainConfig};
//! use rcw_graph::{Graph, GraphView};
//!
//! // a tiny two-community graph
//! let mut g = Graph::new();
//! for i in 0..8 {
//!     let class = usize::from(i >= 4);
//!     let feats = if class == 0 { vec![1.0, 0.0] } else { vec![0.0, 1.0] };
//!     g.add_labeled_node(feats, class);
//! }
//! for u in 0..4 { for v in (u + 1)..4 { g.add_edge(u, v); } }
//! for u in 4..8 { for v in (u + 1)..8 { g.add_edge(u, v); } }
//! g.add_edge(3, 4);
//!
//! // a fixed deterministic APPNP classifier
//! let mut appnp = Appnp::new(&[2, 8, 2], 0.2, 10, 1);
//! let nodes: Vec<usize> = (0..8).collect();
//! appnp.train(&GraphView::full(&g), &nodes, &TrainConfig::default());
//!
//! // generate a 1-robust counterfactual witness for node 0
//! let result = RoboGExp::for_appnp(&appnp, RcwConfig::with_budgets(1, 1)).generate(&g, &[0]);
//! assert!(result.witness.subgraph.contains_node(0));
//! ```

pub mod config;
pub mod engine;
pub mod generate;
pub mod model;
pub mod parallel;
pub(crate) mod session;
pub mod verify;
pub mod verify_appnp;
pub mod witness;

pub use config::RcwConfig;
pub use engine::{
    DisturbReport, EngineCaches, EngineFaultHook, EngineSnapshot, EngineStats, EntryRepair,
    RepairOutcome, StoredWitness, WitnessEngine, FAULT_SITE_REGEN, FAULT_SITE_REPAIR,
};
pub use generate::{robogexp, robogexp_appnp, GenerationResult, GenerationStats, RoboGExp};
pub use model::{DisturbanceSearch, VerifiableModel};
pub use parallel::{ParaRoboGExp, ParallelGenerationResult, ParallelStats};
pub use session::{BudgetExceeded, SessionBudget};
pub use verify::{
    candidate_pairs, candidate_pairs_bounded, candidate_pairs_cached, candidate_pairs_in_hood,
    disturbance_preserves_cw, verify_counterfactual, verify_factual, verify_rcw, verify_rcw_cached,
    PRUNE_ALPHA,
};
pub use verify_appnp::{
    verify_rcw_appnp, verify_rcw_appnp_ctx, verify_rcw_appnp_node, verify_rcw_appnp_node_ctx,
    AppnpVerifyCtx,
};
pub use witness::{VerifyOutcome, Witness, WitnessLevel};

#[cfg(test)]
mod proptests {
    use super::*;
    use rcw_gnn::{Appnp, GnnModel, TrainConfig};
    use rcw_graph::{generators, EdgeSubgraph, Graph, GraphView};

    /// Builds a labeled two-block graph and a quick-trained APPNP on it.
    fn build(seed: u64) -> (Graph, Appnp) {
        let g = build_graph(seed);
        let appnp = train_on(&g, seed);
        (g, appnp)
    }

    /// The graph half of `build`, for sweeps that train per candidate.
    fn build_graph(seed: u64) -> Graph {
        let (mut g, blocks) = generators::stochastic_block_model(&[8, 8], 0.6, 0.05, seed);
        generators::ensure_connected(&mut g, seed);
        for (v, &b) in blocks.iter().enumerate() {
            let feats = if b == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.set_features(v, feats);
            g.set_label(v, b);
        }
        g
    }

    /// Trains the sweep's APPNP on an arbitrary 2-feature graph — split out
    /// of `build` so the failure shrinker can retrain on candidate graphs.
    fn train_on(g: &Graph, seed: u64) -> Appnp {
        let mut appnp = Appnp::new(&[2, 6, 2], 0.2, 10, seed);
        let nodes: Vec<usize> = (0..g.num_nodes()).collect();
        appnp.train(
            &GraphView::full(g),
            &nodes,
            &TrainConfig {
                epochs: 60,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
        );
        appnp
    }

    /// Shrink-on-failure harness shared by the lemma sweeps: if `check`
    /// panics on the generated graph, greedily minimize the graph (model
    /// retrained per candidate) and fail with the minimal counterexample.
    fn check_shrinking(g: &Graph, seed: u64, check: impl Fn(&Graph, &Appnp, u64)) {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let run = |g: &Graph| check(g, &train_on(g, seed), seed);
        let Err(original) = catch_unwind(AssertUnwindSafe(|| run(g))) else {
            return;
        };
        let message = original
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| original.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "non-string panic".to_string());
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let minimal = rcw_graph::shrink_graph(g, &|candidate| {
            candidate.num_nodes() >= 2 && catch_unwind(AssertUnwindSafe(|| run(candidate))).is_err()
        });
        std::panic::set_hook(prev_hook);
        panic!(
            "seed {seed}: {message}\nminimal failing graph: {}",
            rcw_graph::describe_graph(&minimal),
        );
    }

    /// Seeds exercised by the property-style tests below. The suite used to
    /// be driven by `proptest`; the workspace builds offline, so the same
    /// properties are now checked over a fixed, pinned seed sweep. Setting
    /// `RCW_LEMMA_SEEDS=<n>` widens the sweep to `n` deterministic seeds
    /// (nightly CI runs deeper fuzzing without slowing the tier-1 suite; the
    /// default is unchanged when the variable is unset) — the same convention
    /// as `RCW_REPAIR_SEEDS` in `tests/engine_repair.rs`.
    fn lemma_seeds() -> Vec<u64> {
        const DEFAULT: [u64; 8] = [0, 5, 11, 17, 23, 29, 31, 37];
        match std::env::var("RCW_LEMMA_SEEDS") {
            Ok(n) => {
                let n: u64 = n
                    .parse()
                    .expect("RCW_LEMMA_SEEDS must be a seed count, e.g. RCW_LEMMA_SEEDS=64");
                (0..n).map(|i| i.wrapping_mul(6).wrapping_add(5)).collect()
            }
            Err(_) => DEFAULT.to_vec(),
        }
    }

    /// Lemma 1 (monotonicity): a witness verified k-robust is also
    /// verified k'-robust for every k' <= k, and for every subset of its
    /// test nodes.
    #[test]
    fn lemma1_monotonicity() {
        fn case(g: &Graph, appnp: &Appnp, seed: u64) {
            let tests = vec![0usize, g.num_nodes() - 1];
            let cfg = RcwConfig::with_budgets(2, 1);
            let gen = RoboGExp::for_appnp(appnp, cfg.clone());
            let result = gen.generate(g, &tests);
            if result.level == WitnessLevel::Robust {
                // smaller k
                for k in 0..=1usize {
                    let cfg_k = RcwConfig::with_budgets(k, if k == 0 { 0 } else { 1 });
                    let out = RoboGExp::for_appnp(appnp, cfg_k).verify(g, &result.witness);
                    assert_eq!(
                        out.level,
                        WitnessLevel::Robust,
                        "k-RCW must remain robust for smaller k (seed {seed})"
                    );
                }
                // subset of test nodes
                let sub = Witness::new(
                    result.witness.subgraph.clone(),
                    vec![result.witness.test_nodes[0]],
                    vec![result.witness.labels[0]],
                );
                let out = gen.verify(g, &sub);
                assert_eq!(
                    out.level,
                    WitnessLevel::Robust,
                    "k-RCW must remain robust for a subset of test nodes (seed {seed})"
                );
            }
        }
        for seed in lemma_seeds() {
            check_shrinking(&build_graph(seed), seed, case);
        }
    }

    /// The full graph is always a (trivially) robust witness, and a
    /// node-only witness is never counterfactual on a connected graph
    /// whose prediction actually uses edges.
    #[test]
    fn trivial_witness_facts() {
        for seed in lemma_seeds() {
            let (g, appnp) = build(seed);
            let v = 0usize;
            let full_view = GraphView::full(&g);
            let label = appnp.predict(v, &full_view).unwrap();
            // whole graph: factual by construction, and no disturbance can be
            // applied to G \ G = empty, so it verifies as robust *unless* the
            // counterfactual condition (undefined remainder) is interpreted
            // strictly; we assert it is at least factual.
            let full_w = Witness::trivial_full(&g, vec![v], vec![label]);
            let (factual, _) = verify_factual(&appnp, &g, &full_w);
            assert!(factual, "seed {seed}");
            // node-only witness: may or may not be factual (features alone),
            // but its edge set is empty so G \ Gs == G and it can never be
            // counterfactual.
            let node_w = Witness::new(EdgeSubgraph::from_nodes([v]), vec![v], vec![label]);
            let (cw, _) = verify_counterfactual(&appnp, &g, &node_w);
            assert!(!cw, "seed {seed}");
        }
    }
}
