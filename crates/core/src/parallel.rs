//! paraRoboGExp — parallel witness generation for large graphs (Algorithm 3).
//!
//! The graph is fragmented with an inference-preserving edge-cut partition
//! (§VI): every worker owns one fragment, border nodes have their k-hop
//! neighborhoods replicated, and all workers share the adjacency bitmap `B`
//! plus a bitmap of already-verified node pairs so the coordinator never
//! re-verifies a disturbance a worker has already examined (Lemma 6: a local
//! disturbance that disproves robustness disproves it globally).
//!
//! Each expand–verify round proceeds as:
//! 1. **paraExpand / paraVerify** — every worker searches, inside its
//!    fragment's candidate pairs, for a disturbance that disproves the current
//!    witness (the model's [`VerifiableModel::search_disturbance`] strategy:
//!    policy iteration for APPNP, sampling otherwise) and reports the
//!    counterexample edges it wants absorbed into the witness;
//! 2. **synchronize** — the coordinator merges the verified-pair bitmaps,
//!    unions the workers' expansions into the global witness, and
//! 3. **coordinator verification** — re-verifies the merged witness globally,
//!    fanning the independent per-node checks across the workers, and decides
//!    whether to iterate or stop.

use crate::config::RcwConfig;
use crate::engine::EngineCaches;
use crate::generate::GenerationResult;
use crate::model::VerifiableModel;
use crate::session;
use rcw_gnn::{Appnp, GnnModel};
use rcw_graph::{Graph, NodeId};
use std::time::Duration;

/// Parallel-execution statistics, complementing [`GenerationStats`].
#[derive(Clone, Debug, Default)]
pub struct ParallelStats {
    /// Number of workers used.
    pub workers: usize,
    /// Parallel expand–verify rounds.
    pub rounds: usize,
    /// Counterexamples discovered by workers across all rounds.
    pub local_counterexamples: usize,
    /// Node pairs recorded in the shared verified-pair bitmap.
    pub pairs_marked: usize,
    /// Bytes of bitmap state synchronized (communication-cost model).
    pub bytes_synchronized: usize,
    /// Wall-clock time spent inside parallel sections.
    pub parallel_time: Duration,
}

/// Result of a parallel generation run.
#[derive(Clone, Debug)]
pub struct ParallelGenerationResult {
    /// The witness and sequential-style statistics.
    pub result: GenerationResult,
    /// Parallel-execution statistics.
    pub parallel: ParallelStats,
}

/// The parallel generator. Like [`crate::RoboGExp`], generic over the
/// model's verification strategy; `M` is usually inferred from the
/// constructor.
///
/// A thin wrapper over [`crate::session`]: the driver owns a private
/// [`EngineCaches`] instance, so the edge-cut partition and the test nodes'
/// k-hop neighborhoods are computed once and reused across *calls* (keyed by
/// the graph's mutation epoch), not just across expand–verify rounds.
pub struct ParaRoboGExp<'a, M: VerifiableModel + ?Sized = dyn GnnModel> {
    model: &'a M,
    cfg: RcwConfig,
    num_workers: usize,
    caches: EngineCaches,
}

impl<'a> ParaRoboGExp<'a, Appnp> {
    /// Creates a parallel generator for an APPNP classifier (tractable
    /// verification). Equivalent to [`ParaRoboGExp::new`].
    pub fn for_appnp(appnp: &'a Appnp, cfg: RcwConfig, num_workers: usize) -> Self {
        ParaRoboGExp::new(appnp, cfg, num_workers)
    }
}

impl<'a, M: VerifiableModel + ?Sized> ParaRoboGExp<'a, M> {
    /// Creates a parallel generator for any fixed deterministic GNN.
    pub fn new(model: &'a M, cfg: RcwConfig, num_workers: usize) -> Self {
        let caches = EngineCaches::new(&cfg);
        ParaRoboGExp {
            model,
            cfg,
            num_workers: num_workers.max(1),
            caches,
        }
    }

    /// Alias of [`ParaRoboGExp::new`]. Accepts concrete models and `&dyn
    /// GnnModel` trait objects alike.
    pub fn for_model(model: &'a M, cfg: RcwConfig, num_workers: usize) -> Self {
        ParaRoboGExp::new(model, cfg, num_workers)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.num_workers
    }

    /// The driver's shared cache tier (inspection and tests).
    pub fn caches(&self) -> &EngineCaches {
        &self.caches
    }

    /// Generates a witness using the coordinator/worker scheme: one parallel
    /// session over the driver's cache tier, so a second call on the same
    /// (unmutated) graph reuses the partition and neighborhoods.
    ///
    /// # Panics
    /// Panics if `test_nodes` is empty or contains an invalid node id.
    pub fn generate(&self, graph: &Graph, test_nodes: &[NodeId]) -> ParallelGenerationResult {
        session::run_parallel(
            self.model,
            graph,
            &self.caches,
            &self.cfg,
            self.num_workers,
            test_nodes,
            None,
            &session::SessionBudget::unlimited(),
        )
        .expect("unlimited session budget cannot expire")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::RoboGExp;
    use crate::witness::WitnessLevel;
    use rcw_gnn::{Gcn, TrainConfig};
    use rcw_graph::GraphView;

    fn setup() -> (Graph, Gcn, Appnp, Vec<usize>) {
        let mut g = Graph::new();
        for i in 0..16 {
            let class = usize::from(i >= 8);
            let feats = if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..8 {
            for v in (u + 1)..8 {
                if (u + v) % 2 == 0 {
                    g.add_edge(u, v);
                }
            }
        }
        for u in 8..16 {
            for v in (u + 1)..16 {
                if (u + v) % 2 == 0 {
                    g.add_edge(u, v);
                }
            }
        }
        g.add_edge(7, 8);
        let t0 = g.add_labeled_node(vec![0.0, 0.0], 0);
        g.add_edge(t0, 0);
        g.add_edge(t0, 2);
        let t1 = g.add_labeled_node(vec![0.0, 0.0], 1);
        g.add_edge(t1, 8);
        g.add_edge(t1, 10);
        let view = GraphView::full(&g);
        let train: Vec<usize> = (0..16).collect();
        let tc = TrainConfig {
            epochs: 120,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        let mut gcn = Gcn::new(&[2, 8, 2], 2);
        gcn.train(&view, &train, &tc);
        let mut appnp = Appnp::new(&[2, 8, 2], 0.2, 12, 4);
        appnp.train(&view, &train, &tc);
        (g, gcn, appnp, vec![t0, t1])
    }

    #[test]
    fn parallel_appnp_generation_produces_a_valid_witness() {
        let (g, _gcn, appnp, tests) = setup();
        let cfg = RcwConfig::with_budgets(2, 1);
        let gen = ParaRoboGExp::for_appnp(&appnp, cfg.clone(), 3);
        assert_eq!(gen.workers(), 3);
        let out = gen.generate(&g, &tests);
        assert!(out.parallel.rounds >= 1);
        assert!(out.result.stats.inference_calls > 0);
        for &t in &tests {
            assert!(out.result.witness.subgraph.contains_node(t));
        }
        // the parallel result must verify to the level it reports
        let seq = RoboGExp::for_appnp(&appnp, cfg);
        let recheck = seq.verify(&g, &out.result.witness);
        assert_eq!(recheck.level, out.result.level);
    }

    #[test]
    fn parallel_and_sequential_reach_comparable_levels() {
        let (g, _gcn, appnp, tests) = setup();
        let cfg = RcwConfig::with_budgets(2, 1);
        let seq = RoboGExp::for_appnp(&appnp, cfg.clone()).generate(&g, &tests);
        let par = ParaRoboGExp::for_appnp(&appnp, cfg, 2).generate(&g, &tests);
        let rank = |l: WitnessLevel| match l {
            WitnessLevel::NotAWitness => 0,
            WitnessLevel::Factual => 1,
            WitnessLevel::Counterfactual => 2,
            WitnessLevel::Robust => 3,
        };
        // The parallel algorithm explores at least as many disturbances, so it
        // must not end up in a strictly weaker class than sequential by more
        // than one level (both are best-effort searches).
        assert!(
            rank(par.result.level) + 1 >= rank(seq.level),
            "parallel {:?} vs sequential {:?}",
            par.result.level,
            seq.level
        );
    }

    #[test]
    fn generic_model_path_works_with_multiple_workers() {
        let (g, gcn, _appnp, tests) = setup();
        let cfg = RcwConfig {
            k: 2,
            local_budget: 1,
            sampled_disturbances: 6,
            ..RcwConfig::default()
        };
        // dispatch through the type-erased layer, as the bench harness does
        let model: &dyn GnnModel = &gcn;
        let out = ParaRoboGExp::for_model(model, cfg, 4).generate(&g, &tests);
        assert_eq!(out.parallel.workers, 4);
        assert!(out.result.witness.subgraph.is_subgraph_of(&g) || out.result.witness.size() > 0);
        assert!(out.parallel.bytes_synchronized > 0);
    }

    #[test]
    fn single_worker_degenerates_gracefully() {
        let (g, _gcn, appnp, tests) = setup();
        let cfg = RcwConfig::with_budgets(1, 1);
        let out = ParaRoboGExp::for_appnp(&appnp, cfg, 1).generate(&g, &tests);
        assert_eq!(out.parallel.workers, 1);
        assert!(out.result.witness.subgraph.num_edges() <= g.num_edges());
    }

    #[test]
    fn worker_reports_mark_examined_pairs() {
        let (g, _gcn, appnp, tests) = setup();
        let cfg = RcwConfig::with_budgets(2, 1);
        let out = ParaRoboGExp::for_appnp(&appnp, cfg, 2).generate(&g, &tests);
        // pairs_marked is monotone in rounds; with k>0 and candidates present
        // the workers must have examined something
        assert!(out.parallel.pairs_marked > 0 || out.result.level == WitnessLevel::Robust);
    }
}
