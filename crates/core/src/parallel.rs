//! paraRoboGExp — parallel witness generation for large graphs (Algorithm 3).
//!
//! The graph is fragmented with an inference-preserving edge-cut partition
//! (§VI): every worker owns one fragment, border nodes have their k-hop
//! neighborhoods replicated, and all workers share the adjacency bitmap `B`
//! plus a bitmap of already-verified node pairs so the coordinator never
//! re-verifies a disturbance a worker has already examined (Lemma 6: a local
//! disturbance that disproves robustness disproves it globally).
//!
//! Each expand–verify round proceeds as:
//! 1. **paraExpand / paraVerify** — every worker searches, inside its
//!    fragment's candidate pairs, for a disturbance that disproves the current
//!    witness (the model's [`VerifiableModel::search_disturbance`] strategy:
//!    policy iteration for APPNP, sampling otherwise) and reports the
//!    counterexample edges it wants absorbed into the witness;
//! 2. **synchronize** — the coordinator merges the verified-pair bitmaps,
//!    unions the workers' expansions into the global witness, and
//! 3. **coordinator verification** — re-verifies the merged witness globally,
//!    fanning the independent per-node checks across the workers, and decides
//!    whether to iterate or stop.

use crate::config::RcwConfig;
use crate::generate::{GenerationResult, GenerationStats, RoboGExp};
use crate::model::VerifiableModel;
use crate::verify::candidate_pairs_in_hood;
use crate::witness::{VerifyOutcome, Witness, WitnessLevel};
use rcw_gnn::{Appnp, GnnModel};
use rcw_graph::{
    edge_cut_partition, traversal::k_hop_neighborhood_multi, AdjacencyBitmap, Edge, Graph,
    GraphView, NodeId, Partition, VerifiedPairBitmap,
};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Parallel-execution statistics, complementing [`GenerationStats`].
#[derive(Clone, Debug, Default)]
pub struct ParallelStats {
    /// Number of workers used.
    pub workers: usize,
    /// Parallel expand–verify rounds.
    pub rounds: usize,
    /// Counterexamples discovered by workers across all rounds.
    pub local_counterexamples: usize,
    /// Node pairs recorded in the shared verified-pair bitmap.
    pub pairs_marked: usize,
    /// Bytes of bitmap state synchronized (communication-cost model).
    pub bytes_synchronized: usize,
    /// Wall-clock time spent inside parallel sections.
    pub parallel_time: Duration,
}

/// Result of a parallel generation run.
#[derive(Clone, Debug)]
pub struct ParallelGenerationResult {
    /// The witness and sequential-style statistics.
    pub result: GenerationResult,
    /// Parallel-execution statistics.
    pub parallel: ParallelStats,
}

/// The parallel generator. Like [`RoboGExp`], generic over the model's
/// verification strategy; `M` is usually inferred from the constructor.
pub struct ParaRoboGExp<'a, M: VerifiableModel + ?Sized = dyn GnnModel> {
    model: &'a M,
    cfg: RcwConfig,
    num_workers: usize,
}

impl<'a> ParaRoboGExp<'a, Appnp> {
    /// Creates a parallel generator for an APPNP classifier (tractable
    /// verification). Equivalent to [`ParaRoboGExp::new`].
    pub fn for_appnp(appnp: &'a Appnp, cfg: RcwConfig, num_workers: usize) -> Self {
        ParaRoboGExp::new(appnp, cfg, num_workers)
    }
}

impl<'a, M: VerifiableModel + ?Sized> ParaRoboGExp<'a, M> {
    /// Creates a parallel generator for any fixed deterministic GNN.
    pub fn new(model: &'a M, cfg: RcwConfig, num_workers: usize) -> Self {
        ParaRoboGExp {
            model,
            cfg,
            num_workers: num_workers.max(1),
        }
    }

    /// Alias of [`ParaRoboGExp::new`]. Accepts concrete models and `&dyn
    /// GnnModel` trait objects alike.
    pub fn for_model(model: &'a M, cfg: RcwConfig, num_workers: usize) -> Self {
        ParaRoboGExp::new(model, cfg, num_workers)
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.num_workers
    }

    /// Generates a witness using the coordinator/worker scheme.
    pub fn generate(&self, graph: &Graph, test_nodes: &[NodeId]) -> ParallelGenerationResult {
        assert!(
            !test_nodes.is_empty(),
            "ParaRoboGExp::generate: empty test set"
        );
        self.cfg.validate().expect("invalid RcwConfig");
        let start = Instant::now();
        let model = self.model.as_gnn();
        let mut stats = GenerationStats::default();
        let mut pstats = ParallelStats {
            workers: self.num_workers,
            ..ParallelStats::default()
        };

        // Shared structures: adjacency bitmap (built once) and verified pairs.
        let adjacency_bitmap = AdjacencyBitmap::from_graph(graph);
        let mut verified_pairs = VerifiedPairBitmap::new(graph.num_nodes());
        pstats.bytes_synchronized += adjacency_bitmap.byte_size();

        // Inference-preserving partition: replicate the model's receptive field.
        let hops = model.num_layers().max(1);
        let partition: Partition = edge_cut_partition(graph, self.num_workers, hops);
        // Surplus workers beyond the fragment count would all re-search the
        // last fragment's candidates; clamp the search fan-out instead.
        let active_workers = self.num_workers.min(partition.num_fragments()).max(1);
        // The candidate neighborhood depends only on the host graph, the test
        // nodes and the hop budget — compute it once, reuse it every round.
        let hood = k_hop_neighborhood_multi(graph, test_nodes, self.cfg.candidate_hops);

        // Full-graph labels of the test nodes.
        let full = GraphView::full(graph);
        let labels: Vec<usize> = test_nodes
            .iter()
            .map(|&v| {
                stats.inference_calls += 1;
                model.predict(v, &full).expect("valid node")
            })
            .collect();

        // Phase 1 (paraExpand): factual / counterfactual bootstrap of every
        // test node, distributed across the workers — each worker expands the
        // witness for its chunk of test nodes, the coordinator unions the
        // partial witnesses (the test nodes' expansions are independent).
        let chunk = test_nodes.len().div_ceil(self.num_workers);
        let partial: Mutex<Vec<(rcw_graph::EdgeSubgraph, usize)>> = Mutex::new(Vec::new());
        let boot_start = Instant::now();
        std::thread::scope(|scope| {
            for nodes in test_nodes.chunks(chunk.max(1)) {
                let cfg = bootstrap_config(&self.cfg);
                let partial_ref = &partial;
                let model_ref = self.model;
                scope.spawn(move || {
                    let local = RoboGExp::new(model_ref, cfg);
                    let result = local.generate(graph, nodes);
                    partial_ref
                        .lock()
                        .expect("bootstrap mutex poisoned")
                        .push((result.witness.subgraph, result.stats.inference_calls));
                });
            }
        });
        pstats.parallel_time += boot_start.elapsed();
        let mut merged = rcw_graph::EdgeSubgraph::from_nodes(test_nodes.iter().copied());
        for (sub, calls) in partial.into_inner().expect("bootstrap mutex poisoned") {
            merged.extend(&sub);
            stats.inference_calls += calls;
        }
        let mut witness = Witness::new(merged, test_nodes.to_vec(), labels.clone());

        // Phase 2: parallel robustness rounds.
        let mut level = WitnessLevel::NotAWitness;
        for round in 0..self.cfg.max_expand_rounds {
            pstats.rounds = round + 1;
            stats.expand_rounds = round + 1;

            // Global candidate pairs not yet verified, split by fragment
            // owner. One active worker per fragment; each pair is handed to
            // the worker(s) owning an endpoint and counted once in the shared
            // bitmap.
            let all_candidates =
                candidate_pairs_in_hood(graph, witness.edges(), test_nodes, &hood, &self.cfg);
            let fresh: Vec<Edge> = all_candidates
                .into_iter()
                .filter(|&(u, v)| !verified_pairs.is_marked(u, v))
                .collect();
            let per_worker: Vec<Vec<Edge>> = (0..active_workers)
                .map(|w| {
                    fresh
                        .iter()
                        .copied()
                        .filter(|&(u, v)| {
                            let frag = &partition.fragments[w];
                            frag.owns(u) || frag.owns(v)
                        })
                        .collect()
                })
                .collect();
            // Each worker is additionally responsible only for the test nodes
            // its fragment owns (falling back to round-robin so every test
            // node has exactly one responsible worker).
            let nodes_per_worker: Vec<(Vec<NodeId>, Vec<usize>)> = (0..active_workers)
                .map(|w| {
                    let mut nodes = Vec::new();
                    let mut node_labels = Vec::new();
                    for (i, &v) in test_nodes.iter().enumerate() {
                        let frag = &partition.fragments[w];
                        let owner = partition.owner.get(v).copied().unwrap_or(0);
                        let responsible = if owner < partition.num_fragments() {
                            owner == frag.id
                        } else {
                            i % active_workers == w
                        };
                        if responsible {
                            nodes.push(v);
                            node_labels.push(labels[i]);
                        }
                    }
                    (nodes, node_labels)
                })
                .collect();

            let reports = Mutex::new(Vec::<crate::model::DisturbanceSearch>::new());
            let par_start = Instant::now();
            std::thread::scope(|scope| {
                for (wid, cands) in per_worker.iter().enumerate() {
                    let witness_ref = &witness;
                    let reports_ref = &reports;
                    let model_ref = self.model;
                    let cfg = &self.cfg;
                    let (own_nodes, own_labels) = &nodes_per_worker[wid];
                    scope.spawn(move || {
                        let report = model_ref.search_disturbance(
                            graph,
                            witness_ref,
                            own_nodes,
                            own_labels,
                            cands,
                            cfg,
                            wid as u64,
                        );
                        reports_ref
                            .lock()
                            .expect("worker mutex poisoned")
                            .push(report);
                    });
                }
            });
            pstats.parallel_time += par_start.elapsed();

            // Synchronize: mark every candidate pair handed to a worker as
            // examined, merge the reports, collect counterexamples.
            for cands in &per_worker {
                for &(u, v) in cands {
                    verified_pairs.mark(u, v);
                }
            }
            let reports = reports.into_inner().expect("worker mutex poisoned");
            let mut any_counterexample = false;
            let mut grew = false;
            for report in reports {
                stats.inference_calls += report.inference_calls;
                stats.disturbances_verified += report.disturbances_checked;
                if let Some(ce) = report.counterexample {
                    any_counterexample = true;
                    pstats.local_counterexamples += 1;
                    for (u, v) in ce.iter() {
                        if graph.has_edge(u, v) && !witness.subgraph.contains_edge(u, v) {
                            witness.subgraph.add_edge(u, v);
                            grew = true;
                        }
                    }
                }
            }
            pstats.bytes_synchronized += verified_pairs.byte_size();
            pstats.pairs_marked = verified_pairs.count();

            // Coordinator-side verification of the merged witness. The
            // per-node checks are independent (Lemma 6), so they are fanned
            // out across the workers for every model family (paraverifyRCW).
            let outcome = parallel_verify(self.model, graph, &witness, &self.cfg, self.num_workers);
            stats.inference_calls += outcome.inference_calls;
            stats.disturbances_verified += outcome.disturbances_checked;
            level = outcome.level;
            if outcome.level == WitnessLevel::Robust {
                break;
            }
            if let Some(ce) = outcome.counterexample {
                for (u, v) in ce.iter() {
                    if graph.has_edge(u, v) && !witness.subgraph.contains_edge(u, v) {
                        witness.subgraph.add_edge(u, v);
                        grew = true;
                    }
                }
            }
            if !any_counterexample && !grew {
                // fixed point: nothing left to explore or absorb
                break;
            }
            if witness.subgraph.num_edges() >= graph.num_edges() {
                witness = Witness::trivial_full(graph, test_nodes.to_vec(), labels.clone());
                level = WitnessLevel::Robust;
                break;
            }
        }

        stats.elapsed = start.elapsed();
        let nontrivial = witness.is_nontrivial(graph);
        ParallelGenerationResult {
            result: GenerationResult {
                witness,
                level,
                nontrivial,
                stats,
            },
            parallel: pstats,
        }
    }
}

/// Coordinator verification fanned out over worker threads: each worker
/// verifies a chunk of test nodes with the model's per-node verifier; the
/// coordinator keeps the weakest level and the first counterexample (Lemma 6
/// makes any locally found counterexample globally valid).
fn parallel_verify<M: VerifiableModel + ?Sized>(
    model: &M,
    graph: &Graph,
    witness: &Witness,
    cfg: &RcwConfig,
    num_workers: usize,
) -> VerifyOutcome {
    let nodes = witness.test_nodes.clone();
    if nodes.len() <= 1 || num_workers <= 1 {
        return model.verify_rcw(graph, witness, cfg);
    }
    let chunk = nodes.len().div_ceil(num_workers);
    let outcomes: Mutex<Vec<VerifyOutcome>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for part in nodes.chunks(chunk.max(1)) {
            let outcomes_ref = &outcomes;
            scope.spawn(move || {
                for &v in part {
                    let out = model.verify_rcw_node(graph, witness, v, cfg);
                    outcomes_ref
                        .lock()
                        .expect("verify mutex poisoned")
                        .push(out);
                }
            });
        }
    });
    let mut merged = VerifyOutcome::at_level(WitnessLevel::Robust);
    for out in outcomes.into_inner().expect("verify mutex poisoned") {
        merged.inference_calls += out.inference_calls;
        merged.disturbances_checked += out.disturbances_checked;
        if rank(out.level) < rank(merged.level) {
            merged.level = out.level;
        }
        if merged.counterexample.is_none() {
            merged.counterexample = out.counterexample;
        }
    }
    merged
}

fn rank(level: WitnessLevel) -> u8 {
    match level {
        WitnessLevel::NotAWitness => 0,
        WitnessLevel::Factual => 1,
        WitnessLevel::Counterfactual => 2,
        WitnessLevel::Robust => 3,
    }
}

/// The bootstrap (phase 1) reuses the sequential generator but with zero
/// robustness rounds — robustness is handled by the parallel loop.
fn bootstrap_config(cfg: &RcwConfig) -> RcwConfig {
    RcwConfig {
        max_expand_rounds: 1,
        ..cfg.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_gnn::{Appnp, Gcn, TrainConfig};

    fn setup() -> (Graph, Gcn, Appnp, Vec<usize>) {
        let mut g = Graph::new();
        for i in 0..16 {
            let class = usize::from(i >= 8);
            let feats = if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..8 {
            for v in (u + 1)..8 {
                if (u + v) % 2 == 0 {
                    g.add_edge(u, v);
                }
            }
        }
        for u in 8..16 {
            for v in (u + 1)..16 {
                if (u + v) % 2 == 0 {
                    g.add_edge(u, v);
                }
            }
        }
        g.add_edge(7, 8);
        let t0 = g.add_labeled_node(vec![0.0, 0.0], 0);
        g.add_edge(t0, 0);
        g.add_edge(t0, 2);
        let t1 = g.add_labeled_node(vec![0.0, 0.0], 1);
        g.add_edge(t1, 8);
        g.add_edge(t1, 10);
        let view = GraphView::full(&g);
        let train: Vec<usize> = (0..16).collect();
        let tc = TrainConfig {
            epochs: 120,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        let mut gcn = Gcn::new(&[2, 8, 2], 2);
        gcn.train(&view, &train, &tc);
        let mut appnp = Appnp::new(&[2, 8, 2], 0.2, 12, 4);
        appnp.train(&view, &train, &tc);
        (g, gcn, appnp, vec![t0, t1])
    }

    #[test]
    fn parallel_appnp_generation_produces_a_valid_witness() {
        let (g, _gcn, appnp, tests) = setup();
        let cfg = RcwConfig::with_budgets(2, 1);
        let gen = ParaRoboGExp::for_appnp(&appnp, cfg.clone(), 3);
        assert_eq!(gen.workers(), 3);
        let out = gen.generate(&g, &tests);
        assert!(out.parallel.rounds >= 1);
        assert!(out.result.stats.inference_calls > 0);
        for &t in &tests {
            assert!(out.result.witness.subgraph.contains_node(t));
        }
        // the parallel result must verify to the level it reports
        let seq = RoboGExp::for_appnp(&appnp, cfg);
        let recheck = seq.verify(&g, &out.result.witness);
        assert_eq!(recheck.level, out.result.level);
    }

    #[test]
    fn parallel_and_sequential_reach_comparable_levels() {
        let (g, _gcn, appnp, tests) = setup();
        let cfg = RcwConfig::with_budgets(2, 1);
        let seq = RoboGExp::for_appnp(&appnp, cfg.clone()).generate(&g, &tests);
        let par = ParaRoboGExp::for_appnp(&appnp, cfg, 2).generate(&g, &tests);
        let rank = |l: WitnessLevel| match l {
            WitnessLevel::NotAWitness => 0,
            WitnessLevel::Factual => 1,
            WitnessLevel::Counterfactual => 2,
            WitnessLevel::Robust => 3,
        };
        // The parallel algorithm explores at least as many disturbances, so it
        // must not end up in a strictly weaker class than sequential by more
        // than one level (both are best-effort searches).
        assert!(
            rank(par.result.level) + 1 >= rank(seq.level),
            "parallel {:?} vs sequential {:?}",
            par.result.level,
            seq.level
        );
    }

    #[test]
    fn generic_model_path_works_with_multiple_workers() {
        let (g, gcn, _appnp, tests) = setup();
        let cfg = RcwConfig {
            k: 2,
            local_budget: 1,
            sampled_disturbances: 6,
            ..RcwConfig::default()
        };
        // dispatch through the type-erased layer, as the bench harness does
        let model: &dyn GnnModel = &gcn;
        let out = ParaRoboGExp::for_model(model, cfg, 4).generate(&g, &tests);
        assert_eq!(out.parallel.workers, 4);
        assert!(out.result.witness.subgraph.is_subgraph_of(&g) || out.result.witness.size() > 0);
        assert!(out.parallel.bytes_synchronized > 0);
    }

    #[test]
    fn single_worker_degenerates_gracefully() {
        let (g, _gcn, appnp, tests) = setup();
        let cfg = RcwConfig::with_budgets(1, 1);
        let out = ParaRoboGExp::for_appnp(&appnp, cfg, 1).generate(&g, &tests);
        assert_eq!(out.parallel.workers, 1);
        assert!(out.result.witness.subgraph.num_edges() <= g.num_edges());
    }

    #[test]
    fn worker_reports_mark_examined_pairs() {
        let (g, _gcn, appnp, tests) = setup();
        let cfg = RcwConfig::with_budgets(2, 1);
        let out = ParaRoboGExp::for_appnp(&appnp, cfg, 2).generate(&g, &tests);
        // pairs_marked is monotone in rounds; with k>0 and candidates present
        // the workers must have examined something
        assert!(out.parallel.pairs_marked > 0 || out.result.level == WitnessLevel::Robust);
    }
}
