//! RoboGExp — generation of k-robust counterfactual witnesses (Algorithm 2).
//!
//! The generator follows the paper's "expand–verify" strategy:
//!
//! 1. start from the trivial witness containing only the test nodes;
//! 2. for each test node, *expand* the witness with the node pairs most
//!    responsible for its label — first enough of its receptive field to make
//!    the witness factual, then the support edges whose removal flips the
//!    label (counterfactual);
//! 3. *verify* robustness: find the worst admissible (k, b)-disturbance (the
//!    policy-iteration search for APPNP, enumeration/sampling otherwise); if a
//!    disturbance disproves robustness, absorb its edges into the witness —
//!    pairs inside the witness can no longer be disturbed — and repeat.
//!
//! The procedure always terminates: the witness grows monotonically and is
//! bounded by the host graph (the trivial k-RCW). When no non-trivial robust
//! witness exists the generator returns its best effort together with the
//! strongest verified level, which is what the paper's quality metrics
//! (Fidelity+/−, GED) evaluate.

use crate::config::RcwConfig;
use crate::model::VerifiableModel;
use crate::witness::{VerifyOutcome, Witness, WitnessLevel};
use rcw_gnn::{Appnp, GnnModel};
use rcw_graph::{traversal::k_hop_neighborhood, EdgeSubgraph, Graph, GraphView, NodeId};
use std::time::{Duration, Instant};

/// Counters and timing collected during generation.
#[derive(Clone, Debug, Default)]
pub struct GenerationStats {
    /// Total model inference calls.
    pub inference_calls: usize,
    /// Disturbances examined across all verification rounds.
    pub disturbances_verified: usize,
    /// Expand–verify rounds executed.
    pub expand_rounds: usize,
    /// Wall-clock time of the generation call.
    pub elapsed: Duration,
}

/// Result of a generation run.
#[derive(Clone, Debug)]
pub struct GenerationResult {
    /// The generated witness.
    pub witness: Witness,
    /// The strongest level the final witness was verified at.
    pub level: WitnessLevel,
    /// Whether the witness is non-trivial (has edges, is not the whole graph).
    pub nontrivial: bool,
    /// Counters and timing.
    pub stats: GenerationStats,
}

/// The RoboGExp generator, generic over how the model verifies witnesses.
///
/// `M` is usually inferred: a concrete model type ([`Appnp`] gets the
/// tractable verification path through its [`VerifiableModel`] overrides) or
/// the type-erased `dyn GnnModel` (model-agnostic sampling path).
pub struct RoboGExp<'a, M: VerifiableModel + ?Sized = dyn GnnModel> {
    model: &'a M,
    cfg: RcwConfig,
}

impl<'a> RoboGExp<'a, Appnp> {
    /// Creates a generator for an APPNP classifier (tractable verification).
    /// Equivalent to [`RoboGExp::new`]; kept as the paper-facing name.
    pub fn for_appnp(appnp: &'a Appnp, cfg: RcwConfig) -> Self {
        RoboGExp::new(appnp, cfg)
    }
}

impl<'a, M: VerifiableModel + ?Sized> RoboGExp<'a, M> {
    /// Creates a generator for any fixed deterministic GNN. The verification
    /// strategy is whatever the model's [`VerifiableModel`] impl provides.
    pub fn new(model: &'a M, cfg: RcwConfig) -> Self {
        RoboGExp { model, cfg }
    }

    /// Alias of [`RoboGExp::new`]. Accepts concrete models and `&dyn
    /// GnnModel` trait objects alike.
    pub fn for_model(model: &'a M, cfg: RcwConfig) -> Self {
        RoboGExp::new(model, cfg)
    }

    /// The configuration in use.
    pub fn config(&self) -> &RcwConfig {
        &self.cfg
    }

    /// The model being explained, as the plain inference interface.
    pub fn model(&self) -> &'a dyn GnnModel {
        self.model.as_gnn()
    }

    /// Verification dispatch used by the generator and exposed for callers
    /// that want to re-verify a witness.
    pub fn verify(&self, graph: &Graph, witness: &Witness) -> VerifyOutcome {
        self.model.verify_rcw(graph, witness, &self.cfg)
    }

    /// Generates a k-RCW (best effort) for the given test nodes.
    ///
    /// # Panics
    /// Panics if `test_nodes` is empty or contains an invalid node id.
    pub fn generate(&self, graph: &Graph, test_nodes: &[NodeId]) -> GenerationResult {
        assert!(!test_nodes.is_empty(), "RoboGExp::generate: empty test set");
        assert!(
            test_nodes.iter().all(|&v| graph.contains_node(v)),
            "RoboGExp::generate: invalid test node"
        );
        self.cfg.validate().expect("invalid RcwConfig");
        let start = Instant::now();
        let model = self.model.as_gnn();
        let mut stats = GenerationStats::default();

        // M(v, G) for every test node.
        let full = GraphView::full(graph);
        let labels: Vec<usize> = test_nodes
            .iter()
            .map(|&v| {
                stats.inference_calls += 1;
                model.predict(v, &full).expect("valid node")
            })
            .collect();

        let mut subgraph = EdgeSubgraph::from_nodes(test_nodes.iter().copied());

        // Phase 1: per-node expansion for factuality and counterfactuality.
        for (i, &v) in test_nodes.iter().enumerate() {
            self.ensure_factual(graph, model, v, labels[i], &mut subgraph, &mut stats);
            self.ensure_counterfactual(graph, model, v, labels[i], &mut subgraph, &mut stats);
        }

        // Phase 2: robustness expand–verify loop.
        let mut witness = Witness::new(subgraph, test_nodes.to_vec(), labels.clone());
        let mut level = WitnessLevel::NotAWitness;
        for round in 0..self.cfg.max_expand_rounds {
            stats.expand_rounds = round + 1;
            let outcome = self.verify(graph, &witness);
            stats.inference_calls += outcome.inference_calls;
            stats.disturbances_verified += outcome.disturbances_checked;
            level = outcome.level;
            match outcome.level {
                WitnessLevel::Robust => break,
                WitnessLevel::Counterfactual => {
                    // Absorb the counterexample's existing edges; pairs inside
                    // the witness cannot be disturbed any more.
                    let Some(ce) = outcome.counterexample else {
                        break;
                    };
                    let mut grew = false;
                    for (u, v) in ce.iter() {
                        if graph.has_edge(u, v) && !witness.subgraph.contains_edge(u, v) {
                            witness.subgraph.add_edge(u, v);
                            grew = true;
                        }
                    }
                    if !grew {
                        // counterexample consists purely of insertions we
                        // cannot protect against by growing the witness
                        break;
                    }
                    // growing the witness may have broken factuality of other
                    // nodes only if it removed nothing — it cannot; but it may
                    // have made the remainder too weak to stay counterfactual,
                    // which the next verification round will detect.
                }
                WitnessLevel::Factual | WitnessLevel::NotAWitness => {
                    // Re-run the per-node expansion: some node lost factuality
                    // or counterfactuality (e.g. after the witness grew).
                    let mut sg = witness.subgraph.clone();
                    for (i, &v) in test_nodes.iter().enumerate() {
                        self.ensure_factual(graph, model, v, labels[i], &mut sg, &mut stats);
                        self.ensure_counterfactual(graph, model, v, labels[i], &mut sg, &mut stats);
                    }
                    if sg == witness.subgraph {
                        // no further progress possible
                        break;
                    }
                    witness.subgraph = sg;
                }
            }
            if witness.subgraph.num_edges() >= graph.num_edges() {
                // degenerated to the trivial k-RCW `G`
                witness = Witness::trivial_full(graph, test_nodes.to_vec(), labels.clone());
                level = WitnessLevel::Robust;
                break;
            }
        }

        stats.elapsed = start.elapsed();
        let nontrivial = witness.is_nontrivial(graph);
        GenerationResult {
            witness,
            level,
            nontrivial,
            stats,
        }
    }

    /// Expands the witness around `v` until `M(v, Gs) = l`, adding the ego
    /// network hop by hop (the L-hop receptive field reproduces the full-graph
    /// prediction for message-passing GNNs).
    fn ensure_factual(
        &self,
        graph: &Graph,
        model: &dyn GnnModel,
        v: NodeId,
        label: usize,
        subgraph: &mut EdgeSubgraph,
        stats: &mut GenerationStats,
    ) {
        let max_hops = self
            .cfg
            .candidate_hops
            .max(model.num_layers())
            .min(graph.num_nodes());
        for hop in 1..=max_hops {
            let view = GraphView::restricted_to(graph, subgraph.edges());
            stats.inference_calls += 1;
            if model.predict(v, &view) == Some(label) {
                return;
            }
            // add all edges with at least one endpoint within `hop - 1` hops of v
            let inner = k_hop_neighborhood(graph, v, hop - 1);
            for &u in &inner {
                for w in graph.neighbors(u) {
                    subgraph.add_edge(u, w);
                }
            }
        }
        // final check is implicit; if still not factual the verification
        // rounds will report it
    }

    /// Expands the witness around `v` until removing it flips the label,
    /// absorbing the strongest remaining support edges near `v`.
    fn ensure_counterfactual(
        &self,
        graph: &Graph,
        model: &dyn GnnModel,
        v: NodeId,
        label: usize,
        subgraph: &mut EdgeSubgraph,
        stats: &mut GenerationStats,
    ) {
        // quick exit: already counterfactual for v
        {
            let remainder = GraphView::without(graph, subgraph.edges());
            stats.inference_calls += 1;
            if model.predict(v, &remainder) != Some(label) {
                return;
            }
        }

        // Candidate support edges near v, nearest first: edges incident to v,
        // then edges among its neighborhood, capped so the witness stays concise.
        let hood = k_hop_neighborhood(graph, v, self.cfg.candidate_hops.min(2));
        let cap = (graph.degree(v) * 3 + 12).min(48);
        let mut candidates: Vec<(NodeId, NodeId)> = Vec::new();
        for u in graph.neighbors(v) {
            candidates.push((v, u));
        }
        'outer: for &u in &hood {
            if u == v {
                continue;
            }
            for w in graph.neighbors(u) {
                if w != v && hood.contains(&w) {
                    candidates.push((u, w));
                    if candidates.len() >= cap {
                        break 'outer;
                    }
                }
            }
        }

        // Score every candidate by how much removing it (together with the
        // current witness) hurts the label's margin — the pairs "most likely
        // to change the label if flipped" that Procedure Expand targets. Each
        // trial view is the shared remainder view plus one extra removal (a
        // single override), scored through the batched localized entry point.
        let base_removed = GraphView::without(graph, subgraph.edges());
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        let mut trial_views: Vec<GraphView<'_>> = Vec::new();
        for &(a, b) in &candidates {
            if subgraph.contains_edge(a, b) || !graph.has_edge(a, b) {
                continue;
            }
            let mut view = base_removed.clone();
            view.remove_edge(a, b);
            pairs.push((a, b));
            trial_views.push(view);
        }
        stats.inference_calls += trial_views.len();
        let margins = model.margin_many(v, label, &trial_views);
        let mut scored: Vec<(f64, (NodeId, NodeId))> = margins.into_iter().zip(pairs).collect();
        scored.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap_or(std::cmp::Ordering::Equal));

        // Greedily absorb the most label-critical support edges until the
        // remainder flips, with a hard bound so that an unattainable
        // counterfactual does not blow the witness up.
        let max_add = graph.degree(v).max(3) + 6;
        let mut added = 0usize;
        let mut added_edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut flipped = false;
        for (_, (a, b)) in scored {
            if added >= max_add {
                break;
            }
            if subgraph.contains_edge(a, b) {
                continue;
            }
            subgraph.add_edge(a, b);
            added_edges.push((a, b));
            added += 1;
            let remainder = GraphView::without(graph, subgraph.edges());
            stats.inference_calls += 1;
            if model.predict(v, &remainder) != Some(label) {
                flipped = true;
                break; // counterfactual achieved
            }
        }
        if flipped {
            // Backward pruning pass: drop absorbed edges that are not needed
            // for the flip, keeping the witness concise (the paper's RCWs are
            // roughly half the size of the baselines' explanations).
            for &(a, b) in added_edges.iter().rev().skip(1) {
                subgraph.remove_edge(a, b);
                let remainder = GraphView::without(graph, subgraph.edges());
                stats.inference_calls += 1;
                let still_flipped = model.predict(v, &remainder) != Some(label);
                let view_only = GraphView::restricted_to(graph, subgraph.edges());
                stats.inference_calls += 1;
                let still_factual = model.predict(v, &view_only) == Some(label);
                if !(still_flipped && still_factual) {
                    subgraph.add_edge(a, b);
                }
            }
        }
    }
}

/// Convenience free function mirroring the paper's naming: generates a k-RCW
/// with an APPNP classifier (tractable verification path).
pub fn robogexp_appnp(
    appnp: &Appnp,
    graph: &Graph,
    test_nodes: &[NodeId],
    cfg: &RcwConfig,
) -> GenerationResult {
    RoboGExp::for_appnp(appnp, cfg.clone()).generate(graph, test_nodes)
}

/// Convenience free function for arbitrary models.
pub fn robogexp(
    model: &dyn GnnModel,
    graph: &Graph,
    test_nodes: &[NodeId],
    cfg: &RcwConfig,
) -> GenerationResult {
    RoboGExp::for_model(model, cfg.clone()).generate(graph, test_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_gnn::{Gcn, TrainConfig};

    fn clique_setup() -> (Graph, Gcn, Appnp, Vec<usize>) {
        let mut g = Graph::new();
        for i in 0..12 {
            let class = usize::from(i >= 6);
            let feats = if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..6 {
            for v in (u + 1)..6 {
                g.add_edge(u, v);
            }
        }
        for u in 6..12 {
            for v in (u + 1)..12 {
                g.add_edge(u, v);
            }
        }
        // two featureless test nodes attached to community 0 and 1 respectively
        let t0 = g.add_labeled_node(vec![0.0, 0.0], 0);
        g.add_edge(t0, 0);
        g.add_edge(t0, 1);
        let t1 = g.add_labeled_node(vec![0.0, 0.0], 1);
        g.add_edge(t1, 6);
        g.add_edge(t1, 7);
        let view = GraphView::full(&g);
        let train: Vec<usize> = (0..12).collect();
        let tc = TrainConfig {
            epochs: 150,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        let mut gcn = Gcn::new(&[2, 8, 2], 3);
        gcn.train(&view, &train, &tc);
        let mut appnp = Appnp::new(&[2, 8, 2], 0.2, 15, 4);
        appnp.train(&view, &train, &tc);
        (g, gcn, appnp, vec![t0, t1])
    }

    #[test]
    fn generates_a_nontrivial_witness_for_gcn() {
        let (g, gcn, _appnp, tests) = clique_setup();
        let cfg = RcwConfig::with_budgets(2, 1);
        let gen = RoboGExp::for_model(&gcn, cfg);
        let result = gen.generate(&g, &tests);
        assert!(
            result.witness.subgraph.num_edges() > 0,
            "witness must grow beyond the trivial node set"
        );
        assert!(
            result.witness.subgraph.num_edges() < g.num_edges(),
            "witness should not be the whole graph"
        );
        assert!(result.stats.inference_calls > 0);
        assert!(result.stats.elapsed.as_nanos() > 0);
        // test nodes are always part of the witness
        for &t in &tests {
            assert!(result.witness.subgraph.contains_node(t));
        }
    }

    #[test]
    fn generates_for_appnp_and_reaches_cw_or_better() {
        let (g, _gcn, appnp, tests) = clique_setup();
        let cfg = RcwConfig::with_budgets(2, 1);
        let gen = RoboGExp::for_appnp(&appnp, cfg);
        let result = gen.generate(&g, &tests);
        assert!(
            matches!(
                result.level,
                WitnessLevel::Counterfactual | WitnessLevel::Robust | WitnessLevel::Factual
            ),
            "expected at least a factual explanation, got {:?}",
            result.level
        );
        // the final witness must be a subgraph of the host
        assert!(
            result.witness.subgraph.is_subgraph_of(&g) || result.witness.subgraph.num_edges() == 0
        );
    }

    #[test]
    fn generated_witness_passes_its_own_verification() {
        let (g, _gcn, appnp, tests) = clique_setup();
        let cfg = RcwConfig::with_budgets(1, 1);
        let gen = RoboGExp::for_appnp(&appnp, cfg);
        let result = gen.generate(&g, &tests);
        let recheck = gen.verify(&g, &result.witness);
        assert_eq!(
            recheck.level, result.level,
            "re-verification must agree with the level reported by generation"
        );
    }

    #[test]
    fn k_zero_generation_is_counterfactual_generation() {
        let (g, gcn, _appnp, tests) = clique_setup();
        let cfg = RcwConfig::with_budgets(0, 0);
        let result = RoboGExp::for_model(&gcn, cfg).generate(&g, &tests);
        // with k = 0 a verified witness is exactly a CW
        if result.level == WitnessLevel::Robust {
            let (cw, _) = crate::verify::verify_counterfactual(&gcn, &g, &result.witness);
            assert!(cw);
        }
    }

    #[test]
    #[should_panic(expected = "empty test set")]
    fn empty_test_set_is_rejected() {
        let (g, gcn, _appnp, _tests) = clique_setup();
        RoboGExp::for_model(&gcn, RcwConfig::default()).generate(&g, &[]);
    }

    #[test]
    fn larger_k_never_shrinks_the_witness_level_guarantee() {
        // Lemma 1: a k-RCW is a k'-RCW for k' <= k. We check the practical
        // consequence: a witness generated for k=2 and verified robust is
        // also verified robust for k=1.
        let (g, _gcn, appnp, tests) = clique_setup();
        let gen2 = RoboGExp::for_appnp(&appnp, RcwConfig::with_budgets(2, 1));
        let result = gen2.generate(&g, &tests);
        if result.level == WitnessLevel::Robust {
            let gen1 = RoboGExp::for_appnp(&appnp, RcwConfig::with_budgets(1, 1));
            let out = gen1.verify(&g, &result.witness);
            assert_eq!(out.level, WitnessLevel::Robust);
        }
    }
}
