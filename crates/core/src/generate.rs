//! RoboGExp — generation of k-robust counterfactual witnesses (Algorithm 2).
//!
//! The generator follows the paper's "expand–verify" strategy:
//!
//! 1. start from the trivial witness containing only the test nodes;
//! 2. for each test node, *expand* the witness with the node pairs most
//!    responsible for its label — first enough of its receptive field to make
//!    the witness factual, then the support edges whose removal flips the
//!    label (counterfactual);
//! 3. *verify* robustness: find the worst admissible (k, b)-disturbance (the
//!    policy-iteration search for APPNP, enumeration/sampling otherwise); if a
//!    disturbance disproves robustness, absorb its edges into the witness —
//!    pairs inside the witness can no longer be disturbed — and repeat.
//!
//! The procedure always terminates: the witness grows monotonically and is
//! bounded by the host graph (the trivial k-RCW). When no non-trivial robust
//! witness exists the generator returns its best effort together with the
//! strongest verified level, which is what the paper's quality metrics
//! (Fidelity+/−, GED) evaluate.

use crate::config::RcwConfig;
use crate::engine::EngineCaches;
use crate::model::VerifiableModel;
use crate::session;
use crate::witness::{VerifyOutcome, Witness, WitnessLevel};
use rcw_gnn::{Appnp, GnnModel};
use rcw_graph::{Graph, NodeId};
use std::time::Duration;

/// Counters and timing collected during generation.
#[derive(Clone, Debug, Default)]
pub struct GenerationStats {
    /// Total model inference calls.
    pub inference_calls: usize,
    /// Disturbances examined across all verification rounds.
    pub disturbances_verified: usize,
    /// Expand–verify rounds executed.
    pub expand_rounds: usize,
    /// Wall-clock time of the generation call.
    pub elapsed: Duration,
}

/// Result of a generation run.
#[derive(Clone, Debug)]
pub struct GenerationResult {
    /// The generated witness.
    pub witness: Witness,
    /// The strongest level the final witness was verified at.
    pub level: WitnessLevel,
    /// Whether the witness is non-trivial (has edges, is not the whole graph).
    pub nontrivial: bool,
    /// Degraded-mode flag: the engine could neither repair nor regenerate
    /// this witness after a disturbance, so the *pre-disturbance* witness is
    /// served as a best effort. `level` is then the level it held when it
    /// was last verified, not a claim about the current graph. Always
    /// `false` on freshly generated (non-degraded) results.
    pub stale: bool,
    /// Counters and timing.
    pub stats: GenerationStats,
}

/// The RoboGExp generator, generic over how the model verifies witnesses.
///
/// `M` is usually inferred: a concrete model type ([`Appnp`] gets the
/// tractable verification path through its [`VerifiableModel`] overrides) or
/// the type-erased `dyn GnnModel` (model-agnostic sampling path).
///
/// Since the engine/session split this driver is a thin wrapper over
/// [`crate::session`]: it owns a private [`EngineCaches`] instance, so
/// repeated `generate` calls on the same (unmutated) graph reuse the
/// partition-free shared tier — k-hop neighborhoods, PPR pruning rows, APPNP
/// local logits — while [`crate::WitnessEngine`] adds the witness store,
/// mutation epochs, and repair on top of the same session code.
pub struct RoboGExp<'a, M: VerifiableModel + ?Sized = dyn GnnModel> {
    model: &'a M,
    cfg: RcwConfig,
    caches: EngineCaches,
}

impl<'a> RoboGExp<'a, Appnp> {
    /// Creates a generator for an APPNP classifier (tractable verification).
    /// Equivalent to [`RoboGExp::new`]; kept as the paper-facing name.
    pub fn for_appnp(appnp: &'a Appnp, cfg: RcwConfig) -> Self {
        RoboGExp::new(appnp, cfg)
    }
}

impl<'a, M: VerifiableModel + ?Sized> RoboGExp<'a, M> {
    /// Creates a generator for any fixed deterministic GNN. The verification
    /// strategy is whatever the model's [`VerifiableModel`] impl provides.
    pub fn new(model: &'a M, cfg: RcwConfig) -> Self {
        let caches = EngineCaches::new(&cfg);
        RoboGExp { model, cfg, caches }
    }

    /// Alias of [`RoboGExp::new`]. Accepts concrete models and `&dyn
    /// GnnModel` trait objects alike.
    pub fn for_model(model: &'a M, cfg: RcwConfig) -> Self {
        RoboGExp::new(model, cfg)
    }

    /// The configuration in use.
    pub fn config(&self) -> &RcwConfig {
        &self.cfg
    }

    /// The model being explained, as the plain inference interface.
    pub fn model(&self) -> &'a dyn GnnModel {
        self.model.as_gnn()
    }

    /// The driver's shared cache tier (inspection and tests).
    pub fn caches(&self) -> &EngineCaches {
        &self.caches
    }

    /// Verification dispatch used by the generator and exposed for callers
    /// that want to re-verify a witness. Routes through the driver's shared
    /// cache tier (same verdict as [`VerifiableModel::verify_rcw`]).
    pub fn verify(&self, graph: &Graph, witness: &Witness) -> VerifyOutcome {
        self.model
            .verify_rcw_shared(graph, witness, &self.cfg, &self.caches)
    }

    /// Generates a k-RCW (best effort) for the given test nodes: one
    /// sequential expand–verify session over the driver's cache tier.
    ///
    /// # Panics
    /// Panics if `test_nodes` is empty or contains an invalid node id.
    pub fn generate(&self, graph: &Graph, test_nodes: &[NodeId]) -> GenerationResult {
        session::run_sequential(
            self.model,
            graph,
            &self.caches,
            &self.cfg,
            test_nodes,
            None,
            &session::SessionBudget::unlimited(),
        )
        .expect("unlimited session budget cannot expire")
    }
}

/// Convenience free function mirroring the paper's naming: generates a k-RCW
/// with an APPNP classifier (tractable verification path).
pub fn robogexp_appnp(
    appnp: &Appnp,
    graph: &Graph,
    test_nodes: &[NodeId],
    cfg: &RcwConfig,
) -> GenerationResult {
    RoboGExp::for_appnp(appnp, cfg.clone()).generate(graph, test_nodes)
}

/// Convenience free function for arbitrary models.
pub fn robogexp(
    model: &dyn GnnModel,
    graph: &Graph,
    test_nodes: &[NodeId],
    cfg: &RcwConfig,
) -> GenerationResult {
    RoboGExp::for_model(model, cfg.clone()).generate(graph, test_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_gnn::{Gcn, TrainConfig};
    use rcw_graph::GraphView;

    fn clique_setup() -> (Graph, Gcn, Appnp, Vec<usize>) {
        let mut g = Graph::new();
        for i in 0..12 {
            let class = usize::from(i >= 6);
            let feats = if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..6 {
            for v in (u + 1)..6 {
                g.add_edge(u, v);
            }
        }
        for u in 6..12 {
            for v in (u + 1)..12 {
                g.add_edge(u, v);
            }
        }
        // two featureless test nodes attached to community 0 and 1 respectively
        let t0 = g.add_labeled_node(vec![0.0, 0.0], 0);
        g.add_edge(t0, 0);
        g.add_edge(t0, 1);
        let t1 = g.add_labeled_node(vec![0.0, 0.0], 1);
        g.add_edge(t1, 6);
        g.add_edge(t1, 7);
        let view = GraphView::full(&g);
        let train: Vec<usize> = (0..12).collect();
        let tc = TrainConfig {
            epochs: 150,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        let mut gcn = Gcn::new(&[2, 8, 2], 3);
        gcn.train(&view, &train, &tc);
        let mut appnp = Appnp::new(&[2, 8, 2], 0.2, 15, 4);
        appnp.train(&view, &train, &tc);
        (g, gcn, appnp, vec![t0, t1])
    }

    #[test]
    fn generates_a_nontrivial_witness_for_gcn() {
        let (g, gcn, _appnp, tests) = clique_setup();
        let cfg = RcwConfig::with_budgets(2, 1);
        let gen = RoboGExp::for_model(&gcn, cfg);
        let result = gen.generate(&g, &tests);
        assert!(
            result.witness.subgraph.num_edges() > 0,
            "witness must grow beyond the trivial node set"
        );
        assert!(
            result.witness.subgraph.num_edges() < g.num_edges(),
            "witness should not be the whole graph"
        );
        assert!(result.stats.inference_calls > 0);
        assert!(result.stats.elapsed.as_nanos() > 0);
        // test nodes are always part of the witness
        for &t in &tests {
            assert!(result.witness.subgraph.contains_node(t));
        }
    }

    #[test]
    fn generates_for_appnp_and_reaches_cw_or_better() {
        let (g, _gcn, appnp, tests) = clique_setup();
        let cfg = RcwConfig::with_budgets(2, 1);
        let gen = RoboGExp::for_appnp(&appnp, cfg);
        let result = gen.generate(&g, &tests);
        assert!(
            matches!(
                result.level,
                WitnessLevel::Counterfactual | WitnessLevel::Robust | WitnessLevel::Factual
            ),
            "expected at least a factual explanation, got {:?}",
            result.level
        );
        // the final witness must be a subgraph of the host
        assert!(
            result.witness.subgraph.is_subgraph_of(&g) || result.witness.subgraph.num_edges() == 0
        );
    }

    #[test]
    fn generated_witness_passes_its_own_verification() {
        let (g, _gcn, appnp, tests) = clique_setup();
        let cfg = RcwConfig::with_budgets(1, 1);
        let gen = RoboGExp::for_appnp(&appnp, cfg);
        let result = gen.generate(&g, &tests);
        let recheck = gen.verify(&g, &result.witness);
        assert_eq!(
            recheck.level, result.level,
            "re-verification must agree with the level reported by generation"
        );
    }

    #[test]
    fn k_zero_generation_is_counterfactual_generation() {
        let (g, gcn, _appnp, tests) = clique_setup();
        let cfg = RcwConfig::with_budgets(0, 0);
        let result = RoboGExp::for_model(&gcn, cfg).generate(&g, &tests);
        // with k = 0 a verified witness is exactly a CW
        if result.level == WitnessLevel::Robust {
            let (cw, _) = crate::verify::verify_counterfactual(&gcn, &g, &result.witness);
            assert!(cw);
        }
    }

    #[test]
    #[should_panic(expected = "empty test set")]
    fn empty_test_set_is_rejected() {
        let (g, gcn, _appnp, _tests) = clique_setup();
        RoboGExp::for_model(&gcn, RcwConfig::default()).generate(&g, &[]);
    }

    #[test]
    fn larger_k_never_shrinks_the_witness_level_guarantee() {
        // Lemma 1: a k-RCW is a k'-RCW for k' <= k. We check the practical
        // consequence: a witness generated for k=2 and verified robust is
        // also verified robust for k=1.
        let (g, _gcn, appnp, tests) = clique_setup();
        let gen2 = RoboGExp::for_appnp(&appnp, RcwConfig::with_budgets(2, 1));
        let result = gen2.generate(&g, &tests);
        if result.level == WitnessLevel::Robust {
            let gen1 = RoboGExp::for_appnp(&appnp, RcwConfig::with_budgets(1, 1));
            let out = gen1.verify(&g, &result.witness);
            assert_eq!(out.level, WitnessLevel::Robust);
        }
    }
}
