//! The unified model-dispatch layer.
//!
//! Everything in `rcw-core` — sequential generation, parallel generation, and
//! re-verification — talks to classifiers through [`VerifiableModel`], an
//! extension trait over [`GnnModel`] that adds the *verification strategy* to
//! the *inference function*:
//!
//! * the default methods implement the model-agnostic path (enumeration /
//!   sampling `verifyRCW`, randomized local disturbance search);
//! * [`Appnp`] overrides them with the tractable policy-iteration path
//!   (`verifyRCW-APPNP`, Algorithm 1; PRI search for the parallel workers).
//!
//! A type-erased `&dyn GnnModel` is itself a `VerifiableModel` (with the
//! default strategy), so callers that only hold a trait object — the bench
//! harness, the baselines comparison, `Box<dyn GnnModel>` collections — plug
//! into [`crate::RoboGExp`] and [`crate::ParaRoboGExp`] without any adapter.
//! Passing `&appnp as &dyn GnnModel` is therefore also the supported way to
//! *ablate* the tractable path and force sampling verification on APPNP.

use crate::config::RcwConfig;
use crate::verify::{disturbance_preserves_cw, verify_rcw};
use crate::verify_appnp::{verify_rcw_appnp, verify_rcw_appnp_node};
use crate::witness::{VerifyOutcome, Witness};
use rcw_gnn::{Appnp, Gat, Gcn, GnnModel, GraphSage};
use rcw_graph::{Edge, EdgeSet, Graph, GraphView, NodeId};
use rcw_linalg::rng::{Rng, SliceRandom};
use rcw_pagerank::{pri_search, truncate_to_k, PriConfig};

/// Outcome of a worker's bounded search for a disturbance that disproves
/// robustness of the current witness inside its candidate pairs.
#[derive(Clone, Debug, Default)]
pub struct DisturbanceSearch {
    /// A (k, b)-disturbance that breaks the witness for some test node, if the
    /// search found one. Sound: any reported disturbance is a real
    /// counterexample (Lemma 6 makes locally found ones globally valid).
    pub counterexample: Option<EdgeSet>,
    /// Model inference calls spent by the search.
    pub inference_calls: usize,
    /// Disturbances examined.
    pub disturbances_checked: usize,
}

/// A [`GnnModel`] that knows how to verify k-RCWs of its own predictions.
///
/// The default method bodies implement the model-agnostic strategy; model
/// families with tractable verification (APPNP, Lemma 4) override them. All
/// of `rcw-core` dispatches through this trait, so there is exactly one
/// calling convention for every model.
pub trait VerifiableModel: GnnModel {
    /// Upcast to the plain inference interface. Implementations are always
    /// the single expression `self`; the method exists because generic code
    /// over `M: VerifiableModel + ?Sized` cannot unsize-coerce on its own.
    fn as_gnn(&self) -> &dyn GnnModel;

    /// `verifyRCW`: verifies `witness` against all of its test nodes under
    /// (k, b)-disturbances. Default: the model-agnostic enumeration/sampling
    /// verifier ([`crate::verify::verify_rcw`]).
    fn verify_rcw(&self, graph: &Graph, witness: &Witness, cfg: &RcwConfig) -> VerifyOutcome {
        verify_rcw(self.as_gnn(), graph, witness, cfg)
    }

    /// Verifies `witness` for a *single* test node. Per-node checks are
    /// independent, which is what `paraRoboGExp` fans out across workers.
    ///
    /// # Panics
    /// Panics if `node` is not a test node of the witness.
    fn verify_rcw_node(
        &self,
        graph: &Graph,
        witness: &Witness,
        node: NodeId,
        cfg: &RcwConfig,
    ) -> VerifyOutcome {
        let label = witness
            .label_of(node)
            .expect("verify_rcw_node: node is not a test node of the witness");
        let single = Witness::new(witness.subgraph.clone(), vec![node], vec![label]);
        VerifiableModel::verify_rcw(self, graph, &single, cfg)
    }

    /// Bounded search, restricted to `candidates`, for a disturbance that
    /// disproves robustness of `witness` for any of `test_nodes` (a worker's
    /// share of a parallel round). Default: randomized sampling seeded from
    /// `cfg.seed` and `salt`. APPNP overrides this with the greedy PRI search.
    #[allow(clippy::too_many_arguments)]
    fn search_disturbance(
        &self,
        graph: &Graph,
        witness: &Witness,
        test_nodes: &[NodeId],
        labels: &[usize],
        candidates: &[Edge],
        cfg: &RcwConfig,
        salt: u64,
    ) -> DisturbanceSearch {
        let mut report = DisturbanceSearch::default();
        if candidates.is_empty() || cfg.k == 0 {
            return report;
        }
        let mut rng = Rng::seed_from_u64(cfg.seed.wrapping_add(salt));
        'outer: for _ in 0..cfg.sampled_disturbances {
            let mut pool = candidates.to_vec();
            pool.shuffle(&mut rng);
            let flips: EdgeSet = pool.into_iter().take(cfg.k).collect();
            if flips.is_empty() {
                break;
            }
            report.disturbances_checked += 1;
            for (i, &v) in test_nodes.iter().enumerate() {
                let single = Witness::new(witness.subgraph.clone(), vec![v], vec![labels[i]]);
                let (ok, calls) = disturbance_preserves_cw(self.as_gnn(), graph, &single, &flips);
                report.inference_calls += calls;
                if !ok {
                    report.counterexample = Some(flips);
                    break 'outer;
                }
            }
        }
        report
    }
}

impl<'m> VerifiableModel for dyn GnnModel + 'm {
    fn as_gnn(&self) -> &dyn GnnModel {
        self
    }
}

impl VerifiableModel for Gcn {
    fn as_gnn(&self) -> &dyn GnnModel {
        self
    }
}

impl VerifiableModel for GraphSage {
    fn as_gnn(&self) -> &dyn GnnModel {
        self
    }
}

impl VerifiableModel for Gat {
    fn as_gnn(&self) -> &dyn GnnModel {
        self
    }
}

impl VerifiableModel for Appnp {
    fn as_gnn(&self) -> &dyn GnnModel {
        self
    }

    /// Algorithm 1, `verifyRCW-APPNP`: tractable under (k, b)-disturbances.
    fn verify_rcw(&self, graph: &Graph, witness: &Witness, cfg: &RcwConfig) -> VerifyOutcome {
        verify_rcw_appnp(self, graph, witness, cfg)
    }

    fn verify_rcw_node(
        &self,
        graph: &Graph,
        witness: &Witness,
        node: NodeId,
        cfg: &RcwConfig,
    ) -> VerifyOutcome {
        verify_rcw_appnp_node(self, graph, witness, node, cfg)
    }

    /// Greedy policy-iteration search (Procedure PRI) for the single worst
    /// admissible disturbance per competitor class.
    fn search_disturbance(
        &self,
        graph: &Graph,
        witness: &Witness,
        test_nodes: &[NodeId],
        labels: &[usize],
        candidates: &[Edge],
        cfg: &RcwConfig,
        _salt: u64,
    ) -> DisturbanceSearch {
        let mut report = DisturbanceSearch::default();
        if candidates.is_empty() || cfg.k == 0 {
            return report;
        }
        let full = GraphView::full(graph);
        let h = self.local_logits(&full);
        let pri_cfg = PriConfig {
            alpha: self.alpha(),
            local_budget: cfg.local_budget.max(1),
            max_rounds: cfg.pri_rounds,
            value_iters: cfg.ppr_iters,
        };
        'nodes: for (i, &v) in test_nodes.iter().enumerate() {
            let label = labels[i];
            for c in 0..self.num_classes() {
                if c == label {
                    continue;
                }
                let r: Vec<f64> = (0..graph.num_nodes())
                    .map(|u| h.get(u, c) - h.get(u, label))
                    .collect();
                let found = pri_search(&full, candidates, &r, v, &pri_cfg);
                let mut e_star = found.disturbance;
                if e_star.len() > cfg.k {
                    e_star = truncate_to_k(&full, &e_star, &r, self.alpha(), cfg.k);
                }
                if e_star.is_empty() {
                    continue;
                }
                report.disturbances_checked += 1;
                let single = Witness::new(witness.subgraph.clone(), vec![v], vec![label]);
                let (ok, calls) = disturbance_preserves_cw(self, graph, &single, &e_star);
                report.inference_calls += calls;
                if !ok {
                    report.counterexample = Some(e_star);
                    break 'nodes;
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_gnn::TrainConfig;
    use rcw_graph::EdgeSubgraph;

    /// Two cliques with a featureless boundary node, and a trained APPNP.
    fn setup() -> (Graph, Appnp, usize) {
        let mut g = Graph::new();
        for i in 0..12 {
            let class = usize::from(i >= 6);
            let feats = if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..6 {
            for v in (u + 1)..6 {
                g.add_edge(u, v);
            }
        }
        for u in 6..12 {
            for v in (u + 1)..12 {
                g.add_edge(u, v);
            }
        }
        let t = g.add_labeled_node(vec![0.05, 0.25], 0);
        g.add_edge(t, 0);
        g.add_edge(t, 1);
        g.add_edge(t, 2);
        let mut appnp = Appnp::new(&[2, 8, 2], 0.2, 12, 5);
        let train: Vec<usize> = (0..12).collect();
        appnp.train(
            &GraphView::full(&g),
            &train,
            &TrainConfig {
                epochs: 120,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
        );
        (g, appnp, t)
    }

    fn ego_witness(g: &Graph, m: &Appnp, t: usize) -> Witness {
        let l = m.predict(t, &GraphView::full(g)).unwrap();
        Witness::new(
            EdgeSubgraph::from_edges([(t, 0), (t, 1), (t, 2)]),
            vec![t],
            vec![l],
        )
    }

    /// The acceptance-criterion test: a concrete `&Appnp` dispatches to the
    /// tractable `verify_rcw_appnp` path, while the same model viewed as a
    /// type-erased `&dyn GnnModel` dispatches to the sampling path.
    #[test]
    fn appnp_routes_to_the_tractable_verifier() {
        let (g, appnp, t) = setup();
        let w = ego_witness(&g, &appnp, t);
        let cfg = RcwConfig::with_budgets(2, 1);

        let via_trait = VerifiableModel::verify_rcw(&appnp, &g, &w, &cfg);
        let tractable = verify_rcw_appnp(&appnp, &g, &w, &cfg);
        assert_eq!(via_trait, tractable, "Appnp must use verify_rcw_appnp");

        let erased: &dyn GnnModel = &appnp;
        let via_erased = VerifiableModel::verify_rcw(erased, &g, &w, &cfg);
        let sampling = crate::verify::verify_rcw(&appnp, &g, &w, &cfg);
        assert_eq!(
            via_erased, sampling,
            "a type-erased model must use the model-agnostic verifier"
        );
    }

    #[test]
    fn per_node_dispatch_matches_the_appnp_verifier() {
        let (g, appnp, t) = setup();
        let w = ego_witness(&g, &appnp, t);
        let cfg = RcwConfig::with_budgets(1, 1);
        let via_trait = appnp.verify_rcw_node(&g, &w, t, &cfg);
        let direct = verify_rcw_appnp_node(&appnp, &g, &w, t, &cfg);
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn default_search_is_deterministic_in_seed_and_salt() {
        let (g, appnp, t) = setup();
        let w = ego_witness(&g, &appnp, t);
        let cfg = RcwConfig::with_budgets(2, 1);
        let erased: &dyn GnnModel = &appnp;
        let candidates: Vec<Edge> = g.edges().take(8).collect();
        let labels = [w.labels[0]];
        let a = erased.search_disturbance(&g, &w, &[t], &labels, &candidates, &cfg, 1);
        let b = erased.search_disturbance(&g, &w, &[t], &labels, &candidates, &cfg, 1);
        assert_eq!(a.counterexample, b.counterexample);
        assert_eq!(a.disturbances_checked, b.disturbances_checked);
    }

    #[test]
    fn search_respects_empty_candidates_and_zero_k() {
        let (g, appnp, t) = setup();
        let w = ego_witness(&g, &appnp, t);
        let labels = [w.labels[0]];
        let none = appnp.search_disturbance(
            &g,
            &w,
            &[t],
            &labels,
            &[],
            &RcwConfig::with_budgets(2, 1),
            0,
        );
        assert!(none.counterexample.is_none());
        assert_eq!(none.disturbances_checked, 0);
        let candidates: Vec<Edge> = g.edges().take(4).collect();
        let zero_k = appnp.search_disturbance(
            &g,
            &w,
            &[t],
            &labels,
            &candidates,
            &RcwConfig::with_budgets(0, 0),
            0,
        );
        assert!(zero_k.counterexample.is_none());
    }
}
