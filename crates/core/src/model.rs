//! The unified model-dispatch layer.
//!
//! Everything in `rcw-core` — sequential generation, parallel generation, and
//! re-verification — talks to classifiers through [`VerifiableModel`], an
//! extension trait over [`GnnModel`] that adds the *verification strategy* to
//! the *inference function*:
//!
//! * the default methods implement the model-agnostic path (enumeration /
//!   sampling `verifyRCW`, randomized local disturbance search);
//! * [`Appnp`] overrides them with the tractable policy-iteration path
//!   (`verifyRCW-APPNP`, Algorithm 1; PRI search for the parallel workers).
//!
//! A type-erased `&dyn GnnModel` is itself a `VerifiableModel` (with the
//! default strategy), so callers that only hold a trait object — the bench
//! harness, the baselines comparison, `Box<dyn GnnModel>` collections — plug
//! into [`crate::RoboGExp`] and [`crate::ParaRoboGExp`] without any adapter.
//! Passing `&appnp as &dyn GnnModel` is therefore also the supported way to
//! *ablate* the tractable path and force sampling verification on APPNP.

use crate::config::RcwConfig;
use crate::engine::EngineCaches;
use crate::verify::{disturbance_preserves_cw, verify_rcw, verify_rcw_with_caches};
use crate::verify_appnp::{
    verify_rcw_appnp, verify_rcw_appnp_ctx, verify_rcw_appnp_node, verify_rcw_appnp_node_ctx,
    AppnpVerifyCtx,
};
use crate::witness::{VerifyOutcome, Witness};
use rcw_gnn::{Appnp, Gat, Gcn, GnnModel, GraphSage};
use rcw_graph::{Edge, EdgeSet, Graph, GraphView, NodeId};
use rcw_linalg::rng::{Rng, SliceRandom};
use rcw_pagerank::{pri_search, truncate_to_k, PriConfig};

/// Outcome of a worker's bounded search for a disturbance that disproves
/// robustness of the current witness inside its candidate pairs.
#[derive(Clone, Debug, Default)]
pub struct DisturbanceSearch {
    /// A (k, b)-disturbance that breaks the witness for some test node, if the
    /// search found one. Sound: any reported disturbance is a real
    /// counterexample (Lemma 6 makes locally found ones globally valid).
    pub counterexample: Option<EdgeSet>,
    /// Model inference calls spent by the search.
    pub inference_calls: usize,
    /// Disturbances examined.
    pub disturbances_checked: usize,
}

/// A [`GnnModel`] that knows how to verify k-RCWs of its own predictions.
///
/// The default method bodies implement the model-agnostic strategy; model
/// families with tractable verification (APPNP, Lemma 4) override them. All
/// of `rcw-core` dispatches through this trait, so there is exactly one
/// calling convention for every model.
pub trait VerifiableModel: GnnModel {
    /// Upcast to the plain inference interface. Implementations are always
    /// the single expression `self`; the method exists because generic code
    /// over `M: VerifiableModel + ?Sized` cannot unsize-coerce on its own.
    fn as_gnn(&self) -> &dyn GnnModel;

    /// Hop horizon of this model's *verification* reads: verifying one
    /// disturbance of a witness for test node `t` only inspects nodes within
    /// this many hops of `t` on the disturbed graph. For the model-agnostic
    /// sampling verifier that is the receptive field; the APPNP tractable
    /// path additionally walks `cfg.ppr_iters` PPR/value-iteration steps, so
    /// it overrides this. The sharded tier uses this bound to decide when a
    /// query can be answered entirely inside a shard's halo.
    fn verification_hops(&self, cfg: &RcwConfig) -> usize {
        let _ = cfg;
        self.as_gnn().receptive_hops()
    }

    /// `verifyRCW`: verifies `witness` against all of its test nodes under
    /// (k, b)-disturbances. Default: the model-agnostic enumeration/sampling
    /// verifier ([`crate::verify::verify_rcw`]).
    fn verify_rcw(&self, graph: &Graph, witness: &Witness, cfg: &RcwConfig) -> VerifyOutcome {
        verify_rcw(self.as_gnn(), graph, witness, cfg)
    }

    /// Verifies `witness` for a *single* test node. Per-node checks are
    /// independent, which is what `paraRoboGExp` fans out across workers.
    ///
    /// # Panics
    /// Panics if `node` is not a test node of the witness.
    fn verify_rcw_node(
        &self,
        graph: &Graph,
        witness: &Witness,
        node: NodeId,
        cfg: &RcwConfig,
    ) -> VerifyOutcome {
        let label = witness
            .label_of(node)
            .expect("verify_rcw_node: node is not a test node of the witness");
        let single = Witness::new(witness.subgraph.clone(), vec![node], vec![label]);
        VerifiableModel::verify_rcw(self, graph, &single, cfg)
    }

    /// [`VerifiableModel::verify_rcw`] over an engine's shared cache tier:
    /// same verdict, but candidate neighborhoods, PPR pruning rows, and any
    /// model-side intermediates (APPNP local logits) come from — and are left
    /// in — `caches`. The default ignores the caches and delegates to
    /// [`VerifiableModel::verify_rcw`], so a downstream impl that only
    /// overrides `verify_rcw` keeps its strategy on every driver path; each
    /// in-repo model overrides this to route the same verdict through the
    /// hood/PPR caches (APPNP additionally reuses its cached local logits).
    fn verify_rcw_shared(
        &self,
        graph: &Graph,
        witness: &Witness,
        cfg: &RcwConfig,
        caches: &EngineCaches,
    ) -> VerifyOutcome {
        let _ = caches;
        VerifiableModel::verify_rcw(self, graph, witness, cfg)
    }

    /// Per-node variant of [`VerifiableModel::verify_rcw_shared`]. The
    /// default ignores the caches and delegates to
    /// [`VerifiableModel::verify_rcw_node`], preserving downstream overrides
    /// of either per-node or whole-witness verification; in-repo models
    /// override it to route through the shared caches.
    ///
    /// # Panics
    /// Panics if `node` is not a test node of the witness.
    fn verify_rcw_node_shared(
        &self,
        graph: &Graph,
        witness: &Witness,
        node: NodeId,
        cfg: &RcwConfig,
        caches: &EngineCaches,
    ) -> VerifyOutcome {
        let _ = caches;
        self.verify_rcw_node(graph, witness, node, cfg)
    }

    /// [`VerifiableModel::search_disturbance`] over an engine's shared cache
    /// tier. The default ignores the caches (the sampling search has no
    /// reusable intermediates); APPNP overrides it to reuse its local logits.
    #[allow(clippy::too_many_arguments)]
    fn search_disturbance_shared(
        &self,
        graph: &Graph,
        witness: &Witness,
        test_nodes: &[NodeId],
        labels: &[usize],
        candidates: &[Edge],
        cfg: &RcwConfig,
        salt: u64,
        caches: &EngineCaches,
    ) -> DisturbanceSearch {
        let _ = caches;
        self.search_disturbance(graph, witness, test_nodes, labels, candidates, cfg, salt)
    }

    /// Bounded search, restricted to `candidates`, for a disturbance that
    /// disproves robustness of `witness` for any of `test_nodes` (a worker's
    /// share of a parallel round). Default: randomized sampling seeded from
    /// `cfg.seed` and `salt`. APPNP overrides this with the greedy PRI search.
    #[allow(clippy::too_many_arguments)]
    fn search_disturbance(
        &self,
        graph: &Graph,
        witness: &Witness,
        test_nodes: &[NodeId],
        labels: &[usize],
        candidates: &[Edge],
        cfg: &RcwConfig,
        salt: u64,
    ) -> DisturbanceSearch {
        let mut report = DisturbanceSearch::default();
        if candidates.is_empty() || cfg.k == 0 {
            return report;
        }
        let mut rng = Rng::seed_from_u64(cfg.seed.wrapping_add(salt));
        'outer: for _ in 0..cfg.sampled_disturbances {
            let mut pool = candidates.to_vec();
            pool.shuffle(&mut rng);
            let flips: EdgeSet = pool.into_iter().take(cfg.k).collect();
            if flips.is_empty() {
                break;
            }
            report.disturbances_checked += 1;
            for (i, &v) in test_nodes.iter().enumerate() {
                let single = Witness::new(witness.subgraph.clone(), vec![v], vec![labels[i]]);
                let (ok, calls) = disturbance_preserves_cw(self.as_gnn(), graph, &single, &flips);
                report.inference_calls += calls;
                if !ok {
                    report.counterexample = Some(flips);
                    break 'outer;
                }
            }
        }
        report
    }
}

/// Routes the shared-cache verification of models on the model-agnostic
/// strategy (their `verify_rcw` is the trait default) through the hood/PPR
/// caches. Same verdict as the default `verify_rcw_shared`, cheaper warm.
macro_rules! agnostic_verify_rcw_shared {
    () => {
        fn verify_rcw_shared(
            &self,
            graph: &Graph,
            witness: &Witness,
            cfg: &RcwConfig,
            caches: &EngineCaches,
        ) -> VerifyOutcome {
            verify_rcw_with_caches(self.as_gnn(), graph, witness, cfg, caches)
        }

        fn verify_rcw_node_shared(
            &self,
            graph: &Graph,
            witness: &Witness,
            node: NodeId,
            cfg: &RcwConfig,
            caches: &EngineCaches,
        ) -> VerifyOutcome {
            let label = witness
                .label_of(node)
                .expect("verify_rcw_node_shared: node is not a test node of the witness");
            let single = Witness::new(witness.subgraph.clone(), vec![node], vec![label]);
            verify_rcw_with_caches(self.as_gnn(), graph, &single, cfg, caches)
        }
    };
}

impl<'m> VerifiableModel for dyn GnnModel + 'm {
    fn as_gnn(&self) -> &dyn GnnModel {
        self
    }
    agnostic_verify_rcw_shared!();
}

impl VerifiableModel for Gcn {
    fn as_gnn(&self) -> &dyn GnnModel {
        self
    }
    agnostic_verify_rcw_shared!();
}

impl VerifiableModel for GraphSage {
    fn as_gnn(&self) -> &dyn GnnModel {
        self
    }
    agnostic_verify_rcw_shared!();
}

impl VerifiableModel for Gat {
    fn as_gnn(&self) -> &dyn GnnModel {
        self
    }
    agnostic_verify_rcw_shared!();
}

impl VerifiableModel for Appnp {
    fn as_gnn(&self) -> &dyn GnnModel {
        self
    }

    /// The PRI search and value-function evaluations run `cfg.ppr_iters`
    /// propagation steps over the whole graph, so APPNP's verification
    /// horizon is the larger of its receptive field and that walk length.
    fn verification_hops(&self, cfg: &RcwConfig) -> usize {
        self.receptive_hops().max(cfg.ppr_iters)
    }

    /// Algorithm 1, `verifyRCW-APPNP`: tractable under (k, b)-disturbances.
    fn verify_rcw(&self, graph: &Graph, witness: &Witness, cfg: &RcwConfig) -> VerifyOutcome {
        verify_rcw_appnp(self, graph, witness, cfg)
    }

    fn verify_rcw_node(
        &self,
        graph: &Graph,
        witness: &Witness,
        node: NodeId,
        cfg: &RcwConfig,
    ) -> VerifyOutcome {
        verify_rcw_appnp_node(self, graph, witness, node, cfg)
    }

    /// Engine path: the local logits `H = f_theta(X)` come from the shared
    /// feature-epoch cache instead of an MLP pass per verification call.
    fn verify_rcw_shared(
        &self,
        graph: &Graph,
        witness: &Witness,
        cfg: &RcwConfig,
        caches: &EngineCaches,
    ) -> VerifyOutcome {
        verify_rcw_appnp_ctx(
            self,
            graph,
            witness,
            cfg,
            &AppnpVerifyCtx {
                logits: None, // resolved lazily from the cache past the early exits
                caches: Some(caches),
            },
        )
    }

    fn verify_rcw_node_shared(
        &self,
        graph: &Graph,
        witness: &Witness,
        node: NodeId,
        cfg: &RcwConfig,
        caches: &EngineCaches,
    ) -> VerifyOutcome {
        verify_rcw_appnp_node_ctx(
            self,
            graph,
            witness,
            node,
            cfg,
            &AppnpVerifyCtx {
                logits: None, // resolved lazily from the cache past the early exits
                caches: Some(caches),
            },
        )
    }

    /// Engine path of the PRI search: shares the cached local logits.
    fn search_disturbance_shared(
        &self,
        graph: &Graph,
        witness: &Witness,
        test_nodes: &[NodeId],
        labels: &[usize],
        candidates: &[Edge],
        cfg: &RcwConfig,
        _salt: u64,
        caches: &EngineCaches,
    ) -> DisturbanceSearch {
        if candidates.is_empty() || cfg.k == 0 {
            return DisturbanceSearch::default();
        }
        let h = self.local_logits_cached(&GraphView::full(graph), caches.appnp_logits());
        appnp_pri_search(
            self, graph, witness, test_nodes, labels, candidates, cfg, &h,
        )
    }

    /// Greedy policy-iteration search (Procedure PRI) for the single worst
    /// admissible disturbance per competitor class. The empty-search guard
    /// runs before the MLP pass so a no-op search costs nothing.
    fn search_disturbance(
        &self,
        graph: &Graph,
        witness: &Witness,
        test_nodes: &[NodeId],
        labels: &[usize],
        candidates: &[Edge],
        cfg: &RcwConfig,
        _salt: u64,
    ) -> DisturbanceSearch {
        if candidates.is_empty() || cfg.k == 0 {
            return DisturbanceSearch::default();
        }
        let h = self.local_logits(&GraphView::full(graph));
        appnp_pri_search(
            self, graph, witness, test_nodes, labels, candidates, cfg, &h,
        )
    }
}

/// The PRI search body shared by the standalone and engine-cached entry
/// points of APPNP's [`VerifiableModel::search_disturbance`].
#[allow(clippy::too_many_arguments)]
fn appnp_pri_search(
    appnp: &Appnp,
    graph: &Graph,
    witness: &Witness,
    test_nodes: &[NodeId],
    labels: &[usize],
    candidates: &[Edge],
    cfg: &RcwConfig,
    h: &rcw_linalg::Matrix,
) -> DisturbanceSearch {
    // Callers guard `candidates.is_empty() || cfg.k == 0` before paying for
    // the logits, so no guard is repeated here.
    let mut report = DisturbanceSearch::default();
    let full = GraphView::full(graph);
    let pri_cfg = PriConfig {
        alpha: appnp.alpha(),
        local_budget: cfg.local_budget.max(1),
        max_rounds: cfg.pri_rounds,
        value_iters: cfg.ppr_iters,
    };
    'nodes: for (i, &v) in test_nodes.iter().enumerate() {
        let label = labels[i];
        for c in 0..appnp.num_classes() {
            if c == label {
                continue;
            }
            let r: Vec<f64> = (0..graph.num_nodes())
                .map(|u| h.get(u, c) - h.get(u, label))
                .collect();
            let found = pri_search(&full, candidates, &r, v, &pri_cfg);
            let mut e_star = found.disturbance;
            if e_star.len() > cfg.k {
                e_star = truncate_to_k(&full, &e_star, &r, appnp.alpha(), cfg.k);
            }
            if e_star.is_empty() {
                continue;
            }
            report.disturbances_checked += 1;
            let single = Witness::new(witness.subgraph.clone(), vec![v], vec![label]);
            let (ok, calls) = disturbance_preserves_cw(appnp, graph, &single, &e_star);
            report.inference_calls += calls;
            if !ok {
                report.counterexample = Some(e_star);
                break 'nodes;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_gnn::TrainConfig;
    use rcw_graph::EdgeSubgraph;

    /// Two cliques with a featureless boundary node, and a trained APPNP.
    fn setup() -> (Graph, Appnp, usize) {
        let mut g = Graph::new();
        for i in 0..12 {
            let class = usize::from(i >= 6);
            let feats = if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..6 {
            for v in (u + 1)..6 {
                g.add_edge(u, v);
            }
        }
        for u in 6..12 {
            for v in (u + 1)..12 {
                g.add_edge(u, v);
            }
        }
        let t = g.add_labeled_node(vec![0.05, 0.25], 0);
        g.add_edge(t, 0);
        g.add_edge(t, 1);
        g.add_edge(t, 2);
        let mut appnp = Appnp::new(&[2, 8, 2], 0.2, 12, 5);
        let train: Vec<usize> = (0..12).collect();
        appnp.train(
            &GraphView::full(&g),
            &train,
            &TrainConfig {
                epochs: 120,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
        );
        (g, appnp, t)
    }

    fn ego_witness(g: &Graph, m: &Appnp, t: usize) -> Witness {
        let l = m.predict(t, &GraphView::full(g)).unwrap();
        Witness::new(
            EdgeSubgraph::from_edges([(t, 0), (t, 1), (t, 2)]),
            vec![t],
            vec![l],
        )
    }

    /// The acceptance-criterion test: a concrete `&Appnp` dispatches to the
    /// tractable `verify_rcw_appnp` path, while the same model viewed as a
    /// type-erased `&dyn GnnModel` dispatches to the sampling path.
    #[test]
    fn appnp_routes_to_the_tractable_verifier() {
        let (g, appnp, t) = setup();
        let w = ego_witness(&g, &appnp, t);
        let cfg = RcwConfig::with_budgets(2, 1);

        let via_trait = VerifiableModel::verify_rcw(&appnp, &g, &w, &cfg);
        let tractable = verify_rcw_appnp(&appnp, &g, &w, &cfg);
        assert_eq!(via_trait, tractable, "Appnp must use verify_rcw_appnp");

        let erased: &dyn GnnModel = &appnp;
        let via_erased = VerifiableModel::verify_rcw(erased, &g, &w, &cfg);
        let sampling = crate::verify::verify_rcw(&appnp, &g, &w, &cfg);
        assert_eq!(
            via_erased, sampling,
            "a type-erased model must use the model-agnostic verifier"
        );
    }

    #[test]
    fn per_node_dispatch_matches_the_appnp_verifier() {
        let (g, appnp, t) = setup();
        let w = ego_witness(&g, &appnp, t);
        let cfg = RcwConfig::with_budgets(1, 1);
        let via_trait = appnp.verify_rcw_node(&g, &w, t, &cfg);
        let direct = verify_rcw_appnp_node(&appnp, &g, &w, t, &cfg);
        assert_eq!(via_trait, direct);
    }

    #[test]
    fn default_search_is_deterministic_in_seed_and_salt() {
        let (g, appnp, t) = setup();
        let w = ego_witness(&g, &appnp, t);
        let cfg = RcwConfig::with_budgets(2, 1);
        let erased: &dyn GnnModel = &appnp;
        let candidates: Vec<Edge> = g.edges().take(8).collect();
        let labels = [w.labels[0]];
        let a = erased.search_disturbance(&g, &w, &[t], &labels, &candidates, &cfg, 1);
        let b = erased.search_disturbance(&g, &w, &[t], &labels, &candidates, &cfg, 1);
        assert_eq!(a.counterexample, b.counterexample);
        assert_eq!(a.disturbances_checked, b.disturbances_checked);
    }

    /// A downstream model that overrides *only* `verify_rcw` (the documented
    /// extension point) must keep its strategy on the engine/session path.
    #[test]
    fn custom_verify_rcw_override_is_honored_by_the_shared_path() {
        use rcw_graph::ForwardCtx;
        use rcw_linalg::Matrix;

        struct Custom<'a>(&'a Appnp);
        impl rcw_gnn::GnnModel for Custom<'_> {
            fn num_classes(&self) -> usize {
                self.0.num_classes()
            }
            fn num_layers(&self) -> usize {
                self.0.num_layers()
            }
            fn feature_dim(&self) -> usize {
                self.0.feature_dim()
            }
            fn forward(&self, ctx: &ForwardCtx<'_>, x: &Matrix) -> Matrix {
                self.0.forward(ctx, x)
            }
        }
        impl VerifiableModel for Custom<'_> {
            fn as_gnn(&self) -> &dyn rcw_gnn::GnnModel {
                self
            }
            fn verify_rcw(&self, _: &Graph, _: &Witness, _: &RcwConfig) -> VerifyOutcome {
                // sentinel: an exact custom verifier with a recognizable count
                let mut out = VerifyOutcome::at_level(crate::WitnessLevel::Robust);
                out.disturbances_checked = 4242;
                out
            }
        }

        let (g, appnp, t) = setup();
        let w = ego_witness(&g, &appnp, t);
        let cfg = RcwConfig::with_budgets(1, 1);
        let caches = crate::engine::EngineCaches::new(&cfg);
        let custom = Custom(&appnp);
        let shared = custom.verify_rcw_shared(&g, &w, &cfg, &caches);
        assert_eq!(
            shared.disturbances_checked, 4242,
            "verify_rcw_shared must dispatch to the custom verify_rcw"
        );
        let per_node = custom.verify_rcw_node_shared(&g, &w, t, &cfg, &caches);
        assert_eq!(per_node.disturbances_checked, 4242);

        // and a model overriding only the *per-node* extension point keeps
        // its strategy on the parallel fan-out path
        struct NodeCustom<'a>(&'a Appnp);
        impl rcw_gnn::GnnModel for NodeCustom<'_> {
            fn num_classes(&self) -> usize {
                self.0.num_classes()
            }
            fn num_layers(&self) -> usize {
                self.0.num_layers()
            }
            fn feature_dim(&self) -> usize {
                self.0.feature_dim()
            }
            fn forward(&self, ctx: &ForwardCtx<'_>, x: &Matrix) -> Matrix {
                self.0.forward(ctx, x)
            }
        }
        impl VerifiableModel for NodeCustom<'_> {
            fn as_gnn(&self) -> &dyn rcw_gnn::GnnModel {
                self
            }
            fn verify_rcw_node(
                &self,
                _: &Graph,
                _: &Witness,
                _: NodeId,
                _: &RcwConfig,
            ) -> VerifyOutcome {
                let mut out = VerifyOutcome::at_level(crate::WitnessLevel::Robust);
                out.disturbances_checked = 77;
                out
            }
        }
        let node_custom = NodeCustom(&appnp);
        let via_shared = node_custom.verify_rcw_node_shared(&g, &w, t, &cfg, &caches);
        assert_eq!(
            via_shared.disturbances_checked, 77,
            "verify_rcw_node_shared must dispatch to the custom verify_rcw_node"
        );
    }

    #[test]
    fn search_respects_empty_candidates_and_zero_k() {
        let (g, appnp, t) = setup();
        let w = ego_witness(&g, &appnp, t);
        let labels = [w.labels[0]];
        let none = appnp.search_disturbance(
            &g,
            &w,
            &[t],
            &labels,
            &[],
            &RcwConfig::with_budgets(2, 1),
            0,
        );
        assert!(none.counterexample.is_none());
        assert_eq!(none.disturbances_checked, 0);
        let candidates: Vec<Edge> = g.edges().take(4).collect();
        let zero_k = appnp.search_disturbance(
            &g,
            &w,
            &[t],
            &labels,
            &candidates,
            &RcwConfig::with_budgets(0, 0),
            0,
        );
        assert!(zero_k.counterexample.is_none());
    }
}
