//! The long-lived, session-oriented witness engine.
//!
//! The paper's workloads are many-query: RoboGExp explains *sets* of test
//! nodes against one fixed classifier, and its GED experiment shows witnesses
//! barely move when the graph is disturbed. [`WitnessEngine`] exploits both
//! by separating three tiers of state:
//!
//! 1. **Engine-lifetime** shared immutable state ([`EngineCaches`] plus the
//!    `Arc`'d host graph with its cached CSR): the edge-cut partition, k-hop
//!    candidate neighborhoods, PPR rows, and APPNP local logits, built once
//!    and reused by every query.
//! 2. **Per-query** state: localities, candidate pools, and verification
//!    scratch, owned by [`crate::session`] runs — repeated
//!    [`WitnessEngine::generate`] calls pay only query-proportional work.
//! 3. **Mutation epochs**: [`WitnessEngine::disturb`] applies edge flips to
//!    the host graph (copy-on-write through the `Arc`), advances the graph's
//!    epoch, invalidates only the cache entries whose k-hop footprint
//!    intersects the disturbed region, and *repairs* the stored witnesses —
//!    re-verifying each under the new graph and re-entering the search,
//!    seeded from the old witness, only for queries whose witness fails.
//!
//! The one-shot drivers [`crate::RoboGExp`] / [`crate::ParaRoboGExp`] are
//! thin wrappers running the same session code over a private cache instance,
//! so every existing call site keeps working unchanged.

use crate::config::RcwConfig;
use crate::generate::{GenerationResult, GenerationStats};
use crate::model::VerifiableModel;
use crate::session;
use crate::session::{BudgetExceeded, SessionBudget};
use crate::witness::{Witness, WitnessLevel};
use rcw_gnn::{EpochCache, GnnModel, KernelScratch};
use rcw_graph::{
    disturbance_footprint, edge_cut_partition, traversal::k_hop_neighborhood_multi, Disturbance,
    Graph, GraphView, NodeId, Partition,
};
use rcw_linalg::Matrix;
use rcw_pagerank::PprCache;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

/// Bound on distinct test-node sets the neighborhood cache remembers before
/// it resets — a backstop against unbounded growth under adversarial query
/// streams, far above any benchmark's working set.
const HOOD_CACHE_CAP: usize = 1024;

/// Bound on stored witnesses before the store resets. Every stored witness
/// costs memory *and* repair work on each `disturb` sweep, so a long-lived
/// engine under an unbounded stream of distinct test sets needs the same
/// backstop as the neighborhood cache (evicted queries simply go cold).
const WITNESS_STORE_CAP: usize = 4096;

/// Cache key for a k-hop neighborhood: `(hops, sorted deduped test nodes)`.
type HoodKey = (usize, Vec<NodeId>);
/// Cached neighborhood: the epoch it was computed at plus the node set.
type HoodEntry = (u64, Arc<BTreeSet<NodeId>>);

#[derive(Debug, Default)]
struct HoodCache {
    entries: BTreeMap<HoodKey, HoodEntry>,
    hits: usize,
    misses: usize,
}

#[derive(Debug)]
struct PartitionEntry {
    epoch: u64,
    parts: usize,
    hops: usize,
    partition: Arc<Partition>,
}

/// The engine-lifetime shared immutable tier: every cache is keyed by a graph
/// epoch, interior-mutable, and safe to share across worker threads. The
/// one-shot drivers own a private instance (cold on every call); the
/// [`WitnessEngine`] keeps one alive across queries and disturbances.
#[derive(Debug)]
pub struct EngineCaches {
    ppr: PprCache,
    appnp_logits: EpochCache<Matrix>,
    hoods: Mutex<HoodCache>,
    partition: Mutex<Option<PartitionEntry>>,
}

impl EngineCaches {
    /// Creates an empty cache set sized from the configuration.
    pub fn new(cfg: &RcwConfig) -> Self {
        EngineCaches {
            ppr: PprCache::new(crate::verify::PRUNE_ALPHA, cfg.ppr_iters),
            appnp_logits: EpochCache::new(),
            hoods: Mutex::new(HoodCache::default()),
            partition: Mutex::new(None),
        }
    }

    /// The shared PPR-row cache (candidate-pair pruning).
    pub fn ppr(&self) -> &PprCache {
        &self.ppr
    }

    /// The shared APPNP local-logit cache, keyed by the graph's *feature*
    /// epoch — edge disturbances never invalidate it.
    pub fn appnp_logits(&self) -> &EpochCache<Matrix> {
        &self.appnp_logits
    }

    /// The k-hop neighborhood of `test_nodes`, cached across expand–verify
    /// rounds and across calls, keyed by the graph's mutation epoch.
    pub fn hood(&self, graph: &Graph, test_nodes: &[NodeId], hops: usize) -> Arc<BTreeSet<NodeId>> {
        let mut key_nodes = test_nodes.to_vec();
        key_nodes.sort_unstable();
        key_nodes.dedup();
        let key = (hops, key_nodes);
        let epoch = graph.epoch();
        {
            let mut cache = lock_recover(&self.hoods);
            if let Some(hood) = cache
                .entries
                .get(&key)
                .filter(|(e, _)| *e == epoch)
                .map(|(_, hood)| Arc::clone(hood))
            {
                cache.hits += 1;
                return hood;
            }
            cache.misses += 1;
        }
        // BFS outside the lock: parallel workers missing on distinct keys
        // must not serialize behind each other (a concurrent duplicate
        // compute of the same key is rare and harmless — last writer wins,
        // both compute identical sets).
        let hood = Arc::new(k_hop_neighborhood_multi(graph, test_nodes, hops));
        let mut cache = lock_recover(&self.hoods);
        if cache.entries.len() >= HOOD_CACHE_CAP {
            cache.entries.clear();
        }
        // Never replace a newer entry: a query still running on an old graph
        // snapshot may land here after a disturbance already advanced the
        // cache (epochs are process-wide monotone, so "newer" is just ">").
        match cache.entries.get(&key) {
            Some((e, _)) if *e > epoch => {}
            _ => {
                cache.entries.insert(key, (epoch, Arc::clone(&hood)));
            }
        }
        hood
    }

    /// Lifetime `(hits, misses)` of the neighborhood cache.
    pub fn hood_stats(&self) -> (usize, usize) {
        let cache = lock_recover(&self.hoods);
        (cache.hits, cache.misses)
    }

    /// The inference-preserving edge-cut partition, cached across calls and
    /// repaired (not rebuilt) after disturbances when possible.
    pub fn partition(&self, graph: &Graph, parts: usize, hops: usize) -> Arc<Partition> {
        let mut slot = lock_recover(&self.partition);
        if let Some(entry) = slot.as_ref() {
            if entry.epoch == graph.epoch() && entry.parts == parts && entry.hops == hops {
                return Arc::clone(&entry.partition);
            }
        }
        let partition = Arc::new(edge_cut_partition(graph, parts, hops));
        // As with the hood cache, a query on an old graph snapshot must not
        // clobber a newer entry installed by a concurrent disturbance.
        if !matches!(slot.as_ref(), Some(entry) if entry.epoch > graph.epoch()) {
            *slot = Some(PartitionEntry {
                epoch: graph.epoch(),
                parts,
                hops,
                partition: Arc::clone(&partition),
            });
        }
        partition
    }

    /// Epoch-advance after a disturbance: retains every cache entry whose
    /// k-hop footprint is disjoint from the disturbed region and repairs the
    /// partition's border replication in place. `graph` is the
    /// post-disturbance graph, `old_epoch` the epoch the disturbance was
    /// applied against, `touched` the flipped pairs' endpoints, `footprint`
    /// their `hops`-hop ball.
    ///
    /// Only entries recorded at exactly `old_epoch` are eligible for
    /// retention: the footprint argument proves "unchanged across *this*
    /// disturbance", which re-validates the immediately preceding epoch and
    /// nothing else. An entry at any other epoch (e.g. inserted by a query
    /// that raced this disturbance on an older graph snapshot) is dropped
    /// rather than promoted.
    pub fn apply_disturbance(
        &self,
        graph: &Graph,
        old_epoch: u64,
        touched: &BTreeSet<NodeId>,
        footprint: &BTreeSet<NodeId>,
    ) {
        let epoch = graph.epoch();
        self.ppr.advance_epoch(epoch, footprint);
        {
            let mut cache = lock_recover(&self.hoods);
            cache.entries.retain(|_, (e, hood)| {
                if *e != old_epoch || hood.iter().any(|n| footprint.contains(n)) {
                    false
                } else {
                    *e = epoch;
                    true
                }
            });
        }
        {
            let mut slot = lock_recover(&self.partition);
            if let Some(entry) = slot.as_mut() {
                if entry.epoch != old_epoch {
                    *slot = None; // stale stray from a racing query: rebuild lazily
                } else {
                    let repaired = Arc::make_mut(&mut entry.partition)
                        .refresh_after_disturbance(graph, touched, entry.hops);
                    match repaired {
                        Some(_) => entry.epoch = epoch,
                        None => *slot = None, // node set changed: rebuild lazily
                    }
                }
            }
        }
        // APPNP local logits depend only on features; their feature-epoch key
        // already ignores edge flips, so there is nothing to invalidate here.
    }
}

/// A witness the engine keeps for repair, tagged with the epoch it was last
/// verified at.
#[derive(Clone, Debug)]
pub struct StoredWitness {
    /// The witness itself.
    pub witness: Witness,
    /// The strongest level it verified at.
    pub level: WitnessLevel,
    /// The graph epoch the level was established under.
    pub epoch: u64,
    /// Degraded-mode marker: after a disturbance, repair *and* the
    /// regeneration fallback both failed for this entry, so the witness (and
    /// its `level`) describe the pre-disturbance graph. The engine serves it
    /// tagged `stale` rather than erroring, and tries to heal it on each
    /// subsequent query.
    pub stale: bool,
}

/// A cooperative fault-injection hook for the engine's repair and
/// regeneration sites.
///
/// The hook is called with a *site name* (`"repair"` when a disturbance is
/// about to repair a stored witness, `"regen"` when the engine is about to
/// regenerate one from scratch — during a `disturb` fallback or while
/// healing a stale entry on a query). Returning `true` forces that step to
/// fail, driving the engine down its degradation chain
/// (repair → regeneration → serve-stale) exactly as a genuine failure
/// would. Production engines leave the hook unset; the fault-injection
/// harness (`rcw_server::faults::FaultPlan::engine_hook`) installs one.
pub type EngineFaultHook = Arc<dyn Fn(&str) -> bool + Send + Sync>;

/// Named hook site: a disturbance repairing a stored witness.
pub const FAULT_SITE_REPAIR: &str = "repair";
/// Named hook site: regenerating a witness from scratch (disturb fallback
/// and query-time healing of stale entries).
pub const FAULT_SITE_REGEN: &str = "regen";

/// A coherent point-in-time picture of a live engine, taken under the store
/// lock: counters, store occupancy, and cache epochs together. This is the
/// payload a serving layer exposes on its stats endpoint.
#[derive(Clone, Debug)]
pub struct EngineSnapshot {
    /// Engine-lifetime counters at snapshot time.
    pub stats: EngineStats,
    /// Witnesses currently stored.
    pub stored: usize,
    /// The host graph's mutation epoch.
    pub epoch: u64,
    /// The host graph's feature epoch (APPNP logit cache key).
    pub feature_epoch: u64,
    /// Lifetime hits of the k-hop neighborhood cache.
    pub hood_hits: usize,
    /// Lifetime misses of the k-hop neighborhood cache.
    pub hood_misses: usize,
    /// Workers per query.
    pub workers: usize,
}

/// Engine-lifetime counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `generate` calls answered.
    pub queries: usize,
    /// Queries answered from the witness store without any search.
    pub warm_hits: usize,
    /// Queries that ran a (possibly seeded) expand–verify session.
    pub sessions_run: usize,
    /// Disturbance pairs applied to the host graph.
    pub flips_applied: usize,
    /// Stored witnesses untouched by a disturbance (footprint-disjoint).
    pub repairs_skipped: usize,
    /// Stored witnesses repaired by re-verification alone.
    pub repairs_reverified: usize,
    /// Stored witnesses repaired through a seeded search.
    pub repairs_searched: usize,
    /// Stored witnesses rebuilt from scratch because the seeded repair
    /// failed (panicked, tripped the repair budget, or was fault-forced).
    pub repairs_regenerated: usize,
    /// Stored witnesses left stale because repair *and* regeneration failed;
    /// they are served tagged `stale: true` until a later query heals them.
    pub repairs_degraded: usize,
    /// Queries answered with a stale (degraded) witness because healing it
    /// was not possible within the request's budget.
    pub degraded_serves: usize,
    /// Queries aborted (nothing stored, nothing served) because their
    /// [`SessionBudget`] expired.
    pub budget_aborts: usize,
}

impl EngineStats {
    /// Field-wise accumulation, used by the sharded tier to aggregate the
    /// per-shard engines into one fleet-wide view. The conservation law
    /// `queries == warm_hits + sessions_run + degraded_serves + budget_aborts`
    /// is preserved: it holds per engine, and every field sums independently.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.queries += other.queries;
        self.warm_hits += other.warm_hits;
        self.sessions_run += other.sessions_run;
        self.flips_applied += other.flips_applied;
        self.repairs_skipped += other.repairs_skipped;
        self.repairs_reverified += other.repairs_reverified;
        self.repairs_searched += other.repairs_searched;
        self.repairs_regenerated += other.repairs_regenerated;
        self.repairs_degraded += other.repairs_degraded;
        self.degraded_serves += other.degraded_serves;
        self.budget_aborts += other.budget_aborts;
    }
}

/// How one stored witness fared in a [`WitnessEngine::disturb`] sweep.
/// Entries the disturbance could not reach are not reported per-entry (they
/// appear only in the summary's `untouched` count): a subscription layer owes
/// updates exactly for the entries whose region the disturbance touched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RepairOutcome {
    /// The stored witness re-verified at (at least) its old level.
    Reverified,
    /// The stored witness was repaired through a seeded search.
    Repaired,
    /// The stored witness was rebuilt from scratch.
    Regenerated,
    /// Repair and regeneration both failed: the entry is served stale.
    Degraded,
}

impl RepairOutcome {
    /// Stable wire name of the outcome.
    pub fn as_str(self) -> &'static str {
        match self {
            RepairOutcome::Reverified => "reverified",
            RepairOutcome::Repaired => "repaired",
            RepairOutcome::Regenerated => "regenerated",
            RepairOutcome::Degraded => "degraded",
        }
    }
}

/// Per-entry outcome of a [`WitnessEngine::disturb`] sweep, carrying the
/// exact result a warm [`WitnessEngine::generate`] for `test_nodes` returns
/// at the post-sweep epoch. It is built inside the sweep, under the store
/// lock, so a subscription layer can push it without racing a later
/// disturbance — bit-exactness with a fresh query is by construction.
#[derive(Clone, Debug)]
pub struct EntryRepair {
    /// The canonical (sorted, deduplicated) store key of the entry.
    pub test_nodes: Vec<NodeId>,
    /// How the sweep handled the entry.
    pub outcome: RepairOutcome,
    /// What a warm `generate(&test_nodes)` at the post-sweep epoch returns
    /// (for [`RepairOutcome::Degraded`]: what a failed heal serves — tagged
    /// `stale`, since a *successful* heal would produce a fresh witness).
    pub result: GenerationResult,
}

/// Report of one [`WitnessEngine::disturb`] call.
#[derive(Clone, Debug)]
pub struct DisturbReport {
    /// The graph epoch after the disturbance.
    pub epoch: u64,
    /// Number of pairs that actually changed state.
    pub flips_applied: usize,
    /// Size of the invalidation footprint (nodes).
    pub footprint_size: usize,
    /// Stored witnesses whose region the disturbance could not reach.
    pub untouched: usize,
    /// Stored witnesses that re-verified at (at least) their old level.
    pub reverified: usize,
    /// Stored witnesses repaired through a seeded search.
    pub repaired: usize,
    /// Stored witnesses rebuilt from scratch after the seeded repair failed.
    pub regenerated: usize,
    /// Stored witnesses left stale (degraded mode): repair and regeneration
    /// both failed; the pre-disturbance witness is served tagged `stale`.
    pub degraded: usize,
    /// Aggregate work spent on repair.
    pub stats: GenerationStats,
    /// Per-entry outcomes for every stored witness the disturbance touched
    /// (`entries.len() == reverified + repaired + regenerated + degraded`),
    /// each carrying the warm-equivalent [`GenerationResult`] at the
    /// post-sweep epoch. Not part of the report's wire encoding — the
    /// serving layer consumes them for subscription fan-out and strips them.
    pub entries: Vec<EntryRepair>,
}

/// The long-lived witness engine: load graph and model once, answer
/// `generate(test_nodes)` queries and `disturb(..)` mutations for the rest of
/// the process lifetime.
///
/// Every entry point takes `&self`: the store, the counters, and the host
/// graph sit behind their own locks, so one engine instance can be shared
/// across a serving layer's worker threads (`WitnessEngine` is `Sync`).
/// Queries snapshot the `Arc`'d graph and run lock-free; `disturb` swaps the
/// graph copy-on-write and repairs the store while holding the store lock, so
/// concurrent queries observe either the pre- or the post-disturbance state,
/// never a half-repaired one.
///
/// ```
/// use rcw_core::{RcwConfig, WitnessEngine};
/// use rcw_gnn::{Appnp, GnnModel, TrainConfig};
/// use rcw_graph::{Disturbance, Graph, GraphView};
/// use std::sync::Arc;
///
/// let mut g = Graph::new();
/// for i in 0..8 {
///     let class = usize::from(i >= 4);
///     let feats = if class == 0 { vec![1.0, 0.0] } else { vec![0.0, 1.0] };
///     g.add_labeled_node(feats, class);
/// }
/// for u in 0..4 { for v in (u + 1)..4 { g.add_edge(u, v); } }
/// for u in 4..8 { for v in (u + 1)..8 { g.add_edge(u, v); } }
/// g.add_edge(3, 4);
/// let mut appnp = Appnp::new(&[2, 8, 2], 0.2, 10, 1);
/// let nodes: Vec<usize> = (0..8).collect();
/// appnp.train(&GraphView::full(&g), &nodes, &TrainConfig::default());
///
/// let engine = WitnessEngine::new(Arc::new(g), &appnp, RcwConfig::with_budgets(1, 1));
/// let first = engine.generate(&[0]);
/// let warm = engine.generate(&[0]); // answered from the store
/// assert_eq!(first.witness, warm.witness);
/// assert_eq!(engine.stats().warm_hits, 1);
///
/// engine.disturb(&[Disturbance::from_pairs([(1, 2)])]); // repairs in place
/// let repaired = engine.generate(&[0]);
/// assert!(repaired.witness.subgraph.contains_node(0));
/// ```
pub struct WitnessEngine<'m, M: VerifiableModel + ?Sized = dyn GnnModel> {
    graph: RwLock<Arc<Graph>>,
    model: &'m M,
    cfg: RcwConfig,
    workers: usize,
    caches: EngineCaches,
    store: Mutex<BTreeMap<Vec<NodeId>, StoredWitness>>,
    stats: Mutex<EngineStats>,
    fault_hook: Option<EngineFaultHook>,
    repair_budget: Option<Duration>,
}

impl<'m, M: VerifiableModel + ?Sized> WitnessEngine<'m, M> {
    /// Creates an engine over a shared graph and a borrowed model. The host
    /// CSR is materialized eagerly; partition, neighborhoods, PPR rows, and
    /// model-side logits fill in on first use and persist across queries.
    pub fn new(graph: Arc<Graph>, model: &'m M, cfg: RcwConfig) -> Self {
        cfg.validate().expect("invalid RcwConfig");
        graph.csr(); // engine-lifetime CSR, shared by every view and worker
        let caches = EngineCaches::new(&cfg);
        WitnessEngine {
            graph: RwLock::new(graph),
            model,
            cfg,
            workers: 1,
            caches,
            store: Mutex::new(BTreeMap::new()),
            stats: Mutex::new(EngineStats::default()),
            fault_hook: None,
            repair_budget: None,
        }
    }

    /// Installs a fault-injection hook (see [`EngineFaultHook`]). The hook is
    /// consulted at the named repair/regeneration sites; returning `true`
    /// forces that step to fail, exercising the degradation chain end to end.
    pub fn with_fault_hook(mut self, hook: EngineFaultHook) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Bounds the per-witness work of a `disturb` repair sweep: both the
    /// seeded re-search and the regeneration fallback run under a
    /// [`SessionBudget`] of this duration, so one pathological witness cannot
    /// stall the sweep (and with it every queued query) indefinitely. A
    /// witness whose repair *and* regeneration both trip the budget is left
    /// stale and served degraded until a later query heals it.
    pub fn with_repair_budget(mut self, budget: Duration) -> Self {
        self.repair_budget = Some(budget);
        self
    }

    fn fault_fires(&self, site: &str) -> bool {
        self.fault_hook.as_ref().is_some_and(|hook| hook(site))
    }

    fn repair_session_budget(&self) -> SessionBudget {
        match self.repair_budget {
            Some(limit) => SessionBudget::expiring_in(limit),
            None => SessionBudget::unlimited(),
        }
    }

    /// Sets the worker count; `> 1` routes queries through the parallel
    /// session (partitioned search) and eagerly builds the partition.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        if self.workers > 1 {
            let hops = self.model.as_gnn().num_layers().max(1);
            let graph = self.graph_snapshot();
            self.caches.partition(&graph, self.workers, hops);
        }
        self
    }

    /// A snapshot of the engine's current host graph. Cheap (`Arc` clone);
    /// a concurrent [`WitnessEngine::disturb`] replaces the engine's graph
    /// but never mutates a snapshot already handed out.
    pub fn graph(&self) -> Arc<Graph> {
        self.graph_snapshot()
    }

    fn graph_snapshot(&self) -> Arc<Graph> {
        Arc::clone(&self.graph.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// The configuration every query runs under.
    pub fn config(&self) -> &RcwConfig {
        &self.cfg
    }

    /// Number of workers per query.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The host graph's current mutation epoch.
    pub fn epoch(&self) -> u64 {
        self.graph_snapshot().epoch()
    }

    /// A copy of the engine-lifetime counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
            .lock()
            .expect("engine stats lock poisoned")
            .clone()
    }

    /// A coherent point-in-time picture of the engine: counters, store
    /// occupancy, epochs, and cache hit rates, taken under the store lock so
    /// a concurrent `disturb` cannot tear it.
    pub fn snapshot(&self) -> EngineSnapshot {
        let store = lock_recover(&self.store);
        let graph = self.graph_snapshot();
        let (hood_hits, hood_misses) = self.caches.hood_stats();
        EngineSnapshot {
            stats: self
                .stats
                .lock()
                .expect("engine stats lock poisoned")
                .clone(),
            stored: store.len(),
            epoch: graph.epoch(),
            feature_epoch: graph.feature_epoch(),
            hood_hits,
            hood_misses,
            workers: self.workers,
        }
    }

    /// The shared cache tier (for inspection and tests).
    pub fn caches(&self) -> &EngineCaches {
        &self.caches
    }

    /// A copy of the stored witness for a test-node set, if one exists.
    pub fn stored(&self, test_nodes: &[NodeId]) -> Option<StoredWitness> {
        self.store
            .lock()
            .expect("engine store lock poisoned")
            .get(&store_key(test_nodes))
            .cloned()
    }

    /// Number of witnesses currently stored.
    pub fn stored_count(&self) -> usize {
        lock_recover(&self.store).len()
    }

    /// Drops all stored witnesses (queries become cold again; the shared
    /// immutable tier is unaffected).
    pub fn clear_store(&self) {
        self.store
            .lock()
            .expect("engine store lock poisoned")
            .clear();
    }

    /// Verifies a witness against the engine's current graph and model
    /// through the shared tier.
    pub fn verify(&self, witness: &Witness) -> crate::witness::VerifyOutcome {
        let graph = self.graph_snapshot();
        self.model
            .verify_rcw_shared(&graph, witness, &self.cfg, &self.caches)
    }

    /// Generates (or returns the stored) witness for `test_nodes`.
    ///
    /// * A stored witness from the current epoch is returned from the store
    ///   (remapped to the caller's node order) — the warm steady state costs
    ///   one map lookup plus a label remap.
    /// * A stored witness from an older epoch seeds the search (repair).
    /// * Otherwise a full session runs, and the result is stored.
    pub fn generate(&self, test_nodes: &[NodeId]) -> GenerationResult {
        self.generate_with_budget(test_nodes, &SessionBudget::unlimited())
            .expect("unlimited session budget cannot expire")
    }

    /// [`WitnessEngine::generate`] under a cooperative [`SessionBudget`]:
    /// the deadline is checked on entry (so an already-expired request never
    /// touches the store) and between session phases. An aborted query
    /// leaves the store unchanged and returns [`BudgetExceeded`] — a serving
    /// layer maps it to its overload/deadline wire error. Warm store hits
    /// run regardless of how little budget remains: they cost one map
    /// lookup, which is always cheaper than re-checking the clock midway.
    pub fn generate_with_budget(
        &self,
        test_nodes: &[NodeId],
        budget: &SessionBudget,
    ) -> Result<GenerationResult, BudgetExceeded> {
        // An already-expired budget is rejected before anything is counted:
        // the request never reached the engine proper, and the serving layer
        // accounts for it separately (`deadline_rejections`). Engine stats
        // only describe queries the engine actually processed, so the
        // conservation law (queries == warm_hits + sessions_run +
        // degraded_serves + budget_aborts) counts mid-session aborts only.
        if budget.check().is_err() {
            return Err(BudgetExceeded);
        }
        lock_recover(&self.stats).queries += 1;
        let key = store_key(test_nodes);
        // What the store probe found. Warm answers return immediately;
        // degraded entries carry their stored witness out of the lock so the
        // heal attempt (a full session) runs without blocking other queries.
        enum Probe {
            Warm(GenerationResult),
            Degraded(StoredWitness),
            Cold(Option<rcw_graph::EdgeSubgraph>),
        }
        // Graph and store are read together under the store lock so a
        // concurrent `disturb` (which holds it while swapping the graph and
        // repairing) cannot interleave a half-updated pair.
        let (graph, epoch, probe) = {
            let store = lock_recover(&self.store);
            let graph = self.graph_snapshot();
            let epoch = graph.epoch();
            let probe = match store.get(&key) {
                Some(stored) if stored.epoch == epoch && !stored.stale => {
                    lock_recover(&self.stats).warm_hits += 1;
                    // Remap to the caller's node order: the store key is
                    // canonical (sorted, deduped) but the result must pair
                    // nodes and labels exactly as the cold path would.
                    let witness = remap_witness(&stored.witness, test_nodes);
                    let nontrivial = witness.is_nontrivial(&graph);
                    Probe::Warm(GenerationResult {
                        witness,
                        level: stored.level,
                        nontrivial,
                        stale: false,
                        stats: GenerationStats::default(),
                    })
                }
                Some(stored) if stored.epoch == epoch => Probe::Degraded(stored.clone()),
                // Repair-on-read fallback: a stale-epoch stored witness seeds
                // the session. `disturb` eagerly re-tags or repairs every
                // stored witness, so this fires only when a query raced a
                // disturbance (it keeps `generate` correct on its own rather
                // than by `disturb`'s courtesy).
                stored => Probe::Cold(stored.map(|s| s.witness.subgraph.clone())),
            };
            (graph, epoch, probe)
        };
        // The session runs without any engine lock held: concurrent queries
        // proceed in parallel, each on its own graph snapshot.
        let result = match probe {
            Probe::Warm(result) => return Ok(result),
            Probe::Cold(seed) => {
                match self.run_session(&graph, test_nodes, seed.as_ref(), budget) {
                    Ok(result) => result,
                    Err(BudgetExceeded) => {
                        lock_recover(&self.stats).budget_aborts += 1;
                        return Err(BudgetExceeded);
                    }
                }
            }
            Probe::Degraded(stored) => {
                // Heal attempt: re-run the search under the caller's budget,
                // gated by the regen fault site and contained against panics.
                // Any failure serves the stale witness instead of erroring —
                // a degraded entry by definition already failed fresher
                // paths, and a best-effort answer beats none.
                let healed = if self.fault_fires(FAULT_SITE_REGEN) {
                    None
                } else {
                    catch_unwind(AssertUnwindSafe(|| {
                        self.run_session(&graph, test_nodes, Some(&stored.witness.subgraph), budget)
                    }))
                    .ok()
                    .and_then(Result::ok)
                };
                match healed {
                    Some(result) => result,
                    None => {
                        lock_recover(&self.stats).degraded_serves += 1;
                        let witness = remap_witness(&stored.witness, test_nodes);
                        let nontrivial = witness.is_nontrivial(&graph);
                        return Ok(GenerationResult {
                            witness,
                            level: stored.level,
                            nontrivial,
                            stale: true,
                            stats: GenerationStats::default(),
                        });
                    }
                }
            }
        };
        lock_recover(&self.stats).sessions_run += 1;
        let mut store = lock_recover(&self.store);
        if store.len() >= WITNESS_STORE_CAP && !store.contains_key(&key) {
            store.clear();
        }
        // Tagged with the epoch of the snapshot the session actually ran on:
        // if a disturbance landed meanwhile, the entry is already stale and
        // the next query repairs it.
        store.insert(
            key,
            StoredWitness {
                witness: result.witness.clone(),
                level: result.level,
                epoch,
                stale: false,
            },
        );
        Ok(result)
    }

    /// Batched [`WitnessEngine::generate_with_budget`]: one admission pass
    /// over the whole batch under a *single* store lock, then the remaining
    /// cold/degraded queries in order through the per-request path.
    ///
    /// Pass 1 (warm pass): per query, the entry budget is checked (an
    /// already-expired query emits `Err` and is never counted, exactly like
    /// the per-request path) and the store is probed; a fresh same-epoch hit
    /// is remapped and emitted immediately, with the whole batch's
    /// `queries`/`warm_hits` counters bumped under one stats lock. Pass 2:
    /// every deferred query runs the full [`WitnessEngine::generate_with_budget`]
    /// — which re-probes the store, so an in-batch duplicate of a cold query
    /// becomes a warm hit exactly as sequential execution would.
    ///
    /// `emit(index, result)` is called exactly once per query: warm hits
    /// first (a serving layer can stream them out while the cold tail still
    /// computes), then deferred queries in batch order. Results and final
    /// engine counters are identical to issuing the queries one at a time.
    pub fn generate_batch_with(
        &self,
        queries: &[Vec<NodeId>],
        budgets: &[SessionBudget],
        emit: &mut dyn FnMut(usize, Result<GenerationResult, BudgetExceeded>),
    ) {
        assert_eq!(
            queries.len(),
            budgets.len(),
            "generate_batch_with: one budget per query"
        );
        let mut deferred: Vec<usize> = Vec::new();
        {
            // Graph and store read together under the store lock, mirroring
            // the per-request path: a concurrent `disturb` observes the whole
            // warm pass as one atomic step.
            let store = lock_recover(&self.store);
            let graph = self.graph_snapshot();
            let epoch = graph.epoch();
            let mut warm = 0usize;
            for (i, nodes) in queries.iter().enumerate() {
                if budgets[i].check().is_err() {
                    emit(i, Err(BudgetExceeded));
                    continue;
                }
                match store.get(&store_key(nodes)) {
                    Some(stored) if stored.epoch == epoch && !stored.stale => {
                        warm += 1;
                        let witness = remap_witness(&stored.witness, nodes);
                        let nontrivial = witness.is_nontrivial(&graph);
                        emit(
                            i,
                            Ok(GenerationResult {
                                witness,
                                level: stored.level,
                                nontrivial,
                                stale: false,
                                stats: GenerationStats::default(),
                            }),
                        );
                    }
                    // Misses and degraded entries defer with *no* stats
                    // changes: pass 2's full path counts them, so duplicate
                    // queries and heal attempts account exactly as if the
                    // batch had been issued sequentially.
                    _ => deferred.push(i),
                }
            }
            if warm > 0 {
                let mut stats = lock_recover(&self.stats);
                stats.queries += warm;
                stats.warm_hits += warm;
            }
        }
        for i in deferred {
            emit(i, self.generate_with_budget(&queries[i], &budgets[i]));
        }
    }

    /// [`WitnessEngine::generate_batch_with`] under unlimited budgets,
    /// collecting results in batch order.
    pub fn generate_batch(&self, queries: &[Vec<NodeId>]) -> Vec<GenerationResult> {
        let budgets = vec![SessionBudget::unlimited(); queries.len()];
        let mut out: Vec<Option<GenerationResult>> = Vec::new();
        out.resize_with(queries.len(), || None);
        self.generate_batch_with(queries, &budgets, &mut |i, result| {
            out[i] = Some(result.expect("unlimited session budget cannot expire"));
        });
        out.into_iter()
            .map(|r| r.expect("emit called once per query"))
            .collect()
    }

    /// Applies a batch of disturbances to the host graph (copy-on-write),
    /// advances the mutation epoch, invalidates only the caches whose k-hop
    /// footprint intersects the disturbed region, and repairs every stored
    /// witness: re-verify under the new graph; only witnesses that fail
    /// re-enter the search, seeded from their old subgraph. A failed seeded
    /// search (panic, tripped repair budget, or injected fault) falls back to
    /// regeneration from scratch, and if that fails too the entry is kept
    /// stale — served tagged `stale: true` until a later query heals it —
    /// so a disturbance sweep never erases answers or takes the engine down.
    pub fn disturb(&self, disturbances: &[Disturbance]) -> DisturbReport {
        // The store lock is held for the whole call, making the graph swap +
        // repair sweep one atomic step from a query's point of view: queries
        // already past the store check finish on their pre-disturbance
        // snapshot, while new queries — warm hits included — block on the
        // store lock until the sweep completes and then see the repaired
        // store. Disturbances therefore pause the query stream for the sweep
        // duration; that latency cliff is the price of never serving a
        // half-repaired store.
        let mut store = lock_recover(&self.store);
        let mut touched: BTreeSet<NodeId> = BTreeSet::new();
        let mut flips_applied = 0usize;
        let (graph, old_epoch): (Arc<Graph>, u64) = {
            let mut guard = self.graph.write().unwrap_or_else(|e| e.into_inner());
            let old_epoch = guard.epoch();
            // A valid pair (distinct, existing endpoints) always toggles, so
            // this test is exactly "will any flip apply" — and when none
            // will, the copy-on-write clone below is skipped entirely (a
            // served engine always has snapshot `Arc`s outstanding, so
            // `make_mut` would deep-copy the host graph on every no-op).
            let any_valid = disturbances.iter().any(|d| {
                d.pairs()
                    .iter()
                    .any(|(u, v)| u != v && guard.contains_node(u) && guard.contains_node(v))
            });
            if any_valid {
                // Copy-on-write: snapshots handed to in-flight queries keep
                // the old graph; the engine's slot gets the flipped clone.
                let graph = Arc::make_mut(&mut guard);
                for d in disturbances {
                    let pairs = d.pairs().to_vec();
                    flips_applied += graph.flip_edges_in_place(&pairs);
                    touched.extend(
                        d.touched_nodes()
                            .into_iter()
                            .filter(|&v| graph.contains_node(v)),
                    );
                }
            }
            (Arc::clone(&guard), old_epoch)
        };
        {
            let mut stats = lock_recover(&self.stats);
            stats.flips_applied += flips_applied;
        }
        let epoch = graph.epoch();
        if flips_applied == 0 {
            // Nothing changed structurally (all pairs invalid): the epoch did
            // not move, every cache stays live, stored witnesses stay valid.
            lock_recover(&self.stats).repairs_skipped += store.len();
            return DisturbReport {
                epoch,
                flips_applied,
                footprint_size: 0,
                untouched: store.len(),
                reverified: 0,
                repaired: 0,
                regenerated: 0,
                degraded: 0,
                stats: GenerationStats::default(),
                entries: Vec::new(),
            };
        }
        // The footprint radius covers both what the model can see (receptive
        // field) and what the verifier may flip (candidate neighborhood).
        let radius = self
            .model
            .as_gnn()
            .receptive_hops()
            .max(self.cfg.candidate_hops);
        let footprint = disturbance_footprint(&graph, disturbances, radius);
        self.caches
            .apply_disturbance(&graph, old_epoch, &touched, &footprint);

        let mut report = DisturbReport {
            epoch,
            flips_applied,
            footprint_size: footprint.len(),
            untouched: 0,
            reverified: 0,
            repaired: 0,
            regenerated: 0,
            degraded: 0,
            stats: GenerationStats::default(),
            entries: Vec::new(),
        };

        let repair_start = Instant::now();
        let keys: Vec<Vec<NodeId>> = store.keys().cloned().collect();
        for key in keys {
            let mut stored = store.remove(&key).expect("key just listed");
            // Witnesses whose candidate region the disturbance cannot reach
            // keep their verification verdict (up to the verifier's own
            // truncation): skip them entirely.
            let hood = self.caches.hood(&graph, &stored.witness.test_nodes, radius);
            let edge_touched = stored
                .witness
                .edges()
                .iter()
                .any(|(u, v)| touched.contains(&u) || touched.contains(&v));
            if !edge_touched && hood.iter().all(|n| !footprint.contains(n)) {
                // An untouched entry keeps its `stale` flag: the disturbance
                // proves nothing about a witness that already described an
                // older graph, so only a successful repair may clear it.
                stored.epoch = epoch;
                report.untouched += 1;
                lock_recover(&self.stats).repairs_skipped += 1;
                store.insert(key, stored);
                continue;
            }

            // The degradation chain: re-verify → seeded search → regenerate
            // from scratch → leave stale. The `repair` fault site fails the
            // first two steps, `regen` the third; a panic or a tripped
            // repair budget inside either search step degrades the same way
            // a forced fault does.
            let test_nodes = stored.witness.test_nodes.clone();
            let mut repaired: Option<(GenerationResult, &'static str)> = None;
            if !self.fault_fires(FAULT_SITE_REPAIR) {
                // Prune pairs the disturbance removed — the same rule the
                // seeded session applies, so re-verify and seeded re-search
                // start from the identical subgraph — and refresh the labels.
                let pruned =
                    session::seeded_subgraph(&graph, &test_nodes, Some(&stored.witness.subgraph));
                let full = GraphView::full(&graph);
                let gnn = self.model.as_gnn();
                report.stats.inference_calls += test_nodes.len();
                let labels: Vec<usize> = gnn
                    .predict_many_with(&test_nodes, &full, &mut KernelScratch::default())
                    .expect("valid node");
                let witness = Witness::new(pruned, test_nodes.clone(), labels);
                let outcome =
                    self.model
                        .verify_rcw_shared(&graph, &witness, &self.cfg, &self.caches);
                report.stats.inference_calls += outcome.inference_calls;
                report.stats.disturbances_verified += outcome.disturbances_checked;
                if outcome.level.rank() >= stored.level.rank() {
                    stored.witness = witness;
                    stored.level = outcome.level;
                    stored.epoch = epoch;
                    stored.stale = false;
                    report.reverified += 1;
                    lock_recover(&self.stats).repairs_reverified += 1;
                    report.entries.push(EntryRepair {
                        test_nodes: key.clone(),
                        outcome: RepairOutcome::Reverified,
                        result: warm_equivalent(&graph, &key, &stored),
                    });
                    store.insert(key, stored);
                    continue;
                }

                // The old witness no longer holds: re-enter the search seeded
                // from it, so nodes that still verify exit after a couple of
                // localized checks and only the broken parts are rebuilt.
                repaired = catch_unwind(AssertUnwindSafe(|| {
                    self.run_session(
                        &graph,
                        &test_nodes,
                        Some(&witness.subgraph),
                        &self.repair_session_budget(),
                    )
                }))
                .ok()
                .and_then(Result::ok)
                .map(|result| (result, "searched"));
            }
            if repaired.is_none() && !self.fault_fires(FAULT_SITE_REGEN) {
                // Seeded repair failed (fault-forced, panicked, or over
                // budget): rebuild from scratch — a bad seed can poison a
                // search in ways a cold start does not.
                repaired = catch_unwind(AssertUnwindSafe(|| {
                    self.run_session(&graph, &test_nodes, None, &self.repair_session_budget())
                }))
                .ok()
                .and_then(Result::ok)
                .map(|result| (result, "regenerated"));
            }
            match repaired {
                Some((result, how)) => {
                    report.stats.inference_calls += result.stats.inference_calls;
                    report.stats.disturbances_verified += result.stats.disturbances_verified;
                    report.stats.expand_rounds += result.stats.expand_rounds;
                    let outcome = if how == "searched" {
                        report.repaired += 1;
                        lock_recover(&self.stats).repairs_searched += 1;
                        RepairOutcome::Repaired
                    } else {
                        report.regenerated += 1;
                        lock_recover(&self.stats).repairs_regenerated += 1;
                        RepairOutcome::Regenerated
                    };
                    let fresh = StoredWitness {
                        witness: result.witness,
                        level: result.level,
                        epoch,
                        stale: false,
                    };
                    report.entries.push(EntryRepair {
                        test_nodes: key.clone(),
                        outcome,
                        result: warm_equivalent(&graph, &key, &fresh),
                    });
                    store.insert(key, fresh);
                }
                None => {
                    // Degraded: every recovery path failed. Keep the old
                    // witness (it still describes the pre-disturbance graph),
                    // re-tag its epoch so warm probes find it, and mark it
                    // stale so queries serve it flagged and keep trying to
                    // heal it.
                    stored.epoch = epoch;
                    stored.stale = true;
                    report.degraded += 1;
                    lock_recover(&self.stats).repairs_degraded += 1;
                    report.entries.push(EntryRepair {
                        test_nodes: key.clone(),
                        outcome: RepairOutcome::Degraded,
                        result: warm_equivalent(&graph, &key, &stored),
                    });
                    store.insert(key, stored);
                }
            }
        }
        report.stats.elapsed = repair_start.elapsed();
        report
    }

    fn run_session(
        &self,
        graph: &Arc<Graph>,
        test_nodes: &[NodeId],
        seed: Option<&rcw_graph::EdgeSubgraph>,
        budget: &SessionBudget,
    ) -> Result<GenerationResult, BudgetExceeded> {
        if self.workers > 1 {
            session::run_parallel(
                self.model,
                graph,
                &self.caches,
                &self.cfg,
                self.workers,
                test_nodes,
                seed,
                budget,
            )
            .map(|parallel| parallel.result)
        } else {
            session::run_sequential(
                self.model,
                graph,
                &self.caches,
                &self.cfg,
                test_nodes,
                seed,
                budget,
            )
        }
    }
}

/// The result a warm `generate(key)` returns for `stored` at the current
/// epoch: remapped to the canonical key order, nontriviality judged against
/// the post-disturbance graph, zero stats, `stale` carried through (a warm
/// probe of a degraded entry that fails to heal serves exactly this shape).
fn warm_equivalent(graph: &Graph, key: &[NodeId], stored: &StoredWitness) -> GenerationResult {
    let witness = remap_witness(&stored.witness, key);
    let nontrivial = witness.is_nontrivial(graph);
    GenerationResult {
        witness,
        level: stored.level,
        nontrivial,
        stale: stored.stale,
        stats: GenerationStats::default(),
    }
}

/// Remaps a stored witness to a caller's node order: the store key is
/// canonical (sorted, deduped) but results must pair nodes and labels
/// exactly as a cold run would.
fn remap_witness(stored: &Witness, test_nodes: &[NodeId]) -> Witness {
    let labels: Vec<usize> = test_nodes
        .iter()
        .map(|&v| {
            stored
                .label_of(v)
                .expect("store key guarantees node membership")
        })
        .collect();
    Witness::new(stored.subgraph.clone(), test_nodes.to_vec(), labels)
}

/// Locks an engine mutex, recovering from poisoning. A panic inside a
/// serving-layer worker (contained by its `catch_unwind`) may have unwound
/// through one of these guards; the protected state is kept consistent by
/// epoch tags and counter arithmetic, not by unwind flags, so the engine
/// keeps serving instead of wedging every subsequent query.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Canonical store key for a test-node set: sorted, deduplicated.
fn store_key(test_nodes: &[NodeId]) -> Vec<NodeId> {
    let mut key = test_nodes.to_vec();
    key.sort_unstable();
    key.dedup();
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_gnn::{Appnp, Gcn, TrainConfig};
    use rcw_graph::generators;

    fn setup() -> (Arc<Graph>, Gcn, Appnp, Vec<NodeId>) {
        let (mut g, blocks) = generators::stochastic_block_model(&[8, 8], 0.7, 0.05, 3);
        generators::ensure_connected(&mut g, 3);
        for (v, &b) in blocks.iter().enumerate() {
            let feats = if b == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.set_features(v, feats);
            g.set_label(v, b);
        }
        let view = GraphView::full(&g);
        let train: Vec<usize> = (0..g.num_nodes()).collect();
        let tc = TrainConfig {
            epochs: 80,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        let mut gcn = Gcn::new(&[2, 8, 2], 2);
        gcn.train(&view, &train, &tc);
        let mut appnp = Appnp::new(&[2, 6, 2], 0.2, 10, 2);
        appnp.train(&view, &train, &tc);
        let tests = vec![0, g.num_nodes() - 1];
        (Arc::new(g), gcn, appnp, tests)
    }

    fn quick_cfg() -> RcwConfig {
        RcwConfig {
            k: 1,
            local_budget: 1,
            candidate_hops: 2,
            max_expand_rounds: 2,
            sampled_disturbances: 4,
            pri_rounds: 4,
            ppr_iters: 20,
            ..RcwConfig::default()
        }
    }

    #[test]
    fn warm_queries_are_store_hits_matching_the_cold_result() {
        let (g, gcn, _appnp, tests) = setup();
        let engine = WitnessEngine::new(Arc::clone(&g), &gcn, quick_cfg());
        let cold = engine.generate(&tests);
        let warm = engine.generate(&tests);
        assert_eq!(cold.witness, warm.witness);
        assert_eq!(cold.level, warm.level);
        assert_eq!(warm.stats.inference_calls, 0, "warm path does no inference");
        assert_eq!(engine.stats().queries, 2);
        assert_eq!(engine.stats().warm_hits, 1);
        assert_eq!(engine.stats().sessions_run, 1);
        // node order does not defeat the store, and the warm result pairs
        // nodes with labels in the *caller's* order like a cold run would
        let reordered: Vec<NodeId> = tests.iter().rev().copied().collect();
        let again = engine.generate(&reordered);
        assert_eq!(again.witness.subgraph, cold.witness.subgraph);
        assert_eq!(again.witness.test_nodes, reordered);
        for (i, &v) in reordered.iter().enumerate() {
            assert_eq!(again.witness.labels[i], cold.witness.label_of(v).unwrap());
        }
        assert_eq!(engine.stats().warm_hits, 2);
    }

    #[test]
    fn engine_matches_the_one_shot_driver() {
        let (g, gcn, _appnp, tests) = setup();
        let cfg = quick_cfg();
        let engine = WitnessEngine::new(Arc::clone(&g), &gcn, cfg.clone());
        let from_engine = engine.generate(&tests);
        let from_driver = crate::RoboGExp::for_model(&gcn, cfg).generate(&g, &tests);
        assert_eq!(from_engine.witness, from_driver.witness);
        assert_eq!(from_engine.level, from_driver.level);
    }

    #[test]
    fn disturb_applies_flips_and_repairs_the_store() {
        let (g, _gcn, appnp, tests) = setup();
        let engine = WitnessEngine::new(Arc::clone(&g), &appnp, quick_cfg());
        let before = engine.generate(&tests);
        let epoch_before = engine.epoch();
        // flip an edge that is not protected by the witness
        let flip = g
            .edges()
            .find(|&(u, v)| !before.witness.subgraph.contains_edge(u, v))
            .expect("unprotected edge exists");
        let report = engine.disturb(&[Disturbance::from_pairs([flip])]);
        assert_eq!(report.flips_applied, 1);
        assert!(report.footprint_size > 0);
        assert_ne!(engine.epoch(), epoch_before);
        assert!(!engine.graph().has_edge(flip.0, flip.1));
        assert_eq!(
            report.untouched + report.reverified + report.repaired + report.regenerated,
            1
        );
        assert_eq!(report.degraded, 0);
        // the original Arc'd graph is untouched (copy-on-write)
        assert!(g.has_edge(flip.0, flip.1));
        // the stored witness is tagged with the new epoch: next query is warm
        let after = engine.generate(&tests);
        assert_eq!(engine.stats().warm_hits, 1);
        // and the stored witness verifies at its recorded level
        let recheck = engine.verify(&after.witness);
        assert_eq!(recheck.level, after.level);
    }

    #[test]
    fn empty_disturbance_is_a_cheap_no_op() {
        let (g, gcn, _appnp, tests) = setup();
        let engine = WitnessEngine::new(Arc::clone(&g), &gcn, quick_cfg());
        engine.generate(&tests);
        let epoch = engine.epoch();
        let before = engine.graph();
        // all-invalid pairs (empty, self-loop, missing endpoint) must not
        // trigger the copy-on-write clone: the graph Arc stays the same
        // allocation even though `g` and `before` keep it shared
        let report = engine.disturb(&[
            Disturbance::new(),
            Disturbance::from_pairs([(1, 1), (0, 9999)]),
        ]);
        assert_eq!(report.flips_applied, 0);
        assert_eq!(report.untouched, 1);
        assert_eq!(engine.epoch(), epoch, "no flip, no epoch change");
        assert!(
            Arc::ptr_eq(&before, &engine.graph()),
            "no-op disturb must not deep-clone the host graph"
        );
        engine.generate(&tests);
        assert_eq!(engine.stats().warm_hits, 1);
    }

    #[test]
    fn caches_survive_footprint_disjoint_disturbances() {
        // a long path: disturb one end, query the other
        let mut g = Graph::with_nodes(24);
        for i in 0..23 {
            g.add_edge(i, i + 1);
        }
        for v in 0..24 {
            g.set_features(v, vec![if v < 12 { 1.0 } else { 0.0 }]);
            g.set_label(v, usize::from(v >= 12));
        }
        let view = GraphView::full(&g);
        let train: Vec<usize> = (0..24).collect();
        let mut gcn = Gcn::new(&[1, 4, 2], 1);
        gcn.train(
            &view,
            &train,
            &TrainConfig {
                epochs: 40,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
        );
        let engine = WitnessEngine::new(Arc::new(g), &gcn, quick_cfg());
        engine.generate(&[1]);
        let report = engine.disturb(&[Disturbance::from_pairs([(22, 23)])]);
        assert_eq!(report.untouched, 1, "far witness untouched");
        engine.generate(&[1]);
        assert_eq!(engine.stats().warm_hits, 1);
        // a second far disturbance reuses the surviving hood entry: the
        // repair sweep's neighborhood lookup is a hit, not a recomputation
        let (_, misses_before) = engine.caches().hood_stats();
        let report2 = engine.disturb(&[Disturbance::from_pairs([(20, 21)])]);
        assert_eq!(report2.untouched, 1);
        let (hits_after, misses_after) = engine.caches().hood_stats();
        assert_eq!(
            misses_before, misses_after,
            "hood cache survived the far disturbance"
        );
        assert!(hits_after > 0);
    }

    #[test]
    fn engine_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WitnessEngine<'static, dyn GnnModel>>();
        assert_send_sync::<WitnessEngine<'static, Gcn>>();

        let (g, gcn, _appnp, tests) = setup();
        let engine = WitnessEngine::new(Arc::clone(&g), &gcn, quick_cfg());
        let baseline = engine.generate(&tests);
        // several threads query the same engine through &self; all observe
        // the stored witness
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let engine_ref = &engine;
                let tests_ref = &tests;
                let expected = &baseline;
                scope.spawn(move || {
                    let got = engine_ref.generate(tests_ref);
                    assert_eq!(got.witness, expected.witness);
                    assert_eq!(got.level, expected.level);
                });
            }
        });
        assert_eq!(engine.stats().warm_hits, 3);
        assert_eq!(engine.stats().queries, 4);
    }

    #[test]
    fn concurrent_queries_and_disturbances_stay_coherent() {
        let (g, _gcn, appnp, tests) = setup();
        let engine = WitnessEngine::new(Arc::clone(&g), &appnp, quick_cfg());
        engine.generate(&tests);
        let flips: Vec<_> = g
            .edges()
            .filter(|&(u, v)| {
                let stored = engine.stored(&tests).unwrap();
                !stored.witness.subgraph.contains_edge(u, v)
            })
            .take(2)
            .collect();
        std::thread::scope(|scope| {
            let engine_ref = &engine;
            let tests_ref = &tests;
            scope.spawn(move || {
                for &flip in &flips {
                    engine_ref.disturb(&[Disturbance::from_pairs([flip])]);
                }
            });
            for _ in 0..2 {
                scope.spawn(move || {
                    for _ in 0..4 {
                        let out = engine_ref.generate(tests_ref);
                        // every answer is a witness over *some* engine epoch:
                        // it contains the test nodes and carries their labels
                        for &t in tests_ref {
                            assert!(out.witness.subgraph.contains_node(t));
                            assert!(out.witness.label_of(t).is_some());
                        }
                    }
                });
            }
        });
        // After the dust settles, one more query repairs any entry a racing
        // session tagged with a pre-disturbance epoch; the store is then
        // fresh and truthful.
        engine.generate(&tests);
        let stored = engine.stored(&tests).expect("stored witness survives");
        assert_eq!(stored.epoch, engine.epoch());
        let recheck = engine.verify(&stored.witness);
        assert_eq!(recheck.level, stored.level);
        let snap = engine.snapshot();
        assert_eq!(snap.epoch, engine.epoch());
        assert_eq!(snap.stored, 1);
        assert!(snap.stats.queries >= 9);
    }

    #[test]
    fn expired_budget_aborts_before_touching_the_store() {
        let (g, gcn, _appnp, tests) = setup();
        let engine = WitnessEngine::new(Arc::clone(&g), &gcn, quick_cfg());
        let expired = SessionBudget::expiring_in(std::time::Duration::ZERO);
        assert!(matches!(
            engine.generate_with_budget(&tests, &expired),
            Err(BudgetExceeded)
        ));
        assert_eq!(engine.stored_count(), 0, "aborted query stores nothing");
        // the same query under an unlimited budget runs to completion, and a
        // warm hit is then answered even when the budget is already expired
        // (a store lookup is cheaper than any mid-flight clock check)
        let cold = engine
            .generate_with_budget(&tests, &SessionBudget::unlimited())
            .expect("unlimited budget");
        let warm = engine.generate(&tests);
        assert_eq!(cold.witness, warm.witness);
        assert_eq!(engine.stats().warm_hits, 1);
        // parallel sessions honor the budget too
        let par = WitnessEngine::new(Arc::clone(&g), &gcn, quick_cfg()).with_workers(2);
        assert!(matches!(
            par.generate_with_budget(&tests, &expired),
            Err(BudgetExceeded)
        ));
        // a generous deadline behaves like unlimited
        let generous = SessionBudget::expiring_in(std::time::Duration::from_secs(600));
        assert!(!generous.expired());
        let under_deadline = par
            .generate_with_budget(&tests, &generous)
            .expect("generous deadline");
        assert!(under_deadline.witness.subgraph.contains_node(tests[0]));
    }

    #[test]
    fn forced_repair_failure_regenerates_and_forced_regen_degrades() {
        let (g, _gcn, appnp, tests) = setup();
        // Hook that fails whatever sites are currently switched on.
        use std::sync::atomic::{AtomicBool, Ordering};
        let fail_repair = Arc::new(AtomicBool::new(false));
        let fail_regen = Arc::new(AtomicBool::new(false));
        let hook: EngineFaultHook = {
            let fail_repair = Arc::clone(&fail_repair);
            let fail_regen = Arc::clone(&fail_regen);
            Arc::new(move |site: &str| match site {
                FAULT_SITE_REPAIR => fail_repair.load(Ordering::SeqCst),
                FAULT_SITE_REGEN => fail_regen.load(Ordering::SeqCst),
                _ => false,
            })
        };
        let engine = WitnessEngine::new(Arc::clone(&g), &appnp, quick_cfg()).with_fault_hook(hook);
        let before = engine.generate(&tests);
        let flips: Vec<(NodeId, NodeId)> = g.edges().take(3).collect();

        // Repair forced to fail: the sweep regenerates from scratch (the
        // witness may be untouched if the flip misses its region, so accept
        // either, but never a plain repair).
        fail_repair.store(true, Ordering::SeqCst);
        let report = engine.disturb(&[Disturbance::from_pairs([flips[0]])]);
        assert_eq!(report.reverified + report.repaired, 0);
        assert_eq!(report.untouched + report.regenerated, 1);
        assert_eq!(report.degraded, 0);
        let served = engine.generate(&tests);
        assert!(!served.stale, "regenerated entries are not stale");

        // Repair *and* regeneration forced to fail: the entry goes stale and
        // queries serve it degraded.
        fail_regen.store(true, Ordering::SeqCst);
        let queries_before = engine.stats().queries;
        let report = engine.disturb(&[Disturbance::from_pairs([flips[1]])]);
        if report.degraded == 1 {
            let degraded = engine.generate(&tests);
            assert!(degraded.stale, "failed repair chain serves stale");
            assert_eq!(degraded.witness.test_nodes, tests);
            let stats = engine.stats();
            assert_eq!(stats.degraded_serves, 1);
            assert_eq!(stats.repairs_degraded, 1);
            assert!(engine.stored(&tests).expect("entry survives").stale);

            // Healing: with the faults lifted, the next query repairs the
            // entry in place and the one after is a plain warm hit.
            fail_repair.store(false, Ordering::SeqCst);
            fail_regen.store(false, Ordering::SeqCst);
            let healed = engine.generate(&tests);
            assert!(!healed.stale, "healed entries are fresh");
            assert!(!engine.stored(&tests).expect("entry survives").stale);
            let warm_before = engine.stats().warm_hits;
            let warm = engine.generate(&tests);
            assert!(!warm.stale);
            assert_eq!(engine.stats().warm_hits, warm_before + 1);
            assert_eq!(warm.witness, healed.witness);
        } else {
            // The second flip missed the witness region entirely.
            assert_eq!(report.untouched, 1);
        }

        // Conservation: every query is exactly one of warm hit, session,
        // degraded serve, or budget abort.
        let stats = engine.stats();
        assert!(stats.queries > queries_before);
        assert_eq!(
            stats.queries,
            stats.warm_hits + stats.sessions_run + stats.degraded_serves + stats.budget_aborts
        );
        assert_eq!(before.witness.test_nodes, tests);
    }

    #[test]
    fn repair_budget_zero_degrades_touched_witnesses() {
        let (g, _gcn, appnp, tests) = setup();
        let engine = WitnessEngine::new(Arc::clone(&g), &appnp, quick_cfg())
            .with_repair_budget(Duration::ZERO);
        let before = engine.generate(&tests);
        // Flip an edge inside the witness so re-verify cannot simply succeed
        // at the stored level; with a zero repair budget both the seeded
        // search and the regeneration trip immediately.
        let inside = before.witness.edges().iter().next();
        if let Some(flip) = inside {
            let report = engine.disturb(&[Disturbance::from_pairs([flip])]);
            assert_eq!(report.untouched, 0, "witness edge flip always touches");
            if report.degraded == 1 {
                let served = engine.generate(&tests);
                assert!(served.stale);
                assert_eq!(engine.stats().degraded_serves, 1);
            } else {
                // Re-verification alone saved it (possible when the pruned
                // witness still verifies at its old level).
                assert_eq!(report.reverified, 1);
            }
        }
        let stats = engine.stats();
        assert_eq!(
            stats.queries,
            stats.warm_hits + stats.sessions_run + stats.degraded_serves + stats.budget_aborts
        );
    }

    #[test]
    fn entry_expired_budgets_are_invisible_to_stats() {
        // The serving layer counts boundary rejections (`deadline_rejections`);
        // the engine only counts queries it actually processed, so an
        // entry-expired request must leave every counter untouched and the
        // conservation law must hold trivially.
        let (g, gcn, _appnp, tests) = setup();
        let engine = WitnessEngine::new(Arc::clone(&g), &gcn, quick_cfg());
        let expired = SessionBudget::expiring_in(Duration::ZERO);
        assert!(engine.generate_with_budget(&tests, &expired).is_err());
        let stats = engine.stats();
        assert_eq!(stats.budget_aborts, 0);
        assert_eq!(stats.queries, 0);
        assert_eq!(
            stats.queries,
            stats.warm_hits + stats.sessions_run + stats.degraded_serves + stats.budget_aborts
        );
    }

    #[test]
    fn parallel_engine_produces_verifiable_witnesses() {
        let (g, _gcn, appnp, tests) = setup();
        let engine = WitnessEngine::new(Arc::clone(&g), &appnp, quick_cfg()).with_workers(2);
        assert_eq!(engine.workers(), 2);
        let out = engine.generate(&tests);
        for &t in &tests {
            assert!(out.witness.subgraph.contains_node(t));
        }
        let recheck = engine.verify(&out.witness);
        assert_eq!(recheck.level, out.level);
        // second query is a store hit even on the parallel path
        engine.generate(&tests);
        assert_eq!(engine.stats().warm_hits, 1);
    }
}
