//! # rcw-metrics
//!
//! Evaluation metrics used by the paper's experimental study (§VII):
//!
//! * **Normalized GED** — structural stability of explanations across graph
//!   disturbances (Eq. 3); re-exported from `rcw-graph` and wrapped into an
//!   aggregator here.
//! * **Fidelity+** — counterfactual effectiveness: how often removing the
//!   explanation changes the prediction.
//! * **Fidelity−** — factual accuracy: how often the explanation alone
//!   reproduces the prediction (lower is better).
//! * **Explanation size** — `|V| + |E|` of the witness subgraph.
//! * Simple result-table formatting for the experiment harness.

pub mod aggregate;
pub mod fidelity;
pub mod table;

pub use aggregate::{summarize_by_method, MethodSummary, Stat};
pub use fidelity::{explanation_size, fidelity_minus, fidelity_plus, ExplanationEval};
pub use rcw_graph::{edge_jaccard, ged, normalized_ged};
pub use table::{format_row, Table};

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_graph::EdgeSubgraph;

    #[test]
    fn reexported_ged_is_usable() {
        let a = EdgeSubgraph::from_edges([(0, 1)]);
        let b = EdgeSubgraph::from_edges([(0, 1), (1, 2)]);
        assert_eq!(ged(&a, &b), 2);
        assert!(normalized_ged(&a, &b) > 0.0);
    }
}
