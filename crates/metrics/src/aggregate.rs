//! Aggregation of repeated experiment runs.
//!
//! The paper reports averages over test-node samples and repeated runs; this
//! module provides the mean/std bookkeeping used by the harness when an
//! experiment is repeated with different seeds, plus a compact summary type
//! that turns a list of per-run [`ExplanationEval`]s into one table row.

use crate::fidelity::ExplanationEval;

/// Mean and population standard deviation of a sample.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Stat {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Number of samples aggregated.
    pub count: usize,
}

impl Stat {
    /// Computes mean/std over a slice of samples (zeros for an empty slice).
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Stat::default();
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        Stat {
            mean,
            std: var.sqrt(),
            count: samples.len(),
        }
    }

    /// Renders as `mean ± std` with the given number of decimals.
    pub fn display(&self, decimals: usize) -> String {
        format!("{:.d$} ± {:.d$}", self.mean, self.std, d = decimals)
    }
}

/// Aggregated quality metrics of one method over several runs.
#[derive(Clone, Debug, Default)]
pub struct MethodSummary {
    /// Method name.
    pub method: String,
    /// Normalized GED statistics.
    pub normalized_ged: Stat,
    /// Fidelity+ statistics.
    pub fidelity_plus: Stat,
    /// Fidelity− statistics.
    pub fidelity_minus: Stat,
    /// Explanation size statistics.
    pub size: Stat,
    /// Generation time statistics (milliseconds).
    pub generation_ms: Stat,
}

impl MethodSummary {
    /// Aggregates a list of per-run evaluations (all of the same method).
    ///
    /// # Panics
    /// Panics if `evals` is empty or mixes methods.
    pub fn aggregate(evals: &[ExplanationEval]) -> Self {
        assert!(!evals.is_empty(), "MethodSummary::aggregate: empty input");
        let method = evals[0].method.clone();
        assert!(
            evals.iter().all(|e| e.method == method),
            "MethodSummary::aggregate: mixed methods"
        );
        let pull =
            |f: &dyn Fn(&ExplanationEval) -> f64| -> Vec<f64> { evals.iter().map(f).collect() };
        MethodSummary {
            method,
            normalized_ged: Stat::of(&pull(&|e| e.normalized_ged)),
            fidelity_plus: Stat::of(&pull(&|e| e.fidelity_plus)),
            fidelity_minus: Stat::of(&pull(&|e| e.fidelity_minus)),
            size: Stat::of(&pull(&|e| e.size as f64)),
            generation_ms: Stat::of(&pull(&|e| e.generation_ms)),
        }
    }

    /// Renders this summary as one table row
    /// (`[method, GED, Fid+, Fid-, size, time]`).
    pub fn as_row(&self) -> Vec<String> {
        vec![
            self.method.clone(),
            self.normalized_ged.display(2),
            self.fidelity_plus.display(2),
            self.fidelity_minus.display(2),
            format!("{:.0}", self.size.mean),
            format!("{:.1}", self.generation_ms.mean),
        ]
    }
}

/// Groups evaluations by method name and aggregates each group, preserving
/// first-appearance order.
pub fn summarize_by_method(evals: &[ExplanationEval]) -> Vec<MethodSummary> {
    let mut order: Vec<String> = Vec::new();
    for e in evals {
        if !order.contains(&e.method) {
            order.push(e.method.clone());
        }
    }
    order
        .into_iter()
        .map(|m| {
            let group: Vec<ExplanationEval> =
                evals.iter().filter(|e| e.method == m).cloned().collect();
            MethodSummary::aggregate(&group)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(method: &str, ged: f64, size: usize) -> ExplanationEval {
        ExplanationEval {
            method: method.to_string(),
            normalized_ged: ged,
            fidelity_plus: 0.8,
            fidelity_minus: 0.1,
            size,
            generation_ms: 5.0,
        }
    }

    #[test]
    fn stat_of_known_values() {
        let s = Stat::of(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 1.0);
        assert_eq!(s.count, 2);
        assert_eq!(Stat::of(&[]), Stat::default());
        assert_eq!(s.display(1), "2.0 ± 1.0");
    }

    #[test]
    fn aggregate_combines_runs() {
        let runs = vec![eval("RoboGExp", 0.2, 10), eval("RoboGExp", 0.4, 20)];
        let s = MethodSummary::aggregate(&runs);
        assert_eq!(s.method, "RoboGExp");
        assert!((s.normalized_ged.mean - 0.3).abs() < 1e-12);
        assert!((s.size.mean - 15.0).abs() < 1e-12);
        assert_eq!(s.as_row().len(), 6);
    }

    #[test]
    #[should_panic(expected = "mixed methods")]
    fn aggregate_rejects_mixed_methods() {
        MethodSummary::aggregate(&[eval("A", 0.1, 1), eval("B", 0.1, 1)]);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn aggregate_rejects_empty() {
        MethodSummary::aggregate(&[]);
    }

    #[test]
    fn summarize_by_method_preserves_order() {
        let runs = vec![
            eval("RoboGExp", 0.2, 10),
            eval("CF2", 0.6, 30),
            eval("RoboGExp", 0.3, 12),
        ];
        let summaries = summarize_by_method(&runs);
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].method, "RoboGExp");
        assert_eq!(summaries[0].normalized_ged.count, 2);
        assert_eq!(summaries[1].method, "CF2");
    }
}
