//! Fidelity metrics (Yuan et al., adopted by the paper's §VII).
//!
//! Both metrics compare the model's behaviour on the full graph, on the graph
//! without the explanation (`G \ Gs`), and on the explanation alone (`Gs`),
//! restricted to the test nodes. The indicator `1[M(v, X) = l]` uses the label
//! `l = M(v, G)` assigned on the full graph.

use rcw_gnn::GnnModel;
use rcw_graph::{EdgeSubgraph, Graph, GraphView, NodeId};

/// Fidelity+ = mean over test nodes of `1[M(v,G)=l] - 1[M(v, G\Gs)=l]`.
/// Since `l` is defined as `M(v, G)`, the first indicator is always 1, so the
/// score is the fraction of test nodes whose prediction *changes* when the
/// explanation is removed. Higher is better (more counterfactual).
pub fn fidelity_plus(
    model: &dyn GnnModel,
    graph: &Graph,
    explanation: &EdgeSubgraph,
    test_nodes: &[NodeId],
) -> f64 {
    if test_nodes.is_empty() {
        return 0.0;
    }
    let full = GraphView::full(graph);
    let remainder = GraphView::without(graph, explanation.edges());
    let mut acc = 0.0;
    for &v in test_nodes {
        let l = model.predict(v, &full);
        let kept = model.predict(v, &remainder) == l;
        acc += 1.0 - f64::from(u8::from(kept));
    }
    acc / test_nodes.len() as f64
}

/// Fidelity− = mean over test nodes of `1[M(v,G)=l] - 1[M(v, Gs)=l]`: the
/// fraction of test nodes whose prediction is *not* reproduced by the
/// explanation alone. Lower is better (more factual); 0 is ideal.
pub fn fidelity_minus(
    model: &dyn GnnModel,
    graph: &Graph,
    explanation: &EdgeSubgraph,
    test_nodes: &[NodeId],
) -> f64 {
    if test_nodes.is_empty() {
        return 0.0;
    }
    let full = GraphView::full(graph);
    let only = GraphView::restricted_to(graph, explanation.edges());
    let mut acc = 0.0;
    for &v in test_nodes {
        let l = model.predict(v, &full);
        let kept = model.predict(v, &only) == l;
        acc += 1.0 - f64::from(u8::from(kept));
    }
    acc / test_nodes.len() as f64
}

/// Explanation size `|V| + |E|` as reported in the paper's Table III.
pub fn explanation_size(explanation: &EdgeSubgraph) -> usize {
    explanation.size()
}

/// A bundle of all quality metrics for one explanation, as one row of the
/// paper's quality tables.
#[derive(Clone, Debug, Default)]
pub struct ExplanationEval {
    /// Method name (RoboGExp, CF2, CF-GNNExp, ...).
    pub method: String,
    /// Normalized GED against the explanation recomputed on a disturbed graph.
    pub normalized_ged: f64,
    /// Counterfactual effectiveness.
    pub fidelity_plus: f64,
    /// Factual accuracy (lower is better).
    pub fidelity_minus: f64,
    /// Explanation size `|V| + |E|`.
    pub size: usize,
    /// Generation wall-clock time in milliseconds.
    pub generation_ms: f64,
}

impl ExplanationEval {
    /// Evaluates fidelity metrics and size for an explanation (GED and time
    /// are filled in by the caller, which owns the disturbed-graph recompute
    /// and the stopwatch).
    pub fn evaluate(
        method: impl Into<String>,
        model: &dyn GnnModel,
        graph: &Graph,
        explanation: &EdgeSubgraph,
        test_nodes: &[NodeId],
    ) -> Self {
        ExplanationEval {
            method: method.into(),
            normalized_ged: 0.0,
            fidelity_plus: fidelity_plus(model, graph, explanation, test_nodes),
            fidelity_minus: fidelity_minus(model, graph, explanation, test_nodes),
            size: explanation_size(explanation),
            generation_ms: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_gnn::{Gcn, TrainConfig};

    fn setup() -> (Graph, Gcn, usize) {
        let mut g = Graph::new();
        for i in 0..10 {
            let class = usize::from(i >= 5);
            let feats = if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        for u in 5..10 {
            for v in (u + 1)..10 {
                g.add_edge(u, v);
            }
        }
        let t = g.add_labeled_node(vec![0.05, 0.25], 0);
        g.add_edge(t, 0);
        g.add_edge(t, 1);
        let mut gcn = Gcn::new(&[2, 8, 2], 7);
        let train: Vec<usize> = (0..10).collect();
        gcn.train(
            &GraphView::full(&g),
            &train,
            &TrainConfig {
                epochs: 120,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
        );
        (g, gcn, t)
    }

    #[test]
    fn empty_test_set_scores_zero() {
        let (g, gcn, _t) = setup();
        let e = EdgeSubgraph::from_edges([(0, 1)]);
        assert_eq!(fidelity_plus(&gcn, &g, &e, &[]), 0.0);
        assert_eq!(fidelity_minus(&gcn, &g, &e, &[]), 0.0);
    }

    #[test]
    fn whole_graph_explanation_is_perfectly_factual() {
        let (g, gcn, t) = setup();
        let e = EdgeSubgraph::full(&g);
        // Gs == G, so M(v, Gs) == M(v, G) for every node: fidelity- == 0
        assert_eq!(fidelity_minus(&gcn, &g, &e, &[t, 0, 7]), 0.0);
    }

    #[test]
    fn empty_explanation_has_zero_fidelity_plus() {
        let (g, gcn, t) = setup();
        let e = EdgeSubgraph::new();
        // removing nothing can never change a prediction
        assert_eq!(fidelity_plus(&gcn, &g, &e, &[t, 0, 7]), 0.0);
    }

    #[test]
    fn support_edges_have_positive_fidelity_plus_for_the_dependent_node() {
        let (g, gcn, t) = setup();
        // t depends on its two edges into community 0; removing them should flip it
        let e = EdgeSubgraph::from_edges([(t, 0), (t, 1)]);
        let fp = fidelity_plus(&gcn, &g, &e, &[t]);
        let fm = fidelity_minus(&gcn, &g, &e, &[t]);
        assert!((0.0..=1.0).contains(&fp));
        assert!((0.0..=1.0).contains(&fm));
        assert_eq!(explanation_size(&e), 5);
    }

    #[test]
    fn evaluate_bundles_metrics() {
        let (g, gcn, t) = setup();
        let e = EdgeSubgraph::from_edges([(t, 0), (t, 1)]);
        let eval = ExplanationEval::evaluate("RoboGExp", &gcn, &g, &e, &[t]);
        assert_eq!(eval.method, "RoboGExp");
        assert_eq!(eval.size, 5);
        assert!(eval.fidelity_plus >= 0.0);
        assert!(eval.fidelity_minus >= 0.0);
    }
}
