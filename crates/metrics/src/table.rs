//! Minimal ASCII result tables for the experiment harness.
//!
//! The benchmark binaries print the same rows the paper reports (Table III,
//! the series behind Figs. 3–4). No third-party table/CSV crate is used; this
//! module provides just enough alignment and CSV emission.

/// A simple named-column table of string cells.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title printed above the header.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells; each row should have `columns.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row length does not match the column count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "Table::push_row: expected {} cells, got {}",
            self.columns.len(),
            row.len()
        );
        self.rows.push(row);
    }

    /// Renders the table as aligned ASCII text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join(" | ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a numeric row with a fixed number of decimals — a convenience used
/// by every experiment binary.
pub fn format_row(label: &str, values: &[f64], decimals: usize) -> Vec<String> {
    let mut row = vec![label.to_string()];
    row.extend(values.iter().map(|v| format!("{v:.decimals$}")));
    row
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Quality", &["Method", "GED", "Fid+"]);
        t.push_row(vec!["RoboGExp".into(), "0.32".into(), "0.79".into()]);
        t.push_row(vec!["CF2".into(), "0.68".into(), "0.47".into()]);
        let s = t.render();
        assert!(s.contains("== Quality =="));
        assert!(s.contains("RoboGExp"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "expected 2 cells")]
    fn row_length_is_validated() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn format_row_rounds() {
        let row = format_row("RoboGExp", &[0.1234, 2.0], 2);
        assert_eq!(row, vec!["RoboGExp", "0.12", "2.00"]);
    }
}
