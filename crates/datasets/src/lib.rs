//! # rcw-datasets
//!
//! Synthetic stand-ins for the paper's datasets plus the case-study graphs.
//!
//! The original evaluation uses BAHouse (synthetic), PPI, CiteSeer and Reddit.
//! Real data cannot be bundled here, so each dataset is replaced by a
//! generator that reproduces its structural character at a laptop-friendly
//! scale (see `DESIGN.md` §3 for the substitution argument):
//!
//! | paper dataset | module | stand-in |
//! |---|---|---|
//! | BAHouse | [`bahouse`] | Barabási–Albert base + house motifs (exact recipe) |
//! | CiteSeer | [`citeseer`] | 6-block SBM with sparse keyword features |
//! | PPI | [`ppi`] | dense community graph with signature features |
//! | Reddit | [`reddit`] | large power-law community graph |
//! | MUTAG molecules (case study) | [`molecules`] | mutagenic / non-mutagenic molecule graphs |
//! | provenance graph (case study) | [`provenance`] | multi-stage-attack provenance graph |
//!
//! Every dataset is a [`Dataset`]: an attributed, labeled graph plus a
//! train/test split and helpers that train the paper's classifier
//! configurations (3-layer GCN, APPNP) deterministically.

pub mod bahouse;
pub mod citeseer;
pub mod loader;
pub mod molecules;
pub mod ppi;
pub mod provenance;
pub mod reddit;

pub use loader::LoadError;

use rcw_gnn::{Appnp, Gcn, GnnModel, TrainConfig};
use rcw_graph::{Graph, GraphView, NodeId};

/// How large to build a dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A few dozen nodes — unit tests.
    Tiny,
    /// A few hundred nodes — integration tests, quick experiments.
    Small,
    /// Thousands of nodes — the benchmark harness (scaled-down "paper" size).
    Full,
}

/// A ready-to-use dataset: graph, split, and metadata.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable name ("BAHouse", "CiteSeer-syn", ...).
    pub name: String,
    /// The attributed, labeled graph.
    pub graph: Graph,
    /// Nodes used to train the classifier.
    pub train_nodes: Vec<NodeId>,
    /// Labeled nodes held out from training — the pool the experiments draw
    /// test nodes `VT` from.
    pub test_pool: Vec<NodeId>,
}

impl Dataset {
    /// Number of node features.
    pub fn feature_dim(&self) -> usize {
        self.graph.feature_dim()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.graph.num_classes()
    }

    /// Deterministically picks `n` test nodes from the test pool (wrapping if
    /// the pool is smaller).
    pub fn pick_test_nodes(&self, n: usize, seed: u64) -> Vec<NodeId> {
        if self.test_pool.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n);
        let stride = (seed as usize % self.test_pool.len()).max(1);
        let mut idx = seed as usize % self.test_pool.len();
        for _ in 0..n.min(self.test_pool.len()) {
            while out.contains(&self.test_pool[idx]) {
                idx = (idx + 1) % self.test_pool.len();
            }
            out.push(self.test_pool[idx]);
            idx = (idx + stride) % self.test_pool.len();
        }
        out.sort_unstable();
        out
    }

    /// Trains the paper's GCN configuration (3 convolution layers) on this
    /// dataset. Hidden width is reduced from the paper's 128 to keep the
    /// self-contained build fast; the explanation algorithms are agnostic to
    /// the width.
    pub fn train_gcn(&self, hidden: usize, seed: u64) -> Gcn {
        let dims = [
            self.feature_dim(),
            hidden,
            hidden,
            self.num_classes().max(2),
        ];
        let mut gcn = Gcn::new(&dims, seed);
        gcn.train(
            &GraphView::full(&self.graph),
            &self.train_nodes,
            &training_config(),
        );
        gcn
    }

    /// Trains an APPNP classifier (the model family with tractable k-RCW
    /// verification) on this dataset.
    pub fn train_appnp(&self, hidden: usize, seed: u64) -> Appnp {
        let dims = [self.feature_dim(), hidden, self.num_classes().max(2)];
        let mut appnp = Appnp::new(&dims, 0.15, 12, seed);
        appnp.train(
            &GraphView::full(&self.graph),
            &self.train_nodes,
            &training_config(),
        );
        appnp
    }

    /// Test-pool accuracy of a trained model — used by the harness to report
    /// classifier quality alongside explanation quality.
    pub fn test_accuracy(&self, model: &dyn GnnModel) -> f64 {
        rcw_gnn::accuracy(model, &GraphView::full(&self.graph), &self.test_pool)
    }
}

fn training_config() -> TrainConfig {
    TrainConfig {
        epochs: 120,
        learning_rate: 0.03,
        weight_decay: 5e-4,
        seed: 0,
    }
}

/// Splits the labeled nodes of a graph into train / test-pool deterministically.
pub(crate) fn split(graph: &Graph, train_fraction: f64, seed: u64) -> (Vec<NodeId>, Vec<NodeId>) {
    let labeled: Vec<NodeId> = graph
        .node_ids()
        .filter(|&v| graph.label(v).is_some())
        .collect();
    rcw_gnn::train_test_split(&labeled, train_fraction, seed)
}

/// Builds all four benchmark datasets at the given scale (Reddit only at
/// `Full` is large; at smaller scales it shrinks accordingly).
pub fn all_benchmark_datasets(scale: Scale, seed: u64) -> Vec<Dataset> {
    vec![
        bahouse::build(scale, seed),
        citeseer::build(scale, seed),
        ppi::build(scale, seed),
        reddit::build(scale, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_build_at_tiny_scale() {
        for ds in all_benchmark_datasets(Scale::Tiny, 1) {
            assert!(ds.graph.num_nodes() > 0, "{} empty", ds.name);
            assert!(ds.graph.num_edges() > 0, "{} has no edges", ds.name);
            assert!(ds.num_classes() >= 2, "{} needs >= 2 classes", ds.name);
            assert!(ds.feature_dim() >= 1, "{} needs features", ds.name);
            assert!(
                !ds.train_nodes.is_empty(),
                "{} has no training nodes",
                ds.name
            );
            assert!(!ds.test_pool.is_empty(), "{} has no test pool", ds.name);
            for t in &ds.test_pool {
                assert!(
                    !ds.train_nodes.contains(t),
                    "{}: split not disjoint",
                    ds.name
                );
            }
        }
    }

    #[test]
    fn pick_test_nodes_is_deterministic_and_unique() {
        let ds = bahouse::build(Scale::Small, 3);
        let a = ds.pick_test_nodes(10, 5);
        let b = ds.pick_test_nodes(10, 5);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(a, dedup);
        assert!(!a.is_empty());
    }

    #[test]
    fn trained_gcn_beats_random_guessing_on_bahouse() {
        let ds = bahouse::build(Scale::Small, 7);
        let gcn = ds.train_gcn(16, 1);
        let acc = ds.test_accuracy(&gcn);
        let chance = 1.0 / ds.num_classes() as f64;
        assert!(
            acc > chance,
            "GCN accuracy {acc} should beat chance {chance} on {}",
            ds.name
        );
    }

    #[test]
    fn trained_appnp_beats_random_guessing_on_citeseer() {
        let ds = citeseer::build(Scale::Tiny, 9);
        let appnp = ds.train_appnp(16, 2);
        let acc = ds.test_accuracy(&appnp);
        let chance = 1.0 / ds.num_classes() as f64;
        assert!(
            acc > chance,
            "APPNP accuracy {acc} should beat chance {chance} on {}",
            ds.name
        );
    }
}
