//! Cyber-provenance graph for the "vulnerable zone" case study
//! (Example 2, Example 3, graph `G2` of Fig. 1).
//!
//! Nodes are files or processes; edges are access actions. The graph embeds a
//! two-stage attack: a deceptive DDoS stage touching interchangeable decoy
//! targets, and a true data-breach path that must pass through a privileged
//! credential file and the command prompt before reaching `breach.sh`. The
//! GNN labels nodes as *vulnerable* (1) or *normal* (0); a robust witness for
//! `breach.sh` should contain the true breach paths and stay invariant no
//! matter how the decoy targets are rewired.

use crate::{split, Dataset, Scale};
use rcw_graph::{Graph, NodeId};
use rcw_linalg::rng::Rng;

/// Class label of vulnerable nodes.
pub const VULNERABLE: usize = 1;
/// Class label of normal nodes.
pub const NORMAL: usize = 0;

/// Node kind in a provenance graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A file (oval in the paper's figure).
    File,
    /// A process (rectangle in the paper's figure).
    Process,
}

impl Kind {
    fn features(self, privileged: bool) -> Vec<f64> {
        let mut f = match self {
            Kind::File => vec![1.0, 0.0],
            Kind::Process => vec![0.0, 1.0],
        };
        f.push(if privileged { 1.0 } else { 0.0 });
        f
    }
}

/// Named nodes of the generated provenance graph.
#[derive(Clone, Debug)]
pub struct ProvenanceMeta {
    /// The email attachment that initiates the attack.
    pub attachment: NodeId,
    /// The command prompt process.
    pub cmd_exe: NodeId,
    /// The SSH private-key file.
    pub ssh_key: NodeId,
    /// The sudoers file.
    pub sudoers: NodeId,
    /// The breach script — the case study's test node.
    pub breach_sh: NodeId,
    /// Deceptive DDoS decoy targets (interchangeable between attacks).
    pub decoys: Vec<NodeId>,
    /// Benign background nodes.
    pub background: Vec<NodeId>,
}

/// Builds the provenance graph with `num_decoys` deceptive targets and
/// `num_background` benign nodes. Returns the graph and the named nodes.
pub fn provenance_graph(
    num_decoys: usize,
    num_background: usize,
    seed: u64,
) -> (Graph, ProvenanceMeta) {
    let mut g = Graph::new();
    let add = |g: &mut Graph, kind: Kind, privileged: bool, label: usize| {
        let v = g.add_node(kind.features(privileged));
        g.set_label(v, label);
        v
    };

    // true attack path: attachment -> cmd.exe -> {ssh key, sudoers} -> breach.sh
    let attachment = add(&mut g, Kind::File, false, VULNERABLE);
    let invoice = add(&mut g, Kind::File, false, NORMAL);
    let mail_client = add(&mut g, Kind::Process, false, NORMAL);
    let cmd_exe = add(&mut g, Kind::Process, true, VULNERABLE);
    let ssh_key = add(&mut g, Kind::File, true, VULNERABLE);
    let sudoers = add(&mut g, Kind::File, true, VULNERABLE);
    let breach_sh = add(&mut g, Kind::File, true, VULNERABLE);

    g.add_edge(mail_client, attachment);
    g.add_edge(mail_client, invoice);
    g.add_edge(attachment, cmd_exe);
    g.add_edge(cmd_exe, ssh_key);
    g.add_edge(cmd_exe, sudoers);
    g.add_edge(ssh_key, breach_sh);
    g.add_edge(sudoers, breach_sh);

    // deceptive stage: a DDoS process touching interchangeable decoy targets
    let ddos = add(&mut g, Kind::Process, false, NORMAL);
    g.add_edge(attachment, ddos);
    let mut decoys = Vec::new();
    for _ in 0..num_decoys {
        let d = add(&mut g, Kind::File, false, NORMAL);
        g.add_edge(ddos, d);
        decoys.push(d);
    }

    // benign background activity
    let mut rng = Rng::seed_from_u64(seed);
    let mut background = Vec::new();
    for i in 0..num_background {
        let kind = if i % 2 == 0 {
            Kind::File
        } else {
            Kind::Process
        };
        let b = add(&mut g, kind, false, NORMAL);
        background.push(b);
    }
    // wire background nodes among themselves and loosely to the mail client
    for (i, &b) in background.iter().enumerate() {
        if i > 0 && rng.gen_bool(0.7) {
            g.add_edge(b, background[rng.gen_range(0..i)]);
        } else {
            g.add_edge(b, mail_client);
        }
        // occasional touches of decoys keep the deceptive zone busy
        if !decoys.is_empty() && rng.gen_bool(0.3) {
            g.add_edge(b, decoys[rng.gen_range(0..decoys.len())]);
        }
    }

    (
        g,
        ProvenanceMeta {
            attachment,
            cmd_exe,
            ssh_key,
            sudoers,
            breach_sh,
            decoys,
            background,
        },
    )
}

/// Packages the provenance graph as a [`Dataset`].
pub fn build(scale: Scale, seed: u64) -> Dataset {
    let (decoys, background) = match scale {
        Scale::Tiny => (4, 10),
        Scale::Small => (10, 40),
        Scale::Full => (30, 200),
    };
    let (graph, _meta) = provenance_graph(decoys, background, seed);
    let (train_nodes, test_pool) = split(&graph, 0.7, seed);
    Dataset {
        name: "Provenance".to_string(),
        graph,
        train_nodes,
        test_pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_graph::traversal::shortest_path_len;

    #[test]
    fn breach_path_exists_and_is_privileged() {
        let (g, meta) = provenance_graph(5, 20, 1);
        // attachment -> cmd -> key -> breach is a 3-hop path
        assert_eq!(
            shortest_path_len(&g, meta.attachment, meta.breach_sh),
            Some(3)
        );
        assert_eq!(g.label(meta.breach_sh), Some(VULNERABLE));
        assert_eq!(g.label(meta.cmd_exe), Some(VULNERABLE));
        // privileged flag set on the credential file
        assert_eq!(g.features(meta.ssh_key)[2], 1.0);
    }

    #[test]
    fn decoys_are_normal_and_attached_to_the_ddos_stage() {
        let (g, meta) = provenance_graph(6, 10, 2);
        assert_eq!(meta.decoys.len(), 6);
        for &d in &meta.decoys {
            assert_eq!(g.label(d), Some(NORMAL));
            assert!(g.degree(d) >= 1);
        }
    }

    #[test]
    fn dataset_has_two_classes_and_scales() {
        let tiny = build(Scale::Tiny, 0);
        let small = build(Scale::Small, 0);
        assert_eq!(tiny.num_classes(), 2);
        assert!(small.graph.num_nodes() > tiny.graph.num_nodes());
        assert!(!tiny.train_nodes.is_empty());
    }
}
