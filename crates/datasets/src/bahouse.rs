//! BAHouse — the synthetic benchmark of GNNExplainer, reproduced exactly.
//!
//! A Barabási–Albert base graph (average degree ~5) with house motifs attached
//! to random base nodes. Motif nodes are labeled 1 (roof), 2 (middle),
//! 3 (ground); base nodes are labeled 0. Node features are uninformative on
//! purpose (a constant plus a degree hint) — the class is carried by the
//! structure, which is exactly what structural explanations should recover.

use crate::{split, Dataset, Scale};
use rcw_graph::generators::{attach_house_motif, barabasi_albert};
use rcw_linalg::rng::Rng;

/// Builds the BAHouse dataset at the given scale.
pub fn build(scale: Scale, seed: u64) -> Dataset {
    let (base_nodes, num_houses) = match scale {
        Scale::Tiny => (30, 6),
        Scale::Small => (100, 20),
        Scale::Full => (300, 60),
    };
    let mut rng = Rng::seed_from_u64(seed);
    let mut graph = barabasi_albert(base_nodes, 2, seed);
    // base labels
    for v in 0..base_nodes {
        graph.set_label(v, 0);
    }
    // attach houses
    for _ in 0..num_houses {
        let attach = rng.gen_range(0..base_nodes);
        for (node, role) in attach_house_motif(&mut graph, attach) {
            graph.set_label(node, role.label());
        }
    }
    // features: constant + normalized degree + small deterministic jitter
    let n = graph.num_nodes();
    for v in 0..n {
        let deg = graph.degree(v) as f64;
        let jitter = ((v * 37 + 11) % 101) as f64 / 1010.0;
        graph.set_features(v, vec![1.0, deg / 10.0, jitter]);
    }
    let (train_nodes, test_pool) = split(&graph, 0.7, seed);
    Dataset {
        name: "BAHouse".to_string(),
        graph,
        train_nodes,
        test_pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_four_classes_and_house_structure() {
        let ds = build(Scale::Tiny, 1);
        assert_eq!(ds.num_classes(), 4);
        // each house adds 5 nodes
        assert_eq!(ds.graph.num_nodes(), 30 + 6 * 5);
        // roof nodes have degree exactly 2 (inside the motif)
        let roofs = ds.graph.nodes_with_label(1);
        assert_eq!(roofs.len(), 6);
        for r in roofs {
            assert_eq!(ds.graph.degree(r), 2);
        }
        // ground nodes: two per house
        assert_eq!(ds.graph.nodes_with_label(3).len(), 12);
    }

    #[test]
    fn scales_are_ordered() {
        let tiny = build(Scale::Tiny, 2);
        let small = build(Scale::Small, 2);
        let full = build(Scale::Full, 2);
        assert!(tiny.graph.num_nodes() < small.graph.num_nodes());
        assert!(small.graph.num_nodes() < full.graph.num_nodes());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build(Scale::Tiny, 5);
        let b = build(Scale::Tiny, 5);
        assert_eq!(a.graph.edge_vec(), b.graph.edge_vec());
        assert_eq!(a.train_nodes, b.train_nodes);
    }
}
