//! CiteSeer-like citation network.
//!
//! The real CiteSeer has 3,327 papers in 6 areas with sparse binary keyword
//! features. The stand-in is a 6-block stochastic block model (papers cite
//! within their area far more than across) with sparse block-indicative
//! binary "keyword" features plus noise keywords — the same signal structure
//! at a laptop-friendly scale.

use crate::{split, Dataset, Scale};
use rcw_graph::generators::{ensure_connected, stochastic_block_model};
use rcw_linalg::rng::Rng;

/// Number of classes (paper areas), matching CiteSeer.
pub const NUM_CLASSES: usize = 6;
/// Feature dimensionality of the stand-in (the real CiteSeer uses 3,703; the
/// stand-in keeps the same sparse-binary structure at width 48).
pub const FEATURE_DIM: usize = 48;

/// Environment variable naming the on-disk CiteSeer file consulted by the
/// `real-data` feature (default: `data/citeseer.graph` under the working
/// directory). The file uses the [`rcw_graph::io`] text format.
pub const REAL_DATA_ENV: &str = "RCW_CITESEER_PATH";

/// Builds the CiteSeer dataset at the given scale.
///
/// With the `real-data` feature enabled, the on-disk graph named by
/// [`REAL_DATA_ENV`] is loaded first (at its native size — `scale` applies
/// only to the synthetic stand-in); when the file is absent the synthetic
/// stand-in is built instead, so the hermetic path keeps working everywhere.
/// A file that exists but fails to load is a hard error, not a silent
/// fallback: serving synthetic data from a run pointed at real data would
/// invalidate the experiment.
pub fn build(scale: Scale, seed: u64) -> Dataset {
    #[cfg(feature = "real-data")]
    if let Some(path) = crate::loader::real_data_path(REAL_DATA_ENV, "data/citeseer.graph") {
        return build_from_file(&path, seed)
            .unwrap_or_else(|e| panic!("real-data CiteSeer at '{path}': {e}"));
    }
    build_synthetic(scale, seed)
}

pub use crate::loader::LoadError;

/// Loads a CiteSeer-shaped dataset from an [`rcw_graph::io`] text file: an
/// attributed, labeled citation graph with the standard 60/40 train/test
/// split drawn deterministically from `seed`.
pub fn build_from_file(path: &str, seed: u64) -> Result<Dataset, LoadError> {
    crate::loader::load_labeled_graph(path, "CiteSeer", 0.6, seed)
}

/// Builds the synthetic CiteSeer stand-in at the given scale.
pub fn build_synthetic(scale: Scale, seed: u64) -> Dataset {
    let per_block = match scale {
        Scale::Tiny => 12,
        Scale::Small => 50,
        Scale::Full => 220,
    };
    let blocks = vec![per_block; NUM_CLASSES];
    let (p_in, p_out) = match scale {
        Scale::Tiny => (0.30, 0.01),
        Scale::Small => (0.10, 0.004),
        Scale::Full => (0.030, 0.0008),
    };
    let (mut graph, membership) = stochastic_block_model(&blocks, p_in, p_out, seed);
    ensure_connected(&mut graph, seed.wrapping_add(1));

    let mut rng = Rng::seed_from_u64(seed.wrapping_add(2));
    let keywords_per_class = FEATURE_DIM / NUM_CLASSES;
    for (v, &class) in membership.iter().enumerate() {
        let mut feats = vec![0.0; FEATURE_DIM];
        // class-indicative keywords: each present with probability 0.6
        for j in 0..keywords_per_class {
            if rng.gen_bool(0.6) {
                feats[class * keywords_per_class + j] = 1.0;
            }
        }
        // background noise keywords
        for feat in feats.iter_mut() {
            if rng.gen_bool(0.03) {
                *feat = 1.0;
            }
        }
        graph.set_features(v, feats);
        graph.set_label(v, class);
    }
    let (train_nodes, test_pool) = split(&graph, 0.6, seed);
    Dataset {
        name: "CiteSeer-syn".to_string(),
        graph,
        train_nodes,
        test_pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_graph::traversal::is_connected;
    use rcw_graph::Graph;

    /// A small labeled, attributed citation-like graph written to a unique
    /// temp file; the caller removes it.
    fn write_temp_graph(tag: &str, mutate: impl FnOnce(&mut Graph)) -> std::path::PathBuf {
        let mut g = Graph::new();
        for i in 0..10 {
            let class = i % 2;
            let mut feats = vec![0.0; 4];
            feats[class] = 1.0;
            g.add_labeled_node(feats, class);
        }
        for i in 0..9 {
            g.add_edge(i, i + 1);
        }
        mutate(&mut g);
        let path =
            std::env::temp_dir().join(format!("rcw-citeseer-{tag}-{}.graph", std::process::id()));
        std::fs::write(&path, rcw_graph::io::graph_to_text(&g)).expect("write temp graph");
        path
    }

    #[test]
    fn build_from_file_loads_and_splits() {
        let path = write_temp_graph("ok", |_| {});
        let ds = build_from_file(path.to_str().unwrap(), 3).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(ds.name, "CiteSeer");
        assert_eq!(ds.graph.num_nodes(), 10);
        assert_eq!(ds.graph.num_edges(), 9);
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(ds.feature_dim(), 4);
        assert!(!ds.train_nodes.is_empty());
        assert!(!ds.test_pool.is_empty());
        for t in &ds.test_pool {
            assert!(!ds.train_nodes.contains(t), "split must be disjoint");
        }
        // deterministic in the seed
        let path2 = write_temp_graph("ok2", |_| {});
        let again = build_from_file(path2.to_str().unwrap(), 3).expect("load");
        std::fs::remove_file(&path2).ok();
        assert_eq!(again.train_nodes, ds.train_nodes);
    }

    #[test]
    fn build_from_file_rejects_bad_inputs() {
        assert!(matches!(
            build_from_file("/nonexistent/rcw-citeseer.graph", 1),
            Err(LoadError::Io(_))
        ));

        let garbage =
            std::env::temp_dir().join(format!("rcw-citeseer-garbage-{}.graph", std::process::id()));
        std::fs::write(&garbage, "this is not the io format\n").unwrap();
        let err = build_from_file(garbage.to_str().unwrap(), 1);
        std::fs::remove_file(&garbage).ok();
        assert!(matches!(err, Err(LoadError::Parse(_))));

        // structurally valid but useless for classification: no labels
        let path = write_temp_graph("unlabeled", |g| {
            *g = Graph::with_nodes(4);
            for v in 0..4 {
                g.set_features(v, vec![1.0]);
            }
        });
        let err = build_from_file(path.to_str().unwrap(), 1);
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, Err(LoadError::Invalid(_))));
    }

    #[cfg(feature = "real-data")]
    #[test]
    fn real_data_build_falls_back_when_the_file_is_absent() {
        // The default path is relative to the working directory; unless a
        // real file was planted there, build() must serve the stand-in.
        if std::env::var(REAL_DATA_ENV).is_err()
            && !std::path::Path::new("data/citeseer.graph").exists()
        {
            let ds = build(Scale::Tiny, 3);
            assert_eq!(ds.name, "CiteSeer-syn");
        }
    }

    #[test]
    fn shape_matches_spec() {
        let ds = build(Scale::Tiny, 3);
        assert_eq!(ds.num_classes(), NUM_CLASSES);
        assert_eq!(ds.feature_dim(), FEATURE_DIM);
        assert_eq!(ds.graph.num_nodes(), 12 * NUM_CLASSES);
        assert!(is_connected(&ds.graph));
    }

    #[test]
    fn features_are_sparse_binary() {
        let ds = build(Scale::Tiny, 4);
        for v in ds.graph.node_ids() {
            let f = ds.graph.features(v);
            assert!(f.iter().all(|&x| x == 0.0 || x == 1.0));
            let ones = f.iter().filter(|&&x| x == 1.0).count();
            assert!(ones <= FEATURE_DIM / 2, "features should stay sparse");
        }
    }

    #[test]
    fn intra_class_edges_dominate() {
        let ds = build(Scale::Small, 5);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in ds.graph.edges() {
            if ds.graph.label(u) == ds.graph.label(v) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra > inter,
            "citation networks are homophilous: {intra} vs {inter}"
        );
    }
}
