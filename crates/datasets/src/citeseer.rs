//! CiteSeer-like citation network.
//!
//! The real CiteSeer has 3,327 papers in 6 areas with sparse binary keyword
//! features. The stand-in is a 6-block stochastic block model (papers cite
//! within their area far more than across) with sparse block-indicative
//! binary "keyword" features plus noise keywords — the same signal structure
//! at a laptop-friendly scale.

use crate::{split, Dataset, Scale};
use rcw_graph::generators::{ensure_connected, stochastic_block_model};
use rcw_linalg::rng::Rng;

/// Number of classes (paper areas), matching CiteSeer.
pub const NUM_CLASSES: usize = 6;
/// Feature dimensionality of the stand-in (the real CiteSeer uses 3,703; the
/// stand-in keeps the same sparse-binary structure at width 48).
pub const FEATURE_DIM: usize = 48;

/// Builds the CiteSeer-like dataset at the given scale.
pub fn build(scale: Scale, seed: u64) -> Dataset {
    let per_block = match scale {
        Scale::Tiny => 12,
        Scale::Small => 50,
        Scale::Full => 220,
    };
    let blocks = vec![per_block; NUM_CLASSES];
    let (p_in, p_out) = match scale {
        Scale::Tiny => (0.30, 0.01),
        Scale::Small => (0.10, 0.004),
        Scale::Full => (0.030, 0.0008),
    };
    let (mut graph, membership) = stochastic_block_model(&blocks, p_in, p_out, seed);
    ensure_connected(&mut graph, seed.wrapping_add(1));

    let mut rng = Rng::seed_from_u64(seed.wrapping_add(2));
    let keywords_per_class = FEATURE_DIM / NUM_CLASSES;
    for (v, &class) in membership.iter().enumerate() {
        let mut feats = vec![0.0; FEATURE_DIM];
        // class-indicative keywords: each present with probability 0.6
        for j in 0..keywords_per_class {
            if rng.gen_bool(0.6) {
                feats[class * keywords_per_class + j] = 1.0;
            }
        }
        // background noise keywords
        for feat in feats.iter_mut() {
            if rng.gen_bool(0.03) {
                *feat = 1.0;
            }
        }
        graph.set_features(v, feats);
        graph.set_label(v, class);
    }
    let (train_nodes, test_pool) = split(&graph, 0.6, seed);
    Dataset {
        name: "CiteSeer-syn".to_string(),
        graph,
        train_nodes,
        test_pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_graph::traversal::is_connected;

    #[test]
    fn shape_matches_spec() {
        let ds = build(Scale::Tiny, 3);
        assert_eq!(ds.num_classes(), NUM_CLASSES);
        assert_eq!(ds.feature_dim(), FEATURE_DIM);
        assert_eq!(ds.graph.num_nodes(), 12 * NUM_CLASSES);
        assert!(is_connected(&ds.graph));
    }

    #[test]
    fn features_are_sparse_binary() {
        let ds = build(Scale::Tiny, 4);
        for v in ds.graph.node_ids() {
            let f = ds.graph.features(v);
            assert!(f.iter().all(|&x| x == 0.0 || x == 1.0));
            let ones = f.iter().filter(|&&x| x == 1.0).count();
            assert!(ones <= FEATURE_DIM / 2, "features should stay sparse");
        }
    }

    #[test]
    fn intra_class_edges_dominate() {
        let ds = build(Scale::Small, 5);
        let (mut intra, mut inter) = (0usize, 0usize);
        for (u, v) in ds.graph.edges() {
            if ds.graph.label(u) == ds.graph.label(v) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra > inter,
            "citation networks are homophilous: {intra} vs {inter}"
        );
    }
}
