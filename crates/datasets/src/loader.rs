//! Shared on-disk dataset loader for the `real-data` feature.
//!
//! Every real dataset ships as one [`rcw_graph::io`] text file: an
//! attributed, labeled graph. The loader validates that the file can back a
//! node-classification dataset (features present, ≥ 2 labeled nodes, ≥ 2
//! classes) and draws the train/test split deterministically from the seed,
//! so a run pointed at the same file and seed always sees the same split.

use crate::{split, Dataset};

/// Why an on-disk dataset could not be loaded.
#[derive(Debug)]
pub enum LoadError {
    /// The file could not be read.
    Io(std::io::Error),
    /// The file is not valid [`rcw_graph::io`] text.
    Parse(rcw_graph::io::ParseError),
    /// The graph parsed but cannot back a classification dataset.
    Invalid(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse(e) => write!(f, "parse error: {e}"),
            LoadError::Invalid(message) => write!(f, "invalid dataset: {message}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Loads an attributed, labeled graph from an [`rcw_graph::io`] text file and
/// wraps it as a [`Dataset`] named `name` with a `train_frac` split drawn
/// deterministically from `seed`.
pub fn load_labeled_graph(
    path: &str,
    name: &str,
    train_frac: f64,
    seed: u64,
) -> Result<Dataset, LoadError> {
    let text = std::fs::read_to_string(path).map_err(LoadError::Io)?;
    let graph = rcw_graph::io::graph_from_text(&text).map_err(LoadError::Parse)?;
    if graph.num_nodes() == 0 {
        return Err(LoadError::Invalid("graph has no nodes".to_string()));
    }
    if graph.feature_dim() == 0 {
        return Err(LoadError::Invalid("nodes carry no features".to_string()));
    }
    let labeled = graph
        .node_ids()
        .filter(|&v| graph.label(v).is_some())
        .count();
    if labeled < 2 {
        return Err(LoadError::Invalid(format!(
            "need at least 2 labeled nodes for a split, found {labeled}"
        )));
    }
    if graph.num_classes() < 2 {
        return Err(LoadError::Invalid(
            "need at least 2 label classes".to_string(),
        ));
    }
    let (train_nodes, test_pool) = split(&graph, train_frac, seed);
    Ok(Dataset {
        name: name.to_string(),
        graph,
        train_nodes,
        test_pool,
    })
}

/// Resolves the on-disk path for a real dataset: the environment variable
/// `env`, or `default` when unset. Returns `Some(path)` only when the file
/// actually exists — the caller falls back to the synthetic stand-in
/// otherwise, keeping hermetic builds working everywhere.
pub fn real_data_path(env: &str, default: &str) -> Option<String> {
    let path = std::env::var(env).unwrap_or_else(|_| default.to_string());
    std::path::Path::new(&path).exists().then_some(path)
}
