//! Molecule graphs for the mutagenicity case study (Example 1, Example 4,
//! Fig. 5 of the paper).
//!
//! Nodes are atoms with one-hot element features (C, H, O, N); edges are
//! valence bonds. Atoms that belong to a toxicophore group — the nitro group
//! `N(=O)O` or the aldehyde `C(=O)H` — and the ring carbons they attach to are
//! labeled *mutagenic* (1); everything else is *non-mutagenic* (0). The case
//! study generates a family of molecule variants differing by one or two
//! peripheral bonds and shows that RoboGExp's witness (the toxicophore) stays
//! invariant across the family while baseline explanations drift.

use crate::{split, Dataset, Scale};
use rcw_graph::{Graph, NodeId};

/// Atom elements used by the generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Atom {
    /// Carbon.
    C,
    /// Hydrogen.
    H,
    /// Oxygen.
    O,
    /// Nitrogen.
    N,
}

impl Atom {
    /// One-hot feature encoding of the element.
    pub fn features(self) -> Vec<f64> {
        match self {
            Atom::C => vec![1.0, 0.0, 0.0, 0.0],
            Atom::H => vec![0.0, 1.0, 0.0, 0.0],
            Atom::O => vec![0.0, 0.0, 1.0, 0.0],
            Atom::N => vec![0.0, 0.0, 0.0, 1.0],
        }
    }
}

/// Class label of mutagenic atoms.
pub const MUTAGENIC: usize = 1;
/// Class label of non-mutagenic atoms.
pub const NON_MUTAGENIC: usize = 0;

/// Metadata describing one generated molecule.
#[derive(Clone, Debug)]
pub struct Molecule {
    /// The molecule graph.
    pub graph: Graph,
    /// Ring carbon atoms.
    pub ring: Vec<NodeId>,
    /// The aldehyde group `(carbon, oxygen, hydrogen)` if present.
    pub aldehyde: Option<(NodeId, NodeId, NodeId)>,
    /// The nitro group `(nitrogen, oxygen1, oxygen2)` if present.
    pub nitro: Option<(NodeId, NodeId, NodeId)>,
    /// Peripheral hydrogens, in attachment order (targets of bond-variant edits).
    pub hydrogens: Vec<NodeId>,
}

impl Molecule {
    /// The node used as the classification target in the case study: the ring
    /// carbon carrying the aldehyde group (falls back to the first ring atom).
    pub fn test_node(&self) -> NodeId {
        self.aldehyde
            .map(|(c, _, _)| c)
            .or_else(|| self.nitro.map(|(n, _, _)| n))
            .unwrap_or(self.ring[0])
    }
}

fn add_atom(g: &mut Graph, atom: Atom, label: usize) -> NodeId {
    let v = g.add_node(atom.features());
    g.set_label(v, label);
    v
}

/// Builds a benzene-like ring of `size` carbons (all initially non-mutagenic).
fn carbon_ring(g: &mut Graph, size: usize) -> Vec<NodeId> {
    let atoms: Vec<NodeId> = (0..size)
        .map(|_| add_atom(g, Atom::C, NON_MUTAGENIC))
        .collect();
    for i in 0..size {
        g.add_edge(atoms[i], atoms[(i + 1) % size]);
    }
    atoms
}

/// Builds a mutagenic molecule: a carbon ring with an aldehyde group, a nitro
/// group and peripheral hydrogens. `extra_hydrogens` controls how many ring
/// carbons carry a hydrogen (the bonds the variant edits remove).
pub fn mutagenic_molecule(extra_hydrogens: usize) -> Molecule {
    let mut g = Graph::new();
    let ring = carbon_ring(&mut g, 6);

    // aldehyde: ring_c0 - C(=O)H ; the carbonyl carbon and its ring anchor are mutagenic
    let ald_c = add_atom(&mut g, Atom::C, MUTAGENIC);
    let ald_o = add_atom(&mut g, Atom::O, MUTAGENIC);
    let ald_h = add_atom(&mut g, Atom::H, MUTAGENIC);
    g.add_edge(ring[0], ald_c);
    g.add_edge(ald_c, ald_o);
    g.add_edge(ald_c, ald_h);
    g.set_label(ring[0], MUTAGENIC);

    // nitro group: ring_c3 - N(=O)O
    let nit_n = add_atom(&mut g, Atom::N, MUTAGENIC);
    let nit_o1 = add_atom(&mut g, Atom::O, MUTAGENIC);
    let nit_o2 = add_atom(&mut g, Atom::O, MUTAGENIC);
    g.add_edge(ring[3], nit_n);
    g.add_edge(nit_n, nit_o1);
    g.add_edge(nit_n, nit_o2);
    g.set_label(ring[3], MUTAGENIC);

    // peripheral hydrogens on the remaining ring carbons
    let mut hydrogens = Vec::new();
    for i in 0..extra_hydrogens.min(4) {
        let position = [1usize, 2, 4, 5][i];
        let h = add_atom(&mut g, Atom::H, NON_MUTAGENIC);
        g.add_edge(ring[position], h);
        hydrogens.push(h);
    }

    Molecule {
        graph: g,
        ring,
        aldehyde: Some((ald_c, ald_o, ald_h)),
        nitro: Some((nit_n, nit_o1, nit_o2)),
        hydrogens,
    }
}

/// Builds a non-mutagenic molecule: the same ring with hydrogens only (no
/// toxicophore groups).
pub fn nonmutagenic_molecule() -> Molecule {
    let mut g = Graph::new();
    let ring = carbon_ring(&mut g, 6);
    let mut hydrogens = Vec::new();
    for &r in &ring {
        let h = add_atom(&mut g, Atom::H, NON_MUTAGENIC);
        g.add_edge(r, h);
        hydrogens.push(h);
    }
    Molecule {
        graph: g,
        ring,
        aldehyde: None,
        nitro: None,
        hydrogens,
    }
}

/// The molecule family of Fig. 5: a base mutagenic molecule `G3` plus variants
/// obtained by removing one peripheral C–H bond each (`G3^1` drops the bond to
/// the first hydrogen, `G3^2` the bond to the second). The toxicophore is
/// untouched, so a robust explanation should be identical across the family.
pub fn molecule_family() -> Vec<Molecule> {
    let base = mutagenic_molecule(4);
    let mut variants = vec![base.clone()];
    for drop in 0..2 {
        let mut m = base.clone();
        if let Some(&h) = base.hydrogens.get(drop) {
            // the hydrogen is attached to exactly one ring carbon
            let anchor = m.graph.neighbors_vec(h)[0];
            m.graph.remove_edge(anchor, h);
        }
        variants.push(m);
    }
    variants
}

/// Packages a set of molecules into one disconnected [`Dataset`] (molecule
/// graphs are small; a dataset of several copies gives the classifier enough
/// atoms to train on). Used by tests and the case-study harness.
pub fn build(scale: Scale, _seed: u64) -> Dataset {
    let copies = match scale {
        Scale::Tiny => 2,
        Scale::Small => 6,
        Scale::Full => 16,
    };
    let mut graph = Graph::new();
    for c in 0..copies {
        let m = if c % 2 == 0 {
            mutagenic_molecule(4)
        } else {
            nonmutagenic_molecule()
        };
        let offset = graph.num_nodes();
        for v in m.graph.node_ids() {
            let id = graph.add_node(m.graph.features(v).to_vec());
            if let Some(l) = m.graph.label(v) {
                graph.set_label(id, l);
            }
            debug_assert_eq!(id, offset + v);
        }
        for (u, v) in m.graph.edges() {
            graph.add_edge(offset + u, offset + v);
        }
    }
    let (train_nodes, test_pool) = split(&graph, 0.7, 3);
    Dataset {
        name: "Molecules".to_string(),
        graph,
        train_nodes,
        test_pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutagenic_molecule_has_toxicophores() {
        let m = mutagenic_molecule(4);
        assert!(m.aldehyde.is_some());
        assert!(m.nitro.is_some());
        assert_eq!(m.ring.len(), 6);
        assert_eq!(m.hydrogens.len(), 4);
        // mutagenic atoms: 3 aldehyde + 3 nitro + 2 anchors
        assert_eq!(m.graph.nodes_with_label(MUTAGENIC).len(), 8);
        // valence sanity: carbonyl carbon has 3 bonds
        let (c, o, h) = m.aldehyde.unwrap();
        assert_eq!(m.graph.degree(c), 3);
        assert!(m.graph.has_edge(c, o) && m.graph.has_edge(c, h));
        assert_eq!(m.test_node(), c);
    }

    #[test]
    fn nonmutagenic_molecule_has_no_mutagenic_atoms() {
        let m = nonmutagenic_molecule();
        assert!(m.graph.nodes_with_label(MUTAGENIC).is_empty());
        assert_eq!(m.graph.num_nodes(), 12);
    }

    #[test]
    fn family_variants_differ_by_one_peripheral_bond() {
        let family = molecule_family();
        assert_eq!(family.len(), 3);
        let base_edges = family[0].graph.num_edges();
        for variant in &family[1..] {
            assert_eq!(variant.graph.num_edges(), base_edges - 1);
            // the toxicophore is untouched
            let (c, o, h) = variant.aldehyde.unwrap();
            assert!(variant.graph.has_edge(c, o) && variant.graph.has_edge(c, h));
        }
    }

    #[test]
    fn dataset_build_produces_both_classes() {
        let ds = build(Scale::Tiny, 0);
        assert_eq!(ds.num_classes(), 2);
        assert!(!ds.graph.nodes_with_label(MUTAGENIC).is_empty());
        assert!(!ds.graph.nodes_with_label(NON_MUTAGENIC).is_empty());
        assert!(!ds.train_nodes.is_empty() && !ds.test_pool.is_empty());
    }
}
