//! Reddit-like large community graph.
//!
//! The real Reddit graph (233k posts, 115M edges, 41 communities) is used by
//! the paper only for the parallel-scalability experiment (Fig. 4d). The
//! stand-in reproduces its two load-bearing characteristics — many power-law
//! communities and a node count far above the other datasets — at a size that
//! still runs on one machine. Absolute times differ from the paper; the
//! scaling trend with worker count is what the experiment regenerates.

use crate::{split, Dataset, Scale};
use rcw_graph::generators::{ensure_connected, powerlaw_community_graph};
use rcw_linalg::rng::Rng;

/// Feature dimensionality (the real Reddit uses 602-dim word vectors).
pub const FEATURE_DIM: usize = 24;

/// Builds the Reddit-like dataset at the given scale.
pub fn build(scale: Scale, seed: u64) -> Dataset {
    let (num_communities, community_size, m, inter) = match scale {
        Scale::Tiny => (4, 20, 2, 0.2),
        Scale::Small => (8, 80, 3, 0.3),
        Scale::Full => (16, 250, 4, 0.4),
    };
    let (mut graph, membership) =
        powerlaw_community_graph(num_communities, community_size, m, inter, seed);
    ensure_connected(&mut graph, seed.wrapping_add(1));

    let mut rng = Rng::seed_from_u64(seed.wrapping_add(2));
    for (v, &community) in membership.iter().enumerate() {
        let mut feats = vec![0.0; FEATURE_DIM];
        for (j, feat) in feats.iter_mut().enumerate() {
            let mean = if j % num_communities.min(FEATURE_DIM) == community % FEATURE_DIM {
                0.9
            } else {
                0.05
            };
            *feat = mean + rng.gen_range(-0.05..0.05);
        }
        graph.set_features(v, feats);
        graph.set_label(v, community);
    }
    let (train_nodes, test_pool) = split(&graph, 0.5, seed);
    Dataset {
        name: "Reddit-syn".to_string(),
        graph,
        train_nodes,
        test_pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_the_largest_dataset_at_each_scale() {
        let reddit = build(Scale::Small, 1);
        let citeseer = crate::citeseer::build(Scale::Small, 1);
        assert!(reddit.graph.num_nodes() > citeseer.graph.num_nodes());
        assert_eq!(reddit.num_classes(), 8);
    }

    #[test]
    fn labels_cover_all_communities() {
        let ds = build(Scale::Tiny, 3);
        for c in 0..4 {
            assert!(
                !ds.graph.nodes_with_label(c).is_empty(),
                "community {c} empty"
            );
        }
    }

    #[test]
    fn full_scale_reaches_thousands_of_nodes() {
        let ds = build(Scale::Full, 0);
        assert!(ds.graph.num_nodes() >= 4000);
        assert!(ds.graph.num_edges() > ds.graph.num_nodes());
    }
}
