//! Reddit-like large community graph.
//!
//! The real Reddit graph (233k posts, 115M edges, 41 communities) is used by
//! the paper only for the parallel-scalability experiment (Fig. 4d). The
//! stand-in reproduces its two load-bearing characteristics — many power-law
//! communities and a node count far above the other datasets — at a size that
//! still runs on one machine. Absolute times differ from the paper; the
//! scaling trend with worker count is what the experiment regenerates.

use crate::loader::LoadError;
use crate::{split, Dataset, Scale};
use rcw_graph::generators::{ensure_connected, powerlaw_community_graph};
use rcw_linalg::rng::Rng;

/// Feature dimensionality (the real Reddit uses 602-dim word vectors).
pub const FEATURE_DIM: usize = 24;

/// Environment variable naming the on-disk Reddit file consulted by the
/// `real-data` feature (default: `data/reddit.graph` under the working
/// directory). The file uses the [`rcw_graph::io`] text format.
pub const REAL_DATA_ENV: &str = "RCW_REDDIT_PATH";

/// Builds the Reddit dataset at the given scale.
///
/// With the `real-data` feature enabled, the on-disk graph named by
/// [`REAL_DATA_ENV`] is loaded first (at its native size — `scale` applies
/// only to the synthetic stand-in); when the file is absent the synthetic
/// stand-in is built instead. A file that exists but fails to load is a hard
/// error, not a silent fallback.
pub fn build(scale: Scale, seed: u64) -> Dataset {
    #[cfg(feature = "real-data")]
    if let Some(path) = crate::loader::real_data_path(REAL_DATA_ENV, "data/reddit.graph") {
        return build_from_file(&path, seed)
            .unwrap_or_else(|e| panic!("real-data Reddit at '{path}': {e}"));
    }
    build_synthetic(scale, seed)
}

/// Loads a Reddit-shaped dataset from an [`rcw_graph::io`] text file: an
/// attributed post graph labeled with communities, split 50/50
/// deterministically from `seed` (the community count is whatever the file
/// carries — the real graph has 41).
pub fn build_from_file(path: &str, seed: u64) -> Result<Dataset, LoadError> {
    crate::loader::load_labeled_graph(path, "Reddit", 0.5, seed)
}

/// Builds the synthetic Reddit stand-in at the given scale.
pub fn build_synthetic(scale: Scale, seed: u64) -> Dataset {
    let (num_communities, community_size, m, inter) = match scale {
        Scale::Tiny => (4, 20, 2, 0.2),
        Scale::Small => (8, 80, 3, 0.3),
        Scale::Full => (16, 250, 4, 0.4),
    };
    let (mut graph, membership) =
        powerlaw_community_graph(num_communities, community_size, m, inter, seed);
    ensure_connected(&mut graph, seed.wrapping_add(1));

    let mut rng = Rng::seed_from_u64(seed.wrapping_add(2));
    for (v, &community) in membership.iter().enumerate() {
        let mut feats = vec![0.0; FEATURE_DIM];
        for (j, feat) in feats.iter_mut().enumerate() {
            let mean = if j % num_communities.min(FEATURE_DIM) == community % FEATURE_DIM {
                0.9
            } else {
                0.05
            };
            *feat = mean + rng.gen_range(-0.05..0.05);
        }
        graph.set_features(v, feats);
        graph.set_label(v, community);
    }
    let (train_nodes, test_pool) = split(&graph, 0.5, seed);
    Dataset {
        name: "Reddit-syn".to_string(),
        graph,
        train_nodes,
        test_pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_the_largest_dataset_at_each_scale() {
        let reddit = build(Scale::Small, 1);
        let citeseer = crate::citeseer::build(Scale::Small, 1);
        assert!(reddit.graph.num_nodes() > citeseer.graph.num_nodes());
        assert_eq!(reddit.num_classes(), 8);
    }

    #[test]
    fn labels_cover_all_communities() {
        let ds = build(Scale::Tiny, 3);
        for c in 0..4 {
            assert!(
                !ds.graph.nodes_with_label(c).is_empty(),
                "community {c} empty"
            );
        }
    }

    #[test]
    fn full_scale_reaches_thousands_of_nodes() {
        let ds = build(Scale::Full, 0);
        assert!(ds.graph.num_nodes() >= 4000);
        assert!(ds.graph.num_edges() > ds.graph.num_nodes());
    }

    #[test]
    fn build_from_file_loads_and_splits() {
        let mut g = rcw_graph::Graph::new();
        for i in 0..10 {
            let community = i % 2;
            let mut feats = vec![0.0; 4];
            feats[community] = 1.0;
            g.add_labeled_node(feats, community);
        }
        for i in 0..9 {
            g.add_edge(i, i + 1);
        }
        let path = std::env::temp_dir().join(format!("rcw-reddit-ok-{}.graph", std::process::id()));
        std::fs::write(&path, rcw_graph::io::graph_to_text(&g)).expect("write temp graph");
        let ds = build_from_file(path.to_str().unwrap(), 5).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(ds.name, "Reddit");
        assert_eq!(ds.graph.num_nodes(), 10);
        assert_eq!(ds.num_classes(), 2);
        assert!(!ds.train_nodes.is_empty());
        assert!(!ds.test_pool.is_empty());
        for t in &ds.test_pool {
            assert!(!ds.train_nodes.contains(t), "split must be disjoint");
        }
    }

    #[test]
    fn build_from_file_rejects_unlabeled_graphs() {
        let mut g = rcw_graph::Graph::with_nodes(4);
        for v in 0..4 {
            g.set_features(v, vec![1.0]);
        }
        let path =
            std::env::temp_dir().join(format!("rcw-reddit-unlabeled-{}.graph", std::process::id()));
        std::fs::write(&path, rcw_graph::io::graph_to_text(&g)).expect("write temp graph");
        let err = build_from_file(path.to_str().unwrap(), 1);
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, Err(LoadError::Invalid(_))));
    }

    #[cfg(feature = "real-data")]
    #[test]
    fn real_data_build_falls_back_when_the_file_is_absent() {
        if std::env::var(REAL_DATA_ENV).is_err()
            && !std::path::Path::new("data/reddit.graph").exists()
        {
            let ds = build(Scale::Tiny, 3);
            assert_eq!(ds.name, "Reddit-syn");
        }
    }
}
