//! PPI-like protein–protein interaction network.
//!
//! The real PPI graph is dense (average degree > 50) with functional labels
//! and motif/immunological-signature features. The stand-in is a dense
//! community graph (proteins in the same functional module interact heavily)
//! with continuous "signature" features correlated with the module.

use crate::loader::LoadError;
use crate::{split, Dataset, Scale};
use rcw_graph::generators::{ensure_connected, stochastic_block_model};
use rcw_linalg::rng::Rng;

/// Number of functional modules (classes) in the stand-in.
pub const NUM_MODULES: usize = 5;
/// Feature dimensionality (the real PPI uses 50).
pub const FEATURE_DIM: usize = 32;

/// Environment variable naming the on-disk PPI file consulted by the
/// `real-data` feature (default: `data/ppi.graph` under the working
/// directory). The file uses the [`rcw_graph::io`] text format.
pub const REAL_DATA_ENV: &str = "RCW_PPI_PATH";

/// Builds the PPI dataset at the given scale.
///
/// With the `real-data` feature enabled, the on-disk graph named by
/// [`REAL_DATA_ENV`] is loaded first (at its native size — `scale` applies
/// only to the synthetic stand-in); when the file is absent the synthetic
/// stand-in is built instead. A file that exists but fails to load is a hard
/// error, not a silent fallback.
pub fn build(scale: Scale, seed: u64) -> Dataset {
    #[cfg(feature = "real-data")]
    if let Some(path) = crate::loader::real_data_path(REAL_DATA_ENV, "data/ppi.graph") {
        return build_from_file(&path, seed)
            .unwrap_or_else(|e| panic!("real-data PPI at '{path}': {e}"));
    }
    build_synthetic(scale, seed)
}

/// Loads a PPI-shaped dataset from an [`rcw_graph::io`] text file: an
/// attributed protein-interaction graph labeled with functional modules,
/// split 60/40 deterministically from `seed`.
pub fn build_from_file(path: &str, seed: u64) -> Result<Dataset, LoadError> {
    crate::loader::load_labeled_graph(path, "PPI", 0.6, seed)
}

/// Builds the synthetic PPI stand-in at the given scale.
pub fn build_synthetic(scale: Scale, seed: u64) -> Dataset {
    let per_module = match scale {
        Scale::Tiny => 14,
        Scale::Small => 60,
        Scale::Full => 260,
    };
    let (p_in, p_out) = match scale {
        Scale::Tiny => (0.5, 0.03),
        Scale::Small => (0.25, 0.01),
        Scale::Full => (0.10, 0.003),
    };
    let blocks = vec![per_module; NUM_MODULES];
    let (mut graph, membership) = stochastic_block_model(&blocks, p_in, p_out, seed);
    ensure_connected(&mut graph, seed.wrapping_add(1));

    let mut rng = Rng::seed_from_u64(seed.wrapping_add(2));
    for (v, &module) in membership.iter().enumerate() {
        let mut feats = vec![0.0; FEATURE_DIM];
        for (j, feat) in feats.iter_mut().enumerate() {
            // module-specific mean plus noise: signatures overlap but separate in aggregate
            let mean = if j % NUM_MODULES == module { 0.8 } else { 0.1 };
            *feat = mean + rng.gen_range(-0.1..0.1);
        }
        graph.set_features(v, feats);
        graph.set_label(v, module);
    }
    let (train_nodes, test_pool) = split(&graph, 0.6, seed);
    Dataset {
        name: "PPI-syn".to_string(),
        graph,
        train_nodes,
        test_pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_within_modules() {
        let ds = build(Scale::Tiny, 2);
        assert_eq!(ds.num_classes(), NUM_MODULES);
        assert_eq!(ds.feature_dim(), FEATURE_DIM);
        // PPI is dense: average degree should exceed the CiteSeer-like graph's
        assert!(
            ds.graph.avg_degree() > 3.0,
            "avg degree {}",
            ds.graph.avg_degree()
        );
    }

    #[test]
    fn features_are_module_correlated() {
        let ds = build(Scale::Tiny, 6);
        // nodes in module 0 have a higher mean on coordinates j % 5 == 0
        let nodes = ds.graph.nodes_with_label(0);
        assert!(!nodes.is_empty());
        let v = nodes[0];
        let f = ds.graph.features(v);
        assert!(
            f[0] > f[1],
            "signature coordinate should dominate: {} vs {}",
            f[0],
            f[1]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build(Scale::Tiny, 11);
        let b = build(Scale::Tiny, 11);
        assert_eq!(a.graph.edge_vec(), b.graph.edge_vec());
    }

    #[test]
    fn build_from_file_loads_and_splits() {
        let mut g = rcw_graph::Graph::new();
        for i in 0..12 {
            let module = i % 3;
            let mut feats = vec![0.0; 6];
            feats[module] = 1.0;
            g.add_labeled_node(feats, module);
        }
        for i in 0..11 {
            g.add_edge(i, i + 1);
        }
        let path = std::env::temp_dir().join(format!("rcw-ppi-ok-{}.graph", std::process::id()));
        std::fs::write(&path, rcw_graph::io::graph_to_text(&g)).expect("write temp graph");
        let ds = build_from_file(path.to_str().unwrap(), 5).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(ds.name, "PPI");
        assert_eq!(ds.graph.num_nodes(), 12);
        assert_eq!(ds.num_classes(), 3);
        assert!(!ds.train_nodes.is_empty());
        assert!(!ds.test_pool.is_empty());
    }

    #[test]
    fn build_from_file_rejects_missing_and_garbage() {
        assert!(matches!(
            build_from_file("/nonexistent/rcw-ppi.graph", 1),
            Err(LoadError::Io(_))
        ));
        let garbage =
            std::env::temp_dir().join(format!("rcw-ppi-garbage-{}.graph", std::process::id()));
        std::fs::write(&garbage, "not the io format\n").unwrap();
        let err = build_from_file(garbage.to_str().unwrap(), 1);
        std::fs::remove_file(&garbage).ok();
        assert!(matches!(err, Err(LoadError::Parse(_))));
    }

    #[cfg(feature = "real-data")]
    #[test]
    fn real_data_build_falls_back_when_the_file_is_absent() {
        if std::env::var(REAL_DATA_ENV).is_err() && !std::path::Path::new("data/ppi.graph").exists()
        {
            let ds = build(Scale::Tiny, 3);
            assert_eq!(ds.name, "PPI-syn");
        }
    }
}
