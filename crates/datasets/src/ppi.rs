//! PPI-like protein–protein interaction network.
//!
//! The real PPI graph is dense (average degree > 50) with functional labels
//! and motif/immunological-signature features. The stand-in is a dense
//! community graph (proteins in the same functional module interact heavily)
//! with continuous "signature" features correlated with the module.

use crate::{split, Dataset, Scale};
use rcw_graph::generators::{ensure_connected, stochastic_block_model};
use rcw_linalg::rng::Rng;

/// Number of functional modules (classes) in the stand-in.
pub const NUM_MODULES: usize = 5;
/// Feature dimensionality (the real PPI uses 50).
pub const FEATURE_DIM: usize = 32;

/// Builds the PPI-like dataset at the given scale.
pub fn build(scale: Scale, seed: u64) -> Dataset {
    let per_module = match scale {
        Scale::Tiny => 14,
        Scale::Small => 60,
        Scale::Full => 260,
    };
    let (p_in, p_out) = match scale {
        Scale::Tiny => (0.5, 0.03),
        Scale::Small => (0.25, 0.01),
        Scale::Full => (0.10, 0.003),
    };
    let blocks = vec![per_module; NUM_MODULES];
    let (mut graph, membership) = stochastic_block_model(&blocks, p_in, p_out, seed);
    ensure_connected(&mut graph, seed.wrapping_add(1));

    let mut rng = Rng::seed_from_u64(seed.wrapping_add(2));
    for (v, &module) in membership.iter().enumerate() {
        let mut feats = vec![0.0; FEATURE_DIM];
        for (j, feat) in feats.iter_mut().enumerate() {
            // module-specific mean plus noise: signatures overlap but separate in aggregate
            let mean = if j % NUM_MODULES == module { 0.8 } else { 0.1 };
            *feat = mean + rng.gen_range(-0.1..0.1);
        }
        graph.set_features(v, feats);
        graph.set_label(v, module);
    }
    let (train_nodes, test_pool) = split(&graph, 0.6, seed);
    Dataset {
        name: "PPI-syn".to_string(),
        graph,
        train_nodes,
        test_pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_within_modules() {
        let ds = build(Scale::Tiny, 2);
        assert_eq!(ds.num_classes(), NUM_MODULES);
        assert_eq!(ds.feature_dim(), FEATURE_DIM);
        // PPI is dense: average degree should exceed the CiteSeer-like graph's
        assert!(
            ds.graph.avg_degree() > 3.0,
            "avg degree {}",
            ds.graph.avg_degree()
        );
    }

    #[test]
    fn features_are_module_correlated() {
        let ds = build(Scale::Tiny, 6);
        // nodes in module 0 have a higher mean on coordinates j % 5 == 0
        let nodes = ds.graph.nodes_with_label(0);
        assert!(!nodes.is_empty());
        let v = nodes[0];
        let f = ds.graph.features(v);
        assert!(
            f[0] > f[1],
            "signature coordinate should dominate: {} vs {}",
            f[0],
            f[1]
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = build(Scale::Tiny, 11);
        let b = build(Scale::Tiny, 11);
        assert_eq!(a.graph.edge_vec(), b.graph.edge_vec());
    }
}
