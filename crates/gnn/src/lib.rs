//! # rcw-gnn
//!
//! GNN substrate for the RoboGExp reproduction: fixed, deterministic node
//! classifiers that can be evaluated on arbitrary edge-masked [`GraphView`]s.
//!
//! Provided models:
//! * [`Gcn`] — the classifier configuration used by the paper's experiments
//!   (message-passing graph convolution), trainable from scratch.
//! * [`Appnp`] — personalized-PageRank propagation; the model class for which
//!   the paper proves tractable k-RCW verification. Trainable from scratch.
//! * [`GraphSage`], [`Gat`] — inference-grade models demonstrating that the
//!   witness machinery is model-agnostic.
//!
//! All models implement [`GnnModel`], the paper's inference function
//! `M(v, G)`, and are deterministic functions of their weights and the view.

pub mod appnp;
pub mod cache;
pub mod gat;
pub mod gcn;
pub mod model;
pub mod sage;
pub mod train;

pub use appnp::Appnp;
pub use cache::EpochCache;
pub use gat::Gat;
pub use gcn::Gcn;
pub use model::{accuracy, one_hot_labels, ForwardScratch, GnnModel, KernelScratch};
pub use sage::GraphSage;
pub use train::{train_test_split, Adam, TrainConfig, TrainReport};

use rcw_linalg::Matrix;

/// Pads (or truncates) a feature matrix to exactly `dim` columns so that
/// graphs whose feature dimension differs slightly from the model's expected
/// input can still be evaluated. Extra columns are zero.
pub fn pad_features(x: &Matrix, dim: usize) -> Matrix {
    if x.cols() == dim {
        return x.clone();
    }
    let mut out = Matrix::zeros(x.rows(), dim);
    let copy = x.cols().min(dim);
    for r in 0..x.rows() {
        for c in 0..copy {
            out.set(r, c, x.get(r, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_features_pads_and_truncates() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let padded = pad_features(&x, 4);
        assert_eq!(padded.shape(), (2, 4));
        assert_eq!(padded.row(0), &[1.0, 2.0, 0.0, 0.0]);
        let truncated = pad_features(&x, 1);
        assert_eq!(truncated.shape(), (2, 1));
        assert_eq!(truncated.row(1), &[3.0]);
        let same = pad_features(&x, 2);
        assert_eq!(same, x);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use rcw_graph::{generators, EdgeSet, GraphView};

    /// GCN logits are finite and have one row per node for random graphs
    /// and random edge masks. (Pinned seed sweep replacing `proptest`.)
    #[test]
    fn gcn_logits_always_finite() {
        for seed in 0u64..24 {
            let n = 4 + (seed as usize * 3) % 10;
            let mut g = generators::erdos_renyi(n, 0.3, seed * 19);
            for v in 0..n {
                g.set_features(v, vec![(v % 3) as f64, 1.0]);
                g.set_label(v, v % 2);
            }
            let gcn = Gcn::new(&[2, 4, 2], seed);
            let edges = g.edge_vec();
            let take = (seed as usize * 7) % (edges.len() + 1);
            let mask: EdgeSet = edges.into_iter().take(take).collect();
            let view = GraphView::without(&g, &mask);
            let z = gcn.logits(&view);
            assert_eq!(z.shape(), (n, 2), "seed {seed}");
            assert!(z.is_finite(), "seed {seed}");
        }
    }

    /// APPNP prediction is invariant to evaluating twice (determinism) and
    /// well-defined on every node, including isolated ones.
    #[test]
    fn appnp_deterministic_and_total() {
        for seed in 0u64..24 {
            let n = 4 + (seed as usize * 5) % 8;
            let mut g = generators::erdos_renyi(n, 0.25, seed * 31);
            for v in 0..n {
                g.set_features(v, vec![v as f64 / n as f64, 1.0 - v as f64 / n as f64]);
            }
            let m = Appnp::new(&[2, 3, 2], 0.2, 8, seed);
            let view = GraphView::full(&g);
            let p1 = m.predict_all(&view);
            let p2 = m.predict_all(&view);
            assert_eq!(&p1, &p2, "seed {seed}");
            assert_eq!(p1.len(), n, "seed {seed}");
        }
    }
}
