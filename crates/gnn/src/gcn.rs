//! Graph Convolutional Network (Kipf & Welling) — inference and training.
//!
//! The paper's experiments use a 3-layer GCN with hidden dimension 128 as the
//! classifier being explained. Forward propagation follows Eq. 1:
//! `X_i = act( D^{-1/2} (A + I) D^{-1/2} X_{i-1} W_i )`, with ReLU between
//! layers and identity on the output layer (logits). Training is full-batch
//! gradient descent with Adam on the cross-entropy of the training nodes —
//! sufficient for the synthetic datasets and fully deterministic.

use crate::model::{one_hot_labels, pack_all, sized, ForwardScratch, GnnModel};
use crate::train::{Adam, TrainConfig, TrainReport};
use rcw_graph::{Csr, CsrNorms, ForwardCtx, GraphView, NodeId};
use rcw_linalg::{init, matmul_packed_rows, vector, Activation, Matrix, PackedWeights};

/// A GCN with an arbitrary number of layers.
#[derive(Clone, Debug)]
pub struct Gcn {
    /// One weight matrix per layer; layer i maps `dims[i] -> dims[i+1]`.
    weights: Vec<Matrix>,
    /// Tile-packed copies of `weights`, kept in sync, so the forward
    /// kernels stream the right operand at unit stride in lane order.
    weights_p: Vec<PackedWeights>,
    /// Hidden activation (output layer is always identity/logits).
    activation: Activation,
}

/// Intermediate tensors of one forward pass, kept for backpropagation.
struct ForwardTrace {
    /// `S_i = A_norm * X_{i-1}` for each layer.
    aggregated: Vec<Matrix>,
    /// Pre-activation `P_i = S_i W_i` for each layer.
    pre_activation: Vec<Matrix>,
    /// Post-activation outputs `X_i` for each layer (last one = logits).
    outputs: Vec<Matrix>,
}

impl Gcn {
    /// Creates a GCN with the given layer dimensions
    /// (`dims = [F, h_1, ..., h_{L-1}, |L|]`) and Xavier-initialized weights.
    ///
    /// # Panics
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "Gcn::new: need at least input and output dims"
        );
        let weights: Vec<Matrix> = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| init::xavier_uniform(w[0], w[1], seed.wrapping_add(i as u64)))
            .collect();
        Gcn {
            weights_p: pack_all(&weights),
            weights,
            activation: Activation::Relu,
        }
    }

    /// Builds a GCN from explicit weight matrices (used in tests and
    /// distillation).
    pub fn from_weights(weights: Vec<Matrix>, activation: Activation) -> Self {
        assert!(!weights.is_empty(), "Gcn::from_weights: no layers");
        Gcn {
            weights_p: pack_all(&weights),
            weights,
            activation,
        }
    }

    /// Immutable access to the layer weights.
    pub fn weights(&self) -> &[Matrix] {
        &self.weights
    }

    /// The zero-allocation forward kernel behind both trait entry points:
    /// activations ping-pong through the scratch and the logits end up in
    /// `s.a`, returned as a borrowed `n x num_classes` row-major slice.
    fn forward_scratch<'s>(
        &self,
        ctx: &ForwardCtx<'_>,
        x: &Matrix,
        s: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        let n = x.rows();
        let layers = self.weights_p.len();
        s.a.clear();
        s.a.extend_from_slice(x.data());
        let mut dim = x.cols();
        for (i, wp) in self.weights_p.iter().enumerate() {
            let rows = ctx.active_rows(layers - 1 - i);
            let od = wp.cols();
            ctx.spmm_sym(&s.a, dim, sized(&mut s.b, n * dim), rows);
            matmul_packed_rows(&s.b, dim, wp, sized(&mut s.c, n * od), rows, false);
            if i + 1 != layers {
                for v in s.c.iter_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            std::mem::swap(&mut s.a, &mut s.c);
            dim = od;
        }
        &s.a
    }

    fn sym_norm_spmm(csr: &Csr, norms: &CsrNorms, x: &Matrix) -> Matrix {
        let dim = x.cols();
        let mut out = vec![0.0; x.rows() * dim];
        csr.spmm_sym_norm_cached(norms, x.data(), dim, &mut out, None);
        Matrix::from_vec(x.rows(), dim, out)
    }

    fn forward_trace(&self, view: &GraphView<'_>, csr: &Csr, norms: &CsrNorms) -> ForwardTrace {
        let x0 = view.graph().feature_matrix();
        let x0 = crate::pad_features(&x0, self.feature_dim());
        let mut aggregated = Vec::with_capacity(self.weights.len());
        let mut pre_activation = Vec::with_capacity(self.weights.len());
        let mut outputs = Vec::with_capacity(self.weights.len());
        let mut x = x0;
        for (i, w) in self.weights.iter().enumerate() {
            let s = Self::sym_norm_spmm(csr, norms, &x);
            let p = s.matmul(w);
            let out = if i + 1 == self.weights.len() {
                p.clone()
            } else {
                self.activation.apply_matrix(&p)
            };
            aggregated.push(s);
            pre_activation.push(p);
            outputs.push(out.clone());
            x = out;
        }
        ForwardTrace {
            aggregated,
            pre_activation,
            outputs,
        }
    }

    /// Trains the GCN in place with full-batch Adam on cross-entropy over the
    /// training nodes, evaluated on the full graph view. Returns a per-epoch
    /// report (loss and training accuracy).
    pub fn train(
        &mut self,
        view: &GraphView<'_>,
        train_nodes: &[NodeId],
        cfg: &TrainConfig,
    ) -> TrainReport {
        assert!(!train_nodes.is_empty(), "Gcn::train: empty training set");
        let graph = view.graph();
        let labels = graph.labels_vec();
        let targets = one_hot_labels(&labels, self.num_classes());
        let csr = Csr::from_view(view);
        let norms = CsrNorms::from_csr(&csr);
        let mut optimizers: Vec<Adam> = self
            .weights
            .iter()
            .map(|w| Adam::new(w.rows(), w.cols(), cfg.learning_rate))
            .collect();
        let inv_batch = 1.0 / train_nodes.len() as f64;
        let mut report = TrainReport::default();

        for _epoch in 0..cfg.epochs {
            let trace = self.forward_trace(view, &csr, &norms);
            let logits = trace.outputs.last().expect("at least one layer");

            // Loss + output gradient, masked to the training nodes.
            let mut loss = 0.0;
            let mut correct = 0usize;
            let mut grad = Matrix::zeros(logits.rows(), logits.cols());
            for &v in train_nodes {
                let target = match labels[v] {
                    Some(t) => t,
                    None => continue,
                };
                let row = logits.row(v);
                loss += vector::cross_entropy(row, target) * inv_batch;
                if vector::argmax(row) == target {
                    correct += 1;
                }
                let probs = vector::softmax(row);
                for (c, &p) in probs.iter().enumerate() {
                    grad.set(v, c, (p - targets.get(v, c)) * inv_batch);
                }
            }

            // Backpropagation through the layers.
            let mut upstream = grad; // dL/dX_L
            for layer in (0..self.weights.len()).rev() {
                let is_output = layer + 1 == self.weights.len();
                let d_pre = if is_output {
                    upstream
                } else {
                    let deriv = self
                        .activation
                        .derivative_matrix(&trace.pre_activation[layer]);
                    upstream.hadamard(&deriv)
                };
                let mut d_w = trace.aggregated[layer].transpose().matmul(&d_pre);
                if cfg.weight_decay > 0.0 {
                    d_w.add_assign(&self.weights[layer].scale(cfg.weight_decay));
                }
                // dL/dS = dP * W^T ; dL/dX_{i-1} = A_norm^T dS = A_norm dS (symmetric)
                let d_s = d_pre.matmul(&self.weights[layer].transpose());
                upstream = Self::sym_norm_spmm(&csr, &norms, &d_s);
                optimizers[layer].step(&mut self.weights[layer], &d_w);
            }

            report.losses.push(loss);
            report
                .accuracies
                .push(correct as f64 / train_nodes.len() as f64);
        }
        self.weights_p = pack_all(&self.weights);
        report
    }
}

impl GnnModel for Gcn {
    fn num_classes(&self) -> usize {
        self.weights.last().expect("non-empty").cols()
    }

    fn num_layers(&self) -> usize {
        self.weights.len()
    }

    fn feature_dim(&self) -> usize {
        self.weights.first().expect("non-empty").rows()
    }

    fn forward(&self, ctx: &ForwardCtx<'_>, x: &Matrix) -> Matrix {
        let mut s = ForwardScratch::default();
        self.forward_scratch(ctx, x, &mut s);
        Matrix::from_vec(x.rows(), self.num_classes(), s.a)
    }

    fn forward_into<'s>(
        &self,
        ctx: &ForwardCtx<'_>,
        x: &Matrix,
        scratch: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        self.forward_scratch(ctx, x, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::accuracy;
    use rcw_graph::{EdgeSet, Graph};

    /// Two cliques with distinctive features; class = clique membership.
    fn two_cluster_graph() -> Graph {
        let mut g = Graph::new();
        for i in 0..10 {
            let class = if i < 5 { 0 } else { 1 };
            let noise = (i as f64) * 0.01;
            let feats = if class == 0 {
                vec![1.0 + noise, 0.0]
            } else {
                vec![0.0, 1.0 + noise]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        for u in 5..10 {
            for v in (u + 1)..10 {
                g.add_edge(u, v);
            }
        }
        g.add_edge(4, 5); // one bridge
        g
    }

    #[test]
    fn new_validates_dims() {
        let gcn = Gcn::new(&[4, 8, 3], 0);
        assert_eq!(gcn.num_layers(), 2);
        assert_eq!(gcn.num_classes(), 3);
        assert_eq!(gcn.feature_dim(), 4);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn new_rejects_single_dim() {
        Gcn::new(&[4], 0);
    }

    #[test]
    fn logits_shape_and_determinism() {
        let g = two_cluster_graph();
        let view = GraphView::full(&g);
        let gcn = Gcn::new(&[2, 8, 2], 3);
        let z1 = gcn.logits(&view);
        let z2 = gcn.logits(&view);
        assert_eq!(z1.shape(), (10, 2));
        assert_eq!(z1, z2, "inference must be deterministic");
    }

    #[test]
    fn training_fits_two_clusters() {
        let g = two_cluster_graph();
        let view = GraphView::full(&g);
        let mut gcn = Gcn::new(&[2, 8, 2], 1);
        let cfg = TrainConfig {
            epochs: 120,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        let all: Vec<usize> = (0..10).collect();
        let report = gcn.train(&view, &all, &cfg);
        assert!(report.final_loss() < report.losses[0], "loss must decrease");
        let acc = accuracy(&gcn, &view, &all);
        assert!(acc >= 0.9, "expected >= 0.9 accuracy, got {acc}");
    }

    #[test]
    fn predictions_change_when_edges_are_masked() {
        // A node with zeroed features relies entirely on neighbors; removing
        // its edges must change its logits.
        let mut g = two_cluster_graph();
        let orphan = g.add_labeled_node(vec![0.0, 0.0], 0);
        for u in 0..5 {
            g.add_edge(orphan, u);
        }
        let view = GraphView::full(&g);
        let mut gcn = Gcn::new(&[2, 8, 2], 5);
        let cfg = TrainConfig {
            epochs: 120,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        let train: Vec<usize> = (0..10).collect();
        gcn.train(&view, &train, &cfg);
        let full_logits = gcn.logits(&view);
        let removed: EdgeSet = (0..5usize).map(|u| (orphan, u)).collect();
        let masked = GraphView::without(&g, &removed);
        let masked_logits = gcn.logits(&masked);
        let diff: f64 = full_logits
            .row(orphan)
            .iter()
            .zip(masked_logits.row(orphan))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "masking edges must affect the orphan's logits");
    }

    #[test]
    fn from_weights_roundtrip() {
        let w1 = Matrix::identity(2);
        let w2 = Matrix::identity(2);
        let gcn = Gcn::from_weights(vec![w1, w2], Activation::Relu);
        assert_eq!(gcn.num_layers(), 2);
        assert_eq!(gcn.weights().len(), 2);
    }
}
