//! Training configuration, the Adam optimizer, and train/test splitting.
//!
//! Training in this workspace is deliberately simple: full-batch gradient
//! descent with Adam over the cross-entropy of the training nodes. The
//! explanation algorithms never train — they only need a *fixed* model — so
//! the trainer's job is to produce a reasonable deterministic classifier for
//! the synthetic datasets.

use rcw_graph::NodeId;
use rcw_linalg::rng::{Rng, SliceRandom};
use rcw_linalg::Matrix;

/// Hyperparameters for full-batch training.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of epochs (full-batch steps).
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 weight decay added to the gradient.
    pub weight_decay: f64,
    /// Seed controlling any training-time randomness (e.g. dropout, unused here).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            learning_rate: 0.02,
            weight_decay: 5e-4,
            seed: 0,
        }
    }
}

/// Per-epoch training curve.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Cross-entropy loss per epoch.
    pub losses: Vec<f64>,
    /// Training accuracy per epoch.
    pub accuracies: Vec<f64>,
}

impl TrainReport {
    /// Loss of the final epoch (infinity when no epoch ran).
    pub fn final_loss(&self) -> f64 {
        self.losses.last().copied().unwrap_or(f64::INFINITY)
    }

    /// Accuracy of the final epoch (0.0 when no epoch ran).
    pub fn final_accuracy(&self) -> f64 {
        self.accuracies.last().copied().unwrap_or(0.0)
    }
}

/// Adam optimizer state for one weight matrix.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: usize,
    m: Matrix,
    v: Matrix,
}

impl Adam {
    /// Creates optimizer state for a `rows x cols` parameter matrix.
    pub fn new(rows: usize, cols: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
        }
    }

    /// Applies one Adam update to `weights` given the gradient `grad`.
    pub fn step(&mut self, weights: &mut Matrix, grad: &Matrix) {
        assert_eq!(weights.shape(), grad.shape(), "Adam::step: shape mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let (m, v) = (self.m.data_mut(), self.v.data_mut());
        let w = weights.data_mut();
        for ((wi, gi), (mi, vi)) in w
            .iter_mut()
            .zip(grad.data())
            .zip(m.iter_mut().zip(v.iter_mut()))
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
            let m_hat = *mi / bc1;
            let v_hat = *vi / bc2;
            *wi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// Deterministically splits labeled nodes into train and test sets with the
/// given training fraction.
pub fn train_test_split(
    labeled_nodes: &[NodeId],
    train_fraction: f64,
    seed: u64,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut nodes = labeled_nodes.to_vec();
    let mut rng = Rng::seed_from_u64(seed);
    nodes.shuffle(&mut rng);
    let cut = ((nodes.len() as f64) * train_fraction.clamp(0.0, 1.0)).round() as usize;
    let cut = cut.min(nodes.len());
    let train = nodes[..cut].to_vec();
    let test = nodes[cut..].to_vec();
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // minimize f(w) = 0.5 * ||w - target||^2 ; grad = w - target
        let target = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]);
        let mut w = Matrix::zeros(2, 2);
        let mut opt = Adam::new(2, 2, 0.05);
        for _ in 0..500 {
            let grad = w.sub(&target);
            opt.step(&mut w, &grad);
        }
        assert!(w.sub(&target).max_abs() < 1e-2, "Adam failed to converge");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn adam_rejects_shape_mismatch() {
        let mut w = Matrix::zeros(2, 2);
        let g = Matrix::zeros(1, 2);
        Adam::new(2, 2, 0.1).step(&mut w, &g);
    }

    #[test]
    fn split_is_deterministic_and_partitioning() {
        let nodes: Vec<usize> = (0..100).collect();
        let (tr1, te1) = train_test_split(&nodes, 0.7, 9);
        let (tr2, te2) = train_test_split(&nodes, 0.7, 9);
        assert_eq!(tr1, tr2);
        assert_eq!(te1, te2);
        assert_eq!(tr1.len(), 70);
        assert_eq!(te1.len(), 30);
        let mut all: Vec<usize> = tr1.iter().chain(te1.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, nodes);
    }

    #[test]
    fn split_handles_extreme_fractions() {
        let nodes: Vec<usize> = (0..10).collect();
        let (tr, te) = train_test_split(&nodes, 0.0, 1);
        assert!(tr.is_empty());
        assert_eq!(te.len(), 10);
        let (tr, te) = train_test_split(&nodes, 1.5, 1);
        assert_eq!(tr.len(), 10);
        assert!(te.is_empty());
    }

    #[test]
    fn report_defaults() {
        let r = TrainReport::default();
        assert!(r.final_loss().is_infinite());
        assert_eq!(r.final_accuracy(), 0.0);
        let cfg = TrainConfig::default();
        assert!(cfg.epochs > 0 && cfg.learning_rate > 0.0);
    }
}
