//! GraphSAGE with mean aggregation (inference-grade).
//!
//! Included to demonstrate that the witness machinery is model-agnostic (the
//! paper: "our solutions are model-agnostic and generalize to GNN
//! specifications"). Each layer computes
//! `h_u = act( W_self * h_u + W_neigh * mean_{v in N(u)} h_v )`,
//! with identity on the output layer. The model is inference-only; weights
//! come from a seeded initializer or from an explicit constructor.

use crate::model::{pack_all, sized, ForwardScratch, GnnModel};
use rcw_graph::ForwardCtx;
use rcw_linalg::{init, matmul_packed_rows, Activation, Matrix, PackedWeights};

/// A GraphSAGE model with mean aggregation.
#[derive(Clone, Debug)]
pub struct GraphSage {
    self_weights: Vec<Matrix>,
    neigh_weights: Vec<Matrix>,
    /// Tile-packed copies of the weight stacks, kept in sync, for
    /// unit-stride lane-order matmuls in the forward kernel.
    self_weights_p: Vec<PackedWeights>,
    neigh_weights_p: Vec<PackedWeights>,
    activation: Activation,
}

impl GraphSage {
    /// Creates a GraphSAGE model with the given layer dimensions.
    ///
    /// # Panics
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "GraphSage::new: need at least input and output dims"
        );
        let self_weights: Vec<Matrix> = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| init::xavier_uniform(w[0], w[1], seed.wrapping_add(i as u64)))
            .collect();
        let neigh_weights: Vec<Matrix> = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| init::xavier_uniform(w[0], w[1], seed.wrapping_add(1000 + i as u64)))
            .collect();
        GraphSage {
            self_weights_p: pack_all(&self_weights),
            neigh_weights_p: pack_all(&neigh_weights),
            self_weights,
            neigh_weights,
            activation: Activation::Relu,
        }
    }

    /// Builds a model from explicit weights (one self/neighbor pair per layer).
    pub fn from_weights(
        self_weights: Vec<Matrix>,
        neigh_weights: Vec<Matrix>,
        activation: Activation,
    ) -> Self {
        assert_eq!(
            self_weights.len(),
            neigh_weights.len(),
            "GraphSage::from_weights: layer count mismatch"
        );
        assert!(
            !self_weights.is_empty(),
            "GraphSage::from_weights: no layers"
        );
        GraphSage {
            self_weights_p: pack_all(&self_weights),
            neigh_weights_p: pack_all(&neigh_weights),
            self_weights,
            neigh_weights,
            activation,
        }
    }

    /// Immutable access to the per-layer self-transform weights.
    pub fn self_weights(&self) -> &[Matrix] {
        &self.self_weights
    }

    /// Immutable access to the per-layer neighbor-transform weights.
    pub fn neigh_weights(&self) -> &[Matrix] {
        &self.neigh_weights
    }

    /// Mean-aggregates neighbor rows of `x` into `out` (pre-zeroed), keeping
    /// CSR neighbor order so localized evaluation stays bit-exact.
    fn mean_aggregate_into(
        ctx: &ForwardCtx<'_>,
        x: &[f64],
        dim: usize,
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let n = out.len() / dim.max(1);
        let csr = ctx.csr();
        let degrees = ctx.degrees();
        let mut aggregate = |u: usize| {
            let orow = &mut out[u * dim..(u + 1) * dim];
            if degrees[u] == 0.0 {
                // no neighbors: aggregate the node itself so the signal is defined
                orow.copy_from_slice(&x[u * dim..(u + 1) * dim]);
                return;
            }
            let inv = 1.0 / degrees[u];
            for &v in csr.neighbors(u) {
                let xrow = &x[v * dim..(v + 1) * dim];
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o += inv * xv;
                }
            }
        };
        match rows {
            None => (0..n).for_each(&mut aggregate),
            Some(rows) => rows.iter().copied().for_each(&mut aggregate),
        }
    }

    /// The zero-allocation forward kernel: `a` holds the activations, `b` the
    /// neighbor means, `c` the layer output (self term, then the neighbor term
    /// accumulated on top, matching the allocating path's add-assign of two
    /// completed products bit for bit).
    fn forward_scratch<'s>(
        &self,
        ctx: &ForwardCtx<'_>,
        x: &Matrix,
        s: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        let n = x.rows();
        let layers = self.self_weights_p.len();
        s.a.clear();
        s.a.extend_from_slice(x.data());
        let mut dim = x.cols();
        for (i, (wsp, wnp)) in self
            .self_weights_p
            .iter()
            .zip(&self.neigh_weights_p)
            .enumerate()
        {
            let rows = ctx.active_rows(layers - 1 - i);
            let od = wsp.cols();
            Self::mean_aggregate_into(ctx, &s.a, dim, sized(&mut s.b, n * dim), rows);
            matmul_packed_rows(&s.a, dim, wsp, sized(&mut s.c, n * od), rows, false);
            matmul_packed_rows(&s.b, dim, wnp, &mut s.c, rows, true);
            if i + 1 != layers {
                for v in s.c.iter_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            std::mem::swap(&mut s.a, &mut s.c);
            dim = od;
        }
        &s.a
    }
}

impl GnnModel for GraphSage {
    fn num_classes(&self) -> usize {
        self.self_weights.last().expect("non-empty").cols()
    }

    fn num_layers(&self) -> usize {
        self.self_weights.len()
    }

    fn feature_dim(&self) -> usize {
        self.self_weights.first().expect("non-empty").rows()
    }

    fn forward(&self, ctx: &ForwardCtx<'_>, x: &Matrix) -> Matrix {
        let mut s = ForwardScratch::default();
        self.forward_scratch(ctx, x, &mut s);
        Matrix::from_vec(x.rows(), self.num_classes(), s.a)
    }

    fn forward_into<'s>(
        &self,
        ctx: &ForwardCtx<'_>,
        x: &Matrix,
        scratch: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        self.forward_scratch(ctx, x, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_graph::{EdgeSet, Graph, GraphView};

    fn small_graph() -> Graph {
        let mut g = Graph::new();
        g.add_labeled_node(vec![1.0, 0.0], 0);
        g.add_labeled_node(vec![0.9, 0.1], 0);
        g.add_labeled_node(vec![0.0, 1.0], 1);
        g.add_labeled_node(vec![0.1, 0.9], 1);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(1, 2);
        g
    }

    #[test]
    fn shapes_and_determinism() {
        let g = small_graph();
        let view = GraphView::full(&g);
        let m = GraphSage::new(&[2, 4, 2], 11);
        let z = m.logits(&view);
        assert_eq!(z.shape(), (4, 2));
        assert_eq!(z, m.logits(&view));
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.num_classes(), 2);
        assert_eq!(m.feature_dim(), 2);
    }

    #[test]
    fn isolated_nodes_fall_back_to_self_features() {
        let mut g = small_graph();
        let iso = g.add_labeled_node(vec![0.5, 0.5], 0);
        let view = GraphView::full(&g);
        let m = GraphSage::new(&[2, 3, 2], 2);
        let z = m.logits(&view);
        assert!(z.row(iso).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn identity_weights_propagate_neighbor_means() {
        // one layer, W_self = 0, W_neigh = I: output = mean of neighbor features
        let g = small_graph();
        let view = GraphView::full(&g);
        let m = GraphSage::from_weights(
            vec![Matrix::zeros(2, 2)],
            vec![Matrix::identity(2)],
            Activation::Identity,
        );
        let z = m.logits(&view);
        // node 0 has only neighbor 1 with features (0.9, 0.1)
        assert!((z.get(0, 0) - 0.9).abs() < 1e-12);
        assert!((z.get(0, 1) - 0.1).abs() < 1e-12);
        // node 1 neighbors are 0 and 2 => mean of (1,0) and (0,1) = (0.5,0.5)
        assert!((z.get(1, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edge_masking_changes_output() {
        let g = small_graph();
        let m = GraphSage::new(&[2, 4, 2], 5);
        let full = m.logits(&GraphView::full(&g));
        let removed: EdgeSet = [(1usize, 2usize)].into_iter().collect();
        let cut = m.logits(&GraphView::without(&g, &removed));
        assert_ne!(full, cut);
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn from_weights_validates_lengths() {
        GraphSage::from_weights(vec![Matrix::identity(2)], vec![], Activation::Relu);
    }
}
