//! APPNP — "Predict Then Propagate" with personalized PageRank.
//!
//! APPNP first transforms node features with a small MLP, `H = f_theta(X)`,
//! then propagates predictions with the personalized-PageRank operator used by
//! the paper (§II-A):
//!
//! ```text
//! Z = (1 - alpha) * (I - alpha * D^{-1} (A + I))^{-1} * H
//! ```
//!
//! Propagation is computed by fixed-point iteration
//! `Z <- alpha * P * Z + (1 - alpha) * H` (a contraction for `alpha < 1`), so
//! no dense inverse is required during inference. The tractable k-RCW
//! verification of §III-B relies on this model's linearity in the propagation
//! step: per-node logits are `pi(v)^T H`, where `pi(v)` is node `v`'s
//! personalized PageRank row — exactly what `rcw-pagerank` computes.

use crate::model::{one_hot_labels, pack_all, sized, ForwardScratch, GnnModel};
use crate::train::{Adam, TrainConfig, TrainReport};
use rcw_graph::{Csr, ForwardCtx, GraphView, NodeId};
use rcw_linalg::{init, matmul_packed_rows, vector, Activation, Matrix, PackedWeights};

/// The APPNP model: an MLP feature transform plus PPR propagation.
#[derive(Clone, Debug)]
pub struct Appnp {
    /// MLP weights; layer i maps `dims[i] -> dims[i+1]`.
    weights: Vec<Matrix>,
    /// Tile-packed copies of `weights`, kept in sync, for unit-stride
    /// lane-order matmuls.
    weights_p: Vec<PackedWeights>,
    /// Hidden activation of the MLP.
    activation: Activation,
    /// Teleport probability `alpha` of the PPR propagation.
    alpha: f64,
    /// Number of propagation (power) iterations.
    prop_iters: usize,
}

impl Appnp {
    /// Creates an APPNP model with the given MLP dimensions, teleport
    /// probability and propagation iterations.
    ///
    /// # Panics
    /// Panics if fewer than two dims are given or `alpha` is outside `(0, 1)`.
    pub fn new(dims: &[usize], alpha: f64, prop_iters: usize, seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "Appnp::new: need at least input and output dims"
        );
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "Appnp::new: alpha must be in (0,1)"
        );
        let weights: Vec<Matrix> = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| init::xavier_uniform(w[0], w[1], seed.wrapping_add(100 + i as u64)))
            .collect();
        Appnp {
            weights_p: pack_all(&weights),
            weights,
            activation: Activation::Relu,
            alpha,
            prop_iters: prop_iters.max(1),
        }
    }

    /// The teleport probability `alpha`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of propagation iterations.
    pub fn prop_iters(&self) -> usize {
        self.prop_iters
    }

    /// Immutable access to the MLP weights.
    pub fn weights(&self) -> &[Matrix] {
        &self.weights
    }

    /// Applies the MLP transform to the (padded) feature matrix, keeping
    /// pre-activation traces when `trace` is `true`.
    fn mlp_forward(&self, x0: &Matrix) -> (Vec<Matrix>, Vec<Matrix>) {
        let mut pre = Vec::with_capacity(self.weights.len());
        let mut post = Vec::with_capacity(self.weights.len());
        let mut x = x0.clone();
        for (i, w) in self.weights.iter().enumerate() {
            let p = x.matmul(w);
            let out = if i + 1 == self.weights.len() {
                p.clone()
            } else {
                self.activation.apply_matrix(&p)
            };
            pre.push(p);
            post.push(out.clone());
            x = out;
        }
        (pre, post)
    }

    /// The MLP prediction `H = f_theta(X)` before propagation.
    pub fn local_logits(&self, view: &GraphView<'_>) -> Matrix {
        let x0 = crate::pad_features(&view.graph().feature_matrix(), self.feature_dim());
        self.mlp_forward(&x0).1.pop().expect("non-empty MLP")
    }

    /// [`Appnp::local_logits`] through a shared cache. `H` depends only on
    /// node features, so the cache is keyed by the host graph's
    /// *feature* epoch and survives arbitrary edge disturbances — a
    /// long-lived engine pays the MLP pass once per feature change instead of
    /// once per verification call.
    pub fn local_logits_cached(
        &self,
        view: &GraphView<'_>,
        cache: &crate::cache::EpochCache<Matrix>,
    ) -> std::sync::Arc<Matrix> {
        cache.get_or_insert_with(view.graph().feature_epoch(), || self.local_logits(view))
    }

    /// Applies the propagation `Z = (1-alpha)(I - alpha P)^{-1} H` by
    /// fixed-point iteration, where `P = D^{-1}(A + I)` over the view.
    pub fn propagate(&self, csr: &Csr, h: &Matrix) -> Matrix {
        let degrees: Vec<f64> = (0..csr.num_nodes()).map(|u| csr.degree(u) as f64).collect();
        self.propagate_ctx(&ForwardCtx::full(csr, &degrees), h)
    }

    /// [`Appnp::propagate`] over an explicit compute graph. Iteration `t` of
    /// `T` only computes rows that can still reach the scheduled output
    /// (`remaining = T - t` rounds follow); unscheduled rows keep stale values
    /// that no later iteration reads.
    pub fn propagate_ctx(&self, ctx: &ForwardCtx<'_>, h: &Matrix) -> Matrix {
        let dim = h.cols();
        let n = h.rows();
        let base = h.scale(1.0 - self.alpha);
        let mut z = base.clone();
        let mut buf = vec![0.0; n * dim];
        for t in 1..=self.prop_iters {
            let rows = ctx.active_rows(self.prop_iters - t);
            ctx.csr()
                .spmm_row_norm_deg(ctx.degrees(), z.data(), dim, &mut buf, rows);
            let mut update = |u: usize| {
                for c in 0..dim {
                    let v = buf[u * dim + c] * self.alpha + base.get(u, c);
                    z.set(u, c, v);
                }
            };
            match rows {
                None => (0..n).for_each(&mut update),
                Some(rows) => rows.iter().copied().for_each(&mut update),
            }
        }
        z
    }

    /// The zero-allocation forward kernel: the MLP ping-pongs through the
    /// scratch, then the PPR iteration runs over `b` (teleport base), `c`
    /// (iterate) and `d` (SpMM buffer). The logits end up in `s.a`.
    fn forward_scratch<'s>(
        &self,
        ctx: &ForwardCtx<'_>,
        x: &Matrix,
        s: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        let n = x.rows();
        let layers = self.weights_p.len();
        // MLP transform H = f_theta(X): node-local, so every row is computed.
        s.a.clear();
        s.a.extend_from_slice(x.data());
        let mut dim = x.cols();
        for (i, wp) in self.weights_p.iter().enumerate() {
            let od = wp.cols();
            matmul_packed_rows(&s.a, dim, wp, sized(&mut s.c, n * od), None, false);
            if i + 1 != layers {
                for v in s.c.iter_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            std::mem::swap(&mut s.a, &mut s.c);
            dim = od;
        }
        // PPR fixed point z <- alpha * P z + (1 - alpha) * H.
        let base = sized(&mut s.b, n * dim);
        for (o, &h) in base.iter_mut().zip(s.a.iter()) {
            *o = h * (1.0 - self.alpha);
        }
        s.c.clear();
        s.c.extend_from_slice(&s.b);
        sized(&mut s.d, n * dim);
        for t in 1..=self.prop_iters {
            let rows = ctx.active_rows(self.prop_iters - t);
            ctx.spmm_row(&s.c, dim, &mut s.d, rows);
            let d = &s.d;
            let b = &s.b;
            let z = &mut s.c;
            let mut update = |u: usize| {
                for c in u * dim..(u + 1) * dim {
                    z[c] = d[c] * self.alpha + b[c];
                }
            };
            match rows {
                None => (0..n).for_each(&mut update),
                Some(rows) => rows.iter().copied().for_each(&mut update),
            }
        }
        std::mem::swap(&mut s.a, &mut s.c);
        &s.a
    }

    /// Applies the *transposed* propagation, used for backpropagation:
    /// `G_H = (1-alpha)(I - alpha P^T)^{-1} G_Z`.
    fn propagate_transpose(&self, csr: &Csr, g: &Matrix) -> Matrix {
        let dim = g.cols();
        let n = g.rows();
        let base = g.scale(1.0 - self.alpha);
        let mut z = base.clone();
        for _ in 0..self.prop_iters {
            let mut buf = vec![0.0; n * dim];
            // out = P^T z : column-normalized scatter
            for u in 0..n {
                let w = 1.0 / (csr.degree(u) as f64 + 1.0);
                for c in 0..dim {
                    buf[u * dim + c] += w * z.get(u, c);
                }
                for &v in csr.neighbors(u) {
                    for c in 0..dim {
                        buf[v * dim + c] += w * z.get(u, c);
                    }
                }
            }
            let mut next = Matrix::from_vec(n, dim, buf);
            next.scale_assign(self.alpha);
            next.add_assign(&base);
            z = next;
        }
        z
    }

    /// Trains the MLP with full-batch Adam on cross-entropy over the training
    /// nodes, backpropagating through the (fixed) propagation operator.
    pub fn train(
        &mut self,
        view: &GraphView<'_>,
        train_nodes: &[NodeId],
        cfg: &TrainConfig,
    ) -> TrainReport {
        assert!(!train_nodes.is_empty(), "Appnp::train: empty training set");
        let graph = view.graph();
        let labels = graph.labels_vec();
        let targets = one_hot_labels(&labels, self.num_classes());
        let csr = Csr::from_view(view);
        let x0 = crate::pad_features(&graph.feature_matrix(), self.feature_dim());
        let mut optimizers: Vec<Adam> = self
            .weights
            .iter()
            .map(|w| Adam::new(w.rows(), w.cols(), cfg.learning_rate))
            .collect();
        let inv_batch = 1.0 / train_nodes.len() as f64;
        let mut report = TrainReport::default();

        for _epoch in 0..cfg.epochs {
            let (pre, post) = self.mlp_forward(&x0);
            let h = post.last().expect("non-empty MLP");
            let z = self.propagate(&csr, h);

            let mut loss = 0.0;
            let mut correct = 0usize;
            let mut d_z = Matrix::zeros(z.rows(), z.cols());
            for &v in train_nodes {
                let target = match labels[v] {
                    Some(t) => t,
                    None => continue,
                };
                let row = z.row(v);
                loss += vector::cross_entropy(row, target) * inv_batch;
                if vector::argmax(row) == target {
                    correct += 1;
                }
                let probs = vector::softmax(row);
                for (c, &p) in probs.iter().enumerate() {
                    d_z.set(v, c, (p - targets.get(v, c)) * inv_batch);
                }
            }

            // gradient through the propagation, then through the MLP
            let mut upstream = self.propagate_transpose(&csr, &d_z);
            for layer in (0..self.weights.len()).rev() {
                let is_output = layer + 1 == self.weights.len();
                let d_pre = if is_output {
                    upstream
                } else {
                    upstream.hadamard(&self.activation.derivative_matrix(&pre[layer]))
                };
                let input = if layer == 0 { &x0 } else { &post[layer - 1] };
                let mut d_w = input.transpose().matmul(&d_pre);
                if cfg.weight_decay > 0.0 {
                    d_w.add_assign(&self.weights[layer].scale(cfg.weight_decay));
                }
                upstream = d_pre.matmul(&self.weights[layer].transpose());
                optimizers[layer].step(&mut self.weights[layer], &d_w);
            }

            report.losses.push(loss);
            report
                .accuracies
                .push(correct as f64 / train_nodes.len() as f64);
        }
        self.weights_p = pack_all(&self.weights);
        report
    }
}

impl GnnModel for Appnp {
    fn num_classes(&self) -> usize {
        self.weights.last().expect("non-empty").cols()
    }

    fn num_layers(&self) -> usize {
        // MLP layers plus one propagation step count as the paper's "L".
        self.weights.len() + 1
    }

    fn feature_dim(&self) -> usize {
        self.weights.first().expect("non-empty").rows()
    }

    /// The receptive field radius is the propagation depth, not the MLP depth:
    /// the MLP is node-local and each power iteration widens the field by one
    /// hop.
    fn receptive_hops(&self) -> usize {
        self.prop_iters
    }

    fn forward(&self, ctx: &ForwardCtx<'_>, x: &Matrix) -> Matrix {
        let mut s = ForwardScratch::default();
        self.forward_scratch(ctx, x, &mut s);
        Matrix::from_vec(x.rows(), self.num_classes(), s.a)
    }

    fn forward_into<'s>(
        &self,
        ctx: &ForwardCtx<'_>,
        x: &Matrix,
        scratch: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        self.forward_scratch(ctx, x, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::accuracy;
    use rcw_graph::{EdgeSet, Graph};

    fn two_cluster_graph() -> Graph {
        let mut g = Graph::new();
        for i in 0..12 {
            let class = if i < 6 { 0 } else { 1 };
            let feats = if class == 0 {
                vec![1.0, 0.1 * i as f64]
            } else {
                vec![0.1 * i as f64, 1.0]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..6 {
            for v in (u + 1)..6 {
                if (u + v) % 2 == 0 {
                    g.add_edge(u, v);
                }
            }
        }
        for u in 6..12 {
            for v in (u + 1)..12 {
                if (u + v) % 2 == 0 {
                    g.add_edge(u, v);
                }
            }
        }
        g.add_edge(5, 6);
        g
    }

    #[test]
    fn construction_validations() {
        let m = Appnp::new(&[4, 8, 3], 0.15, 10, 0);
        assert_eq!(m.num_classes(), 3);
        assert_eq!(m.feature_dim(), 4);
        assert_eq!(m.num_layers(), 3);
        assert!(m.alpha() > 0.0);
        assert_eq!(m.prop_iters(), 10);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        Appnp::new(&[2, 2], 1.5, 5, 0);
    }

    #[test]
    fn propagation_preserves_constant_rows() {
        // If H is constant across nodes, Z = (1-a)(I-aP)^{-1}H stays constant
        // because P is row-stochastic: the fixed point of z = aPz + (1-a)h
        // with h constant is z = h.
        let g = two_cluster_graph();
        let view = GraphView::full(&g);
        let csr = Csr::from_view(&view);
        let m = Appnp::new(&[2, 2], 0.2, 50, 1);
        let h = Matrix::filled(g.num_nodes(), 2, 3.0);
        let z = m.propagate(&csr, &h);
        for r in 0..z.rows() {
            for c in 0..z.cols() {
                assert!(
                    (z.get(r, c) - 3.0).abs() < 1e-6,
                    "z[{r}][{c}]={}",
                    z.get(r, c)
                );
            }
        }
    }

    #[test]
    fn logits_are_deterministic() {
        let g = two_cluster_graph();
        let view = GraphView::full(&g);
        let m = Appnp::new(&[2, 4, 2], 0.15, 10, 3);
        assert_eq!(m.logits(&view), m.logits(&view));
    }

    #[test]
    fn training_fits_two_clusters() {
        let g = two_cluster_graph();
        let view = GraphView::full(&g);
        let mut m = Appnp::new(&[2, 8, 2], 0.2, 10, 2);
        let cfg = TrainConfig {
            epochs: 150,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        let all: Vec<usize> = (0..12).collect();
        let report = m.train(&view, &all, &cfg);
        assert!(report.final_loss() < report.losses[0]);
        assert!(accuracy(&m, &view, &all) >= 0.9);
    }

    #[test]
    fn removing_edges_changes_propagated_logits() {
        let g = two_cluster_graph();
        let view = GraphView::full(&g);
        let m = Appnp::new(&[2, 4, 2], 0.2, 10, 7);
        let full = m.logits(&view);
        let removed: EdgeSet = [(5usize, 6usize)].into_iter().collect();
        let cut = GraphView::without(&g, &removed);
        let cut_logits = m.logits(&cut);
        let diff: f64 = (0..g.num_nodes())
            .map(|v| {
                full.row(v)
                    .iter()
                    .zip(cut_logits.row(v))
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f64>()
            })
            .sum();
        assert!(diff > 1e-9, "cutting the bridge must change some logits");
    }
}
