//! Graph Attention Network (single-head, inference-grade).
//!
//! Another model-agnosticism witness (the paper cites GAT as a representative
//! message-passing GNN). Each layer computes attention coefficients
//! `e_uv = LeakyReLU( a_src . (W h_u) + a_dst . (W h_v) )` over `v in N(u) u {u}`,
//! normalizes them with a softmax, and aggregates `h'_u = act( sum_v alpha_uv W h_v )`.
//! The output layer uses the identity activation and yields logits.

use crate::model::{sized, ForwardScratch, GnnModel};
use rcw_graph::ForwardCtx;
use rcw_linalg::{init, matmul_packed_rows, vector, Activation, Matrix, PackedWeights};

/// One GAT layer: a linear transform plus source/destination attention vectors.
#[derive(Clone, Debug)]
pub struct GatLayer {
    weight: Matrix,
    /// `weight` tile-packed, kept in sync, for unit-stride lane-order
    /// matmuls.
    weight_p: PackedWeights,
    attn_src: Vec<f64>,
    attn_dst: Vec<f64>,
}

impl GatLayer {
    /// Builds a layer from its transform and attention vectors, caching the
    /// tile-packed transform for the forward kernel.
    pub fn new(weight: Matrix, attn_src: Vec<f64>, attn_dst: Vec<f64>) -> Self {
        GatLayer {
            weight_p: PackedWeights::pack(&weight),
            weight,
            attn_src,
            attn_dst,
        }
    }
}

/// A single-head GAT model.
#[derive(Clone, Debug)]
pub struct Gat {
    layers: Vec<GatLayer>,
    activation: Activation,
}

impl Gat {
    /// Creates a GAT with the given layer dimensions.
    ///
    /// # Panics
    /// Panics if fewer than two dimensions are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "Gat::new: need at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let weight = init::xavier_uniform(w[0], w[1], seed.wrapping_add(i as u64));
                let attn_src = init::xavier_uniform(1, w[1], seed.wrapping_add(500 + i as u64))
                    .row(0)
                    .to_vec();
                let attn_dst = init::xavier_uniform(1, w[1], seed.wrapping_add(900 + i as u64))
                    .row(0)
                    .to_vec();
                GatLayer::new(weight, attn_src, attn_dst)
            })
            .collect();
        Gat {
            layers,
            activation: Activation::Relu,
        }
    }

    /// The zero-allocation forward kernel: transformed features ping-pong
    /// through `a`/`b`/`c`, attention scores live in `src`/`dst`, and each
    /// row's closed neighborhood and softmax weights reuse `nbrs`/`att`.
    fn forward_scratch<'s>(
        &self,
        ctx: &ForwardCtx<'_>,
        x: &Matrix,
        s: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        let n = x.rows();
        let count = self.layers.len();
        let csr = ctx.csr();
        s.a.clear();
        s.a.extend_from_slice(x.data());
        let mut dim = x.cols();
        for (i, layer) in self.layers.iter().enumerate() {
            let remaining = count - 1 - i;
            let rows = ctx.active_rows(remaining);
            // Attention needs the transformed features and scores of every
            // node an active row attends to — its neighbors, i.e. the
            // previous round's active set.
            let support = ctx.active_rows(remaining + 1);
            let od = layer.weight_p.cols();
            matmul_packed_rows(
                &s.a,
                dim,
                &layer.weight_p,
                sized(&mut s.b, n * od),
                support,
                false,
            );
            // attention logits per node
            let transformed: &[f64] = &s.b;
            let src_scores = sized(&mut s.src, n);
            let dst_scores = sized(&mut s.dst, n);
            let mut score = |u: usize| {
                let trow = &transformed[u * od..(u + 1) * od];
                src_scores[u] = vector::dot(trow, &layer.attn_src);
                dst_scores[u] = vector::dot(trow, &layer.attn_dst);
            };
            match support {
                None => (0..n).for_each(&mut score),
                Some(support) => support.iter().copied().for_each(&mut score),
            }
            let out = sized(&mut s.c, n * od);
            let nbrs = &mut s.nbrs;
            let att = &mut s.att;
            let mut aggregate = |u: usize| {
                // neighborhood including self
                nbrs.clear();
                nbrs.extend_from_slice(csr.neighbors(u));
                nbrs.push(u);
                att.clear();
                att.extend(
                    nbrs.iter()
                        .map(|&v| Activation::LeakyRelu.apply(src_scores[u] + dst_scores[v])),
                );
                vector::softmax_inplace(att);
                let orow = &mut out[u * od..(u + 1) * od];
                for (&v, &a) in nbrs.iter().zip(att.iter()) {
                    let trow = &transformed[v * od..(v + 1) * od];
                    for (o, &t) in orow.iter_mut().zip(trow) {
                        *o += a * t;
                    }
                }
            };
            match rows {
                None => (0..n).for_each(&mut aggregate),
                Some(rows) => rows.iter().copied().for_each(&mut aggregate),
            }
            if i + 1 != count {
                for v in s.c.iter_mut() {
                    *v = self.activation.apply(*v);
                }
            }
            std::mem::swap(&mut s.a, &mut s.c);
            dim = od;
        }
        &s.a
    }
}

impl GnnModel for Gat {
    fn num_classes(&self) -> usize {
        self.layers.last().expect("non-empty").weight.cols()
    }

    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn feature_dim(&self) -> usize {
        self.layers.first().expect("non-empty").weight.rows()
    }

    fn forward(&self, ctx: &ForwardCtx<'_>, x: &Matrix) -> Matrix {
        let mut s = ForwardScratch::default();
        self.forward_scratch(ctx, x, &mut s);
        Matrix::from_vec(x.rows(), self.num_classes(), s.a)
    }

    fn forward_into<'s>(
        &self,
        ctx: &ForwardCtx<'_>,
        x: &Matrix,
        scratch: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        self.forward_scratch(ctx, x, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_graph::{EdgeSet, Graph, GraphView};

    fn small_graph() -> Graph {
        let mut g = Graph::new();
        g.add_labeled_node(vec![1.0, 0.0, 0.0], 0);
        g.add_labeled_node(vec![0.0, 1.0, 0.0], 1);
        g.add_labeled_node(vec![0.0, 0.0, 1.0], 2);
        g.add_labeled_node(vec![1.0, 1.0, 0.0], 0);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(0, 3);
        g
    }

    #[test]
    fn shapes_and_determinism() {
        let g = small_graph();
        let view = GraphView::full(&g);
        let m = Gat::new(&[3, 5, 3], 4);
        let z = m.logits(&view);
        assert_eq!(z.shape(), (4, 3));
        assert_eq!(z, m.logits(&view));
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.num_classes(), 3);
        assert_eq!(m.feature_dim(), 3);
        assert!(z.is_finite());
    }

    #[test]
    fn attention_is_a_convex_combination() {
        // With a single identity layer and zero attention vectors, every
        // neighbor (plus self) gets equal weight, so the output of a node is
        // the mean of its closed neighborhood's transformed features.
        let layer = GatLayer::new(Matrix::identity(3), vec![0.0; 3], vec![0.0; 3]);
        let m = Gat {
            layers: vec![layer],
            activation: Activation::Identity,
        };
        let g = small_graph();
        let z = m.logits(&GraphView::full(&g));
        // node 0 closed neighborhood = {0, 1, 3}; mean of e0, e1, (1,1,0)
        assert!((z.get(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((z.get(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((z.get(0, 2) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn masking_edges_changes_attention_output() {
        let g = small_graph();
        let m = Gat::new(&[3, 4, 3], 9);
        let full = m.logits(&GraphView::full(&g));
        let removed: EdgeSet = [(0usize, 1usize)].into_iter().collect();
        let cut = m.logits(&GraphView::without(&g, &removed));
        assert_ne!(full, cut);
    }

    #[test]
    fn isolated_node_attends_to_itself() {
        let mut g = small_graph();
        let iso = g.add_labeled_node(vec![0.2, 0.2, 0.2], 1);
        let m = Gat::new(&[3, 4, 3], 1);
        let z = m.logits(&GraphView::full(&g));
        assert!(z.row(iso).iter().all(|v| v.is_finite()));
    }
}
