//! Epoch-keyed model-side caches.
//!
//! Long-lived serving state (the `WitnessEngine` in `rcw-core`) re-evaluates
//! the same model over the same graph across many queries. Model-side
//! intermediates that depend only on a slowly-changing input — the APPNP
//! local logits `H = f_theta(X)`, which depend on node features but not on
//! edges — are cached here, keyed by the relevant [`rcw_graph::Graph`] epoch
//! ([`Graph::feature_epoch`](rcw_graph::Graph::feature_epoch) for
//! feature-only state). A stale epoch simply recomputes; there is no
//! invalidation API to call at mutation time.

use std::sync::{Arc, Mutex};

/// A single-slot cache holding one value tagged with the epoch it was
/// computed at. Interior-mutable (`&self` API) so it can sit inside shared
/// engine state and be used from worker threads.
#[derive(Debug, Default)]
pub struct EpochCache<T> {
    slot: Mutex<Option<(u64, Arc<T>)>>,
}

impl<T> EpochCache<T> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        EpochCache {
            slot: Mutex::new(None),
        }
    }

    /// Returns the cached value if it was computed at `epoch`, otherwise
    /// computes it with `f`, stores it under `epoch`, and returns it. The
    /// compute closure runs under the cache lock, so it must not re-enter the
    /// same cache.
    pub fn get_or_insert_with(&self, epoch: u64, f: impl FnOnce() -> T) -> Arc<T> {
        let mut slot = self.slot.lock().expect("EpochCache lock poisoned");
        if let Some((e, v)) = slot.as_ref() {
            if *e == epoch {
                return Arc::clone(v);
            }
        }
        let v = Arc::new(f());
        *slot = Some((epoch, Arc::clone(&v)));
        v
    }

    /// Drops the cached value unconditionally.
    pub fn invalidate(&self) {
        *self.slot.lock().expect("EpochCache lock poisoned") = None;
    }

    /// The epoch of the cached value, if one is held.
    pub fn cached_epoch(&self) -> Option<u64> {
        self.slot
            .lock()
            .expect("EpochCache lock poisoned")
            .as_ref()
            .map(|(e, _)| *e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caches_per_epoch_and_recomputes_on_change() {
        let cache: EpochCache<usize> = EpochCache::new();
        let mut computes = 0;
        let mut get = |epoch| {
            *cache.get_or_insert_with(epoch, || {
                computes += 1;
                epoch as usize * 10
            })
        };
        assert_eq!(get(1), 10);
        assert_eq!(get(1), 10, "hit");
        assert_eq!(get(2), 20, "epoch change recomputes");
        assert_eq!(get(2), 20);
        assert_eq!(computes, 2);
        assert_eq!(cache.cached_epoch(), Some(2));
    }

    #[test]
    fn invalidate_empties_the_slot() {
        let cache: EpochCache<u8> = EpochCache::new();
        cache.get_or_insert_with(7, || 1);
        assert_eq!(cache.cached_epoch(), Some(7));
        cache.invalidate();
        assert_eq!(cache.cached_epoch(), None);
        let mut recomputed = false;
        cache.get_or_insert_with(7, || {
            recomputed = true;
            2
        });
        assert!(recomputed);
    }
}
