//! The model-agnostic inference interface.
//!
//! The paper treats the classifier as a *fixed, deterministic, polynomial-time
//! inference function* `M(v, G)` producing a label for each test node, plus a
//! logits matrix `Z`. [`GnnModel`] captures exactly that contract: every model
//! in this crate can be evaluated on any [`GraphView`] (the full graph `G`, a
//! witness `Gs`, the remainder `G \ Gs`, or a disturbed graph `G~`) and must
//! produce the same output for the same input.
//!
//! The trait's single required compute method is [`GnnModel::forward`], a
//! message-passing kernel over an explicit [`ForwardCtx`]. Everything else
//! derives from it: `logits` runs the kernel on the whole view, while the
//! single-node entry points `predict` / `margin` run it on the node's
//! [`Locality`] — the L-hop receptive field under the view — which is
//! bit-exact (same floats, same argmax) and orders of magnitude cheaper on
//! graphs larger than the receptive field.

use rcw_graph::{Csr, ForwardCtx, Graph, GraphView, Locality, NodeId};
use rcw_linalg::{vector, Matrix};

/// A fixed, deterministic GNN-based node classifier.
pub trait GnnModel: Send + Sync {
    /// Number of output classes `|L|`.
    fn num_classes(&self) -> usize;

    /// Number of message-passing layers `L`.
    fn num_layers(&self) -> usize;

    /// Input feature dimension `F` expected by the model.
    fn feature_dim(&self) -> usize;

    /// Number of message-passing rounds determining one node's receptive
    /// field radius. Defaults to [`GnnModel::num_layers`]; models whose
    /// propagation depth differs from their layer count (APPNP) override it.
    fn receptive_hops(&self) -> usize {
        self.num_layers().max(1)
    }

    /// The model's forward pass over an explicit compute graph. `x` holds one
    /// (already padded) feature row per `ctx` node; the result has one logits
    /// row per node. Kernels must honor `ctx.active_rows` so localized
    /// evaluation skips rows that cannot influence the center, and must keep
    /// per-row operations in CSR neighbor order so the localized path stays
    /// bit-exact against the full pass.
    fn forward(&self, ctx: &ForwardCtx<'_>, x: &Matrix) -> Matrix;

    /// Computes the logits matrix `Z` (`|V| x |L|`) of the model over the
    /// given graph view. This is the paper's "output" of `M`; it pays a
    /// full-graph pass and is the right entry point for training, whole-graph
    /// accuracy, and `predict_all` — single-node queries should go through
    /// [`GnnModel::predict`] / [`GnnModel::margin`] instead.
    fn logits(&self, view: &GraphView<'_>) -> Matrix {
        let csr = Csr::from_view(view);
        let degrees: Vec<f64> = (0..csr.num_nodes()).map(|u| csr.degree(u) as f64).collect();
        let ctx = ForwardCtx::full(&csr, &degrees);
        let x = crate::pad_features(&view.graph().feature_matrix(), self.feature_dim());
        self.forward(&ctx, &x)
    }

    /// The inference function `M(v, view)`: the label assigned to node `v`
    /// when the model is evaluated over `view`. Runs the localized path —
    /// the kernel over `v`'s receptive field only.
    ///
    /// Returns `None` only for invalid nodes; evaluating a valid node over an
    /// edgeless view is well defined (the node classifies from its own
    /// features), matching the paper's convention that a single node is a
    /// trivial factual witness.
    fn predict(&self, v: NodeId, view: &GraphView<'_>) -> Option<usize> {
        if v >= view.num_nodes() {
            return None;
        }
        let row = localized_logits_row(self, v, view);
        Some(vector::argmax(&row))
    }

    /// Predicts labels for every node in the view (one full-graph pass).
    fn predict_all(&self, view: &GraphView<'_>) -> Vec<usize> {
        let z = self.logits(view);
        (0..z.rows()).map(|r| vector::argmax(z.row(r))).collect()
    }

    /// Classification margin of node `v` towards label `l` over the runner-up
    /// class: `z[v][l] - max_{c != l} z[v][c]`. Positive means the model
    /// assigns `l` to `v`. Runs the localized path.
    fn margin(&self, v: NodeId, label: usize, view: &GraphView<'_>) -> f64 {
        let row = localized_logits_row(self, v, view);
        margin_of_row(&row, label)
    }

    /// Batched margins of one node across many candidate views. The default
    /// evaluates each view's receptive field independently; models with a
    /// shared-state trick may override. Callers whose views differ from one
    /// base view by a single edge removal each should prefer
    /// [`GnnModel::margin_many_removed`], which shares one receptive-field
    /// ball across the whole batch.
    fn margin_many(&self, v: NodeId, label: usize, views: &[GraphView<'_>]) -> Vec<f64> {
        views
            .iter()
            .map(|view| self.margin(v, label, view))
            .collect()
    }

    /// Batched margins of `v` toward `label` across single-edge-removal
    /// variants of one `base` view — the generator's candidate-scoring loop,
    /// where trial views differ from the base only by one removed edge each.
    ///
    /// Instead of one BFS ball per variant, the base ball is built once and
    /// every variant is derived from it ([`Locality::minus_edge`]): same node
    /// set, features, and row schedule; only the removed arcs and endpoint
    /// degrees change. Removals can only shrink the receptive field, so the
    /// shared ball stays a superset of each variant's and the result is
    /// bit-exact against `margin` on an explicitly built variant view.
    /// Removals that do not touch the ball cannot move the center's logits
    /// and collapse to one shared base evaluation.
    ///
    /// Every removal must be an edge visible in `base`.
    fn margin_many_removed(
        &self,
        v: NodeId,
        label: usize,
        base: &GraphView<'_>,
        removals: &[(NodeId, NodeId)],
    ) -> Vec<f64> {
        let local = Locality::build(base, v, self.receptive_hops());
        let x = local_features(base.graph(), local.nodes(), self.feature_dim());
        let mut base_row: Option<Vec<f64>> = None;
        removals
            .iter()
            .map(|&(a, b)| {
                if !local.contains(a) && !local.contains(b) {
                    let row = base_row.get_or_insert_with(|| {
                        let z = self.forward(&local.forward_ctx(), &x);
                        z.row(local.center_index()).to_vec()
                    });
                    margin_of_row(row, label)
                } else {
                    let variant = local.minus_edge(a, b);
                    let z = self.forward(&variant.forward_ctx(), &x);
                    margin_of_row(z.row(variant.center_index()), label)
                }
            })
            .collect()
    }
}

/// The localized inference core: extracts `v`'s receptive field under `view`
/// and runs the model's kernel on it, returning `v`'s logits row. Bit-exact
/// against `model.logits(view).row(v)`.
pub fn localized_logits_row<M: GnnModel + ?Sized>(
    model: &M,
    v: NodeId,
    view: &GraphView<'_>,
) -> Vec<f64> {
    let local = Locality::build(view, v, model.receptive_hops());
    let x = local_features(view.graph(), local.nodes(), model.feature_dim());
    let z = model.forward(&local.forward_ctx(), &x);
    z.row(local.center_index()).to_vec()
}

/// Margin of a logits row towards `label` over the runner-up class.
pub fn margin_of_row(row: &[f64], label: usize) -> f64 {
    let mut best_other = f64::NEG_INFINITY;
    for (c, &val) in row.iter().enumerate() {
        if c != label {
            best_other = best_other.max(val);
        }
    }
    row[label] - best_other
}

/// Feature rows of a node subset, padded/truncated to `dim` columns —
/// identical values to the corresponding rows of
/// `pad_features(graph.feature_matrix(), dim)` without materializing `|V|`
/// rows.
pub fn local_features(graph: &Graph, nodes: &[NodeId], dim: usize) -> Matrix {
    let mut x = Matrix::zeros(nodes.len(), dim);
    for (i, &v) in nodes.iter().enumerate() {
        for (j, &val) in graph.features(v).iter().take(dim).enumerate() {
            x.set(i, j, val);
        }
    }
    x
}

/// Row-scheduled matrix product `x * w`: computes only the scheduled rows
/// (`None` = all rows, delegating to [`Matrix::matmul`]). Computed rows are
/// bit-identical to the full product's; skipped rows are zero.
pub fn matmul_rows(x: &Matrix, w: &Matrix, rows: Option<&[usize]>) -> Matrix {
    let Some(rows) = rows else {
        return x.matmul(w);
    };
    assert_eq!(
        x.cols(),
        w.rows(),
        "matmul_rows: {}x{} * {}x{} dimension mismatch",
        x.rows(),
        x.cols(),
        w.rows(),
        w.cols()
    );
    let mut out = Matrix::zeros(x.rows(), w.cols());
    // same i-k-j loop body as Matrix::matmul, restricted to the schedule
    for &i in rows {
        for k in 0..x.cols() {
            let a = x.get(i, k);
            if a == 0.0 {
                continue;
            }
            let orow = w.row(k);
            let out_row = out.row_mut(i);
            for (j, &b) in orow.iter().enumerate() {
                out_row[j] += a * b;
            }
        }
    }
    out
}

/// Accuracy of predictions against ground-truth labels on a node subset.
pub fn accuracy<M: GnnModel + ?Sized>(model: &M, view: &GraphView<'_>, nodes: &[NodeId]) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    let preds = model.predict_all(view);
    let graph = view.graph();
    let correct = nodes
        .iter()
        .filter(|&&v| graph.label(v) == Some(preds[v]))
        .count();
    correct as f64 / nodes.len() as f64
}

/// One-hot encodes labels into an `n x num_classes` matrix; unlabeled nodes
/// get an all-zero row.
pub fn one_hot_labels(labels: &[Option<usize>], num_classes: usize) -> Matrix {
    let mut m = Matrix::zeros(labels.len(), num_classes);
    for (i, l) in labels.iter().enumerate() {
        if let Some(c) = l {
            if *c < num_classes {
                m.set(i, *c, 1.0);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_graph::Graph;

    /// A degenerate "model" that classifies a node by its visible degree
    /// parity; enough to exercise the trait's default methods.
    struct DegreeParityModel;

    impl GnnModel for DegreeParityModel {
        fn num_classes(&self) -> usize {
            2
        }
        fn num_layers(&self) -> usize {
            1
        }
        fn feature_dim(&self) -> usize {
            0
        }
        fn forward(&self, ctx: &ForwardCtx<'_>, _x: &Matrix) -> Matrix {
            let n = ctx.num_nodes();
            let mut z = Matrix::zeros(n, 2);
            for v in 0..n {
                let parity = (ctx.degrees()[v] as usize) % 2;
                z.set(v, parity, 1.0);
            }
            z
        }
    }

    #[test]
    fn predict_uses_logits_argmax() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let view = GraphView::full(&g);
        let m = DegreeParityModel;
        assert_eq!(m.predict(0, &view), Some(0)); // degree 2 -> even
        assert_eq!(m.predict(1, &view), Some(1)); // degree 1 -> odd
        assert_eq!(m.predict(99, &view), None);
        assert_eq!(m.predict_all(&view), vec![0, 1, 1]);
    }

    #[test]
    fn margin_sign_tracks_prediction() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1);
        let view = GraphView::full(&g);
        let m = DegreeParityModel;
        assert!(m.margin(0, 1, &view) > 0.0);
        assert!(m.margin(0, 0, &view) < 0.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.set_label(0, 0);
        g.set_label(1, 1);
        g.set_label(2, 0); // wrong per parity model
        let view = GraphView::full(&g);
        let m = DegreeParityModel;
        let acc = accuracy(&m, &view, &[0, 1, 2]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&m, &view, &[]), 0.0);
    }

    #[test]
    fn one_hot_encoding() {
        let oh = one_hot_labels(&[Some(1), None, Some(0)], 2);
        assert_eq!(oh.row(0), &[0.0, 1.0]);
        assert_eq!(oh.row(1), &[0.0, 0.0]);
        assert_eq!(oh.row(2), &[1.0, 0.0]);
        // out-of-range labels are ignored rather than panicking
        let oh2 = one_hot_labels(&[Some(5)], 2);
        assert_eq!(oh2.row(0), &[0.0, 0.0]);
    }
}
