//! The model-agnostic inference interface.
//!
//! The paper treats the classifier as a *fixed, deterministic, polynomial-time
//! inference function* `M(v, G)` producing a label for each test node, plus a
//! logits matrix `Z`. [`GnnModel`] captures exactly that contract: every model
//! in this crate can be evaluated on any [`GraphView`] (the full graph `G`, a
//! witness `Gs`, the remainder `G \ Gs`, or a disturbed graph `G~`) and must
//! produce the same output for the same input.
//!
//! The trait's single required compute method is [`GnnModel::forward`], a
//! message-passing kernel over an explicit [`ForwardCtx`]. Everything else
//! derives from it: `logits` runs the kernel on the whole view, while the
//! single-node entry points `predict` / `margin` run it on the node's
//! [`Locality`] — the L-hop receptive field under the view — which is
//! bit-exact (same floats, same argmax) and orders of magnitude cheaper on
//! graphs larger than the receptive field.

use rcw_graph::{
    BallScratch, BallVariant, Csr, CsrNorms, ForwardCtx, Graph, GraphView, Locality, NodeId,
};
use rcw_linalg::{vector, Matrix, PackedWeights};

/// Reusable per-layer working buffers for the zero-allocation forward paths.
///
/// Models thread these through `forward_into`: activations ping-pong between
/// `a`/`b`/`c`/`d`, the GAT attention pass borrows `src`/`dst`/`nbrs`/`att`,
/// and the trait-default `forward_into` fallback copies into `out`. Buffers
/// only ever grow, so a scratch reused across calls stops allocating once it
/// has seen the largest ball.
#[derive(Debug, Default)]
pub struct ForwardScratch {
    pub(crate) a: Vec<f64>,
    pub(crate) b: Vec<f64>,
    pub(crate) c: Vec<f64>,
    pub(crate) d: Vec<f64>,
    pub(crate) src: Vec<f64>,
    pub(crate) dst: Vec<f64>,
    pub(crate) nbrs: Vec<usize>,
    pub(crate) att: Vec<f64>,
    out: Vec<f64>,
}

/// Clears `buf` and resizes it to `len` zeros, reusing its allocation.
pub(crate) fn sized(buf: &mut Vec<f64>, len: usize) -> &mut [f64] {
    buf.clear();
    buf.resize(len, 0.0);
    buf
}

/// Tile-packed copies of a weight stack; models keep these in sync with
/// their weights so every layer multiply streams the right operand at unit
/// stride in the blocked kernel's lane order.
pub(crate) fn pack_all(weights: &[Matrix]) -> Vec<PackedWeights> {
    weights.iter().map(PackedWeights::pack).collect()
}

/// All working memory a localized inference query needs: the receptive-field
/// ball and its BFS scratch, the single-removal variant scratch, the local
/// feature matrix, and the per-layer forward buffers. One `KernelScratch`
/// per worker makes `predict_with` / `margin_many_removed_with` allocation-free
/// in steady state; results are bit-identical to the allocating entry points.
#[derive(Debug)]
pub struct KernelScratch {
    pub(crate) ball: Locality,
    pub(crate) build: BallScratch,
    pub(crate) variant: BallVariant,
    pub(crate) features: Matrix,
    pub(crate) fwd: ForwardScratch,
}

impl Default for KernelScratch {
    fn default() -> Self {
        KernelScratch {
            ball: Locality::default(),
            build: BallScratch::default(),
            variant: BallVariant::default(),
            features: Matrix::zeros(0, 0),
            fwd: ForwardScratch::default(),
        }
    }
}

/// A fixed, deterministic GNN-based node classifier.
pub trait GnnModel: Send + Sync {
    /// Number of output classes `|L|`.
    fn num_classes(&self) -> usize;

    /// Number of message-passing layers `L`.
    fn num_layers(&self) -> usize;

    /// Input feature dimension `F` expected by the model.
    fn feature_dim(&self) -> usize;

    /// Number of message-passing rounds determining one node's receptive
    /// field radius. Defaults to [`GnnModel::num_layers`]; models whose
    /// propagation depth differs from their layer count (APPNP) override it.
    fn receptive_hops(&self) -> usize {
        self.num_layers().max(1)
    }

    /// The model's forward pass over an explicit compute graph. `x` holds one
    /// (already padded) feature row per `ctx` node; the result has one logits
    /// row per node. Kernels must honor `ctx.active_rows` so localized
    /// evaluation skips rows that cannot influence the center, and must keep
    /// per-row operations in CSR neighbor order so the localized path stays
    /// bit-exact against the full pass.
    fn forward(&self, ctx: &ForwardCtx<'_>, x: &Matrix) -> Matrix;

    /// [`GnnModel::forward`] into reusable scratch buffers, returning the
    /// logits as a row-major `ctx.num_nodes() x num_classes` slice borrowed
    /// from the scratch. The default copies the allocating `forward`'s output;
    /// the bundled models override it with a buffer-ping-pong implementation
    /// that performs no heap allocation once the scratch has warmed up.
    /// Implementations must be bit-identical to `forward`.
    fn forward_into<'s>(
        &self,
        ctx: &ForwardCtx<'_>,
        x: &Matrix,
        scratch: &'s mut ForwardScratch,
    ) -> &'s [f64] {
        let z = self.forward(ctx, x);
        scratch.out.clear();
        scratch.out.extend_from_slice(z.data());
        &scratch.out
    }

    /// Computes the logits matrix `Z` (`|V| x |L|`) of the model over the
    /// given graph view. This is the paper's "output" of `M`; it pays a
    /// full-graph pass and is the right entry point for training, whole-graph
    /// accuracy, and `predict_all` — single-node queries should go through
    /// [`GnnModel::predict`] / [`GnnModel::margin`] instead.
    ///
    /// An unmasked view reuses the host graph's cached CSR and normalization
    /// vectors (both invalidated by the graph epoch); masked views snapshot
    /// their own.
    fn logits(&self, view: &GraphView<'_>) -> Matrix {
        let x = crate::pad_features(&view.graph().feature_matrix(), self.feature_dim());
        if view.is_unmasked() {
            let g = view.graph();
            let ctx = ForwardCtx::full_with_norms(g.csr(), g.norms());
            return self.forward(&ctx, &x);
        }
        let csr = Csr::from_view(view);
        let norms = CsrNorms::from_csr(&csr);
        let ctx = ForwardCtx::full_with_norms(&csr, &norms);
        self.forward(&ctx, &x)
    }

    /// The inference function `M(v, view)`: the label assigned to node `v`
    /// when the model is evaluated over `view`. Runs the localized path —
    /// the kernel over `v`'s receptive field only.
    ///
    /// Returns `None` only for invalid nodes; evaluating a valid node over an
    /// edgeless view is well defined (the node classifies from its own
    /// features), matching the paper's convention that a single node is a
    /// trivial factual witness.
    fn predict(&self, v: NodeId, view: &GraphView<'_>) -> Option<usize> {
        self.predict_with(v, view, &mut KernelScratch::default())
    }

    /// [`GnnModel::predict`] over caller-provided scratch buffers — the
    /// zero-allocation path for loops that classify many nodes or views.
    fn predict_with(
        &self,
        v: NodeId,
        view: &GraphView<'_>,
        scratch: &mut KernelScratch,
    ) -> Option<usize> {
        if v >= view.num_nodes() {
            return None;
        }
        let row = localized_logits_into(self, v, view, scratch);
        Some(vector::argmax(row))
    }

    /// Batched [`GnnModel::predict`] over one shared union receptive-field
    /// ball: extracts the union `receptive_hops` ball of all `centers` under
    /// `view` ([`Locality::rebuild_multi`]), runs *one* scheduled forward
    /// pass, and reads each center's logits row. Returns `None` if any center
    /// is invalid.
    ///
    /// Bit-exact against per-center [`GnnModel::predict_with`]: every center
    /// sits at distance 0 in the union ball, so the schedule keeps each
    /// center's receptive field active for the full round count, the
    /// ascending-id remap preserves reduction order, and the recorded degrees
    /// are the true view degrees — each center's row equals its full-pass row.
    fn predict_many_with(
        &self,
        centers: &[NodeId],
        view: &GraphView<'_>,
        scratch: &mut KernelScratch,
    ) -> Option<Vec<usize>> {
        if centers.is_empty() {
            return Some(Vec::new());
        }
        if centers.iter().any(|&v| v >= view.num_nodes()) {
            return None;
        }
        scratch
            .ball
            .rebuild_multi(view, centers, self.receptive_hops(), &mut scratch.build);
        local_features_into(
            view.graph(),
            scratch.ball.nodes(),
            self.feature_dim(),
            &mut scratch.features,
        );
        let KernelScratch {
            ball,
            features,
            fwd,
            ..
        } = scratch;
        let ctx = ball.forward_ctx();
        let z = self.forward_into(&ctx, features, fwd);
        let k = self.num_classes();
        Some(
            centers
                .iter()
                .map(|&v| {
                    let i = ball.local_index(v).expect("center in its own ball");
                    vector::argmax(&z[i * k..(i + 1) * k])
                })
                .collect(),
        )
    }

    /// Predicts labels for every node in the view (one full-graph pass).
    fn predict_all(&self, view: &GraphView<'_>) -> Vec<usize> {
        let z = self.logits(view);
        (0..z.rows()).map(|r| vector::argmax(z.row(r))).collect()
    }

    /// Classification margin of node `v` towards label `l` over the runner-up
    /// class: `z[v][l] - max_{c != l} z[v][c]`. Positive means the model
    /// assigns `l` to `v`. Runs the localized path.
    fn margin(&self, v: NodeId, label: usize, view: &GraphView<'_>) -> f64 {
        self.margin_with(v, label, view, &mut KernelScratch::default())
    }

    /// [`GnnModel::margin`] over caller-provided scratch buffers.
    fn margin_with(
        &self,
        v: NodeId,
        label: usize,
        view: &GraphView<'_>,
        scratch: &mut KernelScratch,
    ) -> f64 {
        let row = localized_logits_into(self, v, view, scratch);
        margin_of_row(row, label)
    }

    /// Batched margins of one node across many candidate views. The default
    /// evaluates each view's receptive field independently; models with a
    /// shared-state trick may override. Callers whose views differ from one
    /// base view by a single edge removal each should prefer
    /// [`GnnModel::margin_many_removed`], which shares one receptive-field
    /// ball across the whole batch.
    fn margin_many(&self, v: NodeId, label: usize, views: &[GraphView<'_>]) -> Vec<f64> {
        views
            .iter()
            .map(|view| self.margin(v, label, view))
            .collect()
    }

    /// Batched margins of `v` toward `label` across single-edge-removal
    /// variants of one `base` view — the generator's candidate-scoring loop,
    /// where trial views differ from the base only by one removed edge each.
    ///
    /// Instead of one BFS ball per variant, the base ball is built once and
    /// every variant is derived from it ([`Locality::minus_edge`]): same node
    /// set, features, and row schedule; only the removed arcs and endpoint
    /// degrees change. Removals can only shrink the receptive field, so the
    /// shared ball stays a superset of each variant's and the result is
    /// bit-exact against `margin` on an explicitly built variant view.
    /// Removals that do not touch the ball cannot move the center's logits
    /// and collapse to one shared base evaluation.
    ///
    /// Every removal must be an edge visible in `base`.
    fn margin_many_removed(
        &self,
        v: NodeId,
        label: usize,
        base: &GraphView<'_>,
        removals: &[(NodeId, NodeId)],
    ) -> Vec<f64> {
        self.margin_many_removed_with(v, label, base, removals, &mut KernelScratch::default())
    }

    /// [`GnnModel::margin_many_removed`] over caller-provided scratch
    /// buffers: the ball is rebuilt into the scratch, every in-ball candidate
    /// reuses one [`BallVariant`] and the forward buffers, and out-of-ball
    /// candidates share one lazily computed base margin — zero heap
    /// allocations per candidate once the scratch has warmed up.
    fn margin_many_removed_with(
        &self,
        v: NodeId,
        label: usize,
        base: &GraphView<'_>,
        removals: &[(NodeId, NodeId)],
        scratch: &mut KernelScratch,
    ) -> Vec<f64> {
        scratch
            .ball
            .rebuild(base, v, self.receptive_hops(), &mut scratch.build);
        local_features_into(
            base.graph(),
            scratch.ball.nodes(),
            self.feature_dim(),
            &mut scratch.features,
        );
        let KernelScratch {
            ball,
            variant,
            features,
            fwd,
            ..
        } = scratch;
        let k = self.num_classes();
        let center = ball.center_index();
        let mut base_margin: Option<f64> = None;
        removals
            .iter()
            .map(|&(a, b)| {
                if !ball.contains(a) && !ball.contains(b) {
                    // a removal outside the ball cannot move the center's
                    // logits; all such candidates share one base evaluation
                    if let Some(m) = base_margin {
                        m
                    } else {
                        let z = self.forward_into(&ball.forward_ctx(), features, fwd);
                        let m = margin_of_row(&z[center * k..(center + 1) * k], label);
                        base_margin = Some(m);
                        m
                    }
                } else {
                    let ctx = ball.minus_edge_ctx(a, b, variant);
                    let z = self.forward_into(&ctx, features, fwd);
                    margin_of_row(&z[center * k..(center + 1) * k], label)
                }
            })
            .collect()
    }
}

/// The localized inference core: extracts `v`'s receptive field under `view`
/// and runs the model's kernel on it, returning `v`'s logits row. Bit-exact
/// against `model.logits(view).row(v)`.
pub fn localized_logits_row<M: GnnModel + ?Sized>(
    model: &M,
    v: NodeId,
    view: &GraphView<'_>,
) -> Vec<f64> {
    localized_logits_into(model, v, view, &mut KernelScratch::default()).to_vec()
}

/// [`localized_logits_row`] over caller-provided scratch buffers: ball
/// extraction, local features, and the forward pass all reuse the scratch,
/// and the returned row borrows it. The zero-allocation core behind
/// `predict_with` / `margin_with`.
pub fn localized_logits_into<'s, M: GnnModel + ?Sized>(
    model: &M,
    v: NodeId,
    view: &GraphView<'_>,
    scratch: &'s mut KernelScratch,
) -> &'s [f64] {
    scratch
        .ball
        .rebuild(view, v, model.receptive_hops(), &mut scratch.build);
    local_features_into(
        view.graph(),
        scratch.ball.nodes(),
        model.feature_dim(),
        &mut scratch.features,
    );
    let ctx = scratch.ball.forward_ctx();
    let z = model.forward_into(&ctx, &scratch.features, &mut scratch.fwd);
    let k = model.num_classes();
    let center = scratch.ball.center_index();
    &z[center * k..(center + 1) * k]
}

/// Margin of a logits row towards `label` over the runner-up class.
pub fn margin_of_row(row: &[f64], label: usize) -> f64 {
    let mut best_other = f64::NEG_INFINITY;
    for (c, &val) in row.iter().enumerate() {
        if c != label {
            best_other = best_other.max(val);
        }
    }
    row[label] - best_other
}

/// Feature rows of a node subset, padded/truncated to `dim` columns —
/// identical values to the corresponding rows of
/// `pad_features(graph.feature_matrix(), dim)` without materializing `|V|`
/// rows.
pub fn local_features(graph: &Graph, nodes: &[NodeId], dim: usize) -> Matrix {
    let mut x = Matrix::zeros(0, 0);
    local_features_into(graph, nodes, dim, &mut x);
    x
}

/// [`local_features`] into a caller-provided matrix, reusing its allocation.
pub fn local_features_into(graph: &Graph, nodes: &[NodeId], dim: usize, out: &mut Matrix) {
    out.reset(nodes.len(), dim);
    for (i, &v) in nodes.iter().enumerate() {
        let f = graph.features(v);
        let take = f.len().min(dim);
        out.row_mut(i)[..take].copy_from_slice(&f[..take]);
    }
}

/// Row-scheduled matrix product `x * w`: computes only the scheduled rows
/// (`None` = all rows, delegating to [`Matrix::matmul`]). Computed rows are
/// bit-identical to the full product's; skipped rows are zero.
pub fn matmul_rows(x: &Matrix, w: &Matrix, rows: Option<&[usize]>) -> Matrix {
    let Some(rows) = rows else {
        return x.matmul(w);
    };
    assert_eq!(
        x.cols(),
        w.rows(),
        "matmul_rows: {}x{} * {}x{} dimension mismatch",
        x.rows(),
        x.cols(),
        w.rows(),
        w.cols()
    );
    let mut out = Matrix::zeros(x.rows(), w.cols());
    // same i-k-j loop body as Matrix::matmul, restricted to the schedule
    for &i in rows {
        for k in 0..x.cols() {
            let a = x.get(i, k);
            if a == 0.0 {
                continue;
            }
            let orow = w.row(k);
            let out_row = out.row_mut(i);
            for (j, &b) in orow.iter().enumerate() {
                out_row[j] += a * b;
            }
        }
    }
    out
}

/// Accuracy of predictions against ground-truth labels on a node subset.
pub fn accuracy<M: GnnModel + ?Sized>(model: &M, view: &GraphView<'_>, nodes: &[NodeId]) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    let preds = model.predict_all(view);
    let graph = view.graph();
    let correct = nodes
        .iter()
        .filter(|&&v| graph.label(v) == Some(preds[v]))
        .count();
    correct as f64 / nodes.len() as f64
}

/// One-hot encodes labels into an `n x num_classes` matrix; unlabeled nodes
/// get an all-zero row.
pub fn one_hot_labels(labels: &[Option<usize>], num_classes: usize) -> Matrix {
    let mut m = Matrix::zeros(labels.len(), num_classes);
    for (i, l) in labels.iter().enumerate() {
        if let Some(c) = l {
            if *c < num_classes {
                m.set(i, *c, 1.0);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_graph::Graph;

    /// A degenerate "model" that classifies a node by its visible degree
    /// parity; enough to exercise the trait's default methods.
    struct DegreeParityModel;

    impl GnnModel for DegreeParityModel {
        fn num_classes(&self) -> usize {
            2
        }
        fn num_layers(&self) -> usize {
            1
        }
        fn feature_dim(&self) -> usize {
            0
        }
        fn forward(&self, ctx: &ForwardCtx<'_>, _x: &Matrix) -> Matrix {
            let n = ctx.num_nodes();
            let mut z = Matrix::zeros(n, 2);
            for v in 0..n {
                let parity = (ctx.degrees()[v] as usize) % 2;
                z.set(v, parity, 1.0);
            }
            z
        }
    }

    #[test]
    fn predict_uses_logits_argmax() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let view = GraphView::full(&g);
        let m = DegreeParityModel;
        assert_eq!(m.predict(0, &view), Some(0)); // degree 2 -> even
        assert_eq!(m.predict(1, &view), Some(1)); // degree 1 -> odd
        assert_eq!(m.predict(99, &view), None);
        assert_eq!(m.predict_all(&view), vec![0, 1, 1]);
    }

    #[test]
    fn margin_sign_tracks_prediction() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1);
        let view = GraphView::full(&g);
        let m = DegreeParityModel;
        assert!(m.margin(0, 1, &view) > 0.0);
        assert!(m.margin(0, 0, &view) < 0.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.set_label(0, 0);
        g.set_label(1, 1);
        g.set_label(2, 0); // wrong per parity model
        let view = GraphView::full(&g);
        let m = DegreeParityModel;
        let acc = accuracy(&m, &view, &[0, 1, 2]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&m, &view, &[]), 0.0);
    }

    #[test]
    fn one_hot_encoding() {
        let oh = one_hot_labels(&[Some(1), None, Some(0)], 2);
        assert_eq!(oh.row(0), &[0.0, 1.0]);
        assert_eq!(oh.row(1), &[0.0, 0.0]);
        assert_eq!(oh.row(2), &[1.0, 0.0]);
        // out-of-range labels are ignored rather than panicking
        let oh2 = one_hot_labels(&[Some(5)], 2);
        assert_eq!(oh2.row(0), &[0.0, 0.0]);
    }
}
