//! The model-agnostic inference interface.
//!
//! The paper treats the classifier as a *fixed, deterministic, polynomial-time
//! inference function* `M(v, G)` producing a label for each test node, plus a
//! logits matrix `Z`. [`GnnModel`] captures exactly that contract: every model
//! in this crate can be evaluated on any [`GraphView`] (the full graph `G`, a
//! witness `Gs`, the remainder `G \ Gs`, or a disturbed graph `G~`) and must
//! produce the same output for the same input.

use rcw_graph::{GraphView, NodeId};
use rcw_linalg::{vector, Matrix};

/// A fixed, deterministic GNN-based node classifier.
pub trait GnnModel: Send + Sync {
    /// Number of output classes `|L|`.
    fn num_classes(&self) -> usize;

    /// Number of message-passing layers `L`.
    fn num_layers(&self) -> usize;

    /// Input feature dimension `F` expected by the model.
    fn feature_dim(&self) -> usize;

    /// Computes the logits matrix `Z` (`|V| x |L|`) of the model over the
    /// given graph view. This is the paper's "output" of `M`.
    fn logits(&self, view: &GraphView<'_>) -> Matrix;

    /// The inference function `M(v, view)`: the label assigned to node `v`
    /// when the model is evaluated over `view`.
    ///
    /// Returns `None` only for invalid nodes; evaluating a valid node over an
    /// edgeless view is well defined (the node classifies from its own
    /// features), matching the paper's convention that a single node is a
    /// trivial factual witness.
    fn predict(&self, v: NodeId, view: &GraphView<'_>) -> Option<usize> {
        if v >= view.num_nodes() {
            return None;
        }
        let z = self.logits(view);
        Some(vector::argmax(z.row(v)))
    }

    /// Predicts labels for every node in the view.
    fn predict_all(&self, view: &GraphView<'_>) -> Vec<usize> {
        let z = self.logits(view);
        (0..z.rows()).map(|r| vector::argmax(z.row(r))).collect()
    }

    /// Classification margin of node `v` towards label `l` over the runner-up
    /// class: `z[v][l] - max_{c != l} z[v][c]`. Positive means the model
    /// assigns `l` to `v`.
    fn margin(&self, v: NodeId, label: usize, view: &GraphView<'_>) -> f64 {
        let z = self.logits(view);
        let row = z.row(v);
        let mut best_other = f64::NEG_INFINITY;
        for (c, &val) in row.iter().enumerate() {
            if c != label {
                best_other = best_other.max(val);
            }
        }
        row[label] - best_other
    }
}

/// Accuracy of predictions against ground-truth labels on a node subset.
pub fn accuracy<M: GnnModel + ?Sized>(model: &M, view: &GraphView<'_>, nodes: &[NodeId]) -> f64 {
    if nodes.is_empty() {
        return 0.0;
    }
    let preds = model.predict_all(view);
    let graph = view.graph();
    let correct = nodes
        .iter()
        .filter(|&&v| graph.label(v) == Some(preds[v]))
        .count();
    correct as f64 / nodes.len() as f64
}

/// One-hot encodes labels into an `n x num_classes` matrix; unlabeled nodes
/// get an all-zero row.
pub fn one_hot_labels(labels: &[Option<usize>], num_classes: usize) -> Matrix {
    let mut m = Matrix::zeros(labels.len(), num_classes);
    for (i, l) in labels.iter().enumerate() {
        if let Some(c) = l {
            if *c < num_classes {
                m.set(i, *c, 1.0);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_graph::Graph;

    /// A degenerate "model" that classifies a node by its visible degree
    /// parity; enough to exercise the trait's default methods.
    struct DegreeParityModel;

    impl GnnModel for DegreeParityModel {
        fn num_classes(&self) -> usize {
            2
        }
        fn num_layers(&self) -> usize {
            1
        }
        fn feature_dim(&self) -> usize {
            0
        }
        fn logits(&self, view: &GraphView<'_>) -> Matrix {
            let n = view.num_nodes();
            let mut z = Matrix::zeros(n, 2);
            for v in 0..n {
                let parity = view.degree(v) % 2;
                z.set(v, parity, 1.0);
            }
            z
        }
    }

    #[test]
    fn predict_uses_logits_argmax() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let view = GraphView::full(&g);
        let m = DegreeParityModel;
        assert_eq!(m.predict(0, &view), Some(0)); // degree 2 -> even
        assert_eq!(m.predict(1, &view), Some(1)); // degree 1 -> odd
        assert_eq!(m.predict(99, &view), None);
        assert_eq!(m.predict_all(&view), vec![0, 1, 1]);
    }

    #[test]
    fn margin_sign_tracks_prediction() {
        let mut g = Graph::with_nodes(2);
        g.add_edge(0, 1);
        let view = GraphView::full(&g);
        let m = DegreeParityModel;
        assert!(m.margin(0, 1, &view) > 0.0);
        assert!(m.margin(0, 0, &view) < 0.0);
    }

    #[test]
    fn accuracy_counts_matches() {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.set_label(0, 0);
        g.set_label(1, 1);
        g.set_label(2, 0); // wrong per parity model
        let view = GraphView::full(&g);
        let m = DegreeParityModel;
        let acc = accuracy(&m, &view, &[0, 1, 2]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(accuracy(&m, &view, &[]), 0.0);
    }

    #[test]
    fn one_hot_encoding() {
        let oh = one_hot_labels(&[Some(1), None, Some(0)], 2);
        assert_eq!(oh.row(0), &[0.0, 1.0]);
        assert_eq!(oh.row(1), &[0.0, 0.0]);
        assert_eq!(oh.row(2), &[1.0, 0.0]);
        // out-of-range labels are ignored rather than panicking
        let oh2 = one_hot_labels(&[Some(5)], 2);
        assert_eq!(oh2.row(0), &[0.0, 0.0]);
    }
}
