//! # rcw-shard
//!
//! Sharded witness-engine tier: partition-routed serving for graphs that do
//! not fit one engine's cache budget.
//!
//! A [`ShardPlan`] cuts a host graph with the existing edge-cut
//! [`Partition`][rcw_graph::Partition] into per-shard subgraphs with L-hop
//! halo rings ([`HaloShard`]). A [`ShardedEngine`] runs one
//! [`WitnessEngine`] per shard plus one shared full-graph *escape engine*,
//! and routes each query by node ownership:
//!
//! * every test node of a query must be **owned** by the same shard,
//! * the query's safety ball — candidate hops plus the model's verification
//!   horizon plus one — must stay inside the shard's **covered** set
//!   (owned + halo), and
//! * the worst-case candidate-pair pool must stay under
//!   `max_candidate_pairs`, because beyond that bound the verifier's PPR
//!   pruning reads global PageRank rows a shard cannot reproduce.
//!
//! Queries passing all three checks are answered by the shard **bit-exactly**
//! as the full-graph engine would answer them: shard graphs keep the host's
//! node-id space and contain exactly the edges induced on the covered set, so
//! every CSR row, neighborhood, feature and RNG draw agrees. Queries failing
//! any check fall back to the escape engine and are counted as
//! `halo_escapes`; the routing ledger maintains
//! `queries == routed + halo_escapes` exactly.
//!
//! [`ShardedEngine::disturb`] fans each disturbance out to the escape engine
//! (authoritative full graph) and to every shard covering **both** endpoints
//! of a flipped pair — exactly the shards whose induced subgraph changes;
//! each runs its own footprint-scoped repair sweep.

use rcw_core::{
    BudgetExceeded, DisturbReport, EngineFaultHook, EngineSnapshot, EntryRepair, GenerationResult,
    RcwConfig, SessionBudget, VerifiableModel, WitnessEngine,
};
use rcw_gnn::GnnModel;
use rcw_graph::traversal::k_hop_neighborhood_multi;
use rcw_graph::{
    edge_cut_partition, extract_halo_shards, Disturbance, DisturbanceStrategy, Graph, HaloShard,
    NodeId, Partition,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// A host graph cut into halo shards: the partition, the materialized
/// per-shard subgraphs, and the halo depth they were built with.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// The edge-cut partition (ownership map + fragments).
    pub partition: Partition,
    /// One materialized halo shard per fragment.
    pub shards: Vec<HaloShard>,
    /// Replication depth of the halo rings (hops).
    pub halo_hops: usize,
}

impl ShardPlan {
    /// Cuts `host` into `num_shards` fragments with `halo_hops`-hop halo
    /// rings and materializes each fragment's subgraph.
    pub fn build(host: &Graph, num_shards: usize, halo_hops: usize) -> ShardPlan {
        let partition = edge_cut_partition(host, num_shards.max(1), halo_hops);
        let shards = extract_halo_shards(host, &partition);
        ShardPlan {
            partition,
            shards,
            halo_hops,
        }
    }

    /// Number of shards in the plan.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `v`, or `None` for out-of-range ids.
    pub fn owner_of(&self, v: NodeId) -> Option<usize> {
        self.partition.owner.get(v).copied()
    }
}

/// The routing rule of a [`ShardedEngine`], derived from the model and
/// config at construction: how far a query's reads can travel, and how big
/// its candidate pool can grow, before only the full graph can answer it.
#[derive(Clone, Debug)]
pub struct RoutePolicy {
    /// Safety ball radius: `candidate_hops + verification_hops + 1`. If the
    /// ball of this radius around the test nodes stays inside a shard's
    /// covered set, every read of the session — candidate collection, flip
    /// application, disturbed forward passes — agrees with the full graph.
    pub ball_radius: usize,
    /// Candidate-collection hops (`cfg.candidate_hops`).
    pub candidate_hops: usize,
    /// Pool bound beyond which the verifier's global PPR pruning kicks in
    /// (`cfg.max_candidate_pairs`).
    pub max_candidate_pairs: usize,
    /// Per-test-node insertion-candidate cap contributing to the pool bound;
    /// zero under [`DisturbanceStrategy::RemovalOnly`].
    pub insert_cap: usize,
}

impl RoutePolicy {
    /// Derives the policy for `model` under `cfg`.
    pub fn for_model<M: VerifiableModel + ?Sized>(model: &M, cfg: &RcwConfig) -> RoutePolicy {
        RoutePolicy {
            ball_radius: cfg.candidate_hops + model.verification_hops(cfg) + 1,
            candidate_hops: cfg.candidate_hops,
            max_candidate_pairs: cfg.max_candidate_pairs,
            insert_cap: match cfg.strategy {
                DisturbanceStrategy::RemovalOnly => 0,
                _ => cfg.max_insert_candidates,
            },
        }
    }
}

/// Where a query goes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteDecision {
    /// Answered by shard `i`, bit-exact vs the full graph.
    Shard(usize),
    /// Answered by the shared full-graph escape engine.
    Escape,
}

/// The routing ledger of a [`ShardedEngine`]. Invariant (asserted by the
/// chaos harness): `queries == routed + halo_escapes`, and
/// `routed == routed_per_shard.iter().sum()`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Queries routed (single plus batched), counted at routing time.
    pub queries: usize,
    /// Queries answered by a shard engine.
    pub routed: usize,
    /// Queries that fell back to the full-graph escape engine.
    pub halo_escapes: usize,
    /// Per-shard routed counts.
    pub routed_per_shard: Vec<usize>,
    /// `disturb` calls fanned out.
    pub disturbs: usize,
    /// Total shard-level disturbance applications across all `disturb`
    /// calls (a flip touching three shards' covered sets counts three).
    pub fanout_applications: usize,
}

impl ShardStats {
    fn new(num_shards: usize) -> ShardStats {
        ShardStats {
            routed_per_shard: vec![0; num_shards],
            ..ShardStats::default()
        }
    }

    /// Whether the exact-ledger invariant holds.
    pub fn ledger_balanced(&self) -> bool {
        self.queries == self.routed + self.halo_escapes
            && self.routed == self.routed_per_shard.iter().sum::<usize>()
    }
}

/// A coherent picture of the whole sharded tier: the routing ledger plus one
/// [`EngineSnapshot`] per shard and one for the escape engine.
#[derive(Clone, Debug)]
pub struct ShardedSnapshot {
    /// Routing ledger.
    pub routing: ShardStats,
    /// Per-shard engine snapshots, indexed by shard id.
    pub shards: Vec<EngineSnapshot>,
    /// The escape engine's snapshot.
    pub escape: EngineSnapshot,
}

/// One [`WitnessEngine`] per shard plus a shared full-graph escape engine,
/// behind the same entry points a single engine offers (the serving crate
/// implements its `ServedEngine` trait on top of these).
pub struct ShardedEngine<'m, M: VerifiableModel + ?Sized = dyn GnnModel> {
    plan: ShardPlan,
    policy: RoutePolicy,
    shards: Vec<WitnessEngine<'m, M>>,
    escape: WitnessEngine<'m, M>,
    routing: Mutex<ShardStats>,
    route_cache: Mutex<BTreeMap<Vec<NodeId>, RouteDecision>>,
}

/// Route-cache entries kept before the cache is wiped; bounds memory on
/// adversarial query streams while keeping steady-state serving O(log n).
const ROUTE_CACHE_CAP: usize = 8192;

impl<'m, M: VerifiableModel + ?Sized> ShardedEngine<'m, M> {
    /// Cuts `host` into `num_shards` halo shards and builds one engine per
    /// shard plus the escape engine. `halo_hops` should be at least the
    /// policy's ball radius for shard routing to ever succeed; smaller rings
    /// are legal and simply escape more.
    pub fn new(
        host: Arc<Graph>,
        model: &'m M,
        cfg: RcwConfig,
        num_shards: usize,
        halo_hops: usize,
    ) -> Self {
        let plan = ShardPlan::build(&host, num_shards, halo_hops);
        Self::from_plan(plan, host, model, cfg)
    }

    /// Builds the engines for an existing plan. `host` must be the graph the
    /// plan was cut from.
    pub fn from_plan(plan: ShardPlan, host: Arc<Graph>, model: &'m M, cfg: RcwConfig) -> Self {
        assert_eq!(
            plan.partition.owner.len(),
            host.num_nodes(),
            "plan was cut from a different graph"
        );
        let policy = RoutePolicy::for_model(model, &cfg);
        let shards: Vec<WitnessEngine<'m, M>> = plan
            .shards
            .iter()
            .map(|s| WitnessEngine::new(Arc::new(s.graph.clone()), model, cfg.clone()))
            .collect();
        let routing = Mutex::new(ShardStats::new(shards.len()));
        ShardedEngine {
            plan,
            policy,
            shards,
            escape: WitnessEngine::new(host, model, cfg),
            routing,
            route_cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// Applies a session worker count to every engine (see
    /// [`WitnessEngine::with_workers`]).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .map(|e| e.with_workers(workers))
            .collect();
        self.escape = self.escape.with_workers(workers);
        self
    }

    /// Installs a fault-injection hook on every engine (see
    /// [`WitnessEngine::with_fault_hook`]).
    pub fn with_fault_hook(mut self, hook: EngineFaultHook) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .map(|e| e.with_fault_hook(Arc::clone(&hook)))
            .collect();
        self.escape = self.escape.with_fault_hook(hook);
        self
    }

    /// Bounds per-witness repair work on every engine (see
    /// [`WitnessEngine::with_repair_budget`]).
    pub fn with_repair_budget(mut self, budget: Duration) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .map(|e| e.with_repair_budget(budget))
            .collect();
        self.escape = self.escape.with_repair_budget(budget);
        self
    }

    /// The plan this engine was built from.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The routing rule in force.
    pub fn policy(&self) -> &RoutePolicy {
        &self.policy
    }

    /// Number of shard engines (the escape engine is not counted).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn routing_lock(&self) -> MutexGuard<'_, ShardStats> {
        self.routing.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A copy of the routing ledger.
    pub fn shard_stats(&self) -> ShardStats {
        self.routing_lock().clone()
    }

    /// Where `test_nodes` would be served right now, without counting it.
    /// The decision is made against the escape engine's (full) graph, so it
    /// honestly tracks disturbances: an insertion that pulls a ball across a
    /// shard boundary turns later queries there into escapes.
    ///
    /// Decisions are memoized per query key: generates apply-and-revert
    /// their probe flips, so the edge set the decision depends on only
    /// durably changes in [`ShardedEngine::disturb`], which wipes the cache.
    pub fn route(&self, test_nodes: &[NodeId]) -> RouteDecision {
        let cache = self.route_cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&decision) = cache.get(test_nodes) {
            return decision;
        }
        drop(cache);
        let decision = self.route_uncached(test_nodes);
        let mut cache = self.route_cache.lock().unwrap_or_else(|e| e.into_inner());
        if cache.len() >= ROUTE_CACHE_CAP {
            cache.clear();
        }
        cache.insert(test_nodes.to_vec(), decision);
        decision
    }

    fn route_uncached(&self, test_nodes: &[NodeId]) -> RouteDecision {
        if test_nodes.is_empty() {
            return RouteDecision::Escape;
        }
        let graph = self.escape.graph();
        if test_nodes.iter().any(|&t| !graph.contains_node(t)) {
            return RouteDecision::Escape;
        }
        let owner = self.plan.partition.owner[test_nodes[0]];
        if test_nodes
            .iter()
            .any(|&t| self.plan.partition.owner[t] != owner)
        {
            return RouteDecision::Escape;
        }
        let shard = &self.plan.shards[owner];
        let ball = k_hop_neighborhood_multi(&graph, test_nodes, self.policy.ball_radius);
        if !ball.iter().all(|&v| shard.covers(v)) {
            return RouteDecision::Escape;
        }
        // Worst-case candidate pool: all hood-internal edges (the session
        // never collects more removal candidates than that) plus the capped
        // insertion candidates per test node. If that cannot exceed the pool
        // bound, the PPR pruning — which reads global PageRank rows a shard
        // cannot reproduce — provably never fires.
        let hood = k_hop_neighborhood_multi(&graph, test_nodes, self.policy.candidate_hops);
        let hood_edges: usize = hood
            .iter()
            .map(|&u| graph.neighbors(u).filter(|v| hood.contains(v)).count())
            .sum::<usize>()
            / 2;
        let insert_bound = self.policy.insert_cap.saturating_mul(test_nodes.len());
        if hood_edges + insert_bound > self.policy.max_candidate_pairs {
            return RouteDecision::Escape;
        }
        RouteDecision::Shard(owner)
    }

    fn note_route(&self, decision: RouteDecision) {
        let mut stats = self.routing_lock();
        stats.queries += 1;
        match decision {
            RouteDecision::Shard(i) => {
                stats.routed += 1;
                stats.routed_per_shard[i] += 1;
            }
            RouteDecision::Escape => stats.halo_escapes += 1,
        }
    }

    fn engine_for(&self, decision: RouteDecision) -> &WitnessEngine<'m, M> {
        match decision {
            RouteDecision::Shard(i) => &self.shards[i],
            RouteDecision::Escape => &self.escape,
        }
    }

    /// Routes and answers one query (see
    /// [`WitnessEngine::generate_with_budget`]).
    pub fn generate_with_budget(
        &self,
        test_nodes: &[NodeId],
        budget: &SessionBudget,
    ) -> Result<GenerationResult, BudgetExceeded> {
        let decision = self.route(test_nodes);
        self.note_route(decision);
        self.engine_for(decision)
            .generate_with_budget(test_nodes, budget)
    }

    /// [`ShardedEngine::generate_with_budget`] without a deadline.
    pub fn generate(&self, test_nodes: &[NodeId]) -> GenerationResult {
        self.generate_with_budget(test_nodes, &SessionBudget::unlimited())
            .expect("unlimited session budget cannot expire")
    }

    /// Routes a micro-batch: queries are grouped by target engine and each
    /// group is answered by that engine's batch entry point, emitting under
    /// the caller's original indices. Per-query results are bit-identical to
    /// routing each query alone (the engine batch contract guarantees batch
    /// == sequential per engine, and routing is per-query state-free).
    pub fn generate_batch_with(
        &self,
        queries: &[Vec<NodeId>],
        budgets: &[SessionBudget],
        emit: &mut dyn FnMut(usize, Result<GenerationResult, BudgetExceeded>),
    ) {
        assert_eq!(
            queries.len(),
            budgets.len(),
            "generate_batch_with: one budget per query"
        );
        // Group indices by decision; BTreeMap keeps shard order deterministic
        // (escape sorts last).
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (qi, nodes) in queries.iter().enumerate() {
            let decision = self.route(nodes);
            self.note_route(decision);
            let key = match decision {
                RouteDecision::Shard(i) => i,
                RouteDecision::Escape => self.shards.len(),
            };
            groups.entry(key).or_default().push(qi);
        }
        for (key, idxs) in groups {
            let engine = if key == self.shards.len() {
                &self.escape
            } else {
                &self.shards[key]
            };
            let sub_queries: Vec<Vec<NodeId>> = idxs.iter().map(|&i| queries[i].clone()).collect();
            let sub_budgets: Vec<SessionBudget> =
                idxs.iter().map(|&i| budgets[i].clone()).collect();
            engine.generate_batch_with(&sub_queries, &sub_budgets, &mut |j, r| emit(idxs[j], r));
        }
    }

    /// Applies `disturbances` to the full graph and fans each flip out to
    /// every shard whose covered set contains **both** endpoints — exactly
    /// the shards whose induced subgraph the flip changes (a flip with an
    /// endpoint outside a shard's covered set cannot appear in that shard's
    /// induced edge set, whichever direction it toggles). Each engine runs
    /// its own footprint-scoped repair sweep.
    ///
    /// The returned report carries the escape engine's authoritative
    /// `epoch`, `flips_applied` and `footprint_size`; the repair counters
    /// and session stats are summed across every engine that ran a sweep.
    /// Per-entry repair outcomes are merged into one exactly-once stream:
    /// a key stored by more than one engine (routing decisions shift across
    /// epochs) keeps the entry of the engine a post-disturbance
    /// [`ShardedEngine::route`] selects — the copy a fresh query is served
    /// from — so a subscription layer owes one update per touched key.
    pub fn disturb(&self, disturbances: &[Disturbance]) -> DisturbReport {
        // The edge set is about to durably change; every memoized routing
        // decision is suspect.
        self.route_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        let mut report = self.escape.disturb(disturbances);
        let mut fanout = 0usize;
        let mut sourced: Vec<(RouteDecision, EntryRepair)> = std::mem::take(&mut report.entries)
            .into_iter()
            .map(|e| (RouteDecision::Escape, e))
            .collect();
        for (i, shard) in self.plan.shards.iter().enumerate() {
            let local: Vec<Disturbance> = disturbances
                .iter()
                .map(|d| {
                    Disturbance::from_pairs(
                        d.pairs()
                            .iter()
                            .filter(|&(u, v)| shard.covers(u) && shard.covers(v)),
                    )
                })
                .filter(|d| !d.is_empty())
                .collect();
            if local.is_empty() {
                continue;
            }
            fanout += 1;
            let r = self.shards[i].disturb(&local);
            report.untouched += r.untouched;
            report.reverified += r.reverified;
            report.repaired += r.repaired;
            report.regenerated += r.regenerated;
            report.degraded += r.degraded;
            report.stats.inference_calls += r.stats.inference_calls;
            report.stats.disturbances_verified += r.stats.disturbances_verified;
            report.stats.expand_rounds += r.stats.expand_rounds;
            report.stats.elapsed += r.stats.elapsed;
            sourced.extend(r.entries.into_iter().map(|e| (RouteDecision::Shard(i), e)));
        }
        // Exactly-once merge: one entry per canonical key, preferring the
        // engine the (post-disturbance, cache-cleared) route selects. A key
        // held only by a non-selected engine keeps its sole entry — a
        // best-effort answer from the store that repaired it.
        let mut merged: BTreeMap<Vec<NodeId>, (RouteDecision, EntryRepair)> = BTreeMap::new();
        for (source, entry) in sourced {
            match merged.entry(entry.test_nodes.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert((source, entry));
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    let preferred = self.route(&entry.test_nodes);
                    if source == preferred && slot.get().0 != preferred {
                        slot.insert((source, entry));
                    }
                }
            }
        }
        report.entries = merged.into_values().map(|(_, entry)| entry).collect();
        let mut stats = self.routing_lock();
        stats.disturbs += 1;
        stats.fanout_applications += fanout;
        report
    }

    /// Aggregated snapshot: counters summed across every engine (each query
    /// hits exactly one engine, so the engine conservation law survives
    /// summation), store sizes summed, epoch and workers from the escape
    /// engine (the authoritative full graph).
    pub fn snapshot(&self) -> EngineSnapshot {
        let mut snap = self.escape.snapshot();
        for engine in &self.shards {
            let s = engine.snapshot();
            snap.stats.absorb(&s.stats);
            snap.stored += s.stored;
            snap.hood_hits += s.hood_hits;
            snap.hood_misses += s.hood_misses;
        }
        snap
    }

    /// Per-engine snapshots plus the routing ledger, for `/stats`.
    pub fn sharded_snapshot(&self) -> ShardedSnapshot {
        ShardedSnapshot {
            routing: self.shard_stats(),
            shards: self.shards.iter().map(|e| e.snapshot()).collect(),
            escape: self.escape.snapshot(),
        }
    }

    /// The full graph's mutation epoch (escape engine).
    pub fn epoch(&self) -> u64 {
        self.escape.epoch()
    }

    /// Number of nodes in the full graph.
    pub fn num_nodes(&self) -> usize {
        self.escape.graph().num_nodes()
    }

    /// The full (escape) graph.
    pub fn graph(&self) -> Arc<Graph> {
        self.escape.graph()
    }

    /// Borrow of the escape engine (tests and stats plumbing).
    pub fn escape_engine(&self) -> &WitnessEngine<'m, M> {
        &self.escape
    }

    /// Borrow of shard engine `i` (tests and stats plumbing).
    pub fn shard_engine(&self, i: usize) -> &WitnessEngine<'m, M> {
        &self.shards[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_gnn::{Gcn, TrainConfig};
    use rcw_graph::{generators, GraphView};

    /// Two well-separated SBM blocks with block-indicator features, so an
    /// edge-cut partition into two shards aligns with the blocks and interior
    /// nodes have deep in-shard balls.
    fn setup(seed: u64) -> (Arc<Graph>, Gcn) {
        let (mut g, blocks) = generators::stochastic_block_model(&[30, 30], 0.25, 0.01, seed);
        generators::ensure_connected(&mut g, seed);
        for (v, &b) in blocks.iter().enumerate() {
            let feats = if b == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.set_features(v, feats);
            g.set_label(v, b);
        }
        let view = GraphView::full(&g);
        let train: Vec<usize> = (0..g.num_nodes()).collect();
        let tc = TrainConfig {
            epochs: 40,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        let mut gcn = Gcn::new(&[2, 8, 2], 2);
        gcn.train(&view, &train, &tc);
        (Arc::new(g), gcn)
    }

    fn quick_cfg() -> RcwConfig {
        RcwConfig {
            k: 1,
            local_budget: 1,
            candidate_hops: 2,
            max_expand_rounds: 2,
            sampled_disturbances: 4,
            pri_rounds: 4,
            ppr_iters: 20,
            ..RcwConfig::default()
        }
    }

    /// A ring lattice (each node linked to its next two successors): diameter
    /// `n/4`, so halo coverage is genuinely partial — shard graphs are proper
    /// subgraphs of the host, which is what makes bit-exactness nontrivial.
    fn ring(n: usize) -> (Arc<Graph>, Gcn) {
        let mut g = Graph::with_nodes(n);
        for i in 0..n {
            g.add_edge(i, (i + 1) % n);
            g.add_edge(i, (i + 2) % n);
        }
        for v in 0..n {
            g.set_features(v, vec![(v % 5) as f64 / 4.0, ((v * 3) % 7) as f64 / 6.0]);
            g.set_label(v, (v * 2 / n) % 2);
        }
        let view = GraphView::full(&g);
        let train: Vec<usize> = (0..n).collect();
        let tc = TrainConfig {
            epochs: 30,
            learning_rate: 0.05,
            ..TrainConfig::default()
        };
        let mut gcn = Gcn::new(&[2, 8, 2], 2);
        gcn.train(&view, &train, &tc);
        (Arc::new(g), gcn)
    }

    fn sharded<'m>(g: &Arc<Graph>, gcn: &'m Gcn, shards: usize) -> ShardedEngine<'m, Gcn> {
        let cfg = quick_cfg();
        let halo = RoutePolicy::for_model(gcn, &cfg).ball_radius;
        ShardedEngine::new(Arc::clone(g), gcn, cfg, shards, halo)
    }

    #[test]
    fn routing_ledger_is_exact_and_decisions_respect_ownership() {
        let (g, gcn) = setup(11);
        let engine = sharded(&g, &gcn, 2);
        let mut expected_routed = 0usize;
        let mut expected_escapes = 0usize;
        for t in (0..g.num_nodes()).step_by(3) {
            match engine.route(&[t]) {
                RouteDecision::Shard(s) => {
                    assert_eq!(engine.plan().partition.owner[t], s);
                    expected_routed += 1;
                }
                RouteDecision::Escape => expected_escapes += 1,
            }
            engine.generate(&[t]);
        }
        let stats = engine.shard_stats();
        assert!(stats.ledger_balanced(), "{stats:?}");
        assert_eq!(stats.routed, expected_routed);
        assert_eq!(stats.halo_escapes, expected_escapes);
        assert!(
            stats.routed > 0,
            "no query stayed in-halo; partition too fine for the test graph"
        );
        // Split queries (owners differ) and out-of-range ids always escape.
        let other_owner = (0..g.num_nodes())
            .find(|&v| engine.plan().partition.owner[v] != engine.plan().partition.owner[0])
            .unwrap();
        assert_eq!(engine.route(&[0, other_owner]), RouteDecision::Escape);
        assert_eq!(engine.route(&[g.num_nodes() + 7]), RouteDecision::Escape);
        assert_eq!(engine.route(&[]), RouteDecision::Escape);
    }

    #[test]
    fn shard_answers_match_the_single_engine_bit_exactly() {
        let (g, gcn) = ring(120);
        let engine = sharded(&g, &gcn, 2);
        // The halos must not cover the whole ring, or bit-exactness would be
        // trivial (shard graph == host graph).
        assert!(engine
            .plan()
            .shards
            .iter()
            .all(|s| s.covered.len() < g.num_nodes()));
        let single = WitnessEngine::new(Arc::clone(&g), &gcn, quick_cfg());
        let mut compared = 0usize;
        for t in 0..g.num_nodes() {
            if let RouteDecision::Shard(_) = engine.route(&[t]) {
                let ours = engine.generate(&[t]);
                let theirs = single.generate(&[t]);
                assert_eq!(ours.witness, theirs.witness, "node {t}");
                assert_eq!(ours.level, theirs.level, "node {t}");
                assert_eq!(ours.nontrivial, theirs.nontrivial, "node {t}");
                compared += 1;
            }
        }
        assert!(compared > 0, "no in-halo query to compare");
    }

    #[test]
    fn disturb_fans_out_to_exactly_the_covering_shards() {
        let (g, gcn) = ring(60);
        // A shallow 1-hop halo so the shards do not cover each other: the
        // fan-out filter, not routing, is under test here.
        let engine = ShardedEngine::new(Arc::clone(&g), &gcn, quick_cfg(), 2, 1);
        // An interior edge of shard 0: both endpoints owned by 0 and not
        // covered by shard 1.
        let plan = engine.plan().clone();
        let interior = g
            .edges()
            .find(|&(u, v)| {
                plan.shards[0].owns(u)
                    && plan.shards[0].owns(v)
                    && !plan.shards[1].covers(u)
                    && !plan.shards[1].covers(v)
            })
            .expect("no interior edge in shard 0");
        let before: Vec<u64> = (0..2).map(|i| engine.shard_engine(i).epoch()).collect();
        let report = engine.disturb(&[Disturbance::from_pairs([interior])]);
        assert_eq!(report.flips_applied, 1);
        assert_eq!(report.epoch, engine.epoch());
        // Shard 0's graph changed; shard 1 never saw the flip.
        assert!(engine.shard_engine(0).epoch() > before[0]);
        assert_eq!(engine.shard_engine(1).epoch(), before[1]);
        let stats = engine.shard_stats();
        assert_eq!(stats.disturbs, 1);
        assert_eq!(stats.fanout_applications, 1);
        // A cut edge (covered by both shards) fans out to both.
        let cut_edge = g
            .edges()
            .find(|&(u, v)| plan.partition.owner[u] != plan.partition.owner[v]);
        if let Some(cut) = cut_edge {
            let before: Vec<u64> = (0..2).map(|i| engine.shard_engine(i).epoch()).collect();
            engine.disturb(&[Disturbance::from_pairs([cut])]);
            assert!(engine.shard_engine(0).epoch() > before[0]);
            assert!(engine.shard_engine(1).epoch() > before[1]);
            assert_eq!(engine.shard_stats().fanout_applications, 3);
        }
    }

    #[test]
    fn batched_generation_matches_per_query_routing() {
        let (g, gcn) = setup(31);
        let engine = sharded(&g, &gcn, 2);
        let reference = sharded(&g, &gcn, 2);
        let queries: Vec<Vec<NodeId>> = (0..g.num_nodes()).step_by(5).map(|t| vec![t]).collect();
        let budgets: Vec<SessionBudget> =
            queries.iter().map(|_| SessionBudget::unlimited()).collect();
        let mut batched: Vec<Option<GenerationResult>> = vec![None; queries.len()];
        engine.generate_batch_with(&queries, &budgets, &mut |i, r| {
            batched[i] = Some(r.expect("unlimited budget"));
        });
        for (i, q) in queries.iter().enumerate() {
            let solo = reference.generate(q);
            let got = batched[i].as_ref().unwrap();
            assert_eq!(got.witness, solo.witness, "query {i}");
            assert_eq!(got.level, solo.level, "query {i}");
        }
        // Both engines routed identically, and the batch ledger is exact.
        assert_eq!(engine.shard_stats().routed, reference.shard_stats().routed);
        assert!(engine.shard_stats().ledger_balanced());
        assert_eq!(engine.shard_stats().queries, queries.len());
    }

    #[test]
    fn aggregated_snapshot_preserves_the_conservation_law() {
        let (g, gcn) = setup(41);
        let engine = sharded(&g, &gcn, 2);
        for t in (0..g.num_nodes()).step_by(4) {
            engine.generate(&[t]);
            engine.generate(&[t]); // warm repeat
        }
        let snap = engine.snapshot();
        let s = &snap.stats;
        assert_eq!(
            s.queries,
            s.warm_hits + s.sessions_run + s.degraded_serves + s.budget_aborts
        );
        assert_eq!(s.queries, engine.shard_stats().queries);
        let detailed = engine.sharded_snapshot();
        let engine_total: usize = detailed
            .shards
            .iter()
            .map(|s| s.stats.queries)
            .sum::<usize>()
            + detailed.escape.stats.queries;
        assert_eq!(engine_total, s.queries);
    }

    #[test]
    fn route_cache_does_not_serve_stale_decisions_across_disturbs() {
        let (g, gcn) = ring(60);
        let engine = sharded(&g, &gcn, 2);
        // A node routed to its shard; the repeat answers from the cache.
        let t = (0..g.num_nodes())
            .find(|&t| matches!(engine.route(&[t]), RouteDecision::Shard(_)))
            .expect("some node routes to a shard on the ring");
        let cached = engine.route(&[t]);
        assert_eq!(cached, engine.route(&[t]));
        // Insert a chord from t to the far side of the ring: t's safety ball
        // now reaches nodes its shard does not cover, so the memoized
        // decision is wrong and must have been wiped by the disturbance.
        let far = (t + g.num_nodes() / 2) % g.num_nodes();
        engine.disturb(&[Disturbance::from_pairs([(t.min(far), t.max(far))])]);
        assert_eq!(
            engine.route(&[t]),
            RouteDecision::Escape,
            "post-insertion ball escapes the halo; a cached Shard decision is stale"
        );
    }
}
