//! Halo-escape rate report: how often does a query's safety ball leave its
//! shard's halo and force the full-graph escape path?
//!
//! The sweep covers the two graph families the serving tier actually hosts —
//! a block-structured SBM and the CiteSeer stand-in — at halo depths
//! L ∈ {1, 2, 3} and shard counts {2, 4, 8}. The report is printed (run with
//! `--nocapture` to see it) and the rates are pinned: escapes must fall as
//! the halo deepens, and at the deepest halo the escape rate must stay under
//! a fixed bound so the escape engine remains a fallback, not the main path.

use rcw_core::RcwConfig;
use rcw_datasets::{citeseer, Scale};
use rcw_gnn::Gcn;
use rcw_graph::{generators, Graph, GraphView};
use rcw_shard::{RouteDecision, ShardedEngine};
use std::sync::Arc;

const HALOS: [usize; 3] = [1, 2, 3];
const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

fn sweep_cfg() -> RcwConfig {
    RcwConfig {
        k: 1,
        local_budget: 1,
        candidate_hops: 1,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        ..RcwConfig::default()
    }
}

fn sbm(seed: u64) -> Graph {
    let sizes = [22usize; 8];
    let (mut g, blocks) = generators::stochastic_block_model(&sizes, 0.25, 0.004, seed);
    generators::ensure_connected(&mut g, seed);
    for (v, &b) in blocks.iter().enumerate() {
        let x = (b % 2) as f64;
        g.set_features(v, vec![x, 1.0 - x]);
        g.set_label(v, b % 2);
    }
    g
}

/// Escape rate over every node of the graph for one (halo, shards) cell.
fn escape_rate(g: &Arc<Graph>, model: &Gcn, halo: usize, shards: usize) -> f64 {
    let engine = ShardedEngine::new(Arc::clone(g), model, sweep_cfg(), shards, halo);
    let escapes = (0..g.num_nodes())
        .filter(|&t| engine.route(&[t]) == RouteDecision::Escape)
        .count();
    escapes as f64 / g.num_nodes() as f64
}

/// Runs the 3×3 sweep for one dataset and returns rates[halo_idx][shard_idx].
fn sweep(name: &str, g: Graph, model: &Gcn) -> [[f64; 3]; 3] {
    let g = Arc::new(g);
    let mut rates = [[0.0f64; 3]; 3];
    println!("{name} (n={}, m={}):", g.num_nodes(), g.num_edges());
    println!("  halo |  2 shards  4 shards  8 shards");
    for (i, &halo) in HALOS.iter().enumerate() {
        for (j, &shards) in SHARD_COUNTS.iter().enumerate() {
            rates[i][j] = escape_rate(&g, model, halo, shards);
        }
        println!(
            "   L={halo} |    {:.3}     {:.3}     {:.3}",
            rates[i][0], rates[i][1], rates[i][2]
        );
    }
    rates
}

fn train_gcn(g: &Graph, seed: u64) -> Gcn {
    let mut gcn = Gcn::new(&[g.feature_dim(), 8, g.num_classes().max(2)], seed);
    gcn.train(
        &GraphView::full(g),
        &(0..g.num_nodes()).collect::<Vec<_>>(),
        &rcw_gnn::TrainConfig {
            epochs: 20,
            ..rcw_gnn::TrainConfig::default()
        },
    );
    gcn
}

fn assert_pinned(name: &str, rates: [[f64; 3]; 3]) {
    for j in 0..SHARD_COUNTS.len() {
        for i in 1..HALOS.len() {
            assert!(
                rates[i][j] <= rates[i - 1][j] + 1e-9,
                "{name}: escape rate must not rise with halo depth \
                 (L={} rate {:.3} > L={} rate {:.3} at {} shards)",
                HALOS[i],
                rates[i][j],
                HALOS[i - 1],
                rates[i - 1][j],
                SHARD_COUNTS[j]
            );
        }
    }
    // Pinned bound: with the deepest halo and the coarsest cut, the escape
    // path must stay a minority path.
    assert!(
        rates[2][0] <= 0.5,
        "{name}: L=3 / 2-shard escape rate {:.3} exceeds the pinned 0.5 bound",
        rates[2][0]
    );
}

#[test]
fn halo_escape_rates_fall_with_depth_and_stay_under_the_pinned_bound() {
    let sbm_graph = sbm(13);
    let sbm_model = train_gcn(&sbm_graph, 13);
    let sbm_rates = sweep("SBM", sbm_graph, &sbm_model);
    assert_pinned("SBM", sbm_rates);

    let cs = citeseer::build_synthetic(Scale::Small, 7);
    let cs_model = train_gcn(&cs.graph, 7);
    let cs_rates = sweep(&cs.name, cs.graph, &cs_model);
    assert_pinned("CiteSeer-syn", cs_rates);
}
