//! Seeded equivalence sweep: the sharded tier must answer every in-halo
//! query — cold, warm, and across disturb/repair cycles — **bit-exactly** as
//! a single full-graph engine would, for both the model-agnostic (GCN) and
//! the tractable (APPNP) verification paths.
//!
//! The sweep runs over seeded SBM graphs whose block structure gives the
//! edge-cut partition real cuts. Each round removes an *interior* edge (its
//! footprint ball stays inside the covered set of every shard that covers
//! both endpoints, so every engine that applies the flip computes the same
//! footprint), then re-compares every routed query against the reference
//! engine. The routing ledger is asserted exact throughout.

use rcw_core::{RcwConfig, VerifiableModel, WitnessEngine};
use rcw_gnn::{Appnp, Gcn, TrainConfig};
use rcw_graph::traversal::k_hop_neighborhood_multi;
use rcw_graph::{generators, Disturbance, Edge, Graph, GraphView};
use rcw_shard::{RouteDecision, RoutePolicy, ShardedEngine};
use std::sync::Arc;

/// A sparse many-block SBM: low cross-block density keeps the quotient graph
/// sparse, so the graph's diameter comfortably exceeds the safety ball
/// radius and halo coverage is genuinely partial for some seeds.
fn sbm(seed: u64) -> Graph {
    let sizes = [14usize; 10];
    let (mut g, blocks) = generators::stochastic_block_model(&sizes, 0.3, 0.003, seed);
    generators::ensure_connected(&mut g, seed);
    for (v, &b) in blocks.iter().enumerate() {
        let x = (b % 2) as f64;
        g.set_features(v, vec![x, 1.0 - x]);
        g.set_label(v, b % 2);
    }
    g
}

fn sweep_cfg() -> RcwConfig {
    RcwConfig {
        k: 1,
        local_budget: 1,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 2,
        ppr_iters: 3, // keeps the APPNP verification horizon shardable
        ..RcwConfig::default()
    }
}

fn train_config() -> TrainConfig {
    TrainConfig {
        epochs: 30,
        learning_rate: 0.05,
        ..TrainConfig::default()
    }
}

/// An interior edge: both endpoints owned by one shard, and the full-graph
/// ball of the policy radius around them inside the covered set of *every*
/// shard that covers both endpoints. Such a flip produces identical
/// footprints on every engine that applies it.
fn interior_edges<M: VerifiableModel + ?Sized>(
    g: &Graph,
    engine: &ShardedEngine<'_, M>,
    radius: usize,
) -> Vec<Edge> {
    g.edges()
        .filter(|&(u, v)| {
            let plan = engine.plan();
            if plan.partition.owner[u] != plan.partition.owner[v] {
                return false;
            }
            let ball = k_hop_neighborhood_multi(g, &[u, v], radius);
            plan.shards
                .iter()
                .filter(|s| s.covers(u) && s.covers(v))
                .all(|s| ball.iter().all(|&w| s.covers(w)))
        })
        .collect()
}

/// The sweep body, generic over the model. Returns (seeds with routed
/// queries, seeds with partial halo coverage).
fn run_sweep<M: VerifiableModel>(
    model_for: impl Fn(&Graph, u64) -> M,
    stride: usize,
) -> (usize, usize) {
    let seeds: &[u64] = &[3, 17, 29];
    let mut seeds_with_routed = 0usize;
    let mut seeds_with_partial = 0usize;
    for &seed in seeds {
        let g = Arc::new(sbm(seed));
        let model = model_for(&g, seed);
        let cfg = sweep_cfg();
        let halo = RoutePolicy::for_model(&model, &cfg).ball_radius;
        let sharded = ShardedEngine::new(Arc::clone(&g), &model, cfg.clone(), 4, halo);
        let single = WitnessEngine::new(Arc::clone(&g), &model, cfg);
        if sharded
            .plan()
            .shards
            .iter()
            .any(|s| s.covered.len() < g.num_nodes())
        {
            seeds_with_partial += 1;
        }

        let compare_routed = |tag: &str| {
            let mut routed = 0usize;
            for t in (0..g.num_nodes()).step_by(stride) {
                if let RouteDecision::Shard(_) = sharded.route(&[t]) {
                    let ours = sharded.generate(&[t]);
                    let theirs = single.generate(&[t]);
                    assert_eq!(ours.witness, theirs.witness, "seed {seed} {tag} node {t}");
                    assert_eq!(ours.level, theirs.level, "seed {seed} {tag} node {t}");
                    assert_eq!(ours.stale, theirs.stale, "seed {seed} {tag} node {t}");
                    assert_eq!(
                        ours.nontrivial, theirs.nontrivial,
                        "seed {seed} {tag} node {t}"
                    );
                    routed += 1;
                }
            }
            routed
        };

        // Cold and warm generates.
        let cold_routed = compare_routed("cold");
        compare_routed("warm");
        if cold_routed > 0 {
            seeds_with_routed += 1;
        }

        // Disturb/repair rounds over interior edges.
        let radius = sharded.policy().ball_radius;
        for round in 0..3usize {
            let candidates = interior_edges(&sharded.graph(), &sharded, radius);
            let Some(&edge) = candidates.get(round * 5 % candidates.len().max(1)) else {
                break;
            };
            let flip = [Disturbance::from_pairs([edge])];
            let ours = sharded.disturb(&flip);
            let theirs = single.disturb(&flip);
            // Epochs are mutation counters and verification probes bump them,
            // so they are not comparable across engines; the applied flips and
            // the invalidation footprint are.
            assert_eq!(
                ours.flips_applied, theirs.flips_applied,
                "seed {seed} round {round}"
            );
            assert_eq!(
                ours.footprint_size, theirs.footprint_size,
                "seed {seed} round {round}"
            );
            compare_routed(&format!("after-disturb-{round}"));
        }

        let stats = sharded.shard_stats();
        assert!(stats.ledger_balanced(), "seed {seed}: {stats:?}");
    }
    (seeds_with_routed, seeds_with_partial)
}

#[test]
fn gcn_sharded_answers_are_bit_exact_across_disturb_repair_cycles() {
    let (routed, partial) = run_sweep(
        |g, seed| {
            let mut gcn = Gcn::new(&[2, 8, 2], seed);
            gcn.train(
                &GraphView::full(g),
                &(0..g.num_nodes()).collect::<Vec<_>>(),
                &train_config(),
            );
            gcn
        },
        1,
    );
    assert!(routed > 0, "no seed produced an in-halo GCN query");
    assert!(partial > 0, "every seed had trivial (full) halo coverage");
}

#[test]
fn appnp_sharded_answers_are_bit_exact_across_disturb_repair_cycles() {
    let (routed, partial) = run_sweep(
        |g, seed| {
            let mut appnp = Appnp::new(&[2, 6, 2], 0.2, 3, seed);
            appnp.train(
                &GraphView::full(g),
                &(0..g.num_nodes()).collect::<Vec<_>>(),
                &train_config(),
            );
            appnp
        },
        3,
    );
    assert!(routed > 0, "no seed produced an in-halo APPNP query");
    assert!(partial > 0, "every seed had trivial (full) halo coverage");
}
