//! End-to-end acceptance test: a `WitnessEngine` served over TCP answers
//! `generate`, repairs witnesses after `disturb`, and reports consistent
//! `stats`, with concurrent client threads observing coherent results.

use rcw_core::{RcwConfig, WitnessEngine, WitnessLevel};
use rcw_datasets::{citeseer, Scale};
use rcw_server::client::Client;
use rcw_server::wire::{self, Json};
use rcw_server::RcwServer;
use std::sync::Arc;

fn quick_cfg() -> RcwConfig {
    RcwConfig {
        k: 1,
        local_budget: 1,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::default()
    }
}

#[test]
fn concurrent_clients_get_coherent_answers_and_repairs() {
    let ds = citeseer::build(Scale::Tiny, 3);
    let appnp = ds.train_appnp(16, 3);
    let graph = Arc::new(ds.graph.clone());
    let engine = WitnessEngine::new(Arc::clone(&graph), &appnp, quick_cfg());
    let tests_a = ds.pick_test_nodes(2, 5);
    let tests_b = ds.pick_test_nodes(2, 11);

    let server = RcwServer::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr().to_string();

    let report = std::thread::scope(|scope| {
        let engine_ref = &engine;
        let server_thread = scope.spawn(move || server.serve(engine_ref, 3).expect("serve"));

        // Baseline query, then two client threads hammering the same two
        // test sets concurrently: every answer must equal the baseline
        // (warm store hits behind the wire).
        let mut warmup = Client::connect(&addr).expect("connect");
        let baseline_a = warmup.generate(&tests_a).expect("generate a");
        let baseline_b = warmup.generate(&tests_b).expect("generate b");
        assert!(baseline_a.witness.subgraph.contains_node(tests_a[0]));

        std::thread::scope(|clients| {
            for _ in 0..2 {
                let addr = &addr;
                let tests_a = &tests_a;
                let tests_b = &tests_b;
                let baseline_a = &baseline_a;
                let baseline_b = &baseline_b;
                clients.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for _ in 0..3 {
                        let got_a = client.generate(tests_a).expect("generate a");
                        assert_eq!(got_a.witness, baseline_a.witness);
                        assert_eq!(got_a.level, baseline_a.level);
                        let got_b = client.generate(tests_b).expect("generate b");
                        assert_eq!(got_b.witness, baseline_b.witness);
                        assert_eq!(got_b.level, baseline_b.level);
                    }
                });
            }
        });

        // Batch endpoint agrees with the singles.
        let batch = warmup
            .generate_batch(&[tests_a.clone(), tests_b.clone()])
            .expect("batch");
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].witness, baseline_a.witness);
        assert_eq!(batch[1].witness, baseline_b.witness);

        // Disturb an edge no stored witness protects: the server repairs the
        // store, the epoch advances, and subsequent queries are warm again.
        let epoch_before = warmup.healthz().expect("healthz");
        let flip = graph
            .edges()
            .find(|&(u, v)| {
                !baseline_a.witness.subgraph.contains_edge(u, v)
                    && !baseline_b.witness.subgraph.contains_edge(u, v)
            })
            .expect("an unprotected edge exists");
        let disturb = warmup.disturb(&[flip]).expect("disturb");
        assert_eq!(disturb.flips_applied, 1);
        assert_eq!(
            disturb.untouched + disturb.reverified + disturb.repaired,
            2,
            "both stored witnesses were swept"
        );
        let epoch_after = warmup.healthz().expect("healthz");
        assert!(epoch_after > epoch_before, "epoch advances on disturbance");

        let repaired = warmup.generate(&tests_a).expect("generate after disturb");
        assert!(repaired.witness.subgraph.contains_node(tests_a[0]));
        assert!(repaired.level.rank() >= WitnessLevel::NotAWitness.rank());

        // Stats are coherent: queries add up, the store holds both sets, and
        // the per-worker counts account for every request.
        let (snapshot, per_worker) = warmup.stats().expect("stats");
        assert_eq!(snapshot.stored, 2);
        assert_eq!(snapshot.epoch, epoch_after);
        assert_eq!(snapshot.workers, 1, "engine itself runs sequential queries");
        // 2 warmup + 12 hammered + 2 batch + 1 repair-read = 17 generate calls
        assert_eq!(snapshot.stats.queries, 17);
        assert!(
            snapshot.stats.warm_hits >= 14,
            "most queries were store hits"
        );
        assert_eq!(per_worker.len(), 3);

        // Error paths: out-of-range node, malformed JSON, unknown route.
        let bad = Json::obj([("nodes", Json::nums([usize::MAX >> 8]))]);
        let (status, body) = warmup
            .request("POST", "/generate", Some(&bad))
            .expect("request");
        assert_eq!(status, 400, "{body:?}");
        let (status, _) = warmup.request("POST", "/nope", None).expect("request");
        assert_eq!(status, 404);
        let (status, _) = warmup.request("GET", "/generate", None).expect("request");
        assert_eq!(status, 405, "wrong method on a known route is 405, not 404");

        warmup.shutdown().expect("shutdown");
        server_thread.join().expect("server thread")
    });

    // 1 warmup connection + 2 client threads = 3 served connections, and the
    // pool counted every request.
    assert_eq!(report.connections, 3);
    assert_eq!(report.requests_per_worker.len(), 3);
    // warmup: 2 gen + 1 batch + 2 healthz + 1 disturb + 1 gen + 1 stats
    //         + 3 error probes + 1 shutdown = 12; hammer threads: 6 each.
    assert_eq!(report.requests_total(), 24);
}

#[test]
fn shutdown_closes_other_kept_alive_connections() {
    let ds = citeseer::build(Scale::Tiny, 6);
    let appnp = ds.train_appnp(8, 6);
    let engine = WitnessEngine::new(Arc::new(ds.graph.clone()), &appnp, quick_cfg());
    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let server_thread = scope.spawn(move || server.serve(engine_ref, 2).expect("serve"));

        // Client A keeps a connection alive; client B shuts the server down.
        let mut a = Client::connect(&addr).expect("connect a");
        a.healthz().expect("healthz before shutdown");
        let mut b = Client::connect(&addr).expect("connect b");
        b.shutdown().expect("shutdown");

        // A's in-flight connection still answers one more request (served
        // with `connection: close`), after which the pool drains — the join
        // below must not hang on A's open connection.
        a.healthz().expect("healthz during drain");
        let report = server_thread
            .join()
            .expect("server exits despite a's open connection");
        assert!(report.requests_total() >= 3);
    });
}

/// Reads one full `connection: close` HTTP response off a raw socket.
fn raw_request(addr: &str, request: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect raw");
    stream.write_all(request.as_bytes()).expect("write raw");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("read raw");
    reply
}

#[test]
fn deprecated_generate_batch_alias_matches_canonical_path() {
    let ds = citeseer::build(Scale::Tiny, 8);
    let appnp = ds.train_appnp(8, 8);
    let engine = WitnessEngine::new(Arc::new(ds.graph.clone()), &appnp, quick_cfg());
    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let queries = [ds.pick_test_nodes(2, 5), ds.pick_test_nodes(2, 11)];

    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let server_thread = scope.spawn(move || server.serve(engine_ref, 2).expect("serve"));

        let body = wire::versioned(Json::obj([(
            "queries",
            Json::Arr(
                queries
                    .iter()
                    .map(|nodes| Json::nums(nodes.iter().copied()))
                    .collect(),
            ),
        )]));
        let mut client = Client::connect(&addr).expect("connect");

        // Batch equivalence: the deprecated spelling answers byte-identical
        // results to the canonical path. Warm the store first — a cold call
        // carries nonzero session stats (inference calls, elapsed time) that
        // a warm hit does not, and those ride the response.
        client
            .request("POST", "/generate/batch", Some(&body))
            .expect("warm the store");
        let (status, canonical) = client
            .request("POST", "/generate/batch", Some(&body))
            .expect("canonical batch");
        assert_eq!(status, 200);
        let (status, legacy) = client
            .request("POST", "/generate_batch", Some(&body))
            .expect("legacy batch");
        assert_eq!(status, 200);
        assert_eq!(
            canonical.encode(),
            legacy.encode(),
            "alias and canonical path answer identically"
        );

        // Only the deprecated spelling carries the Deprecation header.
        let raw_body = body.encode();
        let legacy_raw = raw_request(
            &addr,
            &format!(
                "POST /generate_batch HTTP/1.1\r\nconnection: close\r\n\
                 content-length: {}\r\n\r\n{raw_body}",
                raw_body.len()
            ),
        );
        assert!(legacy_raw.starts_with("HTTP/1.1 200"), "got: {legacy_raw}");
        assert!(
            legacy_raw.contains("deprecation: @0; successor=\"/generate/batch\""),
            "legacy alias advertises its successor: {legacy_raw}"
        );
        let canonical_raw = raw_request(
            &addr,
            &format!(
                "POST /generate/batch HTTP/1.1\r\nconnection: close\r\n\
                 content-length: {}\r\n\r\n{raw_body}",
                raw_body.len()
            ),
        );
        assert!(canonical_raw.starts_with("HTTP/1.1 200"));
        assert!(
            !canonical_raw.contains("deprecation:"),
            "canonical path is not deprecated: {canonical_raw}"
        );

        // Structured error bodies: machine-readable code + retryable flag.
        let (status, body) = client.request("POST", "/nope", None).expect("404 probe");
        assert_eq!(status, 404);
        let error = wire::error_from_json(&body).expect("structured 404 body");
        assert_eq!(error.code, "not_found");
        assert!(!error.retryable);
        let (status, body) = client.request("GET", "/generate", None).expect("405 probe");
        assert_eq!(status, 405);
        let error = wire::error_from_json(&body).expect("structured 405 body");
        assert_eq!(error.code, "method_not_allowed");
        assert!(!error.retryable);

        // Version negotiation: missing and future "v" are typed rejections.
        let unversioned = Json::obj([("nodes", Json::nums(queries[0].iter().copied()))]);
        let (status, body) = client
            .request("POST", "/generate", Some(&unversioned))
            .expect("missing v");
        assert_eq!(status, 400);
        let error = wire::error_from_json(&body).expect("structured bad_version body");
        assert_eq!(error.code, "bad_version");
        let future = Json::obj([
            ("v", Json::num(2u64)),
            ("nodes", Json::nums(queries[0].iter().copied())),
        ]);
        let (status, body) = client
            .request("POST", "/generate", Some(&future))
            .expect("future v");
        assert_eq!(status, 400);
        let error = wire::error_from_json(&body).expect("structured future-version body");
        assert_eq!(error.code, "bad_version");
        assert!(
            error.detail.contains("unsupported wire version 2"),
            "detail names the offered version: {}",
            error.detail
        );

        client.shutdown().expect("shutdown");
        server_thread.join().expect("server thread");
    });
}

#[test]
fn malformed_http_gets_a_400_and_does_not_wedge_the_server() {
    use std::io::{Read, Write};

    let ds = citeseer::build(Scale::Tiny, 4);
    let appnp = ds.train_appnp(8, 4);
    let engine = WitnessEngine::new(Arc::new(ds.graph.clone()), &appnp, quick_cfg());
    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    std::thread::scope(|scope| {
        let engine_ref = &engine;
        let server_thread = scope.spawn(move || server.serve(engine_ref, 2).expect("serve"));

        // Raw garbage: the worker answers 400 and closes, nothing crashes.
        let mut raw = std::net::TcpStream::connect(&addr).expect("connect");
        raw.write_all(b"THIS IS NOT HTTP\r\n\r\n").expect("write");
        let mut reply = String::new();
        raw.read_to_string(&mut reply).expect("read");
        assert!(reply.starts_with("HTTP/1.1 400"), "got: {reply}");
        drop(raw);

        // A well-formed request with a malformed JSON body: 400, connection
        // stays usable.
        let mut client = Client::connect(&addr).expect("connect");
        let (status, body) = client
            .request("POST", "/disturb", Some(&Json::Str("not an object".into())))
            .expect("request");
        assert_eq!(status, 400, "{body:?}");
        assert!(client.healthz().is_ok(), "connection still serves");

        client.shutdown().expect("shutdown");
        server_thread.join().expect("join")
    });
}
