//! Chaos end-to-end: a served engine survives an injected fault storm with
//! *exact* accounting.
//!
//! A seeded [`FaultPlan`] drives worker panics, dropped connections, stalled
//! reads, dropped and truncated writes, and forced repair/regeneration
//! failures while three retrying clients hammer the server and the test
//! thread streams disturbances into the engine. The claims:
//!
//! * every client request is eventually answered (retry-assisted — no call
//!   surfaces an error to its caller);
//! * the final [`rcw_server::ServeReport`] reconciles to the request ledger:
//!   answered = delivered + dropped-write fires + truncated-write fires, and
//!   `worker_restarts` equals the injected panic count exactly;
//! * the engine's conservation law holds after the storm (every query is a
//!   warm hit, a session, a degraded serve, or a budget abort);
//! * no invalid witness is served: once the plan's engine faults are
//!   exhausted, `/generate` heals back to a non-stale witness that
//!   re-verifies at its reported level;
//! * the faults fire *mid-batch*: a single worker plus a start gate lines
//!   the clients' first generates up behind the injected claim stall, so
//!   the admission scheduler claims them as one micro-batch and the
//!   `conn_drop`/`worker_panic`/write-side fires land on batch members —
//!   the ledger must balance under batching exactly as it does per-request.
//!
//! Fires at limited probability-1 sites are exact (atomically claimed), which
//! is what makes the ledger an equality rather than an inequality. The storm
//! is deterministic per `(spec, seed)`; `RCW_FAULT_SEEDS=<n>` widens the
//! sweep for the nightly chaos leg.

use rcw_core::{RcwConfig, WitnessEngine};
use rcw_datasets::{citeseer, Dataset, Scale};
use rcw_gnn::Appnp;
use rcw_graph::Disturbance;
use rcw_server::client::{Client, RetryPolicy};
use rcw_server::faults::{self, FaultPlan};
use rcw_server::{RcwServer, ServerConfig};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Every server-side site is probability 1 with a firing limit, so the
/// schedule is interleaving-independent: the first N hits fire, the ledger
/// balances exactly, and after exhaustion the drain phase runs fault-free.
/// The engine sites are limited too, so degraded entries can heal.
const STORM_SPEC: &str = "worker_panic=1@2,conn_drop=1@2,read_stall=1@1,\
                          write_drop=1@2,write_truncate=1@2,\
                          repair_fail=1@2,regen_fail=1@1";

fn storm_seeds() -> Vec<u64> {
    const DEFAULT: [u64; 2] = [3, 11];
    match std::env::var("RCW_FAULT_SEEDS") {
        Ok(n) => {
            let n: u64 = n
                .parse()
                .expect("RCW_FAULT_SEEDS must be a seed count, e.g. RCW_FAULT_SEEDS=64");
            (0..n).collect()
        }
        Err(_) => DEFAULT.to_vec(),
    }
}

fn quick_cfg() -> RcwConfig {
    RcwConfig {
        k: 1,
        local_budget: 1,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::default()
    }
}

fn storm_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        jitter: 0.5,
        budget: None,
    }
}

/// What one client thread did: calls that were answered, and anything that
/// failed (failures are collected, not panicked, so the server thread always
/// gets its shutdown and the scope never wedges on a join).
#[derive(Default)]
struct ClientLedger {
    answered: usize,
    failures: Vec<String>,
}

impl ClientLedger {
    fn record<T>(&mut self, what: &str, result: Result<T, impl std::fmt::Display>) {
        match result {
            Ok(_) => self.answered += 1,
            Err(e) => self.failures.push(format!("{what}: {e}")),
        }
    }
}

fn run_storm(seed: u64, ds: &Dataset, appnp: &Appnp) {
    let plan = Arc::new(FaultPlan::parse(STORM_SPEC, seed).expect("storm spec parses"));
    let engine = WitnessEngine::new(Arc::new(ds.graph.clone()), appnp, quick_cfg())
        .with_fault_hook(plan.engine_hook());
    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    // A single worker: the injected read_stall wedges it on the very first
    // claim, so the other clients' gate-synchronized first generates queue
    // up and are claimed together as one micro-batch when the stall lifts —
    // every fault site then fires on or around batch members.
    let config = ServerConfig::single(&engine)
        .with_workers(1)
        .with_queue_bound(8)
        .with_io_timeout(Duration::from_secs(2))
        .with_faults(Arc::clone(&plan));

    let edges = ds.graph.edge_vec();
    let batch_gate = Arc::new(Barrier::new(3));
    let (report, ledger) = std::thread::scope(|scope| {
        let config_ref = &config;
        let server_thread = scope.spawn(move || server.serve_config(config_ref).expect("serve"));

        // Three retrying clients, each with its own query, so warm hits,
        // sessions, and repairs all happen under fire. The gate releases
        // their first generates simultaneously (well inside the admission
        // window of whichever becomes the batch head).
        let client_threads: Vec<_> = (0..3u64)
            .map(|tid| {
                let addr = addr.clone();
                let tests = ds.pick_test_nodes(2, seed.wrapping_add(tid));
                let batch_gate = Arc::clone(&batch_gate);
                scope.spawn(move || {
                    let mut ledger = ClientLedger::default();
                    let connected = Client::connect(&addr);
                    // Every thread reaches the gate whether or not its
                    // connect worked, so a failure can never wedge the
                    // others on the barrier.
                    batch_gate.wait();
                    let mut client = match connected {
                        Ok(client) => client,
                        Err(e) => {
                            ledger.failures.push(format!("client {tid} connect: {e}"));
                            return ledger;
                        }
                    };
                    client.set_retry(Some(storm_retry()));
                    for _ in 0..8 {
                        ledger.record("generate", client.generate(&tests));
                        ledger.record("healthz", client.healthz());
                        ledger.record("stats", client.stats());
                    }
                    ledger
                })
            })
            .collect();

        // Meanwhile, disturbances stream into the engine in-process: repairs
        // run (and are forced to fail, then degrade, then heal) while the
        // clients above keep querying.
        for chunk in edges.chunks(2).take(6) {
            engine.disturb(&[Disturbance::from_pairs(chunk.iter().copied())]);
            std::thread::sleep(Duration::from_millis(20));
        }

        let mut ledger = ClientLedger::default();
        for thread in client_threads {
            let done = thread.join().expect("client thread");
            ledger.answered += done.answered;
            ledger.failures.extend(done.failures);
        }

        // Drain phase: every limited server fault has been exhausted by the
        // storm (each fire consumed a request or connection), so plain
        // un-retried requests must now succeed — and the witness must have
        // healed back to a fresh, verifiable one.
        let mut drain = Client::connect(&addr).expect("drain connect");
        let tests = ds.pick_test_nodes(2, seed);
        let mut served = None;
        for _ in 0..5 {
            match drain.generate(&tests) {
                Ok(result) if !result.stale => {
                    ledger.answered += 1;
                    served = Some(result);
                    break;
                }
                // A stale serve is an answered request too; the next query
                // re-attempts the heal (the regen fault site is exhausted).
                Ok(_) => ledger.answered += 1,
                Err(e) => ledger.failures.push(format!("drain generate: {e}")),
            }
        }
        match served {
            Some(result) => {
                let recheck = engine.verify(&result.witness);
                if recheck.level != result.level {
                    ledger.failures.push(format!(
                        "served witness level {:?} does not re-verify (got {:?})",
                        result.level, recheck.level
                    ));
                }
            }
            None => ledger
                .failures
                .push("witness never healed after the storm".into()),
        }

        // The wire-visible restart and batching counters must already agree
        // with the plan and the gate.
        match drain.request("GET", "/stats", None) {
            Ok((200, body)) => {
                ledger.answered += 1;
                let server_obj = body.field("server").expect("server object");
                let restarts = server_obj
                    .field("worker_restarts")
                    .and_then(|r| r.as_u64())
                    .expect("server.worker_restarts on the wire");
                assert_eq!(
                    restarts as usize,
                    plan.fired(faults::SITE_WORKER_PANIC),
                    "seed {seed}: /stats restart count"
                );
                let batches = server_obj
                    .field("batches_formed")
                    .and_then(|b| b.as_u64())
                    .expect("server.batches_formed on the wire");
                assert!(
                    batches >= 1,
                    "seed {seed}: the gated first generates never formed a micro-batch"
                );
            }
            other => ledger.failures.push(format!("raw stats: {other:?}")),
        }

        match drain.shutdown() {
            Ok(()) => ledger.answered += 1,
            Err(e) => ledger.failures.push(format!("shutdown: {e}")),
        }
        (server_thread.join().expect("server thread"), ledger)
    });

    assert!(
        ledger.failures.is_empty(),
        "seed {seed}: requests failed through retries:\n{}",
        ledger.failures.join("\n")
    );

    // The storm fired every limited server site to its cap: enough requests
    // and connections passed each site for the probability-1 rules to
    // exhaust deterministically.
    assert_eq!(plan.fired(faults::SITE_WORKER_PANIC), 2, "seed {seed}");
    assert_eq!(plan.fired(faults::SITE_CONN_DROP), 2, "seed {seed}");
    assert_eq!(plan.fired(faults::SITE_WRITE_DROP), 2, "seed {seed}");
    assert_eq!(plan.fired(faults::SITE_WRITE_TRUNCATE), 2, "seed {seed}");

    // Exact request ledger: every answered request either reached its client
    // or was eaten by a write-side fault; panicked and dropped connections
    // never count as answered. Restarts equal injected panics exactly.
    assert_eq!(
        report.requests_total(),
        ledger.answered
            + plan.fired(faults::SITE_WRITE_DROP)
            + plan.fired(faults::SITE_WRITE_TRUNCATE),
        "seed {seed}: answered = delivered + write faults"
    );
    assert_eq!(
        report.worker_restarts,
        plan.fired(faults::SITE_WORKER_PANIC),
        "seed {seed}: every injected panic respawned its worker"
    );
    assert!(
        report.batches_formed >= 1,
        "seed {seed}: the storm must exercise the mid-batch fault paths"
    );

    // Engine conservation law: every query the engine processed is exactly
    // one of warm hit, full session, degraded serve, or budget abort.
    let stats = engine.stats();
    assert_eq!(
        stats.queries,
        stats.warm_hits + stats.sessions_run + stats.degraded_serves + stats.budget_aborts,
        "seed {seed}: engine query conservation"
    );
}

#[test]
fn fault_storm_is_survived_with_exact_accounting() {
    let ds = citeseer::build(Scale::Tiny, 23);
    let appnp = ds.train_appnp(8, 23);
    for seed in storm_seeds() {
        run_storm(seed, &ds, &appnp);
    }
}
