//! CI smoke test for the `rcw_serve` binary: spawn it on an ephemeral port,
//! run generate / disturb / stats round-trips over TCP, and assert a clean
//! graceful shutdown. Runs under plain `cargo test` (cargo builds the binary
//! and exposes its path via `CARGO_BIN_EXE_rcw_serve`).

use rcw_server::client::Client;
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

#[test]
fn rcw_serve_round_trips_and_shuts_down_cleanly() {
    let exe = env!("CARGO_BIN_EXE_rcw_serve");
    let mut child = Command::new(exe)
        .args([
            "--scale",
            "tiny",
            "--workers",
            "2",
            "--seed",
            "5",
            "--addr",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rcw_serve");

    // First stdout line announces the bound address.
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read announce line");
    let addr = line
        .trim()
        .strip_prefix("rcw-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
        .to_string();

    let result = std::panic::catch_unwind(move || {
        let mut client = Client::connect(&addr).expect("connect");
        let epoch = client.healthz().expect("healthz");

        // generate: cold, then warm — same witness both times
        let cold = client.generate(&[0, 1]).expect("cold generate");
        assert!(cold.witness.subgraph.contains_node(0));
        assert!(cold.witness.subgraph.contains_node(1));
        let warm = client.generate(&[0, 1]).expect("warm generate");
        assert_eq!(cold.witness, warm.witness);
        assert_eq!(cold.level, warm.level);

        // disturb: flipping one pair advances the epoch and sweeps the store
        let report = client.disturb(&[(2, 3)]).expect("disturb");
        assert_eq!(report.flips_applied, 1);
        assert!(report.epoch > epoch);
        assert_eq!(report.untouched + report.reverified + report.repaired, 1);

        // stats: counters reflect exactly what this session did
        let (snapshot, per_worker) = client.stats().expect("stats");
        assert_eq!(snapshot.stats.queries, 2);
        assert_eq!(snapshot.stats.warm_hits, 1);
        assert_eq!(snapshot.stats.flips_applied, 1);
        assert_eq!(snapshot.stored, 1);
        assert_eq!(snapshot.epoch, report.epoch);
        assert_eq!(per_worker.len(), 2);
        assert_eq!(
            per_worker.iter().sum::<usize>(),
            5,
            "healthz + 2 generates + disturb + this stats request are counted"
        );

        client.shutdown().expect("shutdown");
    });

    // Graceful shutdown: the process must exit successfully on its own.
    let deadline = Instant::now() + Duration::from_secs(60);
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break Some(status),
            None if Instant::now() > deadline => break None,
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    let status = match status {
        Some(status) => status,
        None => {
            let _ = child.kill();
            panic!("rcw_serve did not exit within the deadline");
        }
    };
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
    assert!(status.success(), "rcw_serve exited with {status}");
}
