//! Sharded chaos: a 4-shard served engine survives an injected fault storm
//! plus a disturbance storm with an *exact* routing ledger.
//!
//! The claims, checked per seed:
//!
//! * every retried client request is eventually answered;
//! * the routing ledger balances exactly under fire:
//!   `queries == routed + halo_escapes` and `routed == Σ routed_per_shard`,
//!   both in-process and as decoded from the `/stats` wire;
//! * the ledger agrees with the engine tier: the aggregated engine snapshot
//!   processed exactly `queries` generates, and the conservation law
//!   (`queries == warm_hits + sessions + degraded + aborts`) holds across
//!   the summed shard + escape engines;
//! * `disturbs` counts every storm disturbance and each one fanned out to at
//!   most the engines covering its flips.
//!
//! The storm is deterministic per `(spec, seed)`; `RCW_FAULT_SEEDS=<n>`
//! widens the sweep for the nightly sharded-chaos leg.

use rcw_core::RcwConfig;
use rcw_datasets::{citeseer, Dataset, Scale};
use rcw_gnn::Appnp;
use rcw_graph::Disturbance;
use rcw_server::client::{Client, RetryPolicy};
use rcw_server::faults::FaultPlan;
use rcw_server::{wire, RcwServer, ServerConfig};
use rcw_shard::{RoutePolicy, ShardedEngine};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Same probability-1 limited-site recipe as the single-engine chaos test;
/// the engine-side sites (repair/regen failures) now land inside whichever
/// shard or escape engine happens to run the sweep.
const STORM_SPEC: &str = "worker_panic=1@1,conn_drop=1@1,read_stall=1@1,\
                          write_drop=1@1,write_truncate=1@1,\
                          repair_fail=1@2,regen_fail=1@1";

const NUM_SHARDS: usize = 4;

fn storm_seeds() -> Vec<u64> {
    const DEFAULT: [u64; 2] = [5, 19];
    match std::env::var("RCW_FAULT_SEEDS") {
        Ok(n) => {
            let n: u64 = n
                .parse()
                .expect("RCW_FAULT_SEEDS must be a seed count, e.g. RCW_FAULT_SEEDS=64");
            (0..n).collect()
        }
        Err(_) => DEFAULT.to_vec(),
    }
}

/// Small verification horizon so the halo stays a strict subset of the graph
/// and the escape path is actually exercised alongside shard routing.
fn quick_cfg() -> RcwConfig {
    RcwConfig {
        k: 1,
        local_budget: 1,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 4,
        ppr_iters: 4,
        ..RcwConfig::default()
    }
}

fn storm_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(100),
        jitter: 0.5,
        budget: None,
    }
}

fn run_storm(seed: u64, ds: &Dataset, appnp: &Appnp) {
    let plan = Arc::new(FaultPlan::parse(STORM_SPEC, seed).expect("storm spec parses"));
    let cfg = quick_cfg();
    let halo = RoutePolicy::for_model(appnp, &cfg).ball_radius;
    let engine = ShardedEngine::new(Arc::new(ds.graph.clone()), appnp, cfg, NUM_SHARDS, halo)
        .with_fault_hook(plan.engine_hook());
    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let config = ServerConfig::single(&engine)
        .with_workers(1)
        .with_queue_bound(8)
        .with_io_timeout(Duration::from_secs(2))
        .with_faults(Arc::clone(&plan));

    let edges = ds.graph.edge_vec();
    let batch_gate = Arc::new(Barrier::new(3));
    let mut storm_disturbs = 0usize;
    let (failures, wire_sharding) = std::thread::scope(|scope| {
        let config_ref = &config;
        let server_thread = scope.spawn(move || server.serve_config(config_ref).expect("serve"));

        let client_threads: Vec<_> = (0..3u64)
            .map(|tid| {
                let addr = addr.clone();
                let tests = ds.pick_test_nodes(2, seed.wrapping_add(tid));
                let batch_gate = Arc::clone(&batch_gate);
                scope.spawn(move || {
                    let mut failures: Vec<String> = Vec::new();
                    let connected = Client::connect(&addr);
                    batch_gate.wait();
                    let mut client = match connected {
                        Ok(client) => client,
                        Err(e) => {
                            failures.push(format!("client {tid} connect: {e}"));
                            return failures;
                        }
                    };
                    client.set_retry(Some(storm_retry()));
                    for round in 0..6 {
                        if let Err(e) = client.generate(&tests) {
                            failures.push(format!("client {tid} generate {round}: {e}"));
                        }
                        // Single-node queries exercise shard routing; the
                        // two-node query above has split owners more often
                        // and exercises the escape path.
                        if let Err(e) = client.generate(&tests[..1]) {
                            failures.push(format!("client {tid} single {round}: {e}"));
                        }
                    }
                    failures
                })
            })
            .collect();

        // Disturbance storm in-process: flips fan out to the covering shards
        // while clients keep querying through injected faults.
        for chunk in edges.chunks(2).take(6) {
            engine.disturb(&[Disturbance::from_pairs(chunk.iter().copied())]);
            storm_disturbs += 1;
            std::thread::sleep(Duration::from_millis(15));
        }

        let mut failures: Vec<String> = Vec::new();
        for thread in client_threads {
            failures.extend(thread.join().expect("client thread"));
        }

        // Drain: the limited fault sites are exhausted, so plain requests
        // succeed; pull the sharding ledger off the wire.
        let mut drain = Client::connect(&addr).expect("drain connect");
        let tests = ds.pick_test_nodes(1, seed);
        if let Err(e) = drain.generate(&tests) {
            failures.push(format!("drain generate: {e}"));
        }
        let wire_sharding = match drain.request("GET", "/stats", None) {
            Ok((200, body)) => {
                let sharding = body
                    .field("engine")
                    .expect("engine snapshot on the wire")
                    .field("sharding")
                    .expect("sharded engine exposes its routing ledger");
                Some(wire::shard_stats_from_json(sharding).expect("sharding decodes"))
            }
            other => {
                failures.push(format!("raw stats: {other:?}"));
                None
            }
        };
        if let Err(e) = drain.shutdown() {
            failures.push(format!("shutdown: {e}"));
        }
        server_thread.join().expect("server thread");
        (failures, wire_sharding)
    });

    assert!(
        failures.is_empty(),
        "seed {seed}: requests failed through retries:\n{}",
        failures.join("\n")
    );

    // Exact routing ledger, in-process and over the wire.
    let stats = engine.shard_stats();
    assert!(stats.ledger_balanced(), "seed {seed}: {stats:?}");
    assert_eq!(
        stats.routed,
        stats.routed_per_shard.iter().sum::<usize>(),
        "seed {seed}: per-shard routing must tile the routed count"
    );
    assert!(stats.queries > 0, "seed {seed}: storm produced no queries");
    let wire_stats = wire_sharding.expect("sharding ledger decoded from /stats");
    assert!(
        wire_stats.ledger_balanced(),
        "seed {seed}: wire ledger {wire_stats:?}"
    );
    assert_eq!(
        wire_stats.routed_per_shard.len(),
        NUM_SHARDS,
        "seed {seed}: wire ledger shard count"
    );

    // Disturbance accounting: every storm disturbance counted once, and each
    // fanned out to at most every engine covering its flips.
    assert_eq!(stats.disturbs, storm_disturbs, "seed {seed}");
    assert!(
        stats.fanout_applications <= stats.disturbs * NUM_SHARDS,
        "seed {seed}: fan-out exceeded the shard count"
    );

    // The routing ledger agrees with the engine tier, and the conservation
    // law survives aggregation across shard + escape engines.
    let snap = engine.snapshot();
    assert_eq!(
        snap.stats.queries, stats.queries,
        "seed {seed}: every routed query reached exactly one engine"
    );
    assert_eq!(
        snap.stats.queries,
        snap.stats.warm_hits
            + snap.stats.sessions_run
            + snap.stats.degraded_serves
            + snap.stats.budget_aborts,
        "seed {seed}: aggregated engine query conservation"
    );
}

#[test]
fn sharded_fault_storm_keeps_the_routing_ledger_exact() {
    let ds = citeseer::build(Scale::Tiny, 31);
    let appnp = ds.train_appnp(8, 31);
    for seed in storm_seeds() {
        run_storm(seed, &ds, &appnp);
    }
}
