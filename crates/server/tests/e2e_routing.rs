//! Multi-engine acceptance test: one server fronts two differently-modeled
//! engines behind route prefixes (`/gcn/...`, `/appnp/...`), one of them in
//! `with_workers > 1` parallel-session mode, with per-engine and aggregate
//! stats, and all answers staying coherent with the engines observed
//! directly.

use rcw_core::{RcwConfig, WitnessEngine};
use rcw_datasets::{citeseer, Scale};
use rcw_server::client::{Client, ClientError};
use rcw_server::faults::FaultPlan;
use rcw_server::{RcwServer, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn quick_cfg() -> RcwConfig {
    RcwConfig {
        k: 1,
        local_budget: 1,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::default()
    }
}

#[test]
fn two_engines_route_by_prefix_and_parallel_sessions_verify() {
    let ds = citeseer::build(Scale::Tiny, 8);
    let gcn = ds.train_gcn(8, 8);
    let appnp = ds.train_appnp(8, 8);
    let graph = Arc::new(ds.graph.clone());
    // Two engines over the same graph: a sequential GCN engine (the default
    // route) and an APPNP engine whose single /generate fans its
    // expand–verify rounds across 2 session workers while the HTTP pool
    // stays fixed at 3.
    let gcn_engine = WitnessEngine::new(Arc::clone(&graph), &gcn, quick_cfg());
    let appnp_engine = WitnessEngine::new(Arc::clone(&graph), &appnp, quick_cfg()).with_workers(2);
    let tests = ds.pick_test_nodes(2, 21);

    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let config = ServerConfig {
        routes: Vec::new(),
        workers: 3,
        queue_bound: 64,
        default_deadline: None,
        io_timeout: Duration::from_secs(5),
        faults: Arc::new(FaultPlan::none()),
    }
    .with_route("gcn", &gcn_engine)
    .with_route("appnp", &appnp_engine);
    assert!(config.validate().is_ok());

    let report = std::thread::scope(|scope| {
        let config_ref = &config;
        let server_thread = scope.spawn(move || server.serve_config(config_ref).expect("serve"));

        let mut client = Client::connect(&addr).expect("connect");

        // Bare endpoints route to the first registered engine (gcn).
        let bare = client.generate(&tests).expect("bare generate");
        // Explicit prefixes select each engine.
        client.set_route(Some("gcn"));
        let via_gcn = client.generate(&tests).expect("routed gcn generate");
        assert_eq!(bare.witness, via_gcn.witness, "bare == first route");
        assert_eq!(bare.level, via_gcn.level);

        client.set_route(Some("appnp"));
        let via_appnp = client.generate(&tests).expect("routed appnp generate");
        for &t in &tests {
            assert!(via_appnp.witness.subgraph.contains_node(t));
        }
        // Parallel-session equivalence: the served answer is exactly what
        // the engine stored and re-verifies at the level it reported, and a
        // warm repeat over the wire returns the identical witness.
        let recheck = appnp_engine.verify(&via_appnp.witness);
        assert_eq!(recheck.level, via_appnp.level, "parallel answer verifies");
        let warm = client.generate(&tests).expect("warm appnp generate");
        assert_eq!(warm.witness, via_appnp.witness);
        assert_eq!(warm.level, via_appnp.level);

        // Per-engine healthz names its route.
        let (status, body) = client.request("GET", "/healthz", None).expect("healthz");
        assert_eq!(status, 200);
        assert_eq!(body.field("engine").unwrap().as_str().unwrap(), "appnp");

        // Routed stats report the selected engine; the aggregate lists both.
        let (appnp_snapshot, per_worker) = client.stats().expect("appnp stats");
        assert_eq!(appnp_snapshot.workers, 2, "session workers, not pool size");
        assert_eq!(appnp_snapshot.stats.queries, 2);
        assert_eq!(appnp_snapshot.stats.warm_hits, 1);
        assert_eq!(per_worker.len(), 3, "HTTP pool stays fixed");
        client.set_route(None);
        let (default_snapshot, _) = client.stats().expect("default stats");
        assert_eq!(default_snapshot.workers, 1);
        assert_eq!(default_snapshot.stats.queries, 2);
        let (status, body) = client.request("GET", "/stats", None).expect("raw stats");
        assert_eq!(status, 200);
        let engines = body.field("engines").expect("engines object");
        for name in ["gcn", "appnp"] {
            assert!(engines.get(name).is_some(), "stats lists engine '{name}'");
        }

        // Disturb through one route repairs only that engine's store; each
        // engine owns its own graph epoch stream.
        client.set_route(Some("appnp"));
        let flip = graph
            .edges()
            .find(|&(u, v)| !via_appnp.witness.subgraph.contains_edge(u, v))
            .expect("unprotected edge");
        let disturb = client.disturb(&[flip]).expect("disturb appnp");
        assert_eq!(disturb.flips_applied, 1);
        client.set_route(Some("gcn"));
        let (gcn_snapshot, _) = client.stats().expect("gcn stats");
        assert_eq!(
            gcn_snapshot.stats.flips_applied, 0,
            "gcn engine untouched by the appnp disturbance"
        );

        // Unknown prefixes and routed shutdowns do not exist.
        client.set_route(None);
        let (status, _) = client
            .request("POST", "/nope/generate", None)
            .expect("request");
        assert_eq!(status, 404);
        match client.request("POST", "/appnp/shutdown", None) {
            Ok((404, _)) => {}
            other => panic!("routed shutdown must 404, got {other:?}"),
        }

        client.shutdown().expect("shutdown");
        server_thread.join().expect("server thread")
    });

    assert_eq!(report.connections, 1);
    assert_eq!(report.overloaded, 0);
    assert_eq!(report.deadline_rejections, 0);
    // generate x4 (bare, gcn, appnp cold, appnp warm) + healthz + stats x4
    // (appnp, default, raw aggregate, gcn) + disturb + 2 error probes
    // + shutdown = 13 requests.
    assert_eq!(report.requests_total(), 13);
}

#[test]
fn rcw_serve_binary_serves_two_engines_from_model_specs() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    let exe = env!("CARGO_BIN_EXE_rcw_serve");
    let mut child = Command::new(exe)
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue",
            "16",
            "--seed",
            "5",
            "--model",
            "gcn=gcn:tiny",
            "--model",
            "appnp=appnp:tiny:2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rcw_serve");

    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read announce line");
    let addr = line
        .trim()
        .strip_prefix("rcw-serve listening on http://")
        .unwrap_or_else(|| panic!("unexpected announce line: {line:?}"))
        .to_string();

    let result = std::panic::catch_unwind(move || {
        let mut client = Client::connect(&addr).expect("connect");
        // First spec is the default route.
        let (_, body) = client.request("GET", "/healthz", None).expect("healthz");
        assert_eq!(body.field("engine").unwrap().as_str().unwrap(), "gcn");
        // Both engines answer under their prefixes; the appnp one runs
        // 2 session workers per query.
        for route in ["gcn", "appnp"] {
            client.set_route(Some(route));
            let out = client.generate(&[0, 1]).expect("routed generate");
            assert!(out.witness.subgraph.contains_node(0));
            let (snapshot, _) = client.stats().expect("routed stats");
            assert_eq!(snapshot.stats.queries, 1);
            if route == "appnp" {
                assert_eq!(snapshot.workers, 2);
            }
        }
        client.set_route(None);
        client.shutdown().expect("shutdown");
    });

    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    let status = loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => break Some(status),
            None if std::time::Instant::now() > deadline => break None,
            None => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    };
    let status = match status {
        Some(status) => status,
        None => {
            let _ = child.kill();
            panic!("rcw_serve did not exit within the deadline");
        }
    };
    if let Err(panic) = result {
        std::panic::resume_unwind(panic);
    }
    assert!(status.success(), "rcw_serve exited with {status}");
}

#[test]
fn unknown_route_is_a_typed_protocol_error() {
    let ds = citeseer::build(Scale::Tiny, 4);
    let gcn = ds.train_gcn(8, 4);
    let engine = WitnessEngine::new(Arc::new(ds.graph.clone()), &gcn, quick_cfg());
    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let config = ServerConfig::single(&engine).with_workers(1);
    std::thread::scope(|scope| {
        let config_ref = &config;
        let server_thread = scope.spawn(move || server.serve_config(config_ref).expect("serve"));
        let mut client = Client::connect(&addr).expect("connect");
        client.set_route(Some("missing"));
        match client.generate(&[0]) {
            Err(ClientError::Protocol(404, message)) => {
                assert!(message.contains("no route"), "got: {message}")
            }
            other => panic!("expected 404, got {other:?}"),
        }
        client.set_route(None);
        client.shutdown().expect("shutdown");
        server_thread.join().expect("server thread")
    });
}
