//! Wire-codec sweep: every domain type round-trips through its JSON encoding
//! byte-for-byte (encode → parse → decode → re-encode), and the decoders
//! reject malformed payloads with errors rather than panics.

use rcw_core::{
    DisturbReport, EngineSnapshot, EngineStats, GenerationResult, GenerationStats, Witness,
    WitnessLevel,
};
use rcw_graph::{Disturbance, EdgeSubgraph};
use rcw_server::wire::{self, Json};
use std::time::Duration;

fn witness_cases() -> Vec<Witness> {
    vec![
        Witness::trivial_nodes(vec![3], vec![1]),
        Witness::new(
            EdgeSubgraph::from_edges([(0, 1), (1, 2), (4, 7)]),
            vec![1, 4],
            vec![0, 5],
        ),
        {
            let mut sg = EdgeSubgraph::from_edges([(10, 11)]);
            sg.add_node(99); // isolated node outside any edge
            Witness::new(sg, vec![99], vec![2])
        },
    ]
}

#[test]
fn witness_round_trips() {
    for w in witness_cases() {
        let encoded = wire::witness_to_json(&w).encode();
        let decoded = wire::witness_from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, w, "{encoded}");
        // stability: re-encoding the decoded value is byte-identical
        assert_eq!(wire::witness_to_json(&decoded).encode(), encoded);
    }
}

#[test]
fn disturbance_round_trips() {
    for d in [
        Disturbance::new(),
        Disturbance::from_pairs([(0, 1)]),
        Disturbance::from_pairs([(5, 2), (7, 9), (0, 3)]),
    ] {
        let encoded = wire::disturbance_to_json(&d).encode();
        let decoded = wire::disturbance_from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, d);
        assert_eq!(wire::disturbance_to_json(&decoded).encode(), encoded);
    }
}

#[test]
fn engine_stats_and_snapshot_round_trip() {
    let stats = EngineStats {
        queries: 17,
        warm_hits: 14,
        sessions_run: 3,
        flips_applied: 2,
        repairs_skipped: 1,
        repairs_reverified: 1,
        repairs_searched: 1,
        repairs_regenerated: 1,
        repairs_degraded: 1,
        degraded_serves: 2,
        budget_aborts: 1,
    };
    let encoded = wire::engine_stats_to_json(&stats).encode();
    let decoded = wire::engine_stats_from_json(&Json::parse(&encoded).unwrap()).unwrap();
    assert_eq!(decoded, stats);

    let snapshot = EngineSnapshot {
        stats,
        stored: 2,
        epoch: 41,
        feature_epoch: 40,
        hood_hits: 9,
        hood_misses: 4,
        workers: 3,
    };
    let encoded = wire::snapshot_to_json(&snapshot).encode();
    let decoded = wire::snapshot_from_json(&Json::parse(&encoded).unwrap()).unwrap();
    assert_eq!(decoded.stats, snapshot.stats);
    assert_eq!(decoded.stored, snapshot.stored);
    assert_eq!(decoded.epoch, snapshot.epoch);
    assert_eq!(decoded.feature_epoch, snapshot.feature_epoch);
    assert_eq!(decoded.hood_hits, snapshot.hood_hits);
    assert_eq!(decoded.hood_misses, snapshot.hood_misses);
    assert_eq!(decoded.workers, snapshot.workers);
}

#[test]
fn disturb_report_and_generation_result_round_trip() {
    let report = DisturbReport {
        epoch: 12,
        flips_applied: 3,
        footprint_size: 20,
        untouched: 1,
        reverified: 1,
        repaired: 1,
        regenerated: 1,
        degraded: 1,
        stats: GenerationStats {
            inference_calls: 123,
            disturbances_verified: 45,
            expand_rounds: 6,
            elapsed: Duration::from_micros(7890),
        },
        // Entry-level outcomes ride the subscription stream, not the report
        // encoding, so the decoded report always has them empty.
        entries: Vec::new(),
    };
    let encoded = wire::disturb_report_to_json(&report).encode();
    let decoded = wire::disturb_report_from_json(&Json::parse(&encoded).unwrap()).unwrap();
    assert_eq!(wire::disturb_report_to_json(&decoded).encode(), encoded);
    assert_eq!(decoded.epoch, report.epoch);
    assert_eq!(decoded.stats.elapsed, report.stats.elapsed);

    for level in [
        WitnessLevel::NotAWitness,
        WitnessLevel::Factual,
        WitnessLevel::Counterfactual,
        WitnessLevel::Robust,
    ] {
        let result = GenerationResult {
            witness: witness_cases().remove(1),
            level,
            nontrivial: level == WitnessLevel::Robust,
            stale: level == WitnessLevel::Factual,
            stats: GenerationStats::default(),
        };
        let encoded = wire::generation_to_json(&result).encode();
        let decoded = wire::generation_from_json(&Json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded.witness, result.witness);
        assert_eq!(decoded.level, result.level);
        assert_eq!(decoded.nontrivial, result.nontrivial);
        assert_eq!(decoded.stale, result.stale);
        assert_eq!(wire::generation_to_json(&decoded).encode(), encoded);
    }
}

#[test]
fn level_strings_are_total_and_reversible() {
    for level in [
        WitnessLevel::NotAWitness,
        WitnessLevel::Factual,
        WitnessLevel::Counterfactual,
        WitnessLevel::Robust,
    ] {
        assert_eq!(
            wire::level_from_str(wire::level_to_str(level)).unwrap(),
            level
        );
    }
    assert!(wire::level_from_str("ROBUST").is_err());
    assert!(wire::level_from_str("").is_err());
}

#[test]
fn malformed_domain_payloads_are_rejected() {
    let cases: &[(&str, &str)] = &[
        // witness
        ("{}", "witness: empty object"),
        (
            r#"{"nodes":[],"edges":[],"test_nodes":[1],"labels":[]}"#,
            "witness: node/label length mismatch",
        ),
        (
            r#"{"nodes":[],"edges":[[1]],"test_nodes":[],"labels":[]}"#,
            "witness: edge arity",
        ),
        (
            r#"{"nodes":[],"edges":[[2,2]],"test_nodes":[],"labels":[]}"#,
            "witness: self-loop",
        ),
        (
            r#"{"nodes":[-1],"edges":[],"test_nodes":[],"labels":[]}"#,
            "witness: negative node id",
        ),
        (
            r#"{"nodes":[1.5],"edges":[],"test_nodes":[],"labels":[]}"#,
            "witness: fractional node id",
        ),
        (
            r#"{"nodes":"zebra","edges":[],"test_nodes":[],"labels":[]}"#,
            "witness: wrong node container type",
        ),
    ];
    for (payload, what) in cases {
        let parsed = Json::parse(payload).unwrap();
        assert!(wire::witness_from_json(&parsed).is_err(), "{what}");
    }

    assert!(wire::disturbance_from_json(&Json::parse("{}").unwrap()).is_err());
    assert!(
        wire::disturbance_from_json(&Json::parse(r#"{"flips":[[4,4]]}"#).unwrap()).is_err(),
        "self-loop flip"
    );
    assert!(
        wire::disturbance_from_json(&Json::parse(r#"{"flips":[[1,2],[3]]}"#).unwrap()).is_err(),
        "flip arity"
    );

    assert!(wire::engine_stats_from_json(&Json::parse("{}").unwrap()).is_err());
    assert!(wire::engine_stats_from_json(&Json::parse(r#"{"queries":"many"}"#).unwrap()).is_err());
    assert!(wire::snapshot_from_json(&Json::parse(r#"{"stored":1}"#).unwrap()).is_err());
    assert!(wire::disturb_report_from_json(&Json::parse(r#"{"epoch":1}"#).unwrap()).is_err());
    assert!(wire::generation_from_json(
        &Json::parse(r#"{"witness":{},"level":"robust","nontrivial":true}"#).unwrap()
    )
    .is_err());
    assert!(
        wire::generation_from_json(
            &Json::parse(
                r#"{"witness":{"nodes":[],"edges":[],"test_nodes":[],"labels":[]},"level":"extra-robust","nontrivial":true,"stats":{"inference_calls":0,"disturbances_verified":0,"expand_rounds":0,"elapsed_us":0}}"#
            )
            .unwrap()
        )
        .is_err(),
        "unknown level string"
    );
}
