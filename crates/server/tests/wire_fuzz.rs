//! Seeded corruption sweep over the wire codec: every decoder must answer
//! truncated, byte-flipped, and spliced payloads with a `WireError` (or a
//! clean parse failure) — never a panic. The corpus is derived from valid
//! encodings of every wire type, so the mutations land on realistic
//! structure, not just random noise.
//!
//! `RCW_WIRE_SEEDS=<n>` widens the sweep to `n` deterministic seeds (the
//! nightly chaos leg runs deeper); the default keeps tier-1 fast.

use rcw_core::{
    DisturbReport, EngineSnapshot, EngineStats, GenerationResult, GenerationStats, Witness,
    WitnessLevel,
};
use rcw_graph::{Disturbance, EdgeSubgraph};
use rcw_linalg::Rng;
use rcw_server::wire::{self, Json};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

fn fuzz_seeds() -> Vec<u64> {
    const DEFAULT: u64 = 8;
    let n = match std::env::var("RCW_WIRE_SEEDS") {
        Ok(n) => n
            .parse()
            .expect("RCW_WIRE_SEEDS must be a seed count, e.g. RCW_WIRE_SEEDS=64"),
        Err(_) => DEFAULT,
    };
    (0..n).collect()
}

/// A wire decoder, type-erased to "did decoding error?" (calling one must
/// never panic) so one loop drives every wire type.
type DecodeErrs = fn(&Json) -> bool;

/// One valid encoding per wire type, paired with its decoder.
fn corpus() -> Vec<(String, DecodeErrs)> {
    fn decode_witness(v: &Json) -> bool {
        wire::witness_from_json(v).is_err()
    }
    fn decode_disturbance(v: &Json) -> bool {
        wire::disturbance_from_json(v).is_err()
    }
    fn decode_stats(v: &Json) -> bool {
        wire::engine_stats_from_json(v).is_err()
    }
    fn decode_snapshot(v: &Json) -> bool {
        wire::snapshot_from_json(v).is_err()
    }
    fn decode_report(v: &Json) -> bool {
        wire::disturb_report_from_json(v).is_err()
    }
    fn decode_generation(v: &Json) -> bool {
        wire::generation_from_json(v).is_err()
    }

    let witness = Witness::new(
        EdgeSubgraph::from_edges([(0, 1), (1, 2), (4, 7)]),
        vec![1, 4],
        vec![0, 5],
    );
    let stats = EngineStats {
        queries: 17,
        warm_hits: 14,
        sessions_run: 3,
        flips_applied: 2,
        repairs_skipped: 1,
        repairs_reverified: 1,
        repairs_searched: 1,
        repairs_regenerated: 1,
        repairs_degraded: 1,
        degraded_serves: 2,
        budget_aborts: 1,
    };
    let snapshot = EngineSnapshot {
        stats: stats.clone(),
        stored: 2,
        epoch: 41,
        feature_epoch: 40,
        hood_hits: 9,
        hood_misses: 4,
        workers: 3,
    };
    let report = DisturbReport {
        epoch: 12,
        flips_applied: 3,
        footprint_size: 20,
        untouched: 1,
        reverified: 1,
        repaired: 1,
        regenerated: 1,
        degraded: 1,
        stats: GenerationStats {
            inference_calls: 123,
            disturbances_verified: 45,
            expand_rounds: 6,
            elapsed: Duration::from_micros(7890),
        },
        // Per-entry repair outcomes never cross the wire in the report (the
        // subscription stream carries them), so the corpus leaves them empty.
        entries: Vec::new(),
    };
    let generation = GenerationResult {
        witness: witness.clone(),
        level: WitnessLevel::Robust,
        nontrivial: true,
        stale: true,
        stats: GenerationStats::default(),
    };
    vec![
        (wire::witness_to_json(&witness).encode(), decode_witness),
        (
            wire::disturbance_to_json(&Disturbance::from_pairs([(5, 2), (7, 9), (0, 3)])).encode(),
            decode_disturbance,
        ),
        (wire::engine_stats_to_json(&stats).encode(), decode_stats),
        (wire::snapshot_to_json(&snapshot).encode(), decode_snapshot),
        (
            wire::disturb_report_to_json(&report).encode(),
            decode_report,
        ),
        (
            wire::generation_to_json(&generation).encode(),
            decode_generation,
        ),
    ]
}

/// One seeded corruption of `text`: truncation, byte flips, byte insertion,
/// or a splice of one payload into another — the failure modes a truncated
/// write or corrupted transport actually produces.
fn corrupt(text: &str, other: &str, rng: &mut Rng) -> String {
    let mut bytes = text.as_bytes().to_vec();
    match rng.gen_range(0..4u64) {
        0 => {
            // truncate at an arbitrary byte (mid-token, mid-escape, ...)
            bytes.truncate(rng.gen_range(0..bytes.len()));
        }
        1 => {
            // flip 1..4 bytes to arbitrary values
            for _ in 0..rng.gen_range(1..4usize) {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = (rng.next_u64() & 0xff) as u8;
            }
        }
        2 => {
            // insert structural noise where it hurts most
            let noise = [b'{', b'[', b'"', b',', b':', b'\\', b'0', 0xff];
            let at = rng.gen_range(0..bytes.len() + 1);
            bytes.insert(at, noise[(rng.next_u64() % noise.len() as u64) as usize]);
        }
        _ => {
            // splice: head of one payload, tail of another
            let cut = rng.gen_range(0..bytes.len());
            let other = other.as_bytes();
            let from = rng.gen_range(0..other.len());
            bytes.truncate(cut);
            bytes.extend_from_slice(&other[from..]);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn corrupted_payloads_error_and_never_panic() {
    let corpus = corpus();
    let mut failures: Vec<String> = Vec::new();
    for seed in fuzz_seeds() {
        let mut rng = Rng::seed_from_u64(0xf022_ee11 ^ seed);
        for round in 0..64 {
            let pick = rng.gen_range(0..corpus.len());
            let (ref text, decode) = corpus[pick];
            let other = &corpus[rng.gen_range(0..corpus.len())].0;
            let mutated = corrupt(text, other, &mut rng);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                // Parse may fail (fine); if it parses, the decoder must
                // reject or accept without panicking — a mutated payload can
                // decode successfully when the mutation hit redundant bytes.
                if let Ok(parsed) = Json::parse(&mutated) {
                    let _ = decode(&parsed);
                }
            }));
            if outcome.is_err() {
                failures.push(format!("seed {seed} round {round}: {mutated:?}"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "codec panicked on corrupted payloads:\n{}",
        failures.join("\n")
    );
}

/// Raw-body (zero-tree) decoders run straight off the byte stream, so the
/// corruption sweep hits them without the `Json::parse` pre-filter: the v1
/// envelope bodies and the NDJSON subscription frames.
#[test]
fn corrupted_raw_bodies_error_and_never_panic() {
    type RawDecodeErrs = fn(&str) -> bool;
    fn decode_generation_body(text: &str) -> bool {
        wire::generation_from_body(text).is_err()
    }
    fn decode_frame(text: &str) -> bool {
        wire::frame_from_body(text).is_err()
    }
    fn decode_error_body(text: &str) -> bool {
        match Json::parse(text) {
            Ok(v) => wire::error_from_json(&v).is_err(),
            Err(_) => true,
        }
    }

    let generation = GenerationResult {
        witness: Witness::new(
            EdgeSubgraph::from_edges([(0, 1), (1, 2), (4, 7)]),
            vec![1, 4],
            vec![0, 5],
        ),
        level: WitnessLevel::Robust,
        nontrivial: true,
        stale: false,
        stats: GenerationStats::default(),
    };
    let update = wire::WitnessUpdate {
        subscription: 3,
        disturbance: 9,
        outcome: rcw_core::RepairOutcome::Repaired,
        epoch: 12,
        result: generation.clone(),
    };
    let corpus: Vec<(String, RawDecodeErrs)> = vec![
        (
            wire::generation_to_body(&generation),
            decode_generation_body,
        ),
        (
            wire::subscribed_frame_to_body(1, 7, &[1, 4], &generation),
            decode_frame,
        ),
        (wire::update_frame_to_body(&update), decode_frame),
        (
            wire::error_to_body("overloaded", "queue full", true),
            decode_error_body,
        ),
    ];
    let mut failures: Vec<String> = Vec::new();
    for seed in fuzz_seeds() {
        let mut rng = Rng::seed_from_u64(0x5ab5_c01d ^ seed);
        for round in 0..64 {
            let pick = rng.gen_range(0..corpus.len());
            let (ref text, decode_errs) = corpus[pick];
            let other = &corpus[rng.gen_range(0..corpus.len())].0;
            let mutated = corrupt(text, other, &mut rng);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _ = decode_errs(&mutated);
            }));
            if outcome.is_err() {
                failures.push(format!("seed {seed} round {round}: {mutated:?}"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "raw-body codec panicked on corrupted payloads:\n{}",
        failures.join("\n")
    );
}

#[test]
fn dropping_any_field_is_rejected_never_defaulted() {
    // Structured mutation: drop one field from an otherwise valid object.
    // The type's own decoder must answer the missing field with Err — a
    // decoder that silently defaults a field would hide wire drift.
    for (text, decode_errs) in corpus() {
        let Ok(Json::Obj(fields)) = Json::parse(&text) else {
            panic!("corpus entry is not an object: {text}");
        };
        for skip in 0..fields.len() {
            let reduced = Json::Obj(
                fields
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != skip)
                    .map(|(_, kv)| kv.clone())
                    .collect(),
            );
            let (name, _) = &fields[skip];
            assert!(
                decode_errs(&reduced),
                "dropping field {name:?} from {text} must fail decoding"
            );
        }
    }
}
