//! Tentpole acceptance for witness subscriptions: a client that registers a
//! node set receives a `witness_update` frame for every disturbance whose
//! repair touches its entry — bit-exact with a fresh `/generate` at the same
//! epoch — and the server's delivery ledger is exact:
//! `updates_delivered + updates_shed == updates_owed`.
//!
//! Covered here:
//! * single-engine servers over both GCN and APPNP classifiers;
//! * a 4-shard [`ShardedEngine`] behind the same wire protocol;
//! * a fault storm (dropped connections, worker panics, forced repair
//!   failures) under which the ledger still balances exactly and every
//!   frame that does arrive is well-formed (`degraded` frames are
//!   stale-tagged rather than bit-exact — a fresh query may heal).
//!
//! The delivery protocol these tests lean on: the worker that serves a
//! `/disturb` sends every owed `Push` before its own `Respond` on the same
//! channel, so by the time the disturbing client has its `200`, every frame
//! owed for that disturbance is already queued (and flushed) to the
//! subscriber sockets. A timed read therefore only expires when no update
//! was owed.

use rcw_core::{RcwConfig, RepairOutcome, WitnessEngine};
use rcw_datasets::{citeseer, Scale};
use rcw_server::client::{Client, ClientError, SubscriptionStream};
use rcw_server::faults::FaultPlan;
use rcw_server::wire::WitnessUpdate;
use rcw_server::{RcwServer, ServerConfig};
use rcw_shard::{RoutePolicy, ShardedEngine};
use std::io::ErrorKind;
use std::sync::Arc;
use std::time::Duration;

fn quick_cfg() -> RcwConfig {
    RcwConfig {
        k: 1,
        local_budget: 1,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::default()
    }
}

/// The server-wide owed counter, read off the versioned `/stats` payload.
fn owed_updates(client: &mut Client) -> u64 {
    let (status, body) = client.request("GET", "/stats", None).expect("stats");
    assert_eq!(status, 200);
    body.field("server")
        .expect("server counters")
        .field("updates_owed")
        .expect("owed counter on the wire")
        .as_u64()
        .expect("owed is a count")
}

/// Reads one pending update, or `None` when the timed read expires (no
/// update was owed to this stream).
fn try_update(sub: &mut SubscriptionStream) -> Option<WitnessUpdate> {
    match sub.next_update() {
        Ok(Some(update)) => Some(update),
        Ok(None) => panic!("stream closed mid-test"),
        Err(ClientError::Io(e))
            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
        {
            None
        }
        Err(e) => panic!("stream error: {e}"),
    }
}

/// The fault-free protocol drill: two subscriptions, interleaved
/// disturbances from a control client, every received frame compared
/// bit-exactly against a fresh direct query. Returns how many updates the
/// two streams collected (for the caller's ledger check against the
/// [`rcw_server::ServeReport`]).
fn exercise_subscriptions(
    addr: &str,
    tests_a: &[usize],
    tests_b: &[usize],
    edges: &[(usize, usize)],
) -> u64 {
    let sub_a = Client::connect(addr)
        .expect("connect a")
        .subscribe(tests_a)
        .expect("subscribe a");
    let sub_b = Client::connect(addr)
        .expect("connect b")
        .subscribe(tests_b)
        .expect("subscribe b");
    assert_ne!(sub_a.id(), sub_b.id(), "subscription ids are distinct");

    let mut control = Client::connect(addr).expect("connect control");

    // The acknowledgement is bit-exact with a direct query of the same
    // nodes: subscribing warmed the store, so the direct query is the same
    // stored entry behind the wire.
    let direct_a = control.generate(tests_a).expect("direct a");
    assert_eq!(sub_a.ack().witness, direct_a.witness);
    assert_eq!(sub_a.ack().level, direct_a.level);
    assert_eq!(sub_a.epoch(), control.healthz().expect("healthz"));

    // The registered key is canonical: sorted, deduplicated.
    let mut key_a = tests_a.to_vec();
    key_a.sort_unstable();
    key_a.dedup();
    assert_eq!(sub_a.nodes(), &key_a[..]);
    let mut key_b = tests_b.to_vec();
    key_b.sort_unstable();
    key_b.dedup();

    let mut subs = [(sub_a, key_a), (sub_b, key_b)];
    for (sub, _) in subs.iter_mut() {
        sub.set_read_timeout(Some(Duration::from_millis(800)))
            .expect("read timeout");
    }

    let mut collected = 0u64;
    for (round, chunk) in edges.chunks(2).take(8).enumerate() {
        let owed_before = owed_updates(&mut control);
        let report = control.disturb(chunk).expect("disturb");
        assert_eq!(report.flips_applied, chunk.len());
        let owed_after = owed_updates(&mut control);

        let mut got = 0u64;
        for (sub, key) in subs.iter_mut() {
            let Some(update) = try_update(sub) else {
                continue;
            };
            got += 1;
            assert_eq!(update.subscription, sub.id(), "frame on the wrong stream");
            assert_eq!(
                update.disturbance,
                round as u64 + 1,
                "disturbance ids are sequential"
            );
            assert_eq!(
                update.epoch, report.epoch,
                "update stamped at the repair epoch"
            );

            // Bit-exactness: a fresh direct query at this epoch answers from
            // the same repaired entry the frame carried.
            let fresh = control.generate(key).expect("fresh generate");
            if update.outcome == RepairOutcome::Degraded {
                assert!(update.result.stale, "degraded updates are stale-tagged");
            } else {
                assert_eq!(update.result.witness, fresh.witness, "round {round}");
                assert_eq!(update.result.level, fresh.level, "round {round}");
                assert_eq!(update.result.nontrivial, fresh.nontrivial, "round {round}");
                assert_eq!(update.result.stale, fresh.stale, "round {round}");
            }
        }
        assert_eq!(
            got,
            owed_after - owed_before,
            "round {round}: every owed update arrived, nothing extra"
        );
        collected += got;
    }
    assert!(collected > 0, "the drill must exercise at least one update");

    // Graceful stop closes the streams: both report end-of-stream.
    control.shutdown().expect("shutdown");
    for (sub, _) in subs.iter_mut() {
        sub.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        match sub.next_update() {
            Ok(None) => {}
            other => panic!("expected end-of-stream after shutdown, got {other:?}"),
        }
    }
    collected
}

#[test]
fn subscription_updates_are_bit_exact_with_direct_queries_appnp() {
    let ds = citeseer::build(Scale::Tiny, 9);
    let appnp = ds.train_appnp(8, 9);
    let graph = Arc::new(ds.graph.clone());
    let engine = WitnessEngine::new(Arc::clone(&graph), &appnp, quick_cfg());
    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    let edges = graph.edge_vec();
    let report = std::thread::scope(|scope| {
        let engine_ref = &engine;
        let server_thread = scope.spawn(move || server.serve(engine_ref, 2).expect("serve"));
        let collected = exercise_subscriptions(
            &addr,
            &ds.pick_test_nodes(2, 5),
            &ds.pick_test_nodes(2, 11),
            &edges,
        );
        let report = server_thread.join().expect("server thread");
        assert_eq!(
            report.updates_delivered, collected,
            "every delivery was read"
        );
        report
    });
    assert_eq!(
        report.updates_delivered + report.updates_shed,
        report.updates_owed,
        "delivery ledger is exact"
    );
    assert_eq!(report.updates_shed, 0, "prompt consumers shed nothing");
}

#[test]
fn subscription_updates_are_bit_exact_with_direct_queries_gcn() {
    let ds = citeseer::build(Scale::Tiny, 21);
    let gcn = ds.train_gcn(8, 21);
    let graph = Arc::new(ds.graph.clone());
    let engine = WitnessEngine::new(Arc::clone(&graph), &gcn, quick_cfg());
    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();

    let edges = graph.edge_vec();
    let report = std::thread::scope(|scope| {
        let engine_ref = &engine;
        let server_thread = scope.spawn(move || server.serve(engine_ref, 2).expect("serve"));
        let collected = exercise_subscriptions(
            &addr,
            &ds.pick_test_nodes(2, 7),
            &ds.pick_test_nodes(2, 13),
            &edges,
        );
        let report = server_thread.join().expect("server thread");
        assert_eq!(
            report.updates_delivered, collected,
            "every delivery was read"
        );
        report
    });
    assert_eq!(
        report.updates_delivered + report.updates_shed,
        report.updates_owed,
        "delivery ledger is exact"
    );
}

#[test]
fn sharded_subscriptions_deliver_bit_exact_updates() {
    let ds = citeseer::build(Scale::Tiny, 17);
    let appnp = ds.train_appnp(8, 17);
    let cfg = quick_cfg();
    let halo = RoutePolicy::for_model(&appnp, &cfg).ball_radius;
    let engine = ShardedEngine::new(Arc::new(ds.graph.clone()), &appnp, cfg, 4, halo);
    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    let config = ServerConfig::single(&engine).with_workers(2);

    let edges = ds.graph.edge_vec();
    let report = std::thread::scope(|scope| {
        let config_ref = &config;
        let server_thread = scope.spawn(move || server.serve_config(config_ref).expect("serve"));
        let collected = exercise_subscriptions(
            &addr,
            &ds.pick_test_nodes(2, 3),
            &ds.pick_test_nodes(2, 29),
            &edges,
        );
        let report = server_thread.join().expect("server thread");
        assert_eq!(
            report.updates_delivered, collected,
            "every delivery was read"
        );
        report
    });
    assert_eq!(
        report.updates_delivered + report.updates_shed,
        report.updates_owed,
        "sharded delivery ledger is exact"
    );
}

/// The chaos leg: subscriptions under an injected fault storm. Connection
/// drops can kill streams (their in-flight updates shed), worker panics can
/// kill disturb requests after fan-out, and forced repair failures produce
/// `degraded` frames — the ledger must stay an equality through all of it,
/// and every frame that arrives must be well-formed.
const STORM_SPEC: &str = "worker_panic=1@1,conn_drop=1@2,\
                          write_drop=1@1,write_truncate=1@1,\
                          repair_fail=1@2,regen_fail=1@1";

fn storm_seeds() -> Vec<u64> {
    const DEFAULT: [u64; 2] = [7, 23];
    match std::env::var("RCW_FAULT_SEEDS") {
        Ok(n) => {
            let n: u64 = n
                .parse()
                .expect("RCW_FAULT_SEEDS must be a seed count, e.g. RCW_FAULT_SEEDS=64");
            (0..n).collect()
        }
        Err(_) => DEFAULT.to_vec(),
    }
}

#[test]
fn subscription_storm_keeps_the_delivery_ledger_exact() {
    let ds = citeseer::build(Scale::Tiny, 33);
    let appnp = ds.train_appnp(8, 33);
    let graph = Arc::new(ds.graph.clone());
    for seed in storm_seeds() {
        let plan = Arc::new(FaultPlan::parse(STORM_SPEC, seed).expect("storm spec parses"));
        let engine = WitnessEngine::new(Arc::clone(&graph), &appnp, quick_cfg())
            .with_fault_hook(plan.engine_hook());
        let server = RcwServer::bind("127.0.0.1:0").expect("bind");
        let addr = server.local_addr().to_string();
        let config = ServerConfig::single(&engine)
            .with_workers(2)
            .with_queue_bound(16)
            .with_io_timeout(Duration::from_secs(2))
            .with_faults(Arc::clone(&plan));

        let edges = graph.edge_vec();
        let report = std::thread::scope(|scope| {
            let config_ref = &config;
            let server_thread =
                scope.spawn(move || server.serve_config(config_ref).expect("serve"));

            // Subscriptions may die to injected connection faults — that is
            // the point. Collect the survivors.
            let mut streams: Vec<SubscriptionStream> = Vec::new();
            for (i, picks) in [3u64, 11, 19].iter().enumerate() {
                let nodes = ds.pick_test_nodes(2, seed.wrapping_add(*picks));
                match Client::connect(&addr).and_then(|c| c.subscribe(&nodes)) {
                    Ok(sub) => streams.push(sub),
                    Err(e) => eprintln!("seed {seed}: subscription {i} lost to storm: {e}"),
                }
            }

            // Disturbance storm over the wire (only wire disturbances fan
            // out to subscribers). Faulted requests are expected casualties;
            // the ledger is the claim, not per-call success.
            let mut control = Client::connect(&addr).expect("connect control");
            for chunk in edges.chunks(2).take(6) {
                if control.disturb(chunk).is_err() {
                    control = match Client::connect(&addr) {
                        Ok(c) => c,
                        Err(e) => panic!("seed {seed}: reconnect after fault: {e}"),
                    };
                }
            }

            // Drain every surviving stream: frames must be well-formed, and
            // degraded outcomes stale-tagged.
            for sub in streams.iter_mut() {
                sub.set_read_timeout(Some(Duration::from_millis(500)))
                    .expect("read timeout");
                loop {
                    match sub.next_update() {
                        Ok(Some(update)) => {
                            assert_eq!(update.subscription, sub.id());
                            assert!(update.disturbance >= 1);
                            assert!(update.epoch >= 1);
                            if update.outcome == RepairOutcome::Degraded {
                                assert!(
                                    update.result.stale,
                                    "seed {seed}: degraded frame must be stale-tagged"
                                );
                            }
                        }
                        Ok(None) => break,
                        Err(ClientError::Io(e))
                            if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
                        {
                            break
                        }
                        Err(e) => panic!("seed {seed}: stream error: {e}"),
                    }
                }
            }

            drop(streams);
            let mut closer = Client::connect(&addr).expect("connect closer");
            closer.shutdown().expect("shutdown");
            server_thread.join().expect("server thread")
        });

        assert_eq!(
            report.updates_delivered + report.updates_shed,
            report.updates_owed,
            "seed {seed}: delivery ledger must balance exactly under the storm: {report:?}"
        );
    }
}
