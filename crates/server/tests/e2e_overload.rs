//! Overload acceptance test: a 1-worker server with a queue bound of 1 sheds
//! excess requests with `429` through the event loop's write path and
//! rejects expired deadlines with `503`, both round-tripping through the
//! blocking client as typed protocol errors, with exact request accounting
//! in the final [`rcw_server::ServeReport`].

use rcw_core::{RcwConfig, WitnessEngine};
use rcw_datasets::{citeseer, Scale};
use rcw_server::client::{Client, ClientError};
use rcw_server::faults::FaultPlan;
use rcw_server::{RcwServer, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn quick_cfg() -> RcwConfig {
    RcwConfig {
        k: 1,
        local_budget: 1,
        candidate_hops: 2,
        max_expand_rounds: 2,
        sampled_disturbances: 4,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::default()
    }
}

/// Expects a typed protocol error with the given status; returns its message.
fn expect_status(result: Result<impl std::fmt::Debug, ClientError>, status: u16) -> String {
    match result {
        Err(ClientError::Protocol(got, message)) if got == status => message,
        other => panic!("expected a status-{status} protocol error, got {other:?}"),
    }
}

/// Reads from a raw socket until the buffered bytes contain `marker`.
fn read_until(stream: &mut TcpStream, marker: &str) -> String {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let text = String::from_utf8_lossy(&buf).into_owned();
        if text.contains(marker) {
            return text;
        }
        match stream.read(&mut chunk) {
            Ok(0) => panic!("peer closed before {marker:?} arrived; got {text:?}"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed waiting for {marker:?}: {e}; got {text:?}"),
        }
    }
}

#[test]
fn saturated_server_sheds_429_and_expired_deadlines_get_503() {
    let ds = citeseer::build(Scale::Tiny, 9);
    let appnp = ds.train_appnp(8, 9);
    let engine = WitnessEngine::new(Arc::new(ds.graph.clone()), &appnp, quick_cfg());
    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    // The smallest possible server: one worker, one queue slot, no default
    // deadline, and an injected stall that wedges the worker on its first
    // claim. Overload behavior is then fully deterministic: the stalled
    // claim holds the worker, one request occupies the single queue slot,
    // and everything after that is shed at admission.
    let stall = FaultPlan::parse("read_stall=1@1", 0).expect("fault spec");
    let config = ServerConfig::single(&engine)
        .with_workers(1)
        .with_queue_bound(1)
        .with_faults(Arc::new(stall));

    let report = std::thread::scope(|scope| {
        let config_ref = &config;
        let server_thread = scope.spawn(move || server.serve_config(config_ref).expect("serve"));

        // Pin the only worker: A's request is admitted and claimed, and the
        // injected stall sits on it. Raw sockets, because a blocking client
        // would wait for the response here.
        let mut a = TcpStream::connect(&addr).expect("connect a");
        a.write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .expect("send a");
        std::thread::sleep(Duration::from_millis(80));
        // B occupies the single queue slot while the worker is stalled.
        let mut b = TcpStream::connect(&addr).expect("connect b");
        b.write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .expect("send b");
        std::thread::sleep(Duration::from_millis(40));

        // The worker is stalled and the queue is full: the next two
        // requests are shed with 429 through the event loop's write path,
        // and the wire error carries queue-depth stats.
        for _ in 0..2 {
            let mut shed = Client::connect(&addr).expect("connect shed");
            let message = expect_status(shed.generate(&[0]), 429);
            assert!(message.contains("overloaded"), "got: {message}");
            let (status, body) = shed
                .request("GET", "/healthz", None)
                .map(|r| (r.0, r.1))
                .unwrap_or((0, rcw_server::wire::Json::Null));
            // The shed connection was closed after the 429; a follow-up on
            // it either fails outright or never reaches the engine.
            assert_ne!(
                status, 200,
                "shed connection must not keep serving: {body:?}"
            );
        }

        // The stall ends: A's claim finishes normally, then the worker
        // drains B from the queue.
        assert!(
            read_until(&mut a, "\"ok\"").starts_with("HTTP/1.1 200"),
            "a served after the stall"
        );
        drop(a);
        assert!(
            read_until(&mut b, "\"ok\"").starts_with("HTTP/1.1 200"),
            "b served from the queue"
        );
        drop(b);

        // Deadline path: a zero-millisecond deadline is already expired
        // when the query reaches the engine boundary, so it is answered 503
        // before any session work; clearing the deadline makes the same
        // connection usable.
        let mut d = Client::connect(&addr).expect("connect d");
        d.set_deadline_ms(Some(0));
        let message = expect_status(d.generate(&[0]), 503);
        assert!(message.contains("deadline"), "got: {message}");
        d.set_deadline_ms(None);
        d.healthz().expect("healthz after clearing the deadline");

        // The engine saw zero queries: every generate above was shed or
        // rejected before reaching it.
        let (snapshot, per_worker) = d.stats().expect("stats");
        assert_eq!(snapshot.stats.queries, 0, "no query reached the engine");
        assert_eq!(per_worker.len(), 1);

        // Server-side counters agree over the wire.
        let (status, body) = d.request("GET", "/stats", None).expect("raw stats");
        assert_eq!(status, 200);
        let server_obj = body.field("server").expect("server object");
        assert_eq!(
            server_obj.field("queue_bound").unwrap().as_u64().unwrap(),
            1
        );
        assert_eq!(server_obj.field("overloaded").unwrap().as_u64().unwrap(), 2);
        assert_eq!(
            server_obj
                .field("deadline_rejections")
                .unwrap()
                .as_u64()
                .unwrap(),
            1
        );

        d.shutdown().expect("shutdown");
        server_thread.join().expect("server thread")
    });

    // Exact accounting: a, b, d had requests admitted; the two shed
    // connections never did. The pool answered a:1 + b:1 + d:(503 generate,
    // healthz, stats, raw stats, shutdown) = 7 requests in total, and no
    // two of them were ever claimable together.
    assert_eq!(report.connections, 3);
    assert_eq!(report.overloaded, 2);
    assert_eq!(report.deadline_rejections, 1);
    assert_eq!(report.requests_total(), 7);
    assert_eq!(report.batches_formed, 0);
}

#[test]
fn default_deadline_rejects_with_503_and_stores_nothing() {
    let ds = citeseer::build(Scale::Tiny, 12);
    let appnp = ds.train_appnp(8, 12);
    let engine = WitnessEngine::new(Arc::new(ds.graph.clone()), &appnp, quick_cfg());
    let server = RcwServer::bind("127.0.0.1:0").expect("bind");
    let addr = server.local_addr().to_string();
    // A 1ms *default* deadline (no client header): the engine's entry check
    // may pass, but the session budget expires between phases — either way
    // the wire answer is 503 and the store stays empty.
    let config = ServerConfig::single(&engine)
        .with_workers(2)
        .with_default_deadline(Some(Duration::from_millis(1)));

    std::thread::scope(|scope| {
        let config_ref = &config;
        let server_thread = scope.spawn(move || server.serve_config(config_ref).expect("serve"));

        let mut client = Client::connect(&addr).expect("connect");
        // Four test nodes: enough expand work that a cold session can never
        // finish inside 1ms, so the 503 is deterministic.
        let tests = ds.pick_test_nodes(4, 5);
        let message = match client.generate(&tests) {
            Err(ClientError::Protocol(503, message)) => message,
            other => panic!("expected 503 under a 1ms default deadline, got {other:?}"),
        };
        assert!(message.contains("deadline"), "got: {message}");
        // An aborted query never pollutes the witness store; a header can
        // override the default deadline upward and complete the query.
        client.set_deadline_ms(Some(60_000));
        let served = client.generate(&tests).expect("generous header deadline");
        assert!(served.witness.subgraph.contains_node(tests[0]));
        let (snapshot, _) = client.stats().expect("stats");
        assert_eq!(snapshot.stored, 1, "only the completed query is stored");

        // Keep-alive idle time is never billed against the next request's
        // window: after sleeping well past the deadline, a warm query with
        // a short (but sufficient) header deadline still succeeds because
        // its window starts when the request arrives.
        client.set_deadline_ms(Some(500));
        std::thread::sleep(Duration::from_millis(700));
        let warm = client.generate(&tests).expect("idle time not billed");
        assert_eq!(warm.witness, served.witness);

        // Control endpoints ignore the deadline entirely: even a
        // zero-window request must reach /healthz and /stats, so an
        // operator can inspect and stop an overloaded server.
        client.set_deadline_ms(Some(0));
        client.healthz().expect("healthz is exempt from deadlines");
        client.stats().expect("stats is exempt from deadlines");

        // ...including /shutdown: graceful stop works under deadline
        // pressure.
        client
            .shutdown()
            .expect("shutdown is exempt from deadlines");
        server_thread.join().expect("server thread")
    });
}
