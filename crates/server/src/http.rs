//! Minimal HTTP/1.1 framing over `std::net` streams.
//!
//! Just enough of the protocol for the witness-serving wire format: request
//! line + headers + `Content-Length`-framed bodies in, status line + fixed
//! headers + body out, with keep-alive connections. Transfer encodings,
//! multipart bodies, and the rest of HTTP are deliberately out of scope —
//! requests using them get a clean `400`, not undefined behavior.

use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Largest request body accepted, a guard against memory exhaustion from a
/// hostile peer. Generous: the biggest legitimate payload (a batch of
/// test-node sets) is a few kilobytes.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// A parsed request: method, path, body, and whether the peer asked for the
/// connection to close after the response.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, uppercased by the peer (`GET`, `POST`, ...).
    pub method: String,
    /// Request path (`/generate`, `/stats?verbose=1`, ...). Query strings are
    /// kept verbatim; the router splits them off.
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// `Connection: close` was requested.
    pub close: bool,
    /// Request deadline in milliseconds from the `x-rcw-deadline-ms` header
    /// (overrides the server's default deadline when present).
    pub deadline_ms: Option<u64>,
}

/// Why reading a request did not produce one.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Ok(Request),
    /// The peer closed the connection before sending a request line.
    Closed,
    /// The bytes were not a well-formed request; the description is safe to
    /// echo back in a 400 response.
    Malformed(String),
    /// The request exceeded a size bound (head or declared body length);
    /// answer `413` and close — nothing was allocated for it.
    TooLarge(String),
    /// The peer stalled mid-request: a read timed out (or the cumulative
    /// head deadline passed) after bytes were already consumed. Answer a
    /// best-effort `408` and close. An idle keep-alive timeout with *zero*
    /// bytes consumed is not a stall — it surfaces as an `Err` and the
    /// connection is dropped silently.
    Stalled,
}

/// Reads one request from a buffered stream.
///
/// `head_deadline` bounds the *cumulative* time spent reading the request
/// head: per-read socket timeouts cannot stop a slowloris peer that trickles
/// one header line per timeout window, but a deadline checked between lines
/// can. `None` disables the guard (in-memory parsing, tests).
pub fn read_request(
    stream: &mut impl BufRead,
    head_deadline: Option<Instant>,
) -> io::Result<ReadOutcome> {
    let mut line = String::new();
    let mut head_bytes = 0usize;
    match read_head_line(stream, &mut line, &mut head_bytes) {
        Ok(HeadLine::Len(0)) => return Ok(ReadOutcome::Closed),
        Ok(HeadLine::Len(_)) => {}
        Ok(HeadLine::TooLarge) => {
            return Ok(ReadOutcome::TooLarge("request head too large".to_string()))
        }
        // `read_line` keeps whatever it read in `line`, so an empty buffer
        // on timeout means the peer was idle, not stalled mid-request.
        Err(e) if is_timeout(&e) && !line.is_empty() => return Ok(ReadOutcome::Stalled),
        Err(e) => return Err(e),
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v),
        _ => return Ok(ReadOutcome::Malformed("bad request line".to_string())),
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Malformed(format!(
            "unsupported version {version}"
        )));
    }

    let mut content_length = 0usize;
    let mut close = false;
    let mut deadline_ms = None;
    loop {
        line.clear();
        if let Some(deadline) = head_deadline {
            if Instant::now() >= deadline {
                return Ok(ReadOutcome::Stalled);
            }
        }
        match read_head_line(stream, &mut line, &mut head_bytes) {
            Ok(HeadLine::Len(0)) => {
                return Ok(ReadOutcome::Malformed("truncated headers".to_string()))
            }
            Ok(HeadLine::Len(_)) => {}
            Ok(HeadLine::TooLarge) => {
                return Ok(ReadOutcome::TooLarge("request head too large".to_string()))
            }
            Err(e) if is_timeout(&e) => return Ok(ReadOutcome::Stalled),
            Err(e) => return Err(e),
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Ok(ReadOutcome::Malformed(format!("bad header '{trimmed}'")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => match value.parse::<usize>() {
                Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                // An absurd Content-Length is rejected here, before the body
                // buffer is sized from it: the peer gets a 413, never an
                // allocation.
                Ok(_) => return Ok(ReadOutcome::TooLarge("body too large".to_string())),
                Err(_) => return Ok(ReadOutcome::Malformed("bad content-length".to_string())),
            },
            "connection" => close = value.eq_ignore_ascii_case("close"),
            "x-rcw-deadline-ms" => match value.parse::<u64>() {
                Ok(ms) => deadline_ms = Some(ms),
                Err(_) => return Ok(ReadOutcome::Malformed("bad x-rcw-deadline-ms".to_string())),
            },
            "transfer-encoding" => {
                return Ok(ReadOutcome::Malformed(
                    "transfer-encoding not supported".to_string(),
                ))
            }
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        match io::Read::read_exact(stream, &mut body) {
            Ok(()) => {}
            // The head arrived but the declared body never did: a stalled
            // (or fault-injected) peer, not a transport failure.
            Err(e) if is_timeout(&e) => return Ok(ReadOutcome::Stalled),
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Ok(Request {
        method,
        path,
        body,
        close,
        deadline_ms,
    }))
}

/// What [`FrameBuf::try_take`] found in the buffered bytes. Mirrors
/// [`ReadOutcome`] minus the transport-level cases: the nonblocking event
/// loop owns the socket, so `Closed`/`Stalled` are its business (EOF and
/// idle deadlines), not the framer's.
#[derive(Debug)]
pub enum FrameOutcome {
    /// A complete request was buffered; its bytes have been consumed.
    Complete(Request),
    /// The buffered bytes are a well-formed prefix; feed more.
    Partial,
    /// The bytes cannot become a request; answer `400` and close.
    Malformed(String),
    /// A size bound was exceeded (head or declared body); answer `413` and
    /// close — the body is never buffered past its declared bound check.
    TooLarge(String),
}

/// Incremental request framer for nonblocking sockets: the event loop
/// appends whatever bytes `read` returned and asks for a complete request.
/// Semantics match [`read_request`] exactly (same limits, same header
/// handling, same rejections), but no call ever blocks. Pipelined bytes
/// beyond the first request stay buffered for the next [`FrameBuf::try_take`].
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
}

impl FrameBuf {
    /// An empty framer.
    pub fn new() -> Self {
        FrameBuf::default()
    }

    /// Whether any bytes are buffered (a non-empty framer means the peer is
    /// mid-request, which is what distinguishes a stall from idleness).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends bytes read from the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Tries to take one complete request off the front of the buffer.
    pub fn try_take(&mut self) -> FrameOutcome {
        let Some(head_end) = find_head_end(&self.buf) else {
            if self.buf.len() > MAX_HEAD_BYTES {
                return FrameOutcome::TooLarge("request head too large".to_string());
            }
            return FrameOutcome::Partial;
        };
        if head_end > MAX_HEAD_BYTES {
            return FrameOutcome::TooLarge("request head too large".to_string());
        }
        let head = match std::str::from_utf8(&self.buf[..head_end]) {
            Ok(head) => head,
            Err(_) => return FrameOutcome::Malformed("head is not utf-8".to_string()),
        };
        let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split_whitespace();
        let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(m), Some(p), Some(v), None) => (m.to_string(), p.to_string(), v),
            _ => return FrameOutcome::Malformed("bad request line".to_string()),
        };
        if !version.starts_with("HTTP/1.") {
            return FrameOutcome::Malformed(format!("unsupported version {version}"));
        }
        let mut content_length = 0usize;
        let mut close = false;
        let mut deadline_ms = None;
        for line in lines {
            if line.is_empty() {
                break;
            }
            let Some((name, value)) = line.split_once(':') else {
                return FrameOutcome::Malformed(format!("bad header '{line}'"));
            };
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            match name.as_str() {
                "content-length" => match value.parse::<usize>() {
                    Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                    Ok(_) => return FrameOutcome::TooLarge("body too large".to_string()),
                    Err(_) => return FrameOutcome::Malformed("bad content-length".to_string()),
                },
                "connection" => close = value.eq_ignore_ascii_case("close"),
                "x-rcw-deadline-ms" => match value.parse::<u64>() {
                    Ok(ms) => deadline_ms = Some(ms),
                    Err(_) => return FrameOutcome::Malformed("bad x-rcw-deadline-ms".to_string()),
                },
                "transfer-encoding" => {
                    return FrameOutcome::Malformed("transfer-encoding not supported".to_string())
                }
                _ => {}
            }
        }
        let total = head_end + content_length;
        if self.buf.len() < total {
            return FrameOutcome::Partial;
        }
        let body = self.buf[head_end..total].to_vec();
        self.buf.drain(..total);
        FrameOutcome::Complete(Request {
            method,
            path,
            body,
            close,
            deadline_ms,
        })
    }
}

/// Index one past the blank line ending the request head, accepting both
/// `\r\n\r\n` and bare `\n\n` terminators (the blocking parser's `read_line`
/// accepted either).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i + 1 < buf.len() {
        if buf[i] == b'\n' {
            if buf[i + 1] == b'\n' {
                return Some(i + 2);
            }
            if buf.get(i + 1) == Some(&b'\r') && buf.get(i + 2) == Some(&b'\n') {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Outcome of reading one head line, separating the size guard from
/// transport errors.
enum HeadLine {
    Len(usize),
    TooLarge,
}

/// `read_line` with a cumulative size guard; returns the bytes read.
fn read_head_line(
    stream: &mut impl BufRead,
    line: &mut String,
    head_bytes: &mut usize,
) -> io::Result<HeadLine> {
    let n = stream.read_line(line)?;
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Ok(HeadLine::TooLarge);
    }
    Ok(HeadLine::Len(n))
}

/// Whether an I/O error is a read/write timeout. Both kinds appear in the
/// wild: Unix sockets report `WouldBlock`, Windows reports `TimedOut`.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// A response ready to be written: status code, JSON body, and any extra
/// headers beyond the fixed framing set.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always `application/json` on this wire).
    pub body: String,
    /// Extra headers appended after the fixed set (`Deprecation`, ...).
    /// Names and values must already be wire-safe; nothing is escaped.
    pub headers: Vec<(&'static str, String)>,
}

/// The v1 error vocabulary: the stable machine-readable `code` and whether
/// retrying the identical request may succeed, keyed by status. Kept in one
/// table so the wire reference in the README and the server can't drift.
pub fn error_class(status: u16) -> (&'static str, bool) {
    match status {
        400 => ("bad_request", false),
        404 => ("not_found", false),
        405 => ("method_not_allowed", false),
        408 => ("timeout", true),
        413 => ("too_large", false),
        429 => ("overloaded", true),
        500 => ("internal", true),
        503 => ("unavailable", true),
        _ => ("error", false),
    }
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn ok(body: String) -> Self {
        Response {
            status: 200,
            body,
            headers: Vec::new(),
        }
    }

    /// An error response carrying the uniform v1 body
    /// `{"v": 1, "error": {"code": .., "detail": .., "retryable": ..}}`,
    /// with `code`/`retryable` derived from the status via [`error_class`].
    pub fn error(status: u16, detail: &str) -> Self {
        let (code, retryable) = error_class(status);
        Response::error_coded(status, code, detail, retryable)
    }

    /// An error response with an explicit code overriding the status-derived
    /// one (`bad_version` rides a plain 400).
    pub fn error_coded(status: u16, code: &str, detail: &str, retryable: bool) -> Self {
        Response {
            status,
            body: crate::wire::error_to_body(code, detail, retryable),
            headers: Vec::new(),
        }
    }

    /// Builder: attach an extra response header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a response. The body is newline-terminated so `nc`/`curl` sessions
/// stay line-oriented.
///
/// Head and body go out in a **single** `write_all`: two small writes would
/// land as two TCP segments, and Nagle's algorithm holds the second until
/// the peer ACKs the first — against a delayed-ACK peer that is a ~40ms
/// stall per response (the sockets also set `TCP_NODELAY`, but one syscall
/// per response is cheaper regardless).
pub fn write_response(stream: &mut impl Write, response: &Response, close: bool) -> io::Result<()> {
    stream.write_all(&encode_response(response, close))?;
    stream.flush()
}

/// The exact bytes [`write_response`] would send: head + newline-terminated
/// body. Exposed so the fault-injection layer can write a deliberately
/// truncated prefix of a real response.
pub fn encode_response(response: &Response, close: bool) -> Vec<u8> {
    // Built head-first into a single buffer: the body is copied exactly once
    // (hot responses carry ~500-byte witness payloads, so an extra clone per
    // response is measurable at saturation).
    let needs_newline = !response.body.ends_with('\n');
    let body_len = response.body.len() + usize::from(needs_newline);
    let mut message = String::with_capacity(112 + body_len);
    message.push_str("HTTP/1.1 ");
    crate::wire::push_u64(&mut message, response.status as u64);
    message.push(' ');
    message.push_str(reason(response.status));
    message.push_str("\r\ncontent-type: application/json\r\ncontent-length: ");
    crate::wire::push_u64(&mut message, body_len as u64);
    message.push_str("\r\nconnection: ");
    message.push_str(if close { "close" } else { "keep-alive" });
    for (name, value) in &response.headers {
        message.push_str("\r\n");
        message.push_str(name);
        message.push_str(": ");
        message.push_str(value);
    }
    message.push_str("\r\n\r\n");
    message.push_str(&response.body);
    if needs_newline {
        message.push('\n');
    }
    message.into_bytes()
}

/// The response head opening a subscription stream: `200` with **no**
/// `Content-Length` — the body is an unbounded sequence of NDJSON frames and
/// end-of-stream is signalled by connection close (the one HTTP/1.1 framing
/// that needs no length up front). Frames follow via [`encode_stream_frame`].
pub fn encode_stream_head() -> Vec<u8> {
    b"HTTP/1.1 200 OK\r\ncontent-type: application/x-ndjson\r\nconnection: close\r\n\r\n".to_vec()
}

/// One NDJSON stream frame: the encoded frame body plus the newline
/// delimiter.
pub fn encode_stream_frame(frame: &str) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(frame.len() + 1);
    bytes.extend_from_slice(frame.as_bytes());
    bytes.push(b'\n');
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use std::time::Duration;

    fn parse(bytes: &[u8]) -> ReadOutcome {
        read_request(&mut BufReader::new(bytes), None).unwrap()
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /generate HTTP/1.1\r\ncontent-length: 15\r\n\r\n{\"nodes\":[1,2]}";
        match parse(raw) {
            ReadOutcome::Ok(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/generate");
                assert_eq!(req.body, b"{\"nodes\":[1,2]}");
                assert!(!req.close);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_a_bodyless_get_and_connection_close() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        match parse(raw) {
            ReadOutcome::Ok(req) => {
                assert_eq!(req.method, "GET");
                assert_eq!(req.path, "/healthz");
                assert!(req.body.is_empty());
                assert!(req.close);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn deadline_header_is_parsed_and_validated() {
        let raw = b"POST /generate HTTP/1.1\r\nx-rcw-deadline-ms: 250\r\ncontent-length: 0\r\n\r\n";
        match parse(raw) {
            ReadOutcome::Ok(req) => assert_eq!(req.deadline_ms, Some(250)),
            other => panic!("unexpected: {other:?}"),
        }
        let absent = b"GET /healthz HTTP/1.1\r\n\r\n";
        match parse(absent) {
            ReadOutcome::Ok(req) => assert_eq!(req.deadline_ms, None),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nx-rcw-deadline-ms: soon\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn eof_is_closed_and_garbage_is_malformed() {
        assert!(matches!(parse(b""), ReadOutcome::Closed));
        assert!(matches!(
            parse(b"NOT HTTP\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2.0\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\ncontent-length: zebra\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn oversized_requests_are_too_large_not_malformed() {
        // Absurd declared body: rejected before any allocation, as 413.
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n"),
            ReadOutcome::TooLarge(_)
        ));
        // Oversized head: one giant header blows the cumulative head bound.
        let mut head = b"GET / HTTP/1.1\r\nx-filler: ".to_vec();
        head.resize(MAX_HEAD_BYTES + 64, b'a');
        head.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(parse(&head), ReadOutcome::TooLarge(_)));
    }

    #[test]
    fn head_deadline_in_the_past_stalls_a_partial_request() {
        // The request line parses, then the deadline check fires before the
        // next header line.
        let bytes = b"GET / HTTP/1.1\r\nx-slow: 1\r\n\r\n";
        let outcome = read_request(
            &mut BufReader::new(&bytes[..]),
            Some(Instant::now() - Duration::from_secs(1)),
        )
        .unwrap();
        assert!(matches!(outcome, ReadOutcome::Stalled));
    }

    #[test]
    fn frame_buf_matches_blocking_parser_byte_by_byte() {
        // Feeding one byte at a time must stay Partial until the exact final
        // byte, then yield the same request the blocking parser produces.
        let raw = b"POST /generate HTTP/1.1\r\nx-rcw-deadline-ms: 40\r\ncontent-length: 15\r\n\r\n{\"nodes\":[1,2]}";
        let mut frame = FrameBuf::new();
        for (i, b) in raw.iter().enumerate() {
            assert!(
                matches!(frame.try_take(), FrameOutcome::Partial),
                "byte {i}: complete too early"
            );
            frame.extend(std::slice::from_ref(b));
        }
        match frame.try_take() {
            FrameOutcome::Complete(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.path, "/generate");
                assert_eq!(req.body, b"{\"nodes\":[1,2]}");
                assert_eq!(req.deadline_ms, Some(40));
                assert!(!req.close);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(frame.is_empty());
    }

    #[test]
    fn frame_buf_keeps_pipelined_bytes_for_the_next_take() {
        let mut frame = FrameBuf::new();
        frame.extend(
            b"GET /healthz HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        match frame.try_take() {
            FrameOutcome::Complete(req) => assert_eq!(req.path, "/healthz"),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(!frame.is_empty(), "second request still buffered");
        match frame.try_take() {
            FrameOutcome::Complete(req) => {
                assert_eq!(req.path, "/stats");
                assert!(req.close);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(frame.try_take(), FrameOutcome::Partial));
    }

    #[test]
    fn frame_buf_rejects_what_read_request_rejects() {
        let cases: &[(&[u8], bool)] = &[
            (b"NOT HTTP AT ALL\r\n\r\n", false),
            (b"GET / HTTP/2.0\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\ncontent-length: zebra\r\n\r\n", false),
            (
                b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
                false,
            ),
            (
                b"GET / HTTP/1.1\r\ncontent-length: 99999999999\r\n\r\n",
                true,
            ),
        ];
        for &(raw, too_large) in cases {
            let mut frame = FrameBuf::new();
            frame.extend(raw);
            match frame.try_take() {
                FrameOutcome::Malformed(_) if !too_large => {}
                FrameOutcome::TooLarge(_) if too_large => {}
                other => panic!("{raw:?}: unexpected {other:?}"),
            }
        }
        // Oversized head with no terminator in sight trips the bound early.
        let mut frame = FrameBuf::new();
        let mut head = b"GET / HTTP/1.1\r\nx-filler: ".to_vec();
        head.resize(MAX_HEAD_BYTES + 64, b'a');
        frame.extend(&head);
        assert!(matches!(frame.try_take(), FrameOutcome::TooLarge(_)));
    }

    #[test]
    fn frame_buf_accepts_bare_newline_terminators() {
        let mut frame = FrameBuf::new();
        frame.extend(b"GET /healthz HTTP/1.1\nconnection: close\n\n");
        match frame.try_take() {
            FrameOutcome::Complete(req) => {
                assert_eq!(req.path, "/healthz");
                assert!(req.close);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn response_writer_frames_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::ok("{\"ok\":true}".to_string()), false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 12\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("{\"ok\":true}\n"));
    }
}
