//! # rcw-server
//!
//! A std-only serving layer in front of [`rcw_core::WitnessEngine`]:
//! hand-rolled HTTP/1.1 over `std::net::TcpListener`, a readiness-driven
//! event loop, an admission scheduler that forms `/generate` micro-batches,
//! and a line-oriented JSON wire format ([`wire`]) — no external crates,
//! matching the rest of the workspace.
//!
//! All bodies ride the **v1 envelope**: every request and response object
//! carries `"v": 1`, decoders reject missing or future versions with the
//! `bad_version` error code, and every non-2xx answer is the uniform
//! `{"v": 1, "error": {"code", "detail", "retryable"}}` body (see the
//! README's "Wire protocol v1" reference).
//!
//! | endpoint | method | body | answer |
//! |---|---|---|---|
//! | `[/NAME]/generate` | POST | `{"v": 1, "nodes": [v, ...]}` | witness + level + stats |
//! | `[/NAME]/generate/batch` | POST | `{"v": 1, "queries": [[v, ...], ...]}` | `{"v": 1, "results": [...]}` |
//! | `[/NAME]/generate_batch` | POST | deprecated alias of `/generate/batch` (`Deprecation` header) | |
//! | `[/NAME]/disturb` | POST | `{"v": 1, "flips": [[u, v], ...]}` | [`rcw_core::DisturbReport`] |
//! | `[/NAME]/subscribe` | POST | `{"v": 1, "nodes": [v, ...]}` | NDJSON witness-update stream |
//! | `[/NAME]/stats` | GET | — | engine snapshot(s) + server counters |
//! | `[/NAME]/healthz` | GET | — | `{"v": 1, "ok": true, "epoch": n, "engine": name}` |
//! | `/shutdown` | POST | — | `{"v": 1, "ok": true}`, then graceful stop (global only) |
//!
//! ## Subscriptions
//!
//! `POST [/NAME]/subscribe` registers the request's test-node set and turns
//! the connection into a one-way NDJSON stream: a `subscribed` frame
//! acknowledges with the current witness, then every `/disturb` whose
//! repair touches the subscribed entry pushes one `witness_update` frame —
//! bit-exact with what a fresh `/generate` at that epoch would return
//! (degraded entries carry the stale-tagged result a failed heal serves).
//! Frames queue on the connection's ordinary write path under a bounded
//! buffer ([`SUBSCRIBE_BUFFER_CAP`]); a slow consumer sheds frames rather
//! than stalling repair fan-out, and the ledger `updates_delivered +
//! updates_shed == updates_owed` is exact by construction (each owed update
//! is resolved exactly once by the event loop).
//!
//! ## Architecture
//!
//! The calling thread runs a **nonblocking event loop** over the listener
//! and every accepted socket: it accepts, reads, and parses requests
//! incrementally (one [`http::FrameBuf`] per connection), writes queued
//! response bytes as sockets drain, and never blocks on a peer. Complete
//! requests are handed to the **admission scheduler** — a FIFO the worker
//! pool claims from. A claim takes the queue head plus every already-queued
//! request that is *batch-compatible* with it: same engine, `POST
//! [/NAME]/generate`, admitted within [`ADMISSION_WINDOW`] of the head
//! (capped at [`MAX_BATCH`]). A claim never waits for more arrivals — the
//! window only bounds how stale a batch head can be relative to its tail,
//! so an isolated request is claimed solo within microseconds. The *loop*
//! is what gives batches a chance to fill: it wakes a worker only once per
//! arrival lull (or when the pending head ages past the window, or
//! [`MAX_BATCH`] accumulates), so a burst admitted over a few sweeps is
//! claimed as one batch instead of a train of singletons.
//!
//! Batched `/generate` claims answer through
//! [`ServedEngine::generate_batch_with`]: one pass under a single store
//! lock serves every warm query, then the cold tail runs per-request —
//! bit-identical to per-request execution (pinned by the
//! `batch_equivalence` sweep). Long expand-verify sessions therefore
//! occupy one worker while warm hits keep flowing through the others, and
//! same-engine warm bursts collapse into single-lock passes.
//!
//! ## Multi-engine routing
//!
//! A server fronts a *registry* of named engines ([`ServerConfig`]): the
//! first path segment selects the engine (`/gcn/generate`,
//! `/appnp/generate`), and bare endpoints (`/generate`) route to the first
//! registered engine, so single-engine deployments and older clients keep
//! working unchanged. Each route is type-erased behind [`ServedEngine`], so
//! one process can serve engines over different model families, graphs, and
//! per-query session-worker counts.
//!
//! ## Overload behavior
//!
//! The scheduler queue is **bounded** ([`ServerConfig::queue_bound`]). A
//! request arriving while the queue is at its bound is shed with `429 Too
//! Many Requests` (body `{"error": "overloaded", ...}`) written through the
//! event loop's ordinary write path — no helper threads — and the
//! connection closes after the refusal. Each request may carry an
//! `x-rcw-deadline-ms` header (or inherit
//! [`ServerConfig::default_deadline`]); the deadline window starts when the
//! connection was accepted for its first request (queue wait counts) and at
//! arrival for later keep-alive requests (idle time is never billed). The
//! deadline is threaded into the engine as a [`SessionBudget`] — enforced
//! at the engine boundary before any session work and cooperatively between
//! session phases, so control endpoints (`/healthz`, `/stats`, `/shutdown`)
//! stay reachable under deadline pressure. Expired queries answer `503
//! Service Unavailable` with `{"error": "deadline exceeded"}`; an aborted
//! query never pollutes the witness store.
//!
//! Shutdown is graceful: accepting stops, in-flight requests finish (an
//! actively-requesting kept-alive peer gets its answer with `connection:
//! close`), the pool drains, and [`RcwServer::serve`] returns a
//! [`ServeReport`] with per-worker request counts, the overload/deadline
//! totals, and the number of micro-batches formed.

pub mod client;
pub mod faults;
pub mod http;
pub mod wire;

use faults::FaultPlan;
use http::{encode_response, FrameBuf, FrameOutcome, Request, Response};
pub use rcw_core::{BudgetExceeded, SessionBudget};
use rcw_core::{DisturbReport, EngineSnapshot, GenerationResult, VerifiableModel, WitnessEngine};
use rcw_graph::Disturbance;
use rcw_shard::{ShardStats, ShardedEngine};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use wire::Json;

/// Default per-socket progress timeout (the `ServerConfig::single` value of
/// [`ServerConfig::io_timeout`]): bounds how long an idle kept-alive peer
/// holds a connection slot and how long graceful shutdown can take.
const IDLE_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// How far apart two requests' admission times may be and still share a
/// micro-batch. A claim NEVER waits out the window — it only stops the
/// scheduler from stapling a fresh arrival to a head that has already
/// waited, which would re-time the head's witness against a later clock.
const ADMISSION_WINDOW: Duration = Duration::from_millis(1);

/// Cap on requests per micro-batch claim: bounds the latency cost a batch
/// tail can impose on its head and keeps the union warm pass cache-sized.
const MAX_BATCH: usize = 32;

/// The event loop keeps re-sweeping (yielding the core between sweeps, so
/// workers and peers on a small machine always run first) while anything
/// moved within this window, then parks on the completion channel. The
/// yield is what makes the hot window safe on a single-core box: the loop
/// only burns cycles the kernel had nothing else to schedule.
const SPIN_WINDOW: Duration = Duration::from_millis(5);

/// Park duration between sweeps when the loop has gone idle: new socket
/// readability is picked up at most this much later. A worker completion
/// interrupts the park immediately via the completion channel.
const IDLE_POLL: Duration = Duration::from_micros(500);

/// How often the event loop scans connections for idle/stall timeouts.
const TIMEOUT_SCAN_EVERY: Duration = Duration::from_millis(25);

/// How long an idle keep-alive connection keeps counting as "about to send
/// again" for kick deferral after its last admitted request. Long enough to
/// span a full batch round trip, short enough that a client that has gone
/// quiet (finished its run, thinking between requests) stops holding
/// batches open almost immediately.
const RECEPTIVE_WINDOW: Duration = Duration::from_millis(5);

/// Upper bound on how long a pending batch head waits for receptive peers
/// that have not actually sent anything yet. Keeps the worst case (a peer
/// that was active moments ago but has gone quiet) to a small fraction of
/// the admission window.
const KICK_GRACE: Duration = Duration::from_micros(100);

/// Upper bound of the injected `read_stall` fault's sleep.
const INJECTED_STALL: Duration = Duration::from_millis(250);

/// Bound on a subscription stream's unwritten backlog. A pushed frame that
/// would grow the connection's write queue past this is **shed** (counted in
/// `updates_shed`) instead of buffered: a slow or wedged consumer must not
/// grow server memory or stall disturbance fan-out.
pub const SUBSCRIBE_BUFFER_CAP: usize = 256 * 1024;

/// Endpoint names, reserved so an engine route can never shadow them.
const RESERVED_ROUTE_NAMES: [&str; 7] = [
    "generate",
    "generate_batch",
    "disturb",
    "subscribe",
    "stats",
    "healthz",
    "shutdown",
];

/// The engine-side interface the server routes requests to, type-erasing the
/// model parameter of [`WitnessEngine`] so one process can serve engines
/// over different model families side by side.
///
/// Implemented for every `WitnessEngine<'_, M>`; the methods mirror the
/// engine entry points a wire endpoint needs.
pub trait ServedEngine: Sync {
    /// [`WitnessEngine::generate_with_budget`]: answer a witness query under
    /// a cooperative deadline.
    fn generate_with_budget(
        &self,
        test_nodes: &[usize],
        budget: &SessionBudget,
    ) -> Result<GenerationResult, BudgetExceeded>;

    /// [`WitnessEngine::generate_batch_with`]: answer a micro-batch of
    /// witness queries, emitting one result per query index. Must be
    /// bit-identical to calling [`ServedEngine::generate_with_budget`] per
    /// query in order — the default implementation does exactly that;
    /// engines override it to share work across the batch.
    fn generate_batch_with(
        &self,
        queries: &[Vec<usize>],
        budgets: &[SessionBudget],
        emit: &mut dyn FnMut(usize, Result<GenerationResult, BudgetExceeded>),
    ) {
        for (i, (nodes, budget)) in queries.iter().zip(budgets).enumerate() {
            emit(i, self.generate_with_budget(nodes, budget));
        }
    }

    /// [`WitnessEngine::disturb`]: apply edge flips and repair the store.
    fn disturb(&self, disturbances: &[Disturbance]) -> DisturbReport;

    /// [`WitnessEngine::snapshot`]: a coherent stats/epoch/store picture.
    fn snapshot(&self) -> EngineSnapshot;

    /// The host graph's current mutation epoch.
    fn epoch(&self) -> u64;

    /// Number of nodes in the host graph (query validation bound).
    fn num_nodes(&self) -> usize;

    /// The routing ledger, for engines that shard their graph
    /// ([`rcw_shard::ShardedEngine`]). Single-engine implementations keep
    /// the default `None`; `/stats` emits a `sharding` object when `Some`.
    fn sharding(&self) -> Option<ShardStats> {
        None
    }
}

impl<M: VerifiableModel + ?Sized> ServedEngine for WitnessEngine<'_, M> {
    fn generate_with_budget(
        &self,
        test_nodes: &[usize],
        budget: &SessionBudget,
    ) -> Result<GenerationResult, BudgetExceeded> {
        WitnessEngine::generate_with_budget(self, test_nodes, budget)
    }

    fn generate_batch_with(
        &self,
        queries: &[Vec<usize>],
        budgets: &[SessionBudget],
        emit: &mut dyn FnMut(usize, Result<GenerationResult, BudgetExceeded>),
    ) {
        WitnessEngine::generate_batch_with(self, queries, budgets, emit)
    }

    fn disturb(&self, disturbances: &[Disturbance]) -> DisturbReport {
        WitnessEngine::disturb(self, disturbances)
    }

    fn snapshot(&self) -> EngineSnapshot {
        WitnessEngine::snapshot(self)
    }

    fn epoch(&self) -> u64 {
        WitnessEngine::epoch(self)
    }

    fn num_nodes(&self) -> usize {
        self.graph().num_nodes()
    }
}

/// The sharded tier serves through the same trait: requests flow through the
/// event loop, admission batching, deadlines, faults and retries unchanged,
/// and the engine routes each query to its owning shard (or the full-graph
/// escape engine) underneath.
impl<M: VerifiableModel + ?Sized> ServedEngine for ShardedEngine<'_, M> {
    fn generate_with_budget(
        &self,
        test_nodes: &[usize],
        budget: &SessionBudget,
    ) -> Result<GenerationResult, BudgetExceeded> {
        ShardedEngine::generate_with_budget(self, test_nodes, budget)
    }

    fn generate_batch_with(
        &self,
        queries: &[Vec<usize>],
        budgets: &[SessionBudget],
        emit: &mut dyn FnMut(usize, Result<GenerationResult, BudgetExceeded>),
    ) {
        ShardedEngine::generate_batch_with(self, queries, budgets, emit)
    }

    fn disturb(&self, disturbances: &[Disturbance]) -> DisturbReport {
        ShardedEngine::disturb(self, disturbances)
    }

    fn snapshot(&self) -> EngineSnapshot {
        ShardedEngine::snapshot(self)
    }

    fn epoch(&self) -> u64 {
        ShardedEngine::epoch(self)
    }

    fn num_nodes(&self) -> usize {
        ShardedEngine::num_nodes(self)
    }

    fn sharding(&self) -> Option<ShardStats> {
        Some(self.shard_stats())
    }
}

/// One named engine behind the server: the route prefix and the engine it
/// selects.
pub struct EngineRoute<'e> {
    /// The route prefix (`/NAME/generate`). Must be non-empty, use only
    /// `[a-z0-9._-]`, be unique, and not shadow a reserved endpoint name.
    pub name: String,
    /// The engine answering this route.
    pub engine: &'e dyn ServedEngine,
}

/// Declarative description of a serving deployment: the engine registry plus
/// the transport's overload knobs. The first route is the *default* engine —
/// bare endpoints (`/generate`) without a prefix go to it.
pub struct ServerConfig<'e> {
    /// Named engines; the first is the default route.
    pub routes: Vec<EngineRoute<'e>>,
    /// Worker threads claiming from the admission scheduler (per-query
    /// parallelism is the engine's own `with_workers` setting).
    pub workers: usize,
    /// Bound of the admission queue; requests arriving beyond it are shed
    /// with `429`. Minimum 1.
    pub queue_bound: usize,
    /// Deadline applied to requests that do not carry an
    /// `x-rcw-deadline-ms` header. `None` = no default deadline.
    pub default_deadline: Option<Duration>,
    /// Per-connection progress timeout: an idle kept-alive peer is dropped
    /// after this long, a peer mid-request (or not draining its response)
    /// gets `2 × io_timeout` before a best-effort `408`/drop — the bound
    /// that stops slowloris peers from pinning connection slots forever.
    pub io_timeout: Duration,
    /// Fault-injection plan ([`FaultPlan::none`] outside chaos tests). The
    /// serve loop consults it at each named site; an empty plan is a single
    /// cheap check per request.
    pub faults: Arc<FaultPlan>,
}

impl<'e> ServerConfig<'e> {
    /// A single-engine config under the route name `default`, matching the
    /// PR 4 serving shape: 4 workers, a generous queue, no deadline.
    pub fn single(engine: &'e dyn ServedEngine) -> Self {
        ServerConfig {
            routes: vec![EngineRoute {
                name: "default".to_string(),
                engine,
            }],
            workers: 4,
            queue_bound: 1024,
            default_deadline: None,
            io_timeout: IDLE_READ_TIMEOUT,
            faults: Arc::new(FaultPlan::none()),
        }
    }

    /// Adds a named engine route (builder style).
    pub fn with_route(mut self, name: impl Into<String>, engine: &'e dyn ServedEngine) -> Self {
        self.routes.push(EngineRoute {
            name: name.into(),
            engine,
        });
        self
    }

    /// Sets the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the admission-queue bound.
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound;
        self
    }

    /// Sets the default per-request deadline.
    pub fn with_default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = deadline;
        self
    }

    /// Sets the per-connection progress timeout.
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Index of the route with the given name.
    fn route_index(&self, name: &str) -> Option<usize> {
        self.routes.iter().position(|r| r.name == name)
    }

    /// Checks the config is servable: at least one route, well-formed unique
    /// names that do not shadow endpoint names, sane pool/queue sizes.
    pub fn validate(&self) -> Result<(), String> {
        if self.routes.is_empty() {
            return Err("server config needs at least one engine route".to_string());
        }
        if self.workers == 0 {
            return Err("worker pool must have at least one thread".to_string());
        }
        if self.queue_bound == 0 {
            return Err("dispatch queue bound must be at least 1".to_string());
        }
        if self.io_timeout.is_zero() {
            return Err("io timeout must be nonzero".to_string());
        }
        for (i, route) in self.routes.iter().enumerate() {
            if route.name.is_empty()
                || !route
                    .name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._-".contains(c))
            {
                return Err(format!(
                    "route name '{}' must be non-empty [a-z0-9._-]",
                    route.name
                ));
            }
            if RESERVED_ROUTE_NAMES.contains(&route.name.as_str()) {
                return Err(format!(
                    "route name '{}' shadows a reserved endpoint",
                    route.name
                ));
            }
            if self.routes[..i].iter().any(|r| r.name == route.name) {
                return Err(format!("duplicate route name '{}'", route.name));
            }
        }
        Ok(())
    }
}

/// A bound listener, ready to serve an engine registry.
pub struct RcwServer {
    listener: TcpListener,
    addr: SocketAddr,
}

/// What a completed [`RcwServer::serve`] run did.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests answered by each worker of the pool.
    pub requests_per_worker: Vec<usize>,
    /// Connections whose first request was admitted to the scheduler (shed
    /// and garbage-only connections are not counted).
    pub connections: usize,
    /// Requests shed with `429` because the admission queue was full.
    pub overloaded: usize,
    /// Requests answered `503` because their deadline had expired (at
    /// claim or mid-session).
    pub deadline_rejections: usize,
    /// Times an injected `worker_panic` fault killed a request's
    /// connection. The pool never shrinks: a panic costs one connection,
    /// not one worker.
    pub worker_restarts: usize,
    /// Micro-batches formed by the admission scheduler (claims of two or
    /// more compatible `/generate` requests).
    pub batches_formed: usize,
    /// Witness updates owed to subscribers: one per (subscription,
    /// touched-entry) pair per disturbance.
    pub updates_owed: u64,
    /// Owed updates queued onto a live stream within the buffer cap.
    pub updates_delivered: u64,
    /// Owed updates dropped (stream gone or slow-consumer cap). The ledger
    /// `updates_delivered + updates_shed == updates_owed` is exact.
    pub updates_shed: u64,
}

impl ServeReport {
    /// Total requests answered across the pool (shed requests excluded).
    pub fn requests_total(&self) -> usize {
        self.requests_per_worker.iter().sum()
    }
}

/// What a request is, for batch compatibility at claim time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ItemKind {
    /// `POST [/NAME]/generate`: batchable with same-engine peers.
    Generate { engine_idx: usize },
    /// Everything else: claimed singly.
    Other,
}

/// One admitted request waiting in the scheduler.
struct PendingItem {
    /// Event-loop connection slot the response must go back to.
    conn_id: usize,
    request: Request,
    kind: ItemKind,
    /// When the event loop admitted the request: the batch window and the
    /// `admission_wait_us` counter are both measured from here.
    admitted_at: Instant,
    /// Base of the request's deadline window: accept time for a
    /// connection's first request (queue wait counts), arrival time for
    /// later keep-alive requests (idle time is never billed).
    deadline_base: Instant,
}

/// The admission scheduler: a FIFO of admitted requests plus the claim rule
/// that turns it into continuous batching. Workers claim the queue head and
/// every already-queued batch-compatible request within the head's
/// admission window; incompatible requests are skipped in place, so a long
/// expand-verify session never blocks the warm hits queued behind it on
/// another worker's claim.
struct Scheduler {
    queue: Mutex<VecDeque<PendingItem>>,
    available: Condvar,
    closed: AtomicBool,
}

fn lock_queue(queue: &Mutex<VecDeque<PendingItem>>) -> MutexGuard<'_, VecDeque<PendingItem>> {
    queue.lock().unwrap_or_else(|e| e.into_inner())
}

impl Scheduler {
    fn new() -> Self {
        Scheduler {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            closed: AtomicBool::new(false),
        }
    }

    /// Appends one item WITHOUT waking a worker: the event loop admits a
    /// whole readiness sweep first, then wakes the pool once with
    /// [`Scheduler::kick`] — so everything that arrived together is
    /// claimable as one micro-batch instead of being picked off one by one.
    fn push(&self, item: PendingItem) {
        let mut queue = lock_queue(&self.queue);
        queue.push_back(item);
    }

    /// Wakes one worker after a sweep's pushes. Claims chain further
    /// wake-ups (see [`Scheduler::claim`]), so one kick suffices no matter
    /// how many claimable units the sweep produced.
    fn kick(&self) {
        self.available.notify_one();
    }

    /// Drains remaining claims, then unblocks every waiting worker for exit.
    fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    /// Claims the next unit of work: the queue head, plus (for `/generate`
    /// heads) every compatible request admitted within the head's window,
    /// up to [`MAX_BATCH`]. Returns `None` once the scheduler is closed and
    /// drained. Never waits for a batch to fill.
    fn claim(&self) -> Option<Vec<PendingItem>> {
        let mut queue = lock_queue(&self.queue);
        loop {
            if let Some(first) = queue.pop_front() {
                let mut batch = vec![first];
                if let ItemKind::Generate { engine_idx } = batch[0].kind {
                    let cutoff = batch[0].admitted_at + ADMISSION_WINDOW;
                    let mut i = 0;
                    while i < queue.len() && batch.len() < MAX_BATCH {
                        // Admission order is monotone in admitted_at: once
                        // one item is past the cutoff, everything behind it
                        // is too.
                        if queue[i].admitted_at > cutoff {
                            break;
                        }
                        if queue[i].kind == (ItemKind::Generate { engine_idx }) {
                            let item = queue.remove(i).expect("index bounded by len");
                            batch.push(item);
                        } else {
                            i += 1;
                        }
                    }
                }
                // Work remains beyond this claim: chain the wake-up so the
                // single kick per sweep still reaches every worker needed.
                let more = !queue.is_empty();
                drop(queue);
                if more {
                    self.available.notify_one();
                }
                return Some(batch);
            }
            if self.closed.load(Ordering::SeqCst) {
                return None;
            }
            queue = self
                .available
                .wait_timeout(queue, Duration::from_millis(20))
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }
}

/// What a worker hands back to the event loop for one request.
enum Completion {
    /// Write these bytes to the connection, then keep or close it.
    Respond {
        conn_id: usize,
        bytes: Vec<u8>,
        close: bool,
    },
    /// Drop the connection without a response (injected faults).
    Kill { conn_id: usize },
    /// Open a subscription stream on the connection: write the response
    /// head + `subscribed` frame and hold the connection as a one-way
    /// NDJSON stream addressed by `subscription`.
    Stream {
        conn_id: usize,
        subscription: u64,
        bytes: Vec<u8>,
    },
    /// Append one `witness_update` frame to the stream's write queue. The
    /// loop resolves each push exactly once: delivered (queued within
    /// [`SUBSCRIBE_BUFFER_CAP`]) or shed (stream gone / buffer full) — the
    /// resolution side of the `owed == delivered + shed` ledger.
    Push { subscription: u64, bytes: Vec<u8> },
}

/// One live subscription: which engine's store key it watches. Kept in
/// [`ServeState`] so disturb fan-out (worker side) can match repair entries
/// without touching event-loop state.
struct SubEntry {
    id: u64,
    engine_idx: usize,
    /// Canonical store key (sorted, deduped) — matches
    /// [`rcw_core::EntryRepair::test_nodes`] exactly.
    key: Vec<usize>,
}

/// Shared per-serve state: the config, the counters every endpoint reports,
/// and the shutdown flag.
struct ServeState<'e, 'c> {
    config: &'c ServerConfig<'e>,
    counts: Vec<AtomicUsize>,
    shutdown: AtomicBool,
    queue_depth: AtomicUsize,
    overloaded: AtomicUsize,
    deadline_rejections: AtomicUsize,
    worker_restarts: AtomicUsize,
    batches_formed: AtomicUsize,
    batch_claims: AtomicUsize,
    batch_items: AtomicUsize,
    admission_wait_us: AtomicU64,
    /// Live subscriptions (worker-side view for disturb fan-out).
    subscriptions: Mutex<Vec<SubEntry>>,
    /// Monotone subscription-id source (ids start at 1).
    next_subscription: AtomicU64,
    /// Monotone disturbance-id source: every `/disturb` request gets one,
    /// stamped into the `witness_update` frames it triggers.
    disturb_seq: AtomicU64,
    /// Updates owed: one per (subscription, touched-entry) pair per
    /// disturbance, counted at fan-out under the registry lock.
    updates_owed: AtomicU64,
    /// Owed updates queued onto a live stream within the buffer cap.
    updates_delivered: AtomicU64,
    /// Owed updates dropped: stream gone or backlog at the cap.
    updates_shed: AtomicU64,
}

fn lock_subs<'s>(state: &'s ServeState<'_, '_>) -> MutexGuard<'s, Vec<SubEntry>> {
    state
        .subscriptions
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Retires one subscription from the fan-out registry.
fn unregister(state: &ServeState<'_, '_>, subscription: u64) {
    lock_subs(state).retain(|s| s.id != subscription);
}

impl RcwServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> std::io::Result<RcwServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(RcwServer { listener, addr })
    }

    /// The bound address (resolves the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Single-engine convenience over [`RcwServer::serve_config`]: serves
    /// `engine` under [`ServerConfig::single`] with the given pool size.
    pub fn serve<M: VerifiableModel + ?Sized>(
        self,
        engine: &WitnessEngine<'_, M>,
        workers: usize,
    ) -> std::io::Result<ServeReport> {
        let config = ServerConfig::single(engine).with_workers(workers.max(1));
        self.serve_config(&config)
    }

    /// Serves the configured engine registry until a `POST /shutdown`
    /// arrives: the calling thread runs the event loop (accept, read,
    /// parse, write — all nonblocking), workers claim micro-batches from
    /// the admission scheduler, and requests arriving past the queue bound
    /// are shed with `429`.
    pub fn serve_config(self, config: &ServerConfig<'_>) -> std::io::Result<ServeReport> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        self.listener.set_nonblocking(true)?;
        let workers = config.workers;
        let state = ServeState {
            config,
            counts: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            shutdown: AtomicBool::new(false),
            queue_depth: AtomicUsize::new(0),
            overloaded: AtomicUsize::new(0),
            deadline_rejections: AtomicUsize::new(0),
            worker_restarts: AtomicUsize::new(0),
            batches_formed: AtomicUsize::new(0),
            batch_claims: AtomicUsize::new(0),
            batch_items: AtomicUsize::new(0),
            admission_wait_us: AtomicU64::new(0),
            subscriptions: Mutex::new(Vec::new()),
            next_subscription: AtomicU64::new(0),
            disturb_seq: AtomicU64::new(0),
            updates_owed: AtomicU64::new(0),
            updates_delivered: AtomicU64::new(0),
            updates_shed: AtomicU64::new(0),
        };
        let scheduler = Scheduler::new();
        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let mut connections = 0usize;

        std::thread::scope(|scope| {
            for wid in 0..workers {
                let state = &state;
                let scheduler = &scheduler;
                let done = done_tx.clone();
                scope.spawn(move || worker_loop(wid, state, scheduler, &done));
            }
            drop(done_tx);
            connections = EventLoop::new(&self.listener, &state, &scheduler).run(&done_rx);
            // Event loop done: every connection is closed. Close the
            // scheduler so workers drain the (empty) queue and exit,
            // letting the scope join.
            scheduler.close();
        });

        Ok(ServeReport {
            requests_per_worker: state
                .counts
                .iter()
                .map(|c| c.load(Ordering::SeqCst))
                .collect(),
            connections,
            overloaded: state.overloaded.load(Ordering::SeqCst),
            deadline_rejections: state.deadline_rejections.load(Ordering::SeqCst),
            worker_restarts: state.worker_restarts.load(Ordering::SeqCst),
            batches_formed: state.batches_formed.load(Ordering::SeqCst),
            updates_owed: state.updates_owed.load(Ordering::SeqCst),
            updates_delivered: state.updates_delivered.load(Ordering::SeqCst),
            updates_shed: state.updates_shed.load(Ordering::SeqCst),
        })
    }
}

// ---------------------------------------------------------------------------
// Worker side: claim, fault sites, routing, delivery
// ---------------------------------------------------------------------------

/// One worker: claims micro-batches until the scheduler closes.
fn worker_loop(
    wid: usize,
    state: &ServeState<'_, '_>,
    scheduler: &Scheduler,
    done: &Sender<Completion>,
) {
    let faults = &state.config.faults;
    let inject = !faults.is_empty();
    while let Some(batch) = scheduler.claim() {
        state.queue_depth.fetch_sub(batch.len(), Ordering::SeqCst);
        if inject && faults.fires(faults::SITE_READ_STALL) {
            // Injected fault: wedge this worker right after its claim, as a
            // slow disk or lock would — later admissions back up behind it.
            std::thread::sleep(state.config.io_timeout.min(INJECTED_STALL));
        }
        // Batch bookkeeping happens at claim time, before per-item faults
        // can kill members: occupancy and batch counts describe what the
        // scheduler formed, not what survived injection.
        state.batch_claims.fetch_add(1, Ordering::SeqCst);
        state.batch_items.fetch_add(batch.len(), Ordering::SeqCst);
        if batch.len() >= 2 {
            state.batches_formed.fetch_add(1, Ordering::SeqCst);
        }
        let claimed_at = Instant::now();
        let mut live = Vec::with_capacity(batch.len());
        for item in batch {
            if inject && faults.fires(faults::SITE_CONN_DROP) {
                // Injected fault: the connection dies before its request is
                // served; the rest of the batch proceeds.
                let _ = done.send(Completion::Kill {
                    conn_id: item.conn_id,
                });
                continue;
            }
            if inject && faults.fires(faults::SITE_WORKER_PANIC) {
                // A panicking handler costs the connection, never the
                // worker; the unanswered request stays out of the
                // answered-request accounting.
                state.worker_restarts.fetch_add(1, Ordering::SeqCst);
                let _ = done.send(Completion::Kill {
                    conn_id: item.conn_id,
                });
                continue;
            }
            // Count before routing: every request a worker takes on is in
            // the ledger, whatever the route does with it.
            state.counts[wid].fetch_add(1, Ordering::SeqCst);
            state.admission_wait_us.fetch_add(
                claimed_at
                    .saturating_duration_since(item.admitted_at)
                    .as_micros() as u64,
                Ordering::SeqCst,
            );
            live.push(item);
        }
        if live.is_empty() {
            continue;
        }
        match live[0].kind {
            ItemKind::Generate { engine_idx }
                if live
                    .iter()
                    .all(|item| item.kind == ItemKind::Generate { engine_idx }) =>
            {
                serve_generate_batch(live, engine_idx, state, done);
            }
            _ => {
                for item in live {
                    serve_single(item, state, done);
                }
            }
        }
    }
}

/// The deadline budget of one admitted request.
fn item_budget(item: &PendingItem, state: &ServeState<'_, '_>) -> SessionBudget {
    let window = item
        .request
        .deadline_ms
        .map(Duration::from_millis)
        .or(state.config.default_deadline);
    // The budget is enforced at the engine boundary (the entry check of
    // `generate_with_budget` fires before any session work), not here:
    // control endpoints (`/healthz`, `/stats`, `/shutdown`) must stay
    // reachable even when every request has been queued past its deadline —
    // an operator shutting down an overloaded server is the case that
    // matters most.
    match window {
        Some(window) => SessionBudget::with_deadline(item.deadline_base + window),
        None => SessionBudget::unlimited(),
    }
}

/// Serves one non-batchable request through [`route`], intercepting
/// `/subscribe` (whose answer is a stream, not a [`Response`]).
fn serve_single(item: PendingItem, state: &ServeState<'_, '_>, done: &Sender<Completion>) {
    let budget = item_budget(&item, state);
    {
        let (engine_idx, endpoint, routed) = resolve_path(state.config, &item.request.path);
        if lookup_endpoint(&item.request.method, endpoint, routed) == Ok(Endpoint::Subscribe) {
            return serve_subscribe(item, engine_idx, state, &budget, done);
        }
    }
    // A panicking handler must not take the pool down: answer 500 and keep
    // serving (the request was already counted).
    let (response, stop_after) = match catch_unwind(AssertUnwindSafe(|| {
        route(&item.request, state, &budget, done)
    })) {
        Ok(pair) => pair,
        Err(_) => (Response::error(500, "internal error"), false),
    };
    if stop_after {
        // Graceful stop: flag the event loop before delivering, so this
        // response and every later one goes out with `connection: close`.
        state.shutdown.store(true, Ordering::SeqCst);
    }
    deliver(item, response, stop_after, state, done);
}

/// Serves one `/subscribe`: warm the engine's store for the canonical key
/// (so later disturbances repair — and therefore report — the entry),
/// register the subscription, and open the stream with a `subscribed`
/// acknowledgement frame carrying the current witness.
fn serve_subscribe(
    item: PendingItem,
    engine_idx: usize,
    state: &ServeState<'_, '_>,
    budget: &SessionBudget,
    done: &Sender<Completion>,
) {
    let engine = state.config.routes[engine_idx].engine;
    let nodes = match generate_nodes(&item.request, engine.num_nodes()) {
        Ok(nodes) => nodes,
        Err(response) => return deliver(item, response, false, state, done),
    };
    // Canonicalize to the engine's store key: fan-out matches
    // [`rcw_core::EntryRepair::test_nodes`] (always canonical) by equality.
    let mut key = nodes;
    key.sort_unstable();
    key.dedup();
    let result = match catch_unwind(AssertUnwindSafe(|| {
        engine.generate_with_budget(&key, budget)
    })) {
        Ok(Ok(result)) => result,
        Ok(Err(BudgetExceeded)) => {
            return deliver(item, budget_rejection(state), false, state, done)
        }
        Err(_) => {
            return deliver(
                item,
                Response::error(500, "internal error"),
                false,
                state,
                done,
            )
        }
    };
    let id = state.next_subscription.fetch_add(1, Ordering::SeqCst) + 1;
    lock_subs(state).push(SubEntry {
        id,
        engine_idx,
        key: key.clone(),
    });
    let frame = wire::subscribed_frame_to_body(id, engine.epoch(), &key, &result);
    let mut bytes = http::encode_stream_head();
    bytes.extend_from_slice(&http::encode_stream_frame(&frame));
    let _ = done.send(Completion::Stream {
        conn_id: item.conn_id,
        subscription: id,
        bytes,
    });
}

/// Serves one same-engine `/generate` micro-batch through the engine's
/// batched entry: parse failures answer 400 per item, the rest share one
/// [`ServedEngine::generate_batch_with`] call. Every response ships the
/// moment its query is answered — the engine's warm pass emits before the
/// cold tail runs, so a warm hit stapled into a batch ahead of a cold
/// expand-verify session never waits out that session.
fn serve_generate_batch(
    live: Vec<PendingItem>,
    engine_idx: usize,
    state: &ServeState<'_, '_>,
    done: &Sender<Completion>,
) {
    let engine = state.config.routes[engine_idx].engine;
    let num_nodes = engine.num_nodes();
    let mut items: Vec<Option<PendingItem>> = live.into_iter().map(Some).collect();
    let mut queries = Vec::with_capacity(items.len());
    let mut budgets = Vec::with_capacity(items.len());
    let mut origin = Vec::with_capacity(items.len());
    for (slot, item_slot) in items.iter_mut().enumerate() {
        let item = item_slot.as_ref().expect("batch slots start occupied");
        match generate_nodes(&item.request, num_nodes) {
            Ok(nodes) => {
                queries.push(nodes);
                budgets.push(item_budget(item, state));
                origin.push(slot);
            }
            Err(response) => {
                let item = item_slot.take().expect("slot still occupied");
                deliver(item, response, false, state, done);
            }
        }
    }
    if !queries.is_empty() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            engine.generate_batch_with(&queries, &budgets, &mut |i, result| {
                let item = items[origin[i]].take().expect("each query emitted once");
                let response = match result {
                    Ok(generated) => Response::ok(wire::generation_to_body(&generated)),
                    Err(BudgetExceeded) => budget_rejection(state),
                };
                deliver(item, response, false, state, done);
            })
        }));
        if outcome.is_err() {
            // Mid-batch panic: queries already emitted got their answers,
            // the rest get the 500 a panicking single request would.
            for &slot in &origin {
                if let Some(item) = items[slot].take() {
                    deliver(
                        item,
                        Response::error(500, "internal error"),
                        false,
                        state,
                        done,
                    );
                }
            }
        }
    }
}

/// Ships one response back through the event loop, applying the write-side
/// fault sites.
fn deliver(
    item: PendingItem,
    response: Response,
    stop_after: bool,
    state: &ServeState<'_, '_>,
    done: &Sender<Completion>,
) {
    let faults = &state.config.faults;
    let inject = !faults.is_empty();
    // Once shutdown is flagged (by this request or concurrently), the
    // response still goes out but the connection closes: an
    // actively-requesting kept-alive peer must not defer the drain forever.
    let close = item.request.close || stop_after || state.shutdown.load(Ordering::SeqCst);
    if inject && faults.fires(faults::SITE_WRITE_DROP) {
        // Injected fault: the computed answer never hits the wire.
        let _ = done.send(Completion::Kill {
            conn_id: item.conn_id,
        });
        return;
    }
    if inject && faults.fires(faults::SITE_WRITE_TRUNCATE) {
        // Injected fault: half a real response, then a close — what a peer
        // sees when a server dies mid-write.
        let bytes = encode_response(&response, true);
        let half = bytes.len() / 2;
        let _ = done.send(Completion::Respond {
            conn_id: item.conn_id,
            bytes: bytes[..half].to_vec(),
            close: true,
        });
        return;
    }
    let _ = done.send(Completion::Respond {
        conn_id: item.conn_id,
        bytes: encode_response(&response, close),
        close,
    });
}

// ---------------------------------------------------------------------------
// Event loop: accept, read, frame, admit, write
// ---------------------------------------------------------------------------

/// One nonblocking connection in the event loop's slab.
struct Conn {
    stream: TcpStream,
    /// Incremental request framer (buffers partial reads).
    frame: FrameBuf,
    /// Pending response bytes and how much of them has been written.
    out: Vec<u8>,
    out_pos: usize,
    close_after_write: bool,
    /// A request from this connection is with the scheduler or a worker:
    /// the loop neither reads more nor times the connection out until the
    /// completion comes back.
    busy: bool,
    /// Whether the connection has been counted (first admitted request).
    counted: bool,
    first_request: bool,
    /// Peer half-closed its write side (EOF seen).
    eof: bool,
    accepted_at: Instant,
    /// Last byte in or out — idle/stall timeouts measure from here.
    last_progress: Instant,
    /// When the currently-buffered partial request started arriving.
    frame_since: Option<Instant>,
    /// When this connection last had a request admitted (or was accepted):
    /// the kick-deferral heuristic treats a recently-active idle keep-alive
    /// peer as "about to send again" (closed-loop clients re-send as soon
    /// as their response lands).
    last_admit: Instant,
    /// `Some(subscription)` once a `/subscribe` opened a stream on this
    /// connection: it becomes a one-way NDJSON pipe — no further requests
    /// are read, idle timeouts don't apply (only the write-grace bound),
    /// and it lives until the peer closes or the write side wedges.
    streaming: Option<u64>,
}

impl Conn {
    /// An idle keep-alive peer that was recently active: nothing queued in
    /// or out, and it sent within [`RECEPTIVE_WINDOW`]. Such a peer is
    /// expected to follow up imminently, so a forming batch briefly waits
    /// for it.
    fn receptive(&self, now: Instant) -> bool {
        !self.busy
            && self.out_pos >= self.out.len()
            && self.frame_since.is_none()
            && !self.eof
            && now.duration_since(self.last_admit) < RECEPTIVE_WINDOW
    }
}

/// What the timeout scan decided for one connection.
enum TimeoutAction {
    Keep,
    Drop,
    Stalled408,
}

struct EventLoop<'a, 'e, 'c> {
    listener: &'a TcpListener,
    state: &'a ServeState<'e, 'c>,
    scheduler: &'a Scheduler,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
    connections: usize,
    /// Whether the current sweep pushed work (kick bookkeeping).
    pushed: bool,
    /// Requests admitted since the last [`Scheduler::kick`], and when the
    /// first of them arrived. The kick is deferred while arrivals continue
    /// so a burst forms one batch; the window bounds the deferral.
    pending: usize,
    pending_since: Option<Instant>,
    /// Subscription id → connection slot, installed when a
    /// [`Completion::Stream`] is applied and removed at close. Pushes
    /// resolve through this map — never through a raw `conn_id`, which may
    /// have been reused after the stream's connection died.
    streams: std::collections::HashMap<u64, usize>,
    rdbuf: [u8; 16384],
}

/// Queues a loop-generated response (shed, framing error, stall) on the
/// connection's ordinary write path.
fn queue_response(conn: &mut Conn, response: &Response, close: bool) {
    conn.out = encode_response(response, close);
    conn.out_pos = 0;
    conn.close_after_write = close;
}

impl<'a, 'e, 'c> EventLoop<'a, 'e, 'c> {
    fn new(
        listener: &'a TcpListener,
        state: &'a ServeState<'e, 'c>,
        scheduler: &'a Scheduler,
    ) -> Self {
        EventLoop {
            listener,
            state,
            scheduler,
            conns: Vec::new(),
            free: Vec::new(),
            live: 0,
            connections: 0,
            pushed: false,
            pending: 0,
            pending_since: None,
            streams: std::collections::HashMap::new(),
            rdbuf: [0u8; 16384],
        }
    }

    /// Runs until shutdown is flagged and every connection has drained.
    /// Returns the number of connections counted.
    fn run(mut self, done_rx: &Receiver<Completion>) -> usize {
        let mut last_activity = Instant::now();
        let mut last_scan = Instant::now();
        loop {
            let mut activity = false;
            if !self.state.shutdown.load(Ordering::SeqCst) {
                activity |= self.accept_new();
            }
            while let Ok(completion) = done_rx.try_recv() {
                self.apply(completion);
                activity = true;
            }
            for id in 0..self.conns.len() {
                activity |= self.pump(id);
            }
            // Kick deferral: hold the worker wakeup while a batch is still
            // filling, so a burst admitted over several sweeps is claimed as
            // one micro-batch instead of a train of singletons. The batch
            // keeps filling while (a) this sweep admitted something, or
            // (b) receptive peers — recently-active idle keep-alives, i.e.
            // closed-loop clients whose next request is imminent — exist and
            // the head is younger than [`KICK_GRACE`]. A full batch or a
            // head older than the admission window kicks unconditionally:
            // unrelated socket activity must never starve a queued request.
            let sweep_admitted = self.pushed;
            self.pushed = false;
            if self.pending > 0 {
                let now = Instant::now();
                let head_age = self
                    .pending_since
                    .map(|t| now.duration_since(t))
                    .unwrap_or_default();
                let force = self.pending >= MAX_BATCH || head_age >= ADMISSION_WINDOW;
                let filling = sweep_admitted
                    || (head_age < KICK_GRACE
                        && self.conns.iter().flatten().any(|c| c.receptive(now)));
                if force || !filling {
                    self.pending = 0;
                    self.pending_since = None;
                    self.scheduler.kick();
                }
            }
            if self.state.shutdown.load(Ordering::SeqCst) {
                // Streams are one-way: no final response ever closes them, so
                // graceful stop closes each one once its queued frames have
                // flushed (a peer not draining loses the write-grace race in
                // `scan_timeouts` instead).
                for id in 0..self.conns.len() {
                    let flushed = matches!(
                        self.conns[id].as_ref(),
                        Some(conn) if conn.streaming.is_some() && conn.out_pos >= conn.out.len()
                    );
                    if flushed {
                        self.close(id);
                    }
                }
                if self.live == 0 {
                    return self.connections;
                }
            }
            let now = Instant::now();
            if now.duration_since(last_scan) >= TIMEOUT_SCAN_EVERY {
                last_scan = now;
                activity |= self.scan_timeouts(now);
            }
            // When every live connection is either in-flight with a worker
            // or idle with no receptive peer behind it, re-sweeping cannot
            // find work — every next event is a worker completion. Park on
            // the completion channel outright: `yield_now` is too weak here
            // (the loop's low vruntime lets it keep preempting the very
            // worker it is waiting on). Accepts and stray bytes are picked
            // up at most IDLE_POLL later.
            let only_completions_can_wake_us = self.pending == 0
                && self.live > 0
                && self.conns.iter().flatten().all(|c| {
                    c.busy
                        || (c.out_pos >= c.out.len()
                            && c.frame_since.is_none()
                            && !c.receptive(now))
                });
            if only_completions_can_wake_us {
                match done_rx.recv_timeout(IDLE_POLL) {
                    Ok(completion) => {
                        self.apply(completion);
                        last_activity = Instant::now();
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => std::thread::sleep(IDLE_POLL),
                }
            } else if activity {
                last_activity = now;
                // Hand the core to whoever the sweep made runnable (a worker
                // with a fresh claim, a peer with a response) before sweeping
                // again — on a single-core box the loop would otherwise
                // starve the very threads it just fed.
                std::thread::yield_now();
            } else if now.duration_since(last_activity) <= SPIN_WINDOW {
                // Recently hot: keep sweeping, but only on an otherwise-idle
                // core. The yield keeps socket pickup latency at sweep
                // granularity without taxing runnable threads.
                std::thread::yield_now();
            } else {
                // Nothing moved for a while: park on the completion channel
                // so an idle server stops burning CPU. Socket readability is
                // picked up on the next sweep, at most IDLE_POLL later.
                match done_rx.recv_timeout(IDLE_POLL) {
                    Ok(completion) => {
                        self.apply(completion);
                        last_activity = Instant::now();
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => std::thread::sleep(IDLE_POLL),
                }
            }
        }
    }

    /// Accepts every connection the listener has ready.
    fn accept_new(&mut self) -> bool {
        let mut any = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Request/response round trips are latency-bound small
                    // messages: without TCP_NODELAY, Nagle + the peer's
                    // delayed ACK add ~40ms per response.
                    let _ = stream.set_nodelay(true);
                    let now = Instant::now();
                    let conn = Conn {
                        stream,
                        frame: FrameBuf::new(),
                        out: Vec::new(),
                        out_pos: 0,
                        close_after_write: false,
                        busy: false,
                        counted: false,
                        first_request: true,
                        eof: false,
                        accepted_at: now,
                        last_progress: now,
                        frame_since: None,
                        last_admit: now,
                        streaming: None,
                    };
                    match self.free.pop() {
                        Some(id) => self.conns[id] = Some(conn),
                        None => self.conns.push(Some(conn)),
                    }
                    self.live += 1;
                    any = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break, // transient accept error: retry next sweep
            }
        }
        any
    }

    /// Applies one worker completion to its connection.
    fn apply(&mut self, completion: Completion) {
        match completion {
            Completion::Respond {
                conn_id,
                bytes,
                close,
            } => {
                let Some(conn) = self.conns[conn_id].as_mut() else {
                    return;
                };
                conn.busy = false;
                conn.out = bytes;
                conn.out_pos = 0;
                // A peer that half-closed after sending can still receive
                // the answer, but the connection is done afterwards.
                conn.close_after_write = close || conn.eof;
                self.pump(conn_id);
            }
            Completion::Kill { conn_id } => self.close(conn_id),
            Completion::Stream {
                conn_id,
                subscription,
                bytes,
            } => {
                let Some(conn) = self.conns[conn_id].as_mut() else {
                    // The connection died between claim and stream open:
                    // retire the registration (no updates were owed yet).
                    unregister(self.state, subscription);
                    return;
                };
                conn.busy = false;
                conn.streaming = Some(subscription);
                conn.out = bytes;
                conn.out_pos = 0;
                conn.close_after_write = false;
                self.streams.insert(subscription, conn_id);
                self.pump(conn_id);
            }
            Completion::Push {
                subscription,
                bytes,
            } => {
                // Resolve exactly once: delivered (queued under the cap) or
                // shed. A missing map entry means the stream closed after
                // fan-out counted the update — shed, keeping the ledger
                // exact.
                let queued_on = self.streams.get(&subscription).copied().filter(|&id| {
                    match self.conns[id].as_mut() {
                        Some(conn)
                            if conn.out.len() - conn.out_pos + bytes.len()
                                <= SUBSCRIBE_BUFFER_CAP =>
                        {
                            conn.out.extend_from_slice(&bytes);
                            true
                        }
                        _ => false,
                    }
                });
                match queued_on {
                    Some(id) => {
                        self.state.updates_delivered.fetch_add(1, Ordering::SeqCst);
                        self.pump(id);
                    }
                    None => {
                        self.state.updates_shed.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        }
    }

    fn close(&mut self, id: usize) {
        if let Some(conn) = self.conns[id].take() {
            // A dying stream retires its subscription: later disturbances
            // stop owing it updates (in-flight pushes resolve as shed).
            if let Some(subscription) = conn.streaming {
                self.streams.remove(&subscription);
                unregister(self.state, subscription);
            }
            self.free.push(id);
            self.live -= 1;
        }
    }

    /// Advances one connection: flush pending output, read what's
    /// available, frame and admit at most one request. Returns whether
    /// anything moved.
    fn pump(&mut self, id: usize) -> bool {
        let Some(mut conn) = self.conns[id].take() else {
            return false;
        };
        let mut activity = false;
        let alive = self.pump_conn(id, &mut conn, &mut activity);
        self.conns[id] = Some(conn);
        if !alive {
            // Route the drop through `close`: a dying stream must retire its
            // subscription and streams-map entry, or a later Push would
            // address whatever connection reuses this slot.
            self.close(id);
        }
        activity
    }

    /// The per-connection state machine; `false` means drop the connection.
    fn pump_conn(&mut self, id: usize, conn: &mut Conn, activity: &mut bool) -> bool {
        // Write phase: drain pending response bytes.
        if conn.out_pos < conn.out.len() {
            loop {
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => return false,
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_progress = Instant::now();
                        *activity = true;
                        if conn.out_pos >= conn.out.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
            conn.out.clear();
            conn.out_pos = 0;
            if conn.close_after_write {
                return false;
            }
        }
        // A subscription stream is one-way: frames go out via Push
        // completions, and the peer's read side only matters for detecting
        // close. Anything it sends is consumed and discarded — there is no
        // request framing on a stream.
        if conn.streaming.is_some() {
            loop {
                match conn.stream.read(&mut self.rdbuf) {
                    Ok(0) => return false,
                    Ok(_) => {
                        conn.last_progress = Instant::now();
                        *activity = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
            return true;
        }
        // One in-flight request per connection: responses go back in
        // request order, and the loop never reads ahead of the worker.
        if conn.busy {
            return true;
        }
        // Read phase: pull everything available into the framer.
        if !conn.eof {
            loop {
                match conn.stream.read(&mut self.rdbuf) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        if conn.frame_since.is_none() {
                            conn.frame_since = Some(Instant::now());
                        }
                        conn.frame.extend(&self.rdbuf[..n]);
                        conn.last_progress = Instant::now();
                        *activity = true;
                        if n < self.rdbuf.len() {
                            // Short read: the socket buffer is drained — skip
                            // the confirming read() that would just say
                            // WouldBlock. A byte racing in right now is
                            // picked up on the next sweep.
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
        }
        // Frame phase: admit a complete request, or answer framing errors.
        match conn.frame.try_take() {
            FrameOutcome::Complete(request) => {
                conn.frame_since = if conn.frame.is_empty() {
                    None
                } else {
                    // Pipelined bytes of the next request are already here.
                    Some(Instant::now())
                };
                *activity = true;
                self.admit(id, conn, request);
                true
            }
            FrameOutcome::Partial => {
                if conn.eof {
                    if conn.frame.is_empty() {
                        false // peer closed between requests: silent drop
                    } else {
                        // EOF mid-request: best-effort 400, then close.
                        queue_response(conn, &Response::error(400, "truncated request"), true);
                        true
                    }
                } else {
                    true
                }
            }
            // Framing-level rejections are answered by the loop itself and
            // never reach the scheduler or the request ledger.
            FrameOutcome::Malformed(message) => {
                queue_response(conn, &Response::error(400, &message), true);
                true
            }
            FrameOutcome::TooLarge(message) => {
                queue_response(conn, &Response::error(413, &message), true);
                true
            }
        }
    }

    /// Admits one complete request: shed at the queue bound, else classify
    /// and push to the scheduler.
    fn admit(&mut self, id: usize, conn: &mut Conn, request: Request) {
        let now = Instant::now();
        // Backpressure: shed at admission when the scheduler is at its
        // bound, through this same write path — shed requests are exact in
        // `overloaded` and absent from the request ledger.
        if self.state.queue_depth.load(Ordering::SeqCst) >= self.state.config.queue_bound {
            self.state.overloaded.fetch_add(1, Ordering::SeqCst);
            queue_response(conn, &overload_response(self.state), true);
            return;
        }
        if !conn.counted {
            conn.counted = true;
            self.connections += 1;
        }
        let deadline_base = if conn.first_request {
            conn.accepted_at
        } else {
            now
        };
        conn.first_request = false;
        conn.busy = true;
        let kind = classify(self.state.config, &request);
        self.state.queue_depth.fetch_add(1, Ordering::SeqCst);
        self.scheduler.push(PendingItem {
            conn_id: id,
            request,
            kind,
            admitted_at: now,
            deadline_base,
        });
        conn.last_admit = now;
        self.pushed = true;
        self.pending += 1;
        if self.pending_since.is_none() {
            self.pending_since = Some(now);
        }
    }

    /// Periodic sweep for idle and stalled peers.
    fn scan_timeouts(&mut self, now: Instant) -> bool {
        let io_timeout = self.state.config.io_timeout;
        let mut any = false;
        for id in 0..self.conns.len() {
            let action = match self.conns[id].as_mut() {
                None => TimeoutAction::Keep,
                Some(conn) if conn.busy => TimeoutAction::Keep,
                Some(conn) if conn.streaming.is_some() => {
                    // A stream idles as long as it likes; only a peer that
                    // stops draining queued frames loses the slot (the
                    // slow-consumer policy's backstop behind frame shed).
                    if conn.out_pos < conn.out.len()
                        && now.duration_since(conn.last_progress) > io_timeout
                    {
                        TimeoutAction::Drop
                    } else {
                        TimeoutAction::Keep
                    }
                }
                Some(conn) => {
                    if conn.out_pos < conn.out.len() {
                        // A peer not draining its response gets io_timeout
                        // of write grace, then the slot is reclaimed.
                        if now.duration_since(conn.last_progress) > io_timeout {
                            TimeoutAction::Drop
                        } else {
                            TimeoutAction::Keep
                        }
                    } else if let Some(since) = conn.frame_since {
                        // Mid-request stall: the whole head+body gets
                        // 2 × io_timeout (room for an idle keep-alive wait
                        // plus the request itself), then a best-effort 408 —
                        // the slowloris bound.
                        if now.duration_since(since) > 2 * io_timeout {
                            TimeoutAction::Stalled408
                        } else {
                            TimeoutAction::Keep
                        }
                    } else if now.duration_since(conn.last_progress) > io_timeout {
                        // Idle keep-alive peer: silent drop.
                        TimeoutAction::Drop
                    } else {
                        TimeoutAction::Keep
                    }
                }
            };
            match action {
                TimeoutAction::Keep => {}
                TimeoutAction::Drop => {
                    self.close(id);
                    any = true;
                }
                TimeoutAction::Stalled408 => {
                    let conn = self.conns[id].as_mut().expect("conn matched for 408");
                    queue_response(conn, &Response::error(408, "request timeout"), true);
                    // Give the 408 write its own grace window.
                    conn.last_progress = now;
                    conn.frame_since = None;
                    any = true;
                }
            }
        }
        any
    }
}

// ---------------------------------------------------------------------------
// Routing and endpoint handlers
// ---------------------------------------------------------------------------

/// What a path + method resolved to, after route-prefix stripping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Endpoint {
    Healthz,
    Stats,
    Generate,
    /// `deprecated` marks the legacy `/generate_batch` spelling, which
    /// answers identically plus a `Deprecation` header.
    GenerateBatch {
        deprecated: bool,
    },
    Disturb,
    Subscribe,
    Shutdown,
}

/// One row of the endpoint table.
struct EndpointSpec {
    method: &'static str,
    /// The endpoint path after the optional route prefix (may itself
    /// contain `/`, e.g. `generate/batch`).
    path: &'static str,
    endpoint: Endpoint,
    /// Whole-process endpoints only exist unrouted (`/shutdown`).
    global_only: bool,
}

/// The wire's endpoint table. One table drives admission classification
/// ([`classify`]), routing ([`route`]), and 405-vs-404 synthesis, so the
/// three can never drift.
const ENDPOINT_TABLE: &[EndpointSpec] = &[
    EndpointSpec {
        method: "GET",
        path: "healthz",
        endpoint: Endpoint::Healthz,
        global_only: false,
    },
    EndpointSpec {
        method: "GET",
        path: "stats",
        endpoint: Endpoint::Stats,
        global_only: false,
    },
    EndpointSpec {
        method: "POST",
        path: "generate",
        endpoint: Endpoint::Generate,
        global_only: false,
    },
    EndpointSpec {
        method: "POST",
        path: "generate/batch",
        endpoint: Endpoint::GenerateBatch { deprecated: false },
        global_only: false,
    },
    EndpointSpec {
        method: "POST",
        path: "generate_batch",
        endpoint: Endpoint::GenerateBatch { deprecated: true },
        global_only: false,
    },
    EndpointSpec {
        method: "POST",
        path: "disturb",
        endpoint: Endpoint::Disturb,
        global_only: false,
    },
    EndpointSpec {
        method: "POST",
        path: "subscribe",
        endpoint: Endpoint::Subscribe,
        global_only: false,
    },
    EndpointSpec {
        method: "POST",
        path: "shutdown",
        endpoint: Endpoint::Shutdown,
        global_only: true,
    },
];

/// Splits a request path into `(engine_idx, endpoint, routed)`: the first
/// path segment selects the engine when it names a registered route; bare
/// endpoints go to the default (first) engine.
fn resolve_path<'p>(config: &ServerConfig<'_>, path: &'p str) -> (usize, &'p str, bool) {
    let path = path.split('?').next().unwrap_or("");
    let trimmed = path.strip_prefix('/').unwrap_or(path);
    match trimmed.split_once('/') {
        Some((name, rest)) => match config.route_index(name) {
            Some(idx) => (idx, rest, true),
            None => (0, trimmed, false),
        },
        None => (0, trimmed, false),
    }
}

/// Table lookup: `Ok` on an exact (method, path) match; `Err(true)` when the
/// path names an endpoint but under a different method (405); `Err(false)`
/// when nothing matches (404).
fn lookup_endpoint(method: &str, endpoint: &str, routed: bool) -> Result<Endpoint, bool> {
    let mut name_matched = false;
    for spec in ENDPOINT_TABLE {
        if spec.global_only && routed {
            continue;
        }
        if spec.path == endpoint {
            if spec.method == method {
                return Ok(spec.endpoint);
            }
            name_matched = true;
        }
    }
    Err(name_matched)
}

/// Classifies a request for admission through the endpoint table:
/// `POST [/NAME]/generate` resolves to its engine and is batchable,
/// everything else is claimed singly.
fn classify(config: &ServerConfig<'_>, request: &Request) -> ItemKind {
    let (engine_idx, endpoint, routed) = resolve_path(config, &request.path);
    match lookup_endpoint(&request.method, endpoint, routed) {
        Ok(Endpoint::Generate) => ItemKind::Generate { engine_idx },
        _ => ItemKind::Other,
    }
}

fn overload_response(state: &ServeState<'_, '_>) -> Response {
    // The uniform v1 error body, plus the shed-visibility extras clients use
    // to size their backoff (extra top-level fields are within the schema).
    let (code, retryable) = http::error_class(429);
    Response {
        status: 429,
        body: wire::versioned(Json::obj([
            (
                "error",
                Json::obj([
                    ("code", Json::Str(code.to_string())),
                    ("detail", Json::Str("overloaded".to_string())),
                    ("retryable", Json::Bool(retryable)),
                ]),
            ),
            (
                "queue_depth",
                Json::num(state.queue_depth.load(Ordering::SeqCst) as u64),
            ),
            ("queue_bound", Json::num(state.config.queue_bound as u64)),
        ]))
        .encode(),
        headers: Vec::new(),
    }
}

fn deadline_response() -> Response {
    Response::error(503, "deadline exceeded")
}

/// Routes one request through the endpoint table. Returns the response and
/// whether the server should stop after sending it. `/subscribe` never
/// reaches here — [`serve_single`] intercepts it (a stream is not a
/// [`Response`]).
fn route(
    request: &Request,
    state: &ServeState<'_, '_>,
    budget: &SessionBudget,
    done: &Sender<Completion>,
) -> (Response, bool) {
    let path = request.path.split('?').next().unwrap_or("");
    let (engine_idx, endpoint, routed) = resolve_path(state.config, &request.path);
    let name = state.config.routes[engine_idx].name.as_str();
    let engine = state.config.routes[engine_idx].engine;
    let response = match lookup_endpoint(&request.method, endpoint, routed) {
        Ok(Endpoint::Healthz) => Response::ok(
            wire::versioned(Json::obj([
                ("ok", Json::Bool(true)),
                ("epoch", Json::num(engine.epoch())),
                ("engine", Json::Str(name.to_string())),
            ]))
            .encode(),
        ),
        Ok(Endpoint::Stats) => handle_stats(state, engine_idx),
        Ok(Endpoint::Generate) => handle_generate(request, engine, state, budget),
        Ok(Endpoint::GenerateBatch { deprecated }) => {
            let response = handle_generate_batch(request, engine, state, budget);
            if deprecated {
                // The legacy spelling answers identically, flagged per RFC
                // 9745 so clients can find the successor mechanically.
                response.with_header(
                    "deprecation",
                    "@0; successor=\"/generate/batch\"".to_string(),
                )
            } else {
                response
            }
        }
        Ok(Endpoint::Disturb) => handle_disturb(request, engine, engine_idx, state, done),
        // Shutdown is a whole-process action: it only exists unrouted
        // (the table hides it from routed paths).
        Ok(Endpoint::Shutdown) => {
            return (
                Response::ok(wire::versioned(Json::obj([("ok", Json::Bool(true))])).encode()),
                true,
            )
        }
        // Unreachable: serve_single intercepts subscribes before routing.
        Ok(Endpoint::Subscribe) => Response::error(500, "internal error"),
        Err(true) => Response::error(
            405,
            &format!("method {} not allowed for {path}", request.method),
        ),
        Err(false) => Response::error(404, &format!("no route for {path}")),
    };
    (response, false)
}

fn parse_body(request: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| Response::error(400, "body is not utf-8"))?;
    Json::parse(text).map_err(|e| Response::error(400, &e.to_string()))
}

/// Enforces the v1 envelope on a tree-parsed request body: missing or
/// unsupported versions answer 400 with the explicit `bad_version` code.
fn check_body_version(body: &Json) -> Result<(), Response> {
    wire::check_version(body)
        .map_err(|e| Response::error_coded(400, "bad_version", &e.to_string(), false))
}

/// Pulls and validates a test-node set against the engine's graph, so
/// invalid queries become a 400 instead of a worker panic.
fn parse_nodes(value: &Json, num_nodes: usize) -> Result<Vec<usize>, Response> {
    let nodes = value
        .as_arr()
        .and_then(|items| {
            items
                .iter()
                .map(|x| x.as_usize())
                .collect::<Result<Vec<_>, _>>()
        })
        .map_err(|e| Response::error(400, &e.to_string()))?;
    validate_nodes(nodes, num_nodes)
}

/// The shared range/emptiness validation behind both `/generate` decoders.
fn validate_nodes(nodes: Vec<usize>, num_nodes: usize) -> Result<Vec<usize>, Response> {
    if nodes.is_empty() {
        return Err(Response::error(400, "empty test-node set"));
    }
    if let Some(&bad) = nodes.iter().find(|&&v| v >= num_nodes) {
        return Err(Response::error(
            400,
            &format!("node {bad} out of range (graph has {num_nodes} nodes)"),
        ));
    }
    Ok(nodes)
}

/// Parses and validates a `/generate` request body into its test-node set.
///
/// The direct decoder handles the well-formed case without building a
/// [`Json`] tree; anything it rejects is re-parsed through the tree path so
/// malformed bodies keep their established 400 messages.
fn generate_nodes(request: &Request, num_nodes: usize) -> Result<Vec<usize>, Response> {
    if let Ok(text) = std::str::from_utf8(&request.body) {
        if let Ok(nodes) = wire::nodes_from_body(text) {
            return validate_nodes(nodes, num_nodes);
        }
    }
    let body = parse_body(request)?;
    check_body_version(&body)?;
    let value = body
        .field("nodes")
        .map_err(|e| Response::error(400, &e.to_string()))?;
    parse_nodes(value, num_nodes)
}

/// Maps an engine-side budget abort to the 503 wire error (counted).
fn budget_rejection(state: &ServeState<'_, '_>) -> Response {
    state.deadline_rejections.fetch_add(1, Ordering::SeqCst);
    deadline_response()
}

fn handle_generate(
    request: &Request,
    engine: &dyn ServedEngine,
    state: &ServeState<'_, '_>,
    budget: &SessionBudget,
) -> Response {
    let nodes = match generate_nodes(request, engine.num_nodes()) {
        Ok(nodes) => nodes,
        Err(r) => return r,
    };
    match engine.generate_with_budget(&nodes, budget) {
        Ok(result) => Response::ok(wire::generation_to_body(&result)),
        Err(BudgetExceeded) => budget_rejection(state),
    }
}

fn handle_generate_batch(
    request: &Request,
    engine: &dyn ServedEngine,
    state: &ServeState<'_, '_>,
    budget: &SessionBudget,
) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    if let Err(r) = check_body_version(&body) {
        return r;
    }
    let queries = match body
        .field("queries")
        .and_then(|q| q.as_arr())
        .map_err(|e| Response::error(400, &e.to_string()))
    {
        Ok(q) => q,
        Err(r) => return r,
    };
    let num_nodes = engine.num_nodes();
    // Validate the whole batch before generating anything: a malformed
    // batch is rejected all-or-nothing. Generation itself is sequential —
    // on a mid-batch deadline abort the batch answers 503, and the queries
    // already answered stay in the store (each is a complete, valid witness
    // that makes a retry warm).
    let mut parsed = Vec::with_capacity(queries.len());
    for query in queries {
        match parse_nodes(query, num_nodes) {
            Ok(nodes) => parsed.push(nodes),
            Err(r) => return r,
        }
    }
    let mut results = Vec::with_capacity(parsed.len());
    for nodes in &parsed {
        match engine.generate_with_budget(nodes, budget) {
            Ok(result) => results.push(wire::generation_to_json(&result)),
            Err(BudgetExceeded) => return budget_rejection(state),
        }
    }
    Response::ok(wire::versioned(Json::obj([("results", Json::Arr(results))])).encode())
}

fn handle_disturb(
    request: &Request,
    engine: &dyn ServedEngine,
    engine_idx: usize,
    state: &ServeState<'_, '_>,
    done: &Sender<Completion>,
) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    if let Err(r) = check_body_version(&body) {
        return r;
    }
    // Either one disturbance ({"flips": [...]}) or a batch
    // ({"disturbances": [{"flips": [...]}, ...]}).
    let decoded = if body.get("disturbances").is_some() {
        body.field("disturbances")
            .and_then(|ds| ds.as_arr())
            .and_then(|ds| ds.iter().map(wire::disturbance_from_json).collect())
    } else {
        wire::disturbance_from_json(&body).map(|d| vec![d])
    };
    let disturbances = match decoded {
        Ok(ds) => ds,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let report = engine.disturb(&disturbances);
    let disturbance_id = state.disturb_seq.fetch_add(1, Ordering::SeqCst) + 1;
    // Fan-out: every (subscription, touched-entry) match owes exactly one
    // update, pushed the moment the engine's repair completed (the entry's
    // result was captured under the store lock, so it is bit-exact with a
    // fresh /generate at this epoch). Owed is counted under the registry
    // lock; each push is resolved exactly once by the event loop.
    if !report.entries.is_empty() {
        let subs = lock_subs(state);
        for entry in &report.entries {
            for sub in subs
                .iter()
                .filter(|s| s.engine_idx == engine_idx && s.key == entry.test_nodes)
            {
                state.updates_owed.fetch_add(1, Ordering::SeqCst);
                let frame = wire::update_frame_to_body(&wire::WitnessUpdate {
                    subscription: sub.id,
                    disturbance: disturbance_id,
                    outcome: entry.outcome,
                    epoch: report.epoch,
                    result: entry.result.clone(),
                });
                let _ = done.send(Completion::Push {
                    subscription: sub.id,
                    bytes: http::encode_stream_frame(&frame),
                });
            }
        }
    }
    Response::ok(wire::versioned(wire::disturb_report_to_json(&report)).encode())
}

/// The stats payload: the selected engine's snapshot under `engine` (the
/// default engine for the unrouted `/stats`), every registered engine's
/// snapshot under `engines`, and the transport counters under `server`.
fn handle_stats(state: &ServeState<'_, '_>, engine_idx: usize) -> Response {
    let engines: Vec<(String, Json)> = state
        .config
        .routes
        .iter()
        .map(|r| {
            let mut snap = wire::snapshot_to_json(&r.engine.snapshot());
            // Sharded engines expose their routing ledger alongside the
            // aggregated engine counters.
            if let Some(routing) = r.engine.sharding() {
                if let Json::Obj(fields) = &mut snap {
                    fields.push(("sharding".to_string(), wire::shard_stats_to_json(&routing)));
                }
            }
            (r.name.clone(), snap)
        })
        .collect();
    // The selected engine's snapshot is already in the map: cloning the
    // encoded value is cheaper than taking the engine's locks a second time.
    let selected = engines[engine_idx].1.clone();
    let per_worker: Vec<Json> = state
        .counts
        .iter()
        .map(|c| Json::Num(c.load(Ordering::SeqCst) as f64))
        .collect();
    let claims = state.batch_claims.load(Ordering::SeqCst);
    let claimed_items = state.batch_items.load(Ordering::SeqCst);
    let occupancy = if claims == 0 {
        0.0
    } else {
        claimed_items as f64 / claims as f64
    };
    Response::ok(
        wire::versioned(Json::obj([
            ("engine", selected),
            ("engines", Json::Obj(engines)),
            (
                "server",
                Json::obj([
                    ("workers", Json::num(state.counts.len() as u64)),
                    ("requests_per_worker", Json::Arr(per_worker)),
                    ("queue_bound", Json::num(state.config.queue_bound as u64)),
                    (
                        "queue_depth",
                        Json::num(state.queue_depth.load(Ordering::SeqCst) as u64),
                    ),
                    (
                        "overloaded",
                        Json::num(state.overloaded.load(Ordering::SeqCst) as u64),
                    ),
                    (
                        "deadline_rejections",
                        Json::num(state.deadline_rejections.load(Ordering::SeqCst) as u64),
                    ),
                    (
                        "worker_restarts",
                        Json::num(state.worker_restarts.load(Ordering::SeqCst) as u64),
                    ),
                    (
                        "batches_formed",
                        Json::num(state.batches_formed.load(Ordering::SeqCst) as u64),
                    ),
                    ("batch_claims", Json::num(claims as u64)),
                    ("batch_items", Json::num(claimed_items as u64)),
                    ("batch_occupancy", Json::Num(occupancy)),
                    (
                        "admission_wait_us",
                        Json::num(state.admission_wait_us.load(Ordering::SeqCst)),
                    ),
                    ("subscriptions", Json::num(lock_subs(state).len() as u64)),
                    (
                        "updates_owed",
                        Json::num(state.updates_owed.load(Ordering::SeqCst)),
                    ),
                    (
                        "updates_delivered",
                        Json::num(state.updates_delivered.load(Ordering::SeqCst)),
                    ),
                    (
                        "updates_shed",
                        Json::num(state.updates_shed.load(Ordering::SeqCst)),
                    ),
                ]),
            ),
        ]))
        .encode(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_config_validation_rejects_bad_registries() {
        // A dummy engine is needed only for the reference; validation is
        // name/size-level, so reuse a tiny real engine.
        let mut g = rcw_graph::Graph::with_nodes(2);
        g.add_edge(0, 1);
        g.set_features(0, vec![1.0]);
        g.set_features(1, vec![0.0]);
        g.set_label(0, 0);
        g.set_label(1, 1);
        let gcn = rcw_gnn::Gcn::new(&[1, 2, 2], 1);
        let engine = WitnessEngine::new(
            std::sync::Arc::new(g),
            &gcn,
            rcw_core::RcwConfig::with_budgets(0, 0),
        );

        assert!(ServerConfig::single(&engine).validate().is_ok());
        assert!(ServerConfig::single(&engine)
            .with_route("gcn", &engine)
            .validate()
            .is_ok());
        // reserved, duplicate, malformed names; zero-size pool/queue
        for bad in ["generate", "stats", "shutdown", "Weird Name", ""] {
            assert!(
                ServerConfig::single(&engine)
                    .with_route(bad, &engine)
                    .validate()
                    .is_err(),
                "route name {bad:?} must be rejected"
            );
        }
        assert!(ServerConfig::single(&engine)
            .with_route("default", &engine)
            .validate()
            .is_err());
        assert!(ServerConfig::single(&engine)
            .with_workers(0)
            .validate()
            .is_err());
        assert!(ServerConfig::single(&engine)
            .with_queue_bound(0)
            .validate()
            .is_err());
        let empty = ServerConfig {
            routes: Vec::new(),
            workers: 1,
            queue_bound: 1,
            default_deadline: None,
            io_timeout: IDLE_READ_TIMEOUT,
            faults: Arc::new(FaultPlan::none()),
        };
        assert!(empty.validate().is_err());
        assert!(ServerConfig::single(&engine)
            .with_io_timeout(Duration::ZERO)
            .validate()
            .is_err());
    }

    fn pending(kind: ItemKind, admitted_at: Instant) -> PendingItem {
        PendingItem {
            conn_id: 0,
            request: Request {
                method: "POST".to_string(),
                path: "/generate".to_string(),
                body: Vec::new(),
                close: false,
                deadline_ms: None,
            },
            kind,
            admitted_at,
            deadline_base: admitted_at,
        }
    }

    #[test]
    fn scheduler_claims_compatible_generate_batches() {
        let scheduler = Scheduler::new();
        let now = Instant::now();
        scheduler.push(pending(ItemKind::Generate { engine_idx: 0 }, now));
        scheduler.push(pending(ItemKind::Generate { engine_idx: 0 }, now));
        scheduler.push(pending(ItemKind::Other, now));
        scheduler.push(pending(ItemKind::Generate { engine_idx: 0 }, now));
        scheduler.push(pending(ItemKind::Generate { engine_idx: 1 }, now));

        let batch = scheduler.claim().expect("generate batch");
        assert_eq!(
            batch.len(),
            3,
            "same-engine generates batch across an interleaved control request"
        );
        assert!(batch
            .iter()
            .all(|i| i.kind == ItemKind::Generate { engine_idx: 0 }));

        let control = scheduler.claim().expect("control request");
        assert_eq!(control.len(), 1);
        assert_eq!(control[0].kind, ItemKind::Other);

        let other_engine = scheduler.claim().expect("second engine");
        assert_eq!(other_engine.len(), 1);
        assert_eq!(other_engine[0].kind, ItemKind::Generate { engine_idx: 1 });

        scheduler.close();
        assert!(
            scheduler.claim().is_none(),
            "a closed, drained scheduler stops claiming"
        );
    }

    #[test]
    fn admission_window_bounds_intra_batch_spread() {
        let scheduler = Scheduler::new();
        let stale = Instant::now() - 10 * ADMISSION_WINDOW;
        scheduler.push(pending(ItemKind::Generate { engine_idx: 0 }, stale));
        scheduler.push(pending(
            ItemKind::Generate { engine_idx: 0 },
            Instant::now(),
        ));
        let batch = scheduler.claim().expect("stale head");
        assert_eq!(
            batch.len(),
            1,
            "a fresh arrival does not join a head admitted outside the window"
        );
        assert_eq!(scheduler.claim().expect("fresh tail").len(), 1);
    }

    #[test]
    fn classify_mirrors_route_prefixes() {
        let mut g = rcw_graph::Graph::with_nodes(2);
        g.add_edge(0, 1);
        g.set_features(0, vec![1.0]);
        g.set_features(1, vec![0.0]);
        g.set_label(0, 0);
        g.set_label(1, 1);
        let gcn = rcw_gnn::Gcn::new(&[1, 2, 2], 1);
        let engine = WitnessEngine::new(
            std::sync::Arc::new(g),
            &gcn,
            rcw_core::RcwConfig::with_budgets(0, 0),
        );
        let config = ServerConfig::single(&engine).with_route("gcn", &engine);
        let request = |method: &str, path: &str| Request {
            method: method.to_string(),
            path: path.to_string(),
            body: Vec::new(),
            close: false,
            deadline_ms: None,
        };
        assert_eq!(
            classify(&config, &request("POST", "/generate")),
            ItemKind::Generate { engine_idx: 0 }
        );
        assert_eq!(
            classify(&config, &request("POST", "/gcn/generate?x=1")),
            ItemKind::Generate { engine_idx: 1 }
        );
        // Unknown prefixes fall back to the default engine's endpoint set —
        // which has no "nope/generate", so they stay unbatched.
        assert_eq!(
            classify(&config, &request("POST", "/nope/generate")),
            ItemKind::Other
        );
        assert_eq!(
            classify(&config, &request("GET", "/generate")),
            ItemKind::Other
        );
        assert_eq!(
            classify(&config, &request("POST", "/generate_batch")),
            ItemKind::Other
        );
        assert_eq!(
            classify(&config, &request("POST", "/disturb")),
            ItemKind::Other
        );
    }
}
