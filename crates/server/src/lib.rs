//! # rcw-server
//!
//! A std-only concurrent serving layer in front of
//! [`rcw_core::WitnessEngine`]: hand-rolled HTTP/1.1 over
//! `std::net::TcpListener`, a fixed worker-thread pool, and a line-oriented
//! JSON wire format ([`wire`]) — no external crates, matching the rest of the
//! workspace.
//!
//! | endpoint | method | body | answer |
//! |---|---|---|---|
//! | `[/NAME]/generate` | POST | `{"nodes": [v, ...]}` | witness + level + stats |
//! | `[/NAME]/generate_batch` | POST | `{"queries": [[v, ...], ...]}` | `{"results": [...]}` |
//! | `[/NAME]/disturb` | POST | `{"flips": [[u, v], ...]}` | [`rcw_core::DisturbReport`] |
//! | `[/NAME]/stats` | GET | — | engine snapshot(s) + server counters |
//! | `[/NAME]/healthz` | GET | — | `{"ok": true, "epoch": n, "engine": name}` |
//! | `/shutdown` | POST | — | `{"ok": true}`, then graceful stop (global only) |
//!
//! ## Multi-engine routing
//!
//! A server fronts a *registry* of named engines ([`ServerConfig`]): the
//! first path segment selects the engine (`/gcn/generate`,
//! `/appnp/generate`), and bare endpoints (`/generate`) route to the first
//! registered engine, so single-engine deployments and older clients keep
//! working unchanged. Each route is type-erased behind [`ServedEngine`], so
//! one process can serve engines over different model families, graphs, and
//! per-query session-worker counts (`WitnessEngine::with_workers(n)` fans a
//! single `/generate` across `n` session workers while the HTTP pool stays
//! fixed).
//!
//! ## Overload behavior
//!
//! The accept loop feeds a **bounded** dispatch queue
//! ([`ServerConfig::queue_bound`]). When the pool is busy and the queue is
//! full, new connections are shed with `429 Too Many Requests` (body
//! `{"error": "overloaded", ...}` with queue-depth stats) instead of piling
//! up unboundedly. Each request may carry an `x-rcw-deadline-ms` header (or
//! inherit [`ServerConfig::default_deadline`]); the deadline window starts
//! when the connection was accepted (queue wait counts) and is threaded
//! into the engine as a [`SessionBudget`] — enforced at the engine boundary
//! before any session work and cooperatively between session phases, so
//! control endpoints (`/healthz`, `/stats`, `/shutdown`) stay reachable
//! under deadline pressure. Expired queries answer `503 Service
//! Unavailable` with `{"error": "deadline exceeded"}`; an aborted query
//! never pollutes the witness store (on `/generate_batch`, queries answered
//! *before* the mid-batch abort remain stored — each is a complete, valid
//! witness that simply makes a retry warm).
//!
//! Shutdown is graceful: in-flight requests finish, the pool drains, and
//! [`RcwServer::serve`] returns a [`ServeReport`] with per-worker request
//! counts plus the overload/deadline rejection totals.

pub mod client;
pub mod faults;
pub mod http;
pub mod wire;

use faults::FaultPlan;
use http::{read_request, write_response, ReadOutcome, Request, Response};
pub use rcw_core::{BudgetExceeded, SessionBudget};
use rcw_core::{DisturbReport, EngineSnapshot, GenerationResult, VerifiableModel, WitnessEngine};
use rcw_graph::Disturbance;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use wire::Json;

/// How long a worker waits for the next request on a kept-alive connection
/// before dropping it — bounds how long an idle peer can pin a worker and
/// how long graceful shutdown can take.
const IDLE_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// I/O timeout of the overload-shedding path: a shed peer that never sends
/// its request (or never reads the 429) cannot pin the rejection thread for
/// longer than this.
const REJECT_IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Cap on concurrent overload-rejection threads. Shedding spawns a
/// short-lived thread per refused connection so the acceptor never blocks on
/// a slow peer; under a connection flood that would itself become unbounded
/// resource growth, so beyond this many in-flight rejections the connection
/// is dropped without a 429 body (the peer sees a reset — the correct
/// signal at that level of overload).
const MAX_REJECT_THREADS: usize = 64;

/// Endpoint names, reserved so an engine route can never shadow them.
const RESERVED_ROUTE_NAMES: [&str; 6] = [
    "generate",
    "generate_batch",
    "disturb",
    "stats",
    "healthz",
    "shutdown",
];

/// The engine-side interface the server routes requests to, type-erasing the
/// model parameter of [`WitnessEngine`] so one process can serve engines
/// over different model families side by side.
///
/// Implemented for every `WitnessEngine<'_, M>`; the methods mirror the
/// engine entry points a wire endpoint needs.
pub trait ServedEngine: Sync {
    /// [`WitnessEngine::generate_with_budget`]: answer a witness query under
    /// a cooperative deadline.
    fn generate_with_budget(
        &self,
        test_nodes: &[usize],
        budget: &SessionBudget,
    ) -> Result<GenerationResult, BudgetExceeded>;

    /// [`WitnessEngine::disturb`]: apply edge flips and repair the store.
    fn disturb(&self, disturbances: &[Disturbance]) -> DisturbReport;

    /// [`WitnessEngine::snapshot`]: a coherent stats/epoch/store picture.
    fn snapshot(&self) -> EngineSnapshot;

    /// The host graph's current mutation epoch.
    fn epoch(&self) -> u64;

    /// Number of nodes in the host graph (query validation bound).
    fn num_nodes(&self) -> usize;
}

impl<M: VerifiableModel + ?Sized> ServedEngine for WitnessEngine<'_, M> {
    fn generate_with_budget(
        &self,
        test_nodes: &[usize],
        budget: &SessionBudget,
    ) -> Result<GenerationResult, BudgetExceeded> {
        WitnessEngine::generate_with_budget(self, test_nodes, budget)
    }

    fn disturb(&self, disturbances: &[Disturbance]) -> DisturbReport {
        WitnessEngine::disturb(self, disturbances)
    }

    fn snapshot(&self) -> EngineSnapshot {
        WitnessEngine::snapshot(self)
    }

    fn epoch(&self) -> u64 {
        WitnessEngine::epoch(self)
    }

    fn num_nodes(&self) -> usize {
        self.graph().num_nodes()
    }
}

/// One named engine behind the server: the route prefix and the engine it
/// selects.
pub struct EngineRoute<'e> {
    /// The route prefix (`/NAME/generate`). Must be non-empty, use only
    /// `[a-z0-9._-]`, be unique, and not shadow a reserved endpoint name.
    pub name: String,
    /// The engine answering this route.
    pub engine: &'e dyn ServedEngine,
}

/// Declarative description of a serving deployment: the engine registry plus
/// the transport's overload knobs. The first route is the *default* engine —
/// bare endpoints (`/generate`) without a prefix go to it.
pub struct ServerConfig<'e> {
    /// Named engines; the first is the default route.
    pub routes: Vec<EngineRoute<'e>>,
    /// HTTP worker threads (the pool is fixed; per-query parallelism is the
    /// engine's own `with_workers` setting).
    pub workers: usize,
    /// Bound of the accept/dispatch queue; connections beyond it are shed
    /// with `429`. Minimum 1.
    pub queue_bound: usize,
    /// Deadline applied to requests that do not carry an
    /// `x-rcw-deadline-ms` header. `None` = no default deadline.
    pub default_deadline: Option<Duration>,
    /// Read/write timeout applied to every accepted socket, and the base of
    /// the request-head deadline (`2 × io_timeout`) that stops slowloris
    /// peers from trickling header lines forever.
    pub io_timeout: Duration,
    /// Fault-injection plan ([`FaultPlan::none`] outside chaos tests). The
    /// serve loop consults it at each named site; an empty plan is a single
    /// cheap check per connection.
    pub faults: Arc<FaultPlan>,
}

impl<'e> ServerConfig<'e> {
    /// A single-engine config under the route name `default`, matching the
    /// PR 4 serving shape: 4 workers, a generous queue, no deadline.
    pub fn single(engine: &'e dyn ServedEngine) -> Self {
        ServerConfig {
            routes: vec![EngineRoute {
                name: "default".to_string(),
                engine,
            }],
            workers: 4,
            queue_bound: 1024,
            default_deadline: None,
            io_timeout: IDLE_READ_TIMEOUT,
            faults: Arc::new(FaultPlan::none()),
        }
    }

    /// Adds a named engine route (builder style).
    pub fn with_route(mut self, name: impl Into<String>, engine: &'e dyn ServedEngine) -> Self {
        self.routes.push(EngineRoute {
            name: name.into(),
            engine,
        });
        self
    }

    /// Sets the HTTP worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the dispatch-queue bound.
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound;
        self
    }

    /// Sets the default per-request deadline.
    pub fn with_default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = deadline;
        self
    }

    /// Sets the per-socket read/write timeout.
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Index of the route with the given name.
    fn route_index(&self, name: &str) -> Option<usize> {
        self.routes.iter().position(|r| r.name == name)
    }

    /// Checks the config is servable: at least one route, well-formed unique
    /// names that do not shadow endpoint names, sane pool/queue sizes.
    pub fn validate(&self) -> Result<(), String> {
        if self.routes.is_empty() {
            return Err("server config needs at least one engine route".to_string());
        }
        if self.workers == 0 {
            return Err("worker pool must have at least one thread".to_string());
        }
        if self.queue_bound == 0 {
            return Err("dispatch queue bound must be at least 1".to_string());
        }
        if self.io_timeout.is_zero() {
            return Err("io timeout must be nonzero".to_string());
        }
        for (i, route) in self.routes.iter().enumerate() {
            if route.name.is_empty()
                || !route
                    .name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._-".contains(c))
            {
                return Err(format!(
                    "route name '{}' must be non-empty [a-z0-9._-]",
                    route.name
                ));
            }
            if RESERVED_ROUTE_NAMES.contains(&route.name.as_str()) {
                return Err(format!(
                    "route name '{}' shadows a reserved endpoint",
                    route.name
                ));
            }
            if self.routes[..i].iter().any(|r| r.name == route.name) {
                return Err(format!("duplicate route name '{}'", route.name));
            }
        }
        Ok(())
    }
}

/// A bound listener, ready to serve an engine registry.
pub struct RcwServer {
    listener: TcpListener,
    addr: SocketAddr,
}

/// What a completed [`RcwServer::serve`] run did.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests answered by each worker of the pool.
    pub requests_per_worker: Vec<usize>,
    /// Connections accepted and dispatched to the pool (shed connections and
    /// the shutdown wake-up connection are not counted).
    pub connections: usize,
    /// Connections shed with `429` because the dispatch queue was full.
    pub overloaded: usize,
    /// Requests answered `503` because their deadline had expired (at
    /// dequeue or mid-session).
    pub deadline_rejections: usize,
    /// Times a worker's connection handler panicked (organically or via an
    /// injected `worker_panic` fault) and the worker re-entered its request
    /// loop. The pool never shrinks: a panic costs one connection, not one
    /// worker.
    pub worker_restarts: usize,
}

impl ServeReport {
    /// Total requests answered across the pool (shed connections excluded).
    pub fn requests_total(&self) -> usize {
        self.requests_per_worker.iter().sum()
    }
}

/// A connection waiting in the bounded dispatch queue, stamped with its
/// accept time so queue wait counts against the request deadline.
struct QueuedConn {
    stream: TcpStream,
    enqueued_at: Instant,
}

/// Shared per-serve state: the config, the counters every endpoint reports,
/// and the shutdown flag.
struct ServeState<'e, 'c> {
    config: &'c ServerConfig<'e>,
    counts: Vec<AtomicUsize>,
    shutdown: AtomicBool,
    queue_depth: AtomicUsize,
    overloaded: AtomicUsize,
    deadline_rejections: AtomicUsize,
    rejectors: AtomicUsize,
    worker_restarts: AtomicUsize,
    addr: SocketAddr,
}

impl RcwServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> std::io::Result<RcwServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(RcwServer { listener, addr })
    }

    /// The bound address (resolves the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Single-engine convenience over [`RcwServer::serve_config`]: serves
    /// `engine` under [`ServerConfig::single`] with the given pool size.
    pub fn serve<M: VerifiableModel + ?Sized>(
        self,
        engine: &WitnessEngine<'_, M>,
        workers: usize,
    ) -> std::io::Result<ServeReport> {
        let config = ServerConfig::single(engine).with_workers(workers.max(1));
        self.serve_config(&config)
    }

    /// Serves the configured engine registry until a `POST /shutdown`
    /// arrives: accepts connections on the calling thread, dispatches them
    /// through a bounded queue to a fixed pool of worker threads, and sheds
    /// connections with `429` whenever the queue is full.
    pub fn serve_config(self, config: &ServerConfig<'_>) -> std::io::Result<ServeReport> {
        config
            .validate()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let workers = config.workers;
        let state = ServeState {
            config,
            counts: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            shutdown: AtomicBool::new(false),
            queue_depth: AtomicUsize::new(0),
            overloaded: AtomicUsize::new(0),
            deadline_rejections: AtomicUsize::new(0),
            rejectors: AtomicUsize::new(0),
            worker_restarts: AtomicUsize::new(0),
            addr: self.addr,
        };
        let (tx, rx) = mpsc::sync_channel::<QueuedConn>(config.queue_bound);
        let rx = Mutex::new(rx);
        let mut connections = 0usize;

        std::thread::scope(|scope| {
            for wid in 0..workers {
                let rx = &rx;
                let state = &state;
                scope.spawn(move || loop {
                    // Hold the receiver lock only for the pop, not while
                    // serving, so the pool keeps draining in parallel. The
                    // lock is recovered from poisoning: a sibling that
                    // panicked mid-pop must not wedge the whole queue.
                    let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                    match next {
                        Ok(conn) => {
                            state.queue_depth.fetch_sub(1, Ordering::SeqCst);
                            // Panic containment: a panicking handler (or an
                            // injected `worker_panic` fault) kills this
                            // connection, not the worker — the loop re-enters
                            // `recv()` with the queue intact, which *is* the
                            // respawn. Counted so `/stats` exposes it.
                            let outcome = catch_unwind(AssertUnwindSafe(|| {
                                serve_connection(conn, state, wid)
                            }));
                            if outcome.is_err() {
                                state.worker_restarts.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        Err(_) => break, // acceptor gone: pool drains and exits
                    }
                });
            }
            for stream in self.listener.incoming() {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn = QueuedConn {
                    stream,
                    enqueued_at: Instant::now(),
                };
                state.queue_depth.fetch_add(1, Ordering::SeqCst);
                match tx.try_send(conn) {
                    Ok(()) => connections += 1,
                    Err(TrySendError::Full(conn)) => {
                        // Backpressure: the pool is busy and the queue is at
                        // its bound. Shed the connection with a 429 on a
                        // short-lived thread (joined by this scope) so the
                        // acceptor never blocks on a slow peer — itself
                        // capped, so a connection flood cannot turn the
                        // shedding path into unbounded thread growth.
                        state.queue_depth.fetch_sub(1, Ordering::SeqCst);
                        state.overloaded.fetch_add(1, Ordering::SeqCst);
                        if state.rejectors.fetch_add(1, Ordering::SeqCst) < MAX_REJECT_THREADS {
                            let state = &state;
                            scope.spawn(move || {
                                reject_overloaded(conn.stream, state);
                                state.rejectors.fetch_sub(1, Ordering::SeqCst);
                            });
                        } else {
                            // Past the cap: drop without a body (reset).
                            state.rejectors.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        state.queue_depth.fetch_sub(1, Ordering::SeqCst);
                        break;
                    }
                }
            }
            drop(tx); // close the queue: workers finish in-flight work and exit
        });

        Ok(ServeReport {
            requests_per_worker: state
                .counts
                .iter()
                .map(|c| c.load(Ordering::SeqCst))
                .collect(),
            connections,
            overloaded: state.overloaded.load(Ordering::SeqCst),
            deadline_rejections: state.deadline_rejections.load(Ordering::SeqCst),
            worker_restarts: state.worker_restarts.load(Ordering::SeqCst),
        })
    }
}

/// The `429` response a shed connection receives: the peer's request is read
/// first (best effort, so its in-flight write completes and the response is
/// not lost to a connection reset), then the refusal with queue stats.
fn reject_overloaded(stream: TcpStream, state: &ServeState<'_, '_>) {
    let _ = stream.set_read_timeout(Some(REJECT_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(REJECT_IO_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let _ = read_request(&mut reader, Some(Instant::now() + REJECT_IO_TIMEOUT));
    let _ = write_response(&mut writer, &overload_response(state), true);
}

fn overload_response(state: &ServeState<'_, '_>) -> Response {
    Response {
        status: 429,
        body: Json::obj([
            ("error", Json::Str("overloaded".to_string())),
            (
                "queue_depth",
                Json::num(state.queue_depth.load(Ordering::SeqCst) as u64),
            ),
            ("queue_bound", Json::num(state.config.queue_bound as u64)),
        ])
        .encode(),
    }
}

fn deadline_response() -> Response {
    Response {
        status: 503,
        body: Json::obj([("error", Json::Str("deadline exceeded".to_string()))]).encode(),
    }
}

/// Serves one (kept-alive) connection to completion.
fn serve_connection(conn: QueuedConn, state: &ServeState<'_, '_>, wid: usize) {
    let faults = &state.config.faults;
    let inject = !faults.is_empty();
    let io_timeout = state.config.io_timeout;
    let stream = conn.stream;
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    // Request/response round trips are latency-bound small messages: without
    // TCP_NODELAY, Nagle + the peer's delayed ACK add ~40ms per response.
    let _ = stream.set_nodelay(true);
    if inject && faults.fires(faults::SITE_CONN_DROP) {
        return; // injected fault: drop the accepted connection unanswered
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    // The first request's deadline window starts at accept time, so time
    // spent waiting in the dispatch queue counts against it; each later
    // request on the kept-alive connection starts its window when it
    // arrives (keep-alive idle time between requests is never billed).
    let mut first_request = true;
    loop {
        if inject && faults.fires(faults::SITE_READ_STALL) {
            // Injected fault: sit on the socket before reading, as a worker
            // wedged on a slow disk or lock would.
            std::thread::sleep(io_timeout.min(Duration::from_millis(100)));
        }
        // The head deadline bounds the whole request head, not one recv:
        // 2 × io_timeout leaves room for an idle keep-alive wait (up to
        // io_timeout) plus the head itself.
        let head_deadline = Instant::now() + 2 * io_timeout;
        let request = match read_request(&mut reader, Some(head_deadline)) {
            Ok(ReadOutcome::Ok(request)) => request,
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Malformed(message)) => {
                let _ = write_response(&mut writer, &Response::error(400, &message), true);
                return;
            }
            Ok(ReadOutcome::TooLarge(message)) => {
                let _ = write_response(&mut writer, &Response::error(413, &message), true);
                return;
            }
            Ok(ReadOutcome::Stalled) => {
                // Best effort: a peer stalled mid-request may not read it.
                let _ = write_response(&mut writer, &Response::error(408, "request timeout"), true);
                return;
            }
            Err(_) => return, // idle timeout or broken pipe: drop silently
        };
        if inject && faults.fires(faults::SITE_WORKER_PANIC) {
            // Before the per-worker count: an unanswered request must not
            // appear in the answered-request accounting.
            panic!("injected fault: worker_panic");
        }
        let deadline_base = if first_request {
            conn.enqueued_at
        } else {
            Instant::now()
        };
        first_request = false;
        state.counts[wid].fetch_add(1, Ordering::SeqCst);
        let window = request
            .deadline_ms
            .map(Duration::from_millis)
            .or(state.config.default_deadline);
        // The budget is enforced at the engine boundary (the entry check of
        // `generate_with_budget` fires before any session work), not here:
        // control endpoints (`/healthz`, `/stats`, `/shutdown`) must stay
        // reachable even when every request has been queued past its
        // deadline — an operator shutting down an overloaded server is the
        // case that matters most.
        let budget = match window {
            Some(window) => SessionBudget::with_deadline(deadline_base + window),
            None => SessionBudget::unlimited(),
        };
        // A panicking handler must not take the whole pool down: answer
        // 500 and keep serving.
        let (response, stop_after) =
            match catch_unwind(AssertUnwindSafe(|| route(&request, state, &budget))) {
                Ok(pair) => pair,
                Err(_) => (Response::error(500, "internal error"), false),
            };
        // Once shutdown is flagged (by this request or concurrently by
        // another worker), finish this response but close the connection:
        // otherwise an actively-requesting kept-alive peer would keep its
        // worker looping here and defer `serve`'s pool join indefinitely.
        let close = request.close || stop_after || state.shutdown.load(Ordering::SeqCst);
        if inject && faults.fires(faults::SITE_WRITE_DROP) {
            return; // injected fault: computed answer never hits the wire
        }
        if inject && faults.fires(faults::SITE_WRITE_TRUNCATE) {
            // Injected fault: half a real response, then a close — what a
            // peer sees when a server dies mid-write.
            use std::io::Write;
            let bytes = http::encode_response(&response, true);
            let _ = writer.write_all(&bytes[..bytes.len() / 2]);
            return;
        }
        if write_response(&mut writer, &response, close).is_err() {
            return;
        }
        if stop_after {
            // Graceful stop: flag the acceptor, then wake it with a no-op
            // connection so its blocking accept returns.
            state.shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(wake_addr(state.addr));
            return;
        }
        if close {
            return;
        }
    }
}

/// The address the shutdown wake-up connection targets: the bound address,
/// with wildcard IPs (`0.0.0.0` / `::`) mapped to the loopback of the same
/// family — a wildcard is listenable but not reliably connectable.
fn wake_addr(addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        let loopback: std::net::IpAddr = match addr {
            SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
            SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
        };
        SocketAddr::new(loopback, addr.port())
    } else {
        addr
    }
}

/// Routes one request: the first path segment selects the engine when it
/// names a registered route, bare endpoints go to the default (first)
/// engine. Returns the response and whether the server should stop after
/// sending it.
fn route(
    request: &Request,
    state: &ServeState<'_, '_>,
    budget: &SessionBudget,
) -> (Response, bool) {
    let path = request.path.split('?').next().unwrap_or("");
    let trimmed = path.strip_prefix('/').unwrap_or(path);
    let (engine_idx, endpoint, routed) = match trimmed.split_once('/') {
        Some((name, rest)) => match state.config.route_index(name) {
            Some(idx) => (idx, rest, true),
            None => (0, trimmed, false),
        },
        None => (0, trimmed, false),
    };
    let name = state.config.routes[engine_idx].name.as_str();
    let engine = state.config.routes[engine_idx].engine;
    let response = match (request.method.as_str(), endpoint) {
        ("GET", "healthz") => Response::ok(
            Json::obj([
                ("ok", Json::Bool(true)),
                ("epoch", Json::num(engine.epoch())),
                ("engine", Json::Str(name.to_string())),
            ])
            .encode(),
        ),
        ("GET", "stats") => handle_stats(state, engine_idx),
        ("POST", "generate") => handle_generate(request, engine, state, budget),
        ("POST", "generate_batch") => handle_generate_batch(request, engine, state, budget),
        ("POST", "disturb") => handle_disturb(request, engine),
        // Shutdown is a whole-process action: it only exists unrouted.
        ("POST", "shutdown") if !routed => {
            return (
                Response::ok(Json::obj([("ok", Json::Bool(true))]).encode()),
                true,
            )
        }
        (method, "healthz" | "stats" | "generate" | "generate_batch" | "disturb") => {
            Response::error(405, &format!("method {method} not allowed for {path}"))
        }
        (method, "shutdown") if !routed => {
            Response::error(405, &format!("method {method} not allowed for {path}"))
        }
        _ => Response::error(404, &format!("no route for {path}")),
    };
    (response, false)
}

fn parse_body(request: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| Response::error(400, "body is not utf-8"))?;
    Json::parse(text).map_err(|e| Response::error(400, &e.to_string()))
}

/// Pulls and validates a test-node set against the engine's graph, so
/// invalid queries become a 400 instead of a worker panic.
fn parse_nodes(value: &Json, num_nodes: usize) -> Result<Vec<usize>, Response> {
    let nodes = value
        .as_arr()
        .and_then(|items| {
            items
                .iter()
                .map(|x| x.as_usize())
                .collect::<Result<Vec<_>, _>>()
        })
        .map_err(|e| Response::error(400, &e.to_string()))?;
    if nodes.is_empty() {
        return Err(Response::error(400, "empty test-node set"));
    }
    if let Some(&bad) = nodes.iter().find(|&&v| v >= num_nodes) {
        return Err(Response::error(
            400,
            &format!("node {bad} out of range (graph has {num_nodes} nodes)"),
        ));
    }
    Ok(nodes)
}

/// Maps an engine-side budget abort to the 503 wire error (counted).
fn budget_rejection(state: &ServeState<'_, '_>) -> Response {
    state.deadline_rejections.fetch_add(1, Ordering::SeqCst);
    deadline_response()
}

fn handle_generate(
    request: &Request,
    engine: &dyn ServedEngine,
    state: &ServeState<'_, '_>,
    budget: &SessionBudget,
) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let num_nodes = engine.num_nodes();
    let nodes = match body
        .field("nodes")
        .map_err(|e| Response::error(400, &e.to_string()))
    {
        Ok(v) => match parse_nodes(v, num_nodes) {
            Ok(nodes) => nodes,
            Err(r) => return r,
        },
        Err(r) => return r,
    };
    match engine.generate_with_budget(&nodes, budget) {
        Ok(result) => Response::ok(wire::generation_to_json(&result).encode()),
        Err(BudgetExceeded) => budget_rejection(state),
    }
}

fn handle_generate_batch(
    request: &Request,
    engine: &dyn ServedEngine,
    state: &ServeState<'_, '_>,
    budget: &SessionBudget,
) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let queries = match body
        .field("queries")
        .and_then(|q| q.as_arr())
        .map_err(|e| Response::error(400, &e.to_string()))
    {
        Ok(q) => q,
        Err(r) => return r,
    };
    let num_nodes = engine.num_nodes();
    // Validate the whole batch before generating anything: a malformed
    // batch is rejected all-or-nothing. Generation itself is sequential —
    // on a mid-batch deadline abort the batch answers 503, and the queries
    // already answered stay in the store (each is a complete, valid witness
    // that makes a retry warm).
    let mut parsed = Vec::with_capacity(queries.len());
    for query in queries {
        match parse_nodes(query, num_nodes) {
            Ok(nodes) => parsed.push(nodes),
            Err(r) => return r,
        }
    }
    let mut results = Vec::with_capacity(parsed.len());
    for nodes in &parsed {
        match engine.generate_with_budget(nodes, budget) {
            Ok(result) => results.push(wire::generation_to_json(&result)),
            Err(BudgetExceeded) => return budget_rejection(state),
        }
    }
    Response::ok(Json::obj([("results", Json::Arr(results))]).encode())
}

fn handle_disturb(request: &Request, engine: &dyn ServedEngine) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    // Either one disturbance ({"flips": [...]}) or a batch
    // ({"disturbances": [{"flips": [...]}, ...]}).
    let decoded = if body.get("disturbances").is_some() {
        body.field("disturbances")
            .and_then(|ds| ds.as_arr())
            .and_then(|ds| ds.iter().map(wire::disturbance_from_json).collect())
    } else {
        wire::disturbance_from_json(&body).map(|d| vec![d])
    };
    let disturbances = match decoded {
        Ok(ds) => ds,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let report = engine.disturb(&disturbances);
    Response::ok(wire::disturb_report_to_json(&report).encode())
}

/// The stats payload: the selected engine's snapshot under `engine` (the
/// default engine for the unrouted `/stats`), every registered engine's
/// snapshot under `engines`, and the transport counters under `server`.
fn handle_stats(state: &ServeState<'_, '_>, engine_idx: usize) -> Response {
    let engines: Vec<(String, Json)> = state
        .config
        .routes
        .iter()
        .map(|r| (r.name.clone(), wire::snapshot_to_json(&r.engine.snapshot())))
        .collect();
    // The selected engine's snapshot is already in the map: cloning the
    // encoded value is cheaper than taking the engine's locks a second time.
    let selected = engines[engine_idx].1.clone();
    let per_worker: Vec<Json> = state
        .counts
        .iter()
        .map(|c| Json::Num(c.load(Ordering::SeqCst) as f64))
        .collect();
    Response::ok(
        Json::obj([
            ("engine", selected),
            ("engines", Json::Obj(engines)),
            (
                "server",
                Json::obj([
                    ("workers", Json::num(state.counts.len() as u64)),
                    ("requests_per_worker", Json::Arr(per_worker)),
                    ("queue_bound", Json::num(state.config.queue_bound as u64)),
                    (
                        "queue_depth",
                        Json::num(state.queue_depth.load(Ordering::SeqCst) as u64),
                    ),
                    (
                        "overloaded",
                        Json::num(state.overloaded.load(Ordering::SeqCst) as u64),
                    ),
                    (
                        "deadline_rejections",
                        Json::num(state.deadline_rejections.load(Ordering::SeqCst) as u64),
                    ),
                    (
                        "worker_restarts",
                        Json::num(state.worker_restarts.load(Ordering::SeqCst) as u64),
                    ),
                ]),
            ),
        ])
        .encode(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_config_validation_rejects_bad_registries() {
        // A dummy engine is needed only for the reference; validation is
        // name/size-level, so reuse a tiny real engine.
        let mut g = rcw_graph::Graph::with_nodes(2);
        g.add_edge(0, 1);
        g.set_features(0, vec![1.0]);
        g.set_features(1, vec![0.0]);
        g.set_label(0, 0);
        g.set_label(1, 1);
        let gcn = rcw_gnn::Gcn::new(&[1, 2, 2], 1);
        let engine = WitnessEngine::new(
            std::sync::Arc::new(g),
            &gcn,
            rcw_core::RcwConfig::with_budgets(0, 0),
        );

        assert!(ServerConfig::single(&engine).validate().is_ok());
        assert!(ServerConfig::single(&engine)
            .with_route("gcn", &engine)
            .validate()
            .is_ok());
        // reserved, duplicate, malformed names; zero-size pool/queue
        for bad in ["generate", "stats", "shutdown", "Weird Name", ""] {
            assert!(
                ServerConfig::single(&engine)
                    .with_route(bad, &engine)
                    .validate()
                    .is_err(),
                "route name {bad:?} must be rejected"
            );
        }
        assert!(ServerConfig::single(&engine)
            .with_route("default", &engine)
            .validate()
            .is_err());
        assert!(ServerConfig::single(&engine)
            .with_workers(0)
            .validate()
            .is_err());
        assert!(ServerConfig::single(&engine)
            .with_queue_bound(0)
            .validate()
            .is_err());
        let empty = ServerConfig {
            routes: Vec::new(),
            workers: 1,
            queue_bound: 1,
            default_deadline: None,
            io_timeout: IDLE_READ_TIMEOUT,
            faults: Arc::new(FaultPlan::none()),
        };
        assert!(empty.validate().is_err());
        assert!(ServerConfig::single(&engine)
            .with_io_timeout(Duration::ZERO)
            .validate()
            .is_err());
    }
}
