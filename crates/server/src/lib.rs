//! # rcw-server
//!
//! A std-only concurrent serving layer in front of
//! [`rcw_core::WitnessEngine`]: hand-rolled HTTP/1.1 over
//! `std::net::TcpListener`, a fixed worker-thread pool, and a line-oriented
//! JSON wire format ([`wire`]) — no external crates, matching the rest of the
//! workspace.
//!
//! | endpoint | method | body | answer |
//! |---|---|---|---|
//! | `/generate` | POST | `{"nodes": [v, ...]}` | witness + level + stats |
//! | `/generate_batch` | POST | `{"queries": [[v, ...], ...]}` | `{"results": [...]}` |
//! | `/disturb` | POST | `{"flips": [[u, v], ...]}` | [`rcw_core::DisturbReport`] |
//! | `/stats` | GET | — | engine snapshot + per-worker request counts |
//! | `/healthz` | GET | — | `{"ok": true, "epoch": n}` |
//! | `/shutdown` | POST | — | `{"ok": true}`, then graceful stop |
//!
//! The engine is shared by reference: every worker answers queries through
//! `&WitnessEngine` (the engine's own locks keep the store and graph
//! coherent), so the pool adds no serialization beyond what the engine
//! requires. Shutdown is graceful: in-flight requests finish, the pool
//! drains, and [`RcwServer::serve`] returns a [`ServeReport`] with the
//! per-worker request counts.

pub mod client;
pub mod http;
pub mod wire;

use http::{read_request, write_response, ReadOutcome, Request, Response};
use rcw_core::{VerifiableModel, WitnessEngine};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;
use wire::Json;

/// How long a worker waits for the next request on a kept-alive connection
/// before dropping it — bounds how long an idle peer can pin a worker and
/// how long graceful shutdown can take.
const IDLE_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// A bound listener, ready to serve an engine.
pub struct RcwServer {
    listener: TcpListener,
    addr: SocketAddr,
}

/// What a completed [`RcwServer::serve`] run did.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Requests answered by each worker of the pool.
    pub requests_per_worker: Vec<usize>,
    /// Connections accepted and served (the shutdown wake-up connection is
    /// dropped unserved and not counted).
    pub connections: usize,
}

impl ServeReport {
    /// Total requests answered across the pool.
    pub fn requests_total(&self) -> usize {
        self.requests_per_worker.iter().sum()
    }
}

impl RcwServer {
    /// Binds to `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> std::io::Result<RcwServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(RcwServer { listener, addr })
    }

    /// The bound address (resolves the actual port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves the engine until a `/shutdown` request arrives: accepts
    /// connections on the calling thread and answers requests on a fixed pool
    /// of `workers` threads sharing the engine by reference.
    pub fn serve<M: VerifiableModel + ?Sized>(
        self,
        engine: &WitnessEngine<'_, M>,
        workers: usize,
    ) -> std::io::Result<ServeReport> {
        let workers = workers.max(1);
        let shutdown = AtomicBool::new(false);
        let counts: Vec<AtomicUsize> = (0..workers).map(|_| AtomicUsize::new(0)).collect();
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);
        let mut connections = 0usize;

        std::thread::scope(|scope| {
            for wid in 0..workers {
                let rx = &rx;
                let counts = &counts;
                let shutdown = &shutdown;
                scope.spawn(move || loop {
                    // Hold the receiver lock only for the pop, not while
                    // serving, so the pool keeps draining in parallel.
                    let next = rx.lock().expect("server queue lock poisoned").recv();
                    match next {
                        Ok(stream) => {
                            serve_connection(stream, engine, wid, counts, shutdown, self.addr)
                        }
                        Err(_) => break, // acceptor gone: pool drains and exits
                    }
                });
            }
            for stream in self.listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        connections += 1;
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            drop(tx); // close the queue: workers finish in-flight work and exit
        });

        Ok(ServeReport {
            requests_per_worker: counts.iter().map(|c| c.load(Ordering::SeqCst)).collect(),
            connections,
        })
    }
}

/// Serves one (kept-alive) connection to completion.
fn serve_connection<M: VerifiableModel + ?Sized>(
    stream: TcpStream,
    engine: &WitnessEngine<'_, M>,
    wid: usize,
    counts: &[AtomicUsize],
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(IDLE_READ_TIMEOUT));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader) {
            Ok(ReadOutcome::Ok(request)) => request,
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Malformed(message)) => {
                let _ = write_response(&mut writer, &Response::error(400, &message), true);
                return;
            }
            Err(_) => return, // timeout or broken pipe: drop the connection
        };
        counts[wid].fetch_add(1, Ordering::SeqCst);
        // A panicking handler must not take the whole pool down: answer 500
        // and keep serving.
        let outcome = catch_unwind(AssertUnwindSafe(|| route(&request, engine, counts)));
        let (response, stop_after) = match outcome {
            Ok(pair) => pair,
            Err(_) => (Response::error(500, "internal error"), false),
        };
        // Once shutdown is flagged (by this request or concurrently by
        // another worker), finish this response but close the connection:
        // otherwise an actively-requesting kept-alive peer would keep its
        // worker looping here and defer `serve`'s pool join indefinitely.
        let close = request.close || stop_after || shutdown.load(Ordering::SeqCst);
        if write_response(&mut writer, &response, close).is_err() {
            return;
        }
        if stop_after {
            // Graceful stop: flag the acceptor, then wake it with a no-op
            // connection so its blocking accept returns.
            shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(wake_addr(addr));
            return;
        }
        if close {
            return;
        }
    }
}

/// The address the shutdown wake-up connection targets: the bound address,
/// with wildcard IPs (`0.0.0.0` / `::`) mapped to the loopback of the same
/// family — a wildcard is listenable but not reliably connectable.
fn wake_addr(addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        let loopback: std::net::IpAddr = match addr {
            SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
            SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
        };
        SocketAddr::new(loopback, addr.port())
    } else {
        addr
    }
}

/// Routes one request. Returns the response and whether the server should
/// stop after sending it.
fn route<M: VerifiableModel + ?Sized>(
    request: &Request,
    engine: &WitnessEngine<'_, M>,
    counts: &[AtomicUsize],
) -> (Response, bool) {
    let path = request.path.split('?').next().unwrap_or("");
    let response = match (request.method.as_str(), path) {
        ("GET", "/healthz") => Response::ok(
            Json::obj([
                ("ok", Json::Bool(true)),
                ("epoch", Json::num(engine.epoch())),
            ])
            .encode(),
        ),
        ("GET", "/stats") => handle_stats(engine, counts),
        ("POST", "/generate") => handle_generate(request, engine),
        ("POST", "/generate_batch") => handle_generate_batch(request, engine),
        ("POST", "/disturb") => handle_disturb(request, engine),
        ("POST", "/shutdown") => {
            return (
                Response::ok(Json::obj([("ok", Json::Bool(true))]).encode()),
                true,
            )
        }
        (
            method,
            "/healthz" | "/stats" | "/generate" | "/generate_batch" | "/disturb" | "/shutdown",
        ) => Response::error(405, &format!("method {method} not allowed for {path}")),
        _ => Response::error(404, &format!("no route for {path}")),
    };
    (response, false)
}

fn parse_body(request: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| Response::error(400, "body is not utf-8"))?;
    Json::parse(text).map_err(|e| Response::error(400, &e.to_string()))
}

/// Pulls and validates a test-node set against the engine's graph, so
/// invalid queries become a 400 instead of a worker panic.
fn parse_nodes(value: &Json, num_nodes: usize) -> Result<Vec<usize>, Response> {
    let nodes = value
        .as_arr()
        .and_then(|items| {
            items
                .iter()
                .map(|x| x.as_usize())
                .collect::<Result<Vec<_>, _>>()
        })
        .map_err(|e| Response::error(400, &e.to_string()))?;
    if nodes.is_empty() {
        return Err(Response::error(400, "empty test-node set"));
    }
    if let Some(&bad) = nodes.iter().find(|&&v| v >= num_nodes) {
        return Err(Response::error(
            400,
            &format!("node {bad} out of range (graph has {num_nodes} nodes)"),
        ));
    }
    Ok(nodes)
}

fn handle_generate<M: VerifiableModel + ?Sized>(
    request: &Request,
    engine: &WitnessEngine<'_, M>,
) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let num_nodes = engine.graph().num_nodes();
    let nodes = match body
        .field("nodes")
        .map_err(|e| Response::error(400, &e.to_string()))
    {
        Ok(v) => match parse_nodes(v, num_nodes) {
            Ok(nodes) => nodes,
            Err(r) => return r,
        },
        Err(r) => return r,
    };
    let result = engine.generate(&nodes);
    Response::ok(wire::generation_to_json(&result).encode())
}

fn handle_generate_batch<M: VerifiableModel + ?Sized>(
    request: &Request,
    engine: &WitnessEngine<'_, M>,
) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    let queries = match body
        .field("queries")
        .and_then(|q| q.as_arr())
        .map_err(|e| Response::error(400, &e.to_string()))
    {
        Ok(q) => q,
        Err(r) => return r,
    };
    let num_nodes = engine.graph().num_nodes();
    // Validate the whole batch before generating anything: a batch is
    // answered all-or-nothing.
    let mut parsed = Vec::with_capacity(queries.len());
    for query in queries {
        match parse_nodes(query, num_nodes) {
            Ok(nodes) => parsed.push(nodes),
            Err(r) => return r,
        }
    }
    let results: Vec<Json> = parsed
        .iter()
        .map(|nodes| wire::generation_to_json(&engine.generate(nodes)))
        .collect();
    Response::ok(Json::obj([("results", Json::Arr(results))]).encode())
}

fn handle_disturb<M: VerifiableModel + ?Sized>(
    request: &Request,
    engine: &WitnessEngine<'_, M>,
) -> Response {
    let body = match parse_body(request) {
        Ok(v) => v,
        Err(r) => return r,
    };
    // Either one disturbance ({"flips": [...]}) or a batch
    // ({"disturbances": [{"flips": [...]}, ...]}).
    let decoded = if body.get("disturbances").is_some() {
        body.field("disturbances")
            .and_then(|ds| ds.as_arr())
            .and_then(|ds| ds.iter().map(wire::disturbance_from_json).collect())
    } else {
        wire::disturbance_from_json(&body).map(|d| vec![d])
    };
    let disturbances = match decoded {
        Ok(ds) => ds,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let report = engine.disturb(&disturbances);
    Response::ok(wire::disturb_report_to_json(&report).encode())
}

fn handle_stats<M: VerifiableModel + ?Sized>(
    engine: &WitnessEngine<'_, M>,
    counts: &[AtomicUsize],
) -> Response {
    let snapshot = engine.snapshot();
    let per_worker: Vec<Json> = counts
        .iter()
        .map(|c| Json::Num(c.load(Ordering::SeqCst) as f64))
        .collect();
    Response::ok(
        Json::obj([
            ("engine", wire::snapshot_to_json(&snapshot)),
            (
                "server",
                Json::obj([
                    ("workers", Json::num(counts.len() as u64)),
                    ("requests_per_worker", Json::Arr(per_worker)),
                ]),
            ),
        ])
        .encode(),
    )
}
