//! A small blocking client for the witness-serving wire format.
//!
//! Used by the in-crate end-to-end tests and the smoke test that drives the
//! `rcw_serve` binary; it doubles as executable documentation of the wire
//! format. One client holds one kept-alive connection.

use crate::http::MAX_BODY_BYTES;
use crate::wire::{self, Json, WireError};
use rcw_core::{DisturbReport, EngineSnapshot, GenerationResult};
use rcw_linalg::Rng;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Client-side failure: transport errors and protocol/decoding errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The response could not be parsed, or the server answered an error
    /// status; carries the status code and the body/description. Status `0`
    /// means no usable response arrived at all.
    Protocol(u16, String),
    /// An idempotent request failed transiently on every attempt the
    /// [`RetryPolicy`] allowed; carries the attempt count and the last
    /// failure.
    RetriesExhausted {
        /// Attempts actually made (including the first).
        attempts: usize,
        /// The failure of the final attempt.
        last: Box<ClientError>,
    },
}

impl ClientError {
    /// Whether a retry of an *idempotent* request may succeed: transport
    /// failures (the connection can be re-dialed), no-response failures, and
    /// the transient statuses — 408 (stalled), 429 (shed under overload),
    /// 500 (handler panicked; panics are contained per-connection, so the
    /// server is still up), 503 (deadline pressure).
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Protocol(status, _) => matches!(status, 0 | 408 | 429 | 500 | 503),
            ClientError::RetriesExhausted { .. } => false,
        }
    }

    /// Whether the failure left the connection unusable (retry must
    /// re-dial first).
    fn connection_dead(&self) -> bool {
        matches!(self, ClientError::Io(_) | ClientError::Protocol(0, _))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(status, message) => {
                write!(f, "protocol error (status {status}): {message}")
            }
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

/// Retry policy for *idempotent* requests: exponential backoff with jitter,
/// a retry budget (`max_attempts`), and deadline awareness (`budget` caps
/// total wall-clock across attempts, sleeps included — the loop never starts
/// a sleep it cannot afford).
///
/// Installed with [`Client::set_retry`]; only the idempotent endpoints
/// (`generate`, `generate_batch`, `healthz`, `stats`) use it. `disturb` and
/// `shutdown` mutate server state and are never auto-retried: a retried
/// disturbance would flip edges twice.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first. Minimum 1.
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per retry after that.
    pub base_backoff: Duration,
    /// Cap on a single backoff sleep.
    pub max_backoff: Duration,
    /// Fraction of each backoff randomized away, in `[0, 1]` — breaks up
    /// synchronized retry herds against a recovering server.
    pub jitter: f64,
    /// Wall-clock cap across all attempts (`None` = attempts alone bound the
    /// loop).
    pub budget: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter: 0.5,
            budget: None,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (1-based).
    fn backoff(&self, retry: u32, rng: &mut Rng) -> Duration {
        let doubled = self.base_backoff.saturating_mul(1 << (retry - 1).min(16));
        let capped = doubled.min(self.max_backoff);
        capped.mul_f64(1.0 - self.jitter.clamp(0.0, 1.0) * rng.gen_f64())
    }
}

/// Transient response statuses (see [`ClientError::is_transient`]).
fn transient_status(status: u16) -> bool {
    matches!(status, 408 | 429 | 500 | 503)
}

/// Builds the typed protocol error for a non-200 raw body: the server's
/// `error` field when the body parses, the raw text otherwise.
fn protocol_error(status: u16, text: &str) -> ClientError {
    let message = Json::parse(text.trim_end())
        .ok()
        .and_then(|v| {
            v.get("error")
                .and_then(|e| e.as_str().ok().map(str::to_string))
        })
        .unwrap_or_else(|| text.trim_end().to_string());
    ClientError::Protocol(status, message)
}

/// Per-process client counter: each client jitters from its own RNG stream
/// so concurrent clients sharing a policy do not sleep in lockstep.
static CLIENT_SEQ: AtomicU64 = AtomicU64::new(0);

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Protocol(200, e.to_string())
    }
}

/// A blocking client over one kept-alive connection.
///
/// Against a multi-engine server, [`Client::set_route`] selects the engine
/// every subsequent request targets (paths gain the `/NAME` prefix), and
/// [`Client::set_deadline_ms`] attaches an `x-rcw-deadline-ms` header so the
/// server bounds how long the query may run — expired requests come back as
/// [`ClientError::Protocol`] with status 503 (or 429 when the server shed
/// the connection under overload).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
    prefix: String,
    deadline_ms: Option<u64>,
    retry: Option<RetryPolicy>,
    rng: Rng,
}

/// Dials `addr` with the client's socket options set.
fn dial(addr: &str) -> Result<(BufReader<TcpStream>, TcpStream), ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    // Small request/response round trips: disable Nagle so the request
    // is not held back waiting for an ACK of the previous response.
    stream.set_nodelay(true)?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((reader, stream))
}

impl Client {
    /// Connects to a server address like `127.0.0.1:8080`.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let (reader, writer) = dial(addr)?;
        Ok(Client {
            reader,
            writer,
            host: addr.to_string(),
            prefix: String::new(),
            deadline_ms: None,
            retry: None,
            rng: Rng::seed_from_u64(
                0x9e37_79b9_7f4a_7c15 ^ CLIENT_SEQ.fetch_add(1, Ordering::Relaxed),
            ),
        })
    }

    /// Drops the current connection and dials the same address again. Route,
    /// deadline, and retry settings survive; the retry loop calls this
    /// transparently after transport failures, which is what lets a client
    /// ride out a server restart.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let (reader, writer) = dial(&self.host)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// Installs (or clears) the retry policy used by the idempotent
    /// endpoints.
    pub fn set_retry(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// Targets a named engine route: subsequent requests go to
    /// `/NAME/generate` etc. `None` returns to the server's default engine.
    pub fn set_route(&mut self, route: Option<&str>) {
        self.prefix = match route {
            Some(name) => format!("/{name}"),
            None => String::new(),
        };
    }

    /// Attaches (or clears) a per-request deadline, sent as the
    /// `x-rcw-deadline-ms` header on every subsequent request.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// Issues one request and returns `(status, parsed body)`. The path is
    /// prefixed with the selected route (see [`Client::set_route`]).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), ClientError> {
        let body_text = body.map(|b| b.encode()).unwrap_or_default();
        let (status, text) = self.request_raw(method, path, &body_text)?;
        let value = Json::parse(text.trim_end())
            .map_err(|e| ClientError::Protocol(status, e.to_string()))?;
        Ok((status, value))
    }

    /// Issues one request and returns the raw `(status, body text)` without
    /// parsing — the hot endpoints decode straight into their structs.
    fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body_text: &str,
    ) -> Result<(u16, String), ClientError> {
        // Head and body in one write: two small segments would trip Nagle +
        // delayed-ACK stalls (see `http::write_response`). Built by hand —
        // one request per warm hit makes the formatting itself hot.
        let mut message =
            String::with_capacity(128 + self.prefix.len() + path.len() + body_text.len());
        message.push_str(method);
        message.push(' ');
        message.push_str(&self.prefix);
        message.push_str(path);
        message.push_str(" HTTP/1.1\r\nhost: ");
        message.push_str(&self.host);
        message.push_str("\r\ncontent-type: application/json\r\n");
        if let Some(ms) = self.deadline_ms {
            message.push_str("x-rcw-deadline-ms: ");
            wire::push_u64(&mut message, ms);
            message.push_str("\r\n");
        }
        message.push_str("content-length: ");
        wire::push_u64(&mut message, body_text.len() as u64);
        message.push_str("\r\n\r\n");
        message.push_str(body_text);
        self.writer.write_all(message.as_bytes())?;
        self.writer.flush()?;
        self.read_response_raw()
    }

    /// [`Client::request`] under the installed [`RetryPolicy`]: transient
    /// failures (transport errors, truncated responses, 408/429/500/503)
    /// back off and retry, re-dialing first when the failure killed the
    /// connection. Callers must only route *idempotent* requests here.
    fn request_idempotent(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), ClientError> {
        let body_text = body.map(|b| b.encode()).unwrap_or_default();
        let (status, text) = self.request_idempotent_raw(method, path, &body_text)?;
        let value = Json::parse(text.trim_end())
            .map_err(|e| ClientError::Protocol(status, e.to_string()))?;
        Ok((status, value))
    }

    /// The raw-body core of [`Client::request_idempotent`].
    fn request_idempotent_raw(
        &mut self,
        method: &str,
        path: &str,
        body_text: &str,
    ) -> Result<(u16, String), ClientError> {
        let Some(policy) = self.retry.clone() else {
            return self.request_raw(method, path, body_text);
        };
        let start = Instant::now();
        let max_attempts = policy.max_attempts.max(1);
        let mut attempts = 0usize;
        let mut last: Option<ClientError> = None;
        while attempts < max_attempts {
            if let Some(failed) = &last {
                let delay = policy.backoff(attempts as u32, &mut self.rng);
                if let Some(budget) = policy.budget {
                    // Deadline awareness: never start a sleep (or attempt)
                    // the budget cannot afford.
                    if start.elapsed() + delay >= budget {
                        break;
                    }
                }
                std::thread::sleep(delay);
                if failed.connection_dead() && self.reconnect().is_err() {
                    // Server still down: burn the attempt, keep backing off.
                    attempts += 1;
                    continue;
                }
            }
            attempts += 1;
            match self.request_raw(method, path, body_text) {
                Ok((status, text)) if transient_status(status) => {
                    last = Some(protocol_error(status, &text));
                }
                Ok(pair) => return Ok(pair),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts,
            last: Box::new(
                last.unwrap_or_else(|| ClientError::Protocol(0, "no attempt made".to_string())),
            ),
        })
    }

    fn read_response_raw(&mut self) -> Result<(u16, String), ClientError> {
        // Pull the whole response head (status line + headers + blank line)
        // in as few reads as possible — one `fill_buf` in the common case —
        // instead of a `read_line` per header. The head is tiny, so the
        // rescan for `\r\n\r\n` after each chunk is cheap.
        let mut head: Vec<u8> = Vec::with_capacity(192);
        loop {
            let buf = self.reader.fill_buf()?;
            if buf.is_empty() {
                return Err(if head.is_empty() {
                    ClientError::Protocol(0, "connection closed".to_string())
                } else {
                    // The peer died mid-response: a transport failure (the
                    // connection is unusable), not a protocol-level answer.
                    ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "response truncated mid-headers",
                    ))
                });
            }
            // The terminator may straddle the previous chunk's tail.
            let scan_from = head.len().saturating_sub(3);
            let chunk_start = head.len();
            head.extend_from_slice(buf);
            if let Some(i) = head[scan_from..].windows(4).position(|w| w == b"\r\n\r\n") {
                let head_end = scan_from + i + 4;
                self.reader.consume(head_end - chunk_start);
                head.truncate(head_end);
                break;
            }
            let n = buf.len();
            self.reader.consume(n);
            if head.len() > MAX_BODY_BYTES {
                return Err(ClientError::Protocol(0, "response head too large".into()));
            }
        }
        let head = String::from_utf8(head)
            .map_err(|_| ClientError::Protocol(0, "response head is not utf-8".into()))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(0, format!("bad status line '{status_line}'")))?;
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| ClientError::Protocol(status, "bad content-length".into()))?;
                    if content_length > MAX_BODY_BYTES {
                        return Err(ClientError::Protocol(status, "body too large".into()));
                    }
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let text = String::from_utf8(body)
            .map_err(|_| ClientError::Protocol(status, "body is not utf-8".into()))?;
        Ok((status, text))
    }

    fn expect_ok(&mut self, status: u16, body: Json) -> Result<Json, ClientError> {
        if status == 200 {
            Ok(body)
        } else {
            let message = body
                .get("error")
                .and_then(|e| e.as_str().ok().map(str::to_string))
                .unwrap_or_else(|| body.encode());
            Err(ClientError::Protocol(status, message))
        }
    }

    /// `GET /healthz`; returns the reported epoch.
    pub fn healthz(&mut self) -> Result<u64, ClientError> {
        let (status, body) = self.request_idempotent("GET", "/healthz", None)?;
        let body = self.expect_ok(status, body)?;
        Ok(body.field("epoch")?.as_u64()?)
    }

    /// `POST /generate` for one test-node set. Request and response both go
    /// through the direct codec: no [`Json`] tree on the warm path.
    pub fn generate(&mut self, nodes: &[usize]) -> Result<GenerationResult, ClientError> {
        let mut body = String::with_capacity(12 + 8 * nodes.len());
        body.push_str("{\"nodes\":");
        wire::push_usize_array(&mut body, nodes.iter().copied());
        body.push('}');
        let (status, text) = self.request_idempotent_raw("POST", "/generate", &body)?;
        if status != 200 {
            return Err(protocol_error(status, &text));
        }
        Ok(wire::generation_from_body(text.trim_end())?)
    }

    /// `POST /generate` with a caller-prebuilt body, returning the raw
    /// `(status, body text)` without decoding the generation. For load
    /// generators: a driver hammering the server shouldn't bill response
    /// decoding to the measurement (on a shared core it directly steals
    /// server cycles). Retries like [`Client::generate`]; the caller checks
    /// the status.
    pub fn generate_text(&mut self, body_text: &str) -> Result<(u16, String), ClientError> {
        self.request_idempotent_raw("POST", "/generate", body_text)
    }

    /// `POST /generate_batch` for several test-node sets.
    pub fn generate_batch(
        &mut self,
        queries: &[Vec<usize>],
    ) -> Result<Vec<GenerationResult>, ClientError> {
        let body = Json::obj([(
            "queries",
            Json::Arr(
                queries
                    .iter()
                    .map(|nodes| Json::nums(nodes.iter().copied()))
                    .collect(),
            ),
        )]);
        let (status, reply) = self.request_idempotent("POST", "/generate_batch", Some(&body))?;
        let reply = self.expect_ok(status, reply)?;
        reply
            .field("results")?
            .as_arr()?
            .iter()
            .map(|r| wire::generation_from_json(r).map_err(ClientError::from))
            .collect()
    }

    /// `POST /disturb` with a batch of edge flips. Not idempotent (a
    /// replayed disturbance flips edges twice), so never auto-retried — a
    /// transient failure here surfaces to the caller, who knows whether the
    /// flip landed.
    pub fn disturb(&mut self, flips: &[(usize, usize)]) -> Result<DisturbReport, ClientError> {
        let body = Json::obj([(
            "flips",
            Json::Arr(
                flips
                    .iter()
                    .map(|&(u, v)| Json::Arr(vec![Json::Num(u as f64), Json::Num(v as f64)]))
                    .collect(),
            ),
        )]);
        let (status, reply) = self.request("POST", "/disturb", Some(&body))?;
        let reply = self.expect_ok(status, reply)?;
        Ok(wire::disturb_report_from_json(&reply)?)
    }

    /// `GET /stats`; returns the engine snapshot plus per-worker request
    /// counts.
    pub fn stats(&mut self) -> Result<(EngineSnapshot, Vec<usize>), ClientError> {
        let (status, reply) = self.request_idempotent("GET", "/stats", None)?;
        let reply = self.expect_ok(status, reply)?;
        let snapshot = wire::snapshot_from_json(reply.field("engine")?)?;
        let per_worker = reply
            .field("server")?
            .field("requests_per_worker")?
            .as_arr()?
            .iter()
            .map(|x| x.as_usize())
            .collect::<Result<Vec<_>, _>>()?;
        Ok((snapshot, per_worker))
    }

    /// `POST /shutdown`: asks the server to stop gracefully. Like
    /// [`Client::disturb`], never auto-retried.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let (status, body) = self.request("POST", "/shutdown", None)?;
        self.expect_ok(status, body)?;
        Ok(())
    }
}
