//! A small blocking client for the witness-serving wire format.
//!
//! Used by the in-crate end-to-end tests and the smoke test that drives the
//! `rcw_serve` binary; it doubles as executable documentation of the wire
//! format. One client holds one kept-alive connection.

use crate::http::MAX_BODY_BYTES;
use crate::wire::{self, Json, WireError};
use rcw_core::{DisturbReport, EngineSnapshot, GenerationResult};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Client-side failure: transport errors and protocol/decoding errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The response could not be parsed, or the server answered an error
    /// status; carries the status code and the body/description.
    Protocol(u16, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(status, message) => {
                write!(f, "protocol error (status {status}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Protocol(200, e.to_string())
    }
}

/// A blocking client over one kept-alive connection.
///
/// Against a multi-engine server, [`Client::set_route`] selects the engine
/// every subsequent request targets (paths gain the `/NAME` prefix), and
/// [`Client::set_deadline_ms`] attaches an `x-rcw-deadline-ms` header so the
/// server bounds how long the query may run — expired requests come back as
/// [`ClientError::Protocol`] with status 503 (or 429 when the server shed
/// the connection under overload).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
    prefix: String,
    deadline_ms: Option<u64>,
}

impl Client {
    /// Connects to a server address like `127.0.0.1:8080`.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        // Small request/response round trips: disable Nagle so the request
        // is not held back waiting for an ACK of the previous response.
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            host: addr.to_string(),
            prefix: String::new(),
            deadline_ms: None,
        })
    }

    /// Targets a named engine route: subsequent requests go to
    /// `/NAME/generate` etc. `None` returns to the server's default engine.
    pub fn set_route(&mut self, route: Option<&str>) {
        self.prefix = match route {
            Some(name) => format!("/{name}"),
            None => String::new(),
        };
    }

    /// Attaches (or clears) a per-request deadline, sent as the
    /// `x-rcw-deadline-ms` header on every subsequent request.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// Issues one request and returns `(status, parsed body)`. The path is
    /// prefixed with the selected route (see [`Client::set_route`]).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), ClientError> {
        let body_text = body.map(|b| b.encode()).unwrap_or_default();
        let deadline = self
            .deadline_ms
            .map(|ms| format!("x-rcw-deadline-ms: {ms}\r\n"))
            .unwrap_or_default();
        // Head and body in one write: two small segments would trip Nagle +
        // delayed-ACK stalls (see `http::write_response`).
        let mut message = format!(
            "{method} {}{path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\n{deadline}content-length: {}\r\n\r\n",
            self.prefix,
            self.host,
            body_text.len(),
        );
        message.push_str(&body_text);
        self.writer.write_all(message.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<(u16, Json), ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(0, "connection closed".to_string()));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(0, format!("bad status line '{line}'")))?;
        let mut content_length = 0usize;
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(ClientError::Protocol(
                    status,
                    "truncated headers".to_string(),
                ));
            }
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| ClientError::Protocol(status, "bad content-length".into()))?;
                    if content_length > MAX_BODY_BYTES {
                        return Err(ClientError::Protocol(status, "body too large".into()));
                    }
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let text = String::from_utf8(body)
            .map_err(|_| ClientError::Protocol(status, "body is not utf-8".into()))?;
        let value = Json::parse(text.trim_end())
            .map_err(|e| ClientError::Protocol(status, e.to_string()))?;
        Ok((status, value))
    }

    fn expect_ok(&mut self, status: u16, body: Json) -> Result<Json, ClientError> {
        if status == 200 {
            Ok(body)
        } else {
            let message = body
                .get("error")
                .and_then(|e| e.as_str().ok().map(str::to_string))
                .unwrap_or_else(|| body.encode());
            Err(ClientError::Protocol(status, message))
        }
    }

    /// `GET /healthz`; returns the reported epoch.
    pub fn healthz(&mut self) -> Result<u64, ClientError> {
        let (status, body) = self.request("GET", "/healthz", None)?;
        let body = self.expect_ok(status, body)?;
        Ok(body.field("epoch")?.as_u64()?)
    }

    /// `POST /generate` for one test-node set.
    pub fn generate(&mut self, nodes: &[usize]) -> Result<GenerationResult, ClientError> {
        let body = Json::obj([("nodes", Json::nums(nodes.iter().copied()))]);
        let (status, reply) = self.request("POST", "/generate", Some(&body))?;
        let reply = self.expect_ok(status, reply)?;
        Ok(wire::generation_from_json(&reply)?)
    }

    /// `POST /generate_batch` for several test-node sets.
    pub fn generate_batch(
        &mut self,
        queries: &[Vec<usize>],
    ) -> Result<Vec<GenerationResult>, ClientError> {
        let body = Json::obj([(
            "queries",
            Json::Arr(
                queries
                    .iter()
                    .map(|nodes| Json::nums(nodes.iter().copied()))
                    .collect(),
            ),
        )]);
        let (status, reply) = self.request("POST", "/generate_batch", Some(&body))?;
        let reply = self.expect_ok(status, reply)?;
        reply
            .field("results")?
            .as_arr()?
            .iter()
            .map(|r| wire::generation_from_json(r).map_err(ClientError::from))
            .collect()
    }

    /// `POST /disturb` with a batch of edge flips.
    pub fn disturb(&mut self, flips: &[(usize, usize)]) -> Result<DisturbReport, ClientError> {
        let body = Json::obj([(
            "flips",
            Json::Arr(
                flips
                    .iter()
                    .map(|&(u, v)| Json::Arr(vec![Json::Num(u as f64), Json::Num(v as f64)]))
                    .collect(),
            ),
        )]);
        let (status, reply) = self.request("POST", "/disturb", Some(&body))?;
        let reply = self.expect_ok(status, reply)?;
        Ok(wire::disturb_report_from_json(&reply)?)
    }

    /// `GET /stats`; returns the engine snapshot plus per-worker request
    /// counts.
    pub fn stats(&mut self) -> Result<(EngineSnapshot, Vec<usize>), ClientError> {
        let (status, reply) = self.request("GET", "/stats", None)?;
        let reply = self.expect_ok(status, reply)?;
        let snapshot = wire::snapshot_from_json(reply.field("engine")?)?;
        let per_worker = reply
            .field("server")?
            .field("requests_per_worker")?
            .as_arr()?
            .iter()
            .map(|x| x.as_usize())
            .collect::<Result<Vec<_>, _>>()?;
        Ok((snapshot, per_worker))
    }

    /// `POST /shutdown`: asks the server to stop gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let (status, body) = self.request("POST", "/shutdown", None)?;
        self.expect_ok(status, body)?;
        Ok(())
    }
}
