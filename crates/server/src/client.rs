//! A small blocking client for the witness-serving wire format.
//!
//! Used by the in-crate end-to-end tests and the smoke test that drives the
//! `rcw_serve` binary; it doubles as executable documentation of the wire
//! format. One client holds one kept-alive connection.
//!
//! Speaks wire protocol v1: every request body carries `"v": 1`, every
//! response body is checked for the same envelope, and non-2xx replies are
//! decoded as structured error objects whose `retryable` flag — not a
//! hardcoded status list — drives the [`RetryPolicy`]. [`Client::subscribe`]
//! upgrades the connection to a witness-update stream (NDJSON frames).

use crate::http::MAX_BODY_BYTES;
use crate::wire::{self, Json, WireError};
use rcw_core::{DisturbReport, EngineSnapshot, GenerationResult};
use rcw_linalg::Rng;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Client-side failure: transport errors and protocol/decoding errors.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The response could not be parsed, or the server answered an error
    /// status; carries the status code and the body/description. Status `0`
    /// means no usable response arrived at all.
    Protocol(u16, String),
    /// An idempotent request failed transiently on every attempt the
    /// [`RetryPolicy`] allowed; carries the attempt count and the last
    /// failure.
    RetriesExhausted {
        /// Attempts actually made (including the first).
        attempts: usize,
        /// The failure of the final attempt.
        last: Box<ClientError>,
    },
}

impl ClientError {
    /// Whether a retry of an *idempotent* request may succeed: transport
    /// failures (the connection can be re-dialed), no-response failures, and
    /// the transient statuses — 408 (stalled), 429 (shed under overload),
    /// 500 (handler panicked; panics are contained per-connection, so the
    /// server is still up), 503 (deadline pressure).
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Protocol(status, _) => matches!(status, 0 | 408 | 429 | 500 | 503),
            ClientError::RetriesExhausted { .. } => false,
        }
    }

    /// Whether the failure left the connection unusable (retry must
    /// re-dial first).
    fn connection_dead(&self) -> bool {
        matches!(self, ClientError::Io(_) | ClientError::Protocol(0, _))
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(status, message) => {
                write!(f, "protocol error (status {status}): {message}")
            }
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts: {last}")
            }
        }
    }
}

/// Retry policy for *idempotent* requests: exponential backoff with jitter,
/// a retry budget (`max_attempts`), and deadline awareness (`budget` caps
/// total wall-clock across attempts, sleeps included — the loop never starts
/// a sleep it cannot afford).
///
/// Installed with [`Client::set_retry`]; only the idempotent endpoints
/// (`generate`, `generate/batch`, `healthz`, `stats`) use it, and only for
/// failures the server marks `retryable` in its structured error body (or,
/// when no body parses, the transient status fallback). `disturb` and
/// `shutdown` mutate server state and are never auto-retried: a retried
/// disturbance would flip edges twice.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first. Minimum 1.
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per retry after that.
    pub base_backoff: Duration,
    /// Cap on a single backoff sleep.
    pub max_backoff: Duration,
    /// Fraction of each backoff randomized away, in `[0, 1]` — breaks up
    /// synchronized retry herds against a recovering server.
    pub jitter: f64,
    /// Wall-clock cap across all attempts (`None` = attempts alone bound the
    /// loop).
    pub budget: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
            jitter: 0.5,
            budget: None,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (1-based).
    fn backoff(&self, retry: u32, rng: &mut Rng) -> Duration {
        let doubled = self.base_backoff.saturating_mul(1 << (retry - 1).min(16));
        let capped = doubled.min(self.max_backoff);
        capped.mul_f64(1.0 - self.jitter.clamp(0.0, 1.0) * rng.gen_f64())
    }
}

/// Transient response statuses — the fallback when a non-2xx body does not
/// carry a parseable structured error (see [`ClientError::is_transient`]).
fn transient_status(status: u16) -> bool {
    matches!(status, 408 | 429 | 500 | 503)
}

/// Whether a non-200 response is worth retrying: the structured error
/// body's `retryable` flag when the body parses, the status-code table
/// otherwise (a truncated body should not disable retries).
fn response_retryable(status: u16, text: &str) -> bool {
    Json::parse(text.trim_end())
        .ok()
        .and_then(|v| wire::error_from_json(&v).ok())
        .map(|e| e.retryable)
        .unwrap_or_else(|| transient_status(status))
}

/// Builds the typed protocol error for a non-200 raw body: the structured
/// `error.detail` when the body parses, the raw text otherwise.
fn protocol_error(status: u16, text: &str) -> ClientError {
    let message = Json::parse(text.trim_end())
        .ok()
        .and_then(|v| {
            wire::error_from_json(&v)
                .ok()
                .map(|e| e.detail)
                .or_else(|| {
                    v.get("error")
                        .and_then(|e| e.as_str().ok().map(str::to_string))
                })
        })
        .unwrap_or_else(|| text.trim_end().to_string());
    ClientError::Protocol(status, message)
}

/// Per-process client counter: each client jitters from its own RNG stream
/// so concurrent clients sharing a policy do not sleep in lockstep.
static CLIENT_SEQ: AtomicU64 = AtomicU64::new(0);

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Protocol(200, e.to_string())
    }
}

/// A blocking client over one kept-alive connection.
///
/// Against a multi-engine server, [`Client::set_route`] selects the engine
/// every subsequent request targets (paths gain the `/NAME` prefix), and
/// [`Client::set_deadline_ms`] attaches an `x-rcw-deadline-ms` header so the
/// server bounds how long the query may run — expired requests come back as
/// [`ClientError::Protocol`] with status 503 (or 429 when the server shed
/// the connection under overload).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
    prefix: String,
    deadline_ms: Option<u64>,
    retry: Option<RetryPolicy>,
    read_timeout: Duration,
    rng: Rng,
}

/// Responses slower than this count as a dead connection. Generous by
/// default — cold sessions on full-scale graphs are slow; fault-heavy
/// callers tighten it via [`Client::set_read_timeout`].
const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Dials `addr` with the client's socket options set.
fn dial(
    addr: &str,
    read_timeout: Duration,
) -> Result<(BufReader<TcpStream>, TcpStream), ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(read_timeout))?;
    // Small request/response round trips: disable Nagle so the request
    // is not held back waiting for an ACK of the previous response.
    stream.set_nodelay(true)?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((reader, stream))
}

impl Client {
    /// Connects to a server address like `127.0.0.1:8080`.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let (reader, writer) = dial(addr, DEFAULT_READ_TIMEOUT)?;
        Ok(Client {
            reader,
            writer,
            host: addr.to_string(),
            prefix: String::new(),
            deadline_ms: None,
            retry: None,
            read_timeout: DEFAULT_READ_TIMEOUT,
            rng: Rng::seed_from_u64(
                0x9e37_79b9_7f4a_7c15 ^ CLIENT_SEQ.fetch_add(1, Ordering::Relaxed),
            ),
        })
    }

    /// Drops the current connection and dials the same address again. Route,
    /// deadline, retry, and read-timeout settings survive; the retry loop
    /// calls this transparently after transport failures, which is what lets
    /// a client ride out a server restart.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let (reader, writer) = dial(&self.host, self.read_timeout)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// Bounds how long one response read may block before the request fails
    /// with a timeout-kind [`ClientError::Io`] (connections start at 60 s).
    /// Chaos-facing callers tighten this so a fault-dropped response costs
    /// seconds, not a minute; the setting survives [`Client::reconnect`].
    pub fn set_read_timeout(&mut self, timeout: Duration) -> Result<(), ClientError> {
        self.read_timeout = timeout;
        // reader and writer share one socket; the option is socket-level.
        self.reader.get_ref().set_read_timeout(Some(timeout))?;
        Ok(())
    }

    /// Installs (or clears) the retry policy used by the idempotent
    /// endpoints.
    pub fn set_retry(&mut self, policy: Option<RetryPolicy>) {
        self.retry = policy;
    }

    /// Targets a named engine route: subsequent requests go to
    /// `/NAME/generate` etc. `None` returns to the server's default engine.
    pub fn set_route(&mut self, route: Option<&str>) {
        self.prefix = match route {
            Some(name) => format!("/{name}"),
            None => String::new(),
        };
    }

    /// Attaches (or clears) a per-request deadline, sent as the
    /// `x-rcw-deadline-ms` header on every subsequent request.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// Issues one request and returns `(status, parsed body)`. The path is
    /// prefixed with the selected route (see [`Client::set_route`]).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), ClientError> {
        let body_text = body.map(|b| b.encode()).unwrap_or_default();
        let (status, text) = self.request_raw(method, path, &body_text)?;
        let value = Json::parse(text.trim_end())
            .map_err(|e| ClientError::Protocol(status, e.to_string()))?;
        Ok((status, value))
    }

    /// Issues one request and returns the raw `(status, body text)` without
    /// parsing — the hot endpoints decode straight into their structs.
    fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body_text: &str,
    ) -> Result<(u16, String), ClientError> {
        // Head and body in one write: two small segments would trip Nagle +
        // delayed-ACK stalls (see `http::write_response`). Built by hand —
        // one request per warm hit makes the formatting itself hot.
        let mut message =
            String::with_capacity(128 + self.prefix.len() + path.len() + body_text.len());
        message.push_str(method);
        message.push(' ');
        message.push_str(&self.prefix);
        message.push_str(path);
        message.push_str(" HTTP/1.1\r\nhost: ");
        message.push_str(&self.host);
        message.push_str("\r\ncontent-type: application/json\r\n");
        if let Some(ms) = self.deadline_ms {
            message.push_str("x-rcw-deadline-ms: ");
            wire::push_u64(&mut message, ms);
            message.push_str("\r\n");
        }
        message.push_str("content-length: ");
        wire::push_u64(&mut message, body_text.len() as u64);
        message.push_str("\r\n\r\n");
        message.push_str(body_text);
        self.writer.write_all(message.as_bytes())?;
        self.writer.flush()?;
        self.read_response_raw()
    }

    /// [`Client::request`] under the installed [`RetryPolicy`]: transient
    /// failures (transport errors, truncated responses, 408/429/500/503)
    /// back off and retry, re-dialing first when the failure killed the
    /// connection. Callers must only route *idempotent* requests here.
    fn request_idempotent(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Json), ClientError> {
        let body_text = body.map(|b| b.encode()).unwrap_or_default();
        let (status, text) = self.request_idempotent_raw(method, path, &body_text)?;
        let value = Json::parse(text.trim_end())
            .map_err(|e| ClientError::Protocol(status, e.to_string()))?;
        Ok((status, value))
    }

    /// The raw-body core of [`Client::request_idempotent`].
    fn request_idempotent_raw(
        &mut self,
        method: &str,
        path: &str,
        body_text: &str,
    ) -> Result<(u16, String), ClientError> {
        let Some(policy) = self.retry.clone() else {
            return self.request_raw(method, path, body_text);
        };
        let start = Instant::now();
        let max_attempts = policy.max_attempts.max(1);
        let mut attempts = 0usize;
        let mut last: Option<ClientError> = None;
        while attempts < max_attempts {
            if let Some(failed) = &last {
                let delay = policy.backoff(attempts as u32, &mut self.rng);
                if let Some(budget) = policy.budget {
                    // Deadline awareness: never start a sleep (or attempt)
                    // the budget cannot afford.
                    if start.elapsed() + delay >= budget {
                        break;
                    }
                }
                std::thread::sleep(delay);
                if failed.connection_dead() && self.reconnect().is_err() {
                    // Server still down: burn the attempt, keep backing off.
                    attempts += 1;
                    continue;
                }
            }
            attempts += 1;
            match self.request_raw(method, path, body_text) {
                Ok((status, text)) if status != 200 && response_retryable(status, &text) => {
                    last = Some(protocol_error(status, &text));
                }
                Ok(pair) => return Ok(pair),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts,
            last: Box::new(
                last.unwrap_or_else(|| ClientError::Protocol(0, "no attempt made".to_string())),
            ),
        })
    }

    fn read_response_raw(&mut self) -> Result<(u16, String), ClientError> {
        // Pull the whole response head (status line + headers + blank line)
        // in as few reads as possible — one `fill_buf` in the common case —
        // instead of a `read_line` per header. The head is tiny, so the
        // rescan for `\r\n\r\n` after each chunk is cheap.
        let mut head: Vec<u8> = Vec::with_capacity(192);
        loop {
            let buf = self.reader.fill_buf()?;
            if buf.is_empty() {
                return Err(if head.is_empty() {
                    ClientError::Protocol(0, "connection closed".to_string())
                } else {
                    // The peer died mid-response: a transport failure (the
                    // connection is unusable), not a protocol-level answer.
                    ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "response truncated mid-headers",
                    ))
                });
            }
            // The terminator may straddle the previous chunk's tail.
            let scan_from = head.len().saturating_sub(3);
            let chunk_start = head.len();
            head.extend_from_slice(buf);
            if let Some(i) = head[scan_from..].windows(4).position(|w| w == b"\r\n\r\n") {
                let head_end = scan_from + i + 4;
                self.reader.consume(head_end - chunk_start);
                head.truncate(head_end);
                break;
            }
            let n = buf.len();
            self.reader.consume(n);
            if head.len() > MAX_BODY_BYTES {
                return Err(ClientError::Protocol(0, "response head too large".into()));
            }
        }
        let head = String::from_utf8(head)
            .map_err(|_| ClientError::Protocol(0, "response head is not utf-8".into()))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::Protocol(0, format!("bad status line '{status_line}'")))?;
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| ClientError::Protocol(status, "bad content-length".into()))?;
                    if content_length > MAX_BODY_BYTES {
                        return Err(ClientError::Protocol(status, "body too large".into()));
                    }
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let text = String::from_utf8(body)
            .map_err(|_| ClientError::Protocol(status, "body is not utf-8".into()))?;
        Ok((status, text))
    }

    fn expect_ok(&mut self, status: u16, body: Json) -> Result<Json, ClientError> {
        if status == 200 {
            // Version negotiation: a 200 body without the v1 envelope (or
            // with a future version) is a protocol error, not data.
            wire::check_version(&body)?;
            Ok(body)
        } else {
            let message = wire::error_from_json(&body)
                .map(|e| e.detail)
                .unwrap_or_else(|_| body.encode());
            Err(ClientError::Protocol(status, message))
        }
    }

    /// `GET /healthz`; returns the reported epoch.
    pub fn healthz(&mut self) -> Result<u64, ClientError> {
        let (status, body) = self.request_idempotent("GET", "/healthz", None)?;
        let body = self.expect_ok(status, body)?;
        Ok(body.field("epoch")?.as_u64()?)
    }

    /// `POST /generate` for one test-node set. Request and response both go
    /// through the direct codec: no [`Json`] tree on the warm path.
    pub fn generate(&mut self, nodes: &[usize]) -> Result<GenerationResult, ClientError> {
        let mut body = String::with_capacity(20 + 8 * nodes.len());
        body.push_str("{\"v\":");
        wire::push_u64(&mut body, wire::WIRE_VERSION);
        body.push_str(",\"nodes\":");
        wire::push_usize_array(&mut body, nodes.iter().copied());
        body.push('}');
        let (status, text) = self.request_idempotent_raw("POST", "/generate", &body)?;
        if status != 200 {
            return Err(protocol_error(status, &text));
        }
        Ok(wire::generation_from_body(text.trim_end())?)
    }

    /// `POST /generate` with a caller-prebuilt body, returning the raw
    /// `(status, body text)` without decoding the generation. For load
    /// generators: a driver hammering the server shouldn't bill response
    /// decoding to the measurement (on a shared core it directly steals
    /// server cycles). The caller's body must carry the `"v": 1` envelope.
    /// Retries like [`Client::generate`]; the caller checks the status.
    pub fn generate_text(&mut self, body_text: &str) -> Result<(u16, String), ClientError> {
        self.request_idempotent_raw("POST", "/generate", body_text)
    }

    /// `POST /generate/batch` for several test-node sets. (The server still
    /// answers the pre-v1 `/generate_batch` spelling, with a `Deprecation`
    /// header; the client speaks the canonical path.)
    pub fn generate_batch(
        &mut self,
        queries: &[Vec<usize>],
    ) -> Result<Vec<GenerationResult>, ClientError> {
        let body = wire::versioned(Json::obj([(
            "queries",
            Json::Arr(
                queries
                    .iter()
                    .map(|nodes| Json::nums(nodes.iter().copied()))
                    .collect(),
            ),
        )]));
        let (status, reply) = self.request_idempotent("POST", "/generate/batch", Some(&body))?;
        let reply = self.expect_ok(status, reply)?;
        reply
            .field("results")?
            .as_arr()?
            .iter()
            .map(|r| wire::generation_from_json(r).map_err(ClientError::from))
            .collect()
    }

    /// `POST /disturb` with a batch of edge flips. Not idempotent (a
    /// replayed disturbance flips edges twice), so never auto-retried — a
    /// transient failure here surfaces to the caller, who knows whether the
    /// flip landed.
    pub fn disturb(&mut self, flips: &[(usize, usize)]) -> Result<DisturbReport, ClientError> {
        let body = wire::versioned(Json::obj([(
            "flips",
            Json::Arr(
                flips
                    .iter()
                    .map(|&(u, v)| Json::Arr(vec![Json::Num(u as f64), Json::Num(v as f64)]))
                    .collect(),
            ),
        )]));
        let (status, reply) = self.request("POST", "/disturb", Some(&body))?;
        let reply = self.expect_ok(status, reply)?;
        Ok(wire::disturb_report_from_json(&reply)?)
    }

    /// `GET /stats`; returns the engine snapshot plus per-worker request
    /// counts.
    pub fn stats(&mut self) -> Result<(EngineSnapshot, Vec<usize>), ClientError> {
        let (status, reply) = self.request_idempotent("GET", "/stats", None)?;
        let reply = self.expect_ok(status, reply)?;
        let snapshot = wire::snapshot_from_json(reply.field("engine")?)?;
        let per_worker = reply
            .field("server")?
            .field("requests_per_worker")?
            .as_arr()?
            .iter()
            .map(|x| x.as_usize())
            .collect::<Result<Vec<_>, _>>()?;
        Ok((snapshot, per_worker))
    }

    /// `POST /shutdown`: asks the server to stop gracefully. Like
    /// [`Client::disturb`], never auto-retried.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let (status, body) = self.request("POST", "/shutdown", None)?;
        self.expect_ok(status, body)?;
        Ok(())
    }

    /// `POST /subscribe`: registers `nodes` as a standing witness query and
    /// upgrades this connection into a [`SubscriptionStream`]. Consumes the
    /// client — after the server's `subscribed` acknowledgement the socket
    /// carries only NDJSON update frames, never another request/response
    /// exchange. Not auto-retried (a duplicate subscription would double
    /// every later update); on failure the caller re-dials.
    pub fn subscribe(mut self, nodes: &[usize]) -> Result<SubscriptionStream, ClientError> {
        let mut body = String::with_capacity(20 + 8 * nodes.len());
        body.push_str("{\"v\":");
        wire::push_u64(&mut body, wire::WIRE_VERSION);
        body.push_str(",\"nodes\":");
        wire::push_usize_array(&mut body, nodes.iter().copied());
        body.push('}');
        let (status, text) = self.request_raw("POST", "/subscribe", &body)?;
        if status != 200 {
            return Err(protocol_error(status, &text));
        }
        // The stream head has no content-length, so `text` is empty and the
        // acknowledgement frame is the next NDJSON line on the wire.
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(
                0,
                "stream closed before ack".to_string(),
            ));
        }
        match wire::frame_from_body(line.trim_end())? {
            wire::Frame::Subscribed {
                subscription,
                epoch,
                nodes,
                result,
            } => Ok(SubscriptionStream {
                reader: self.reader,
                _writer: self.writer,
                subscription,
                epoch,
                nodes,
                ack: result,
                partial: String::new(),
            }),
            wire::Frame::WitnessUpdate(_) => Err(ClientError::Protocol(
                200,
                "expected subscribed frame, got witness_update".to_string(),
            )),
        }
    }
}

/// The receiving half of a witness subscription (see [`Client::subscribe`]):
/// a blocking iterator over `witness_update` frames. Dropping the stream
/// closes the socket; the server notices on its next push or read probe and
/// unregisters the subscription.
pub struct SubscriptionStream {
    reader: BufReader<TcpStream>,
    // Kept alive so the server's EOF probe sees an open peer; streams are
    // read-only after the subscribe request.
    _writer: TcpStream,
    subscription: u64,
    epoch: u64,
    nodes: Vec<usize>,
    ack: GenerationResult,
    /// Frame bytes accumulated across timed-out reads: a read timeout can
    /// strike mid-frame, and dropping the partial line would desynchronize
    /// the stream. The next call keeps appending to the same line.
    partial: String,
}

impl SubscriptionStream {
    /// Server-assigned subscription id (echoed in every update frame).
    pub fn id(&self) -> u64 {
        self.subscription
    }

    /// Graph epoch at acknowledgement time.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The canonical (sorted, deduplicated) node set the server registered.
    pub fn nodes(&self) -> &[usize] {
        &self.nodes
    }

    /// The witness generated for the node set at subscribe time — bit-exact
    /// with a `/generate` of the same nodes at [`SubscriptionStream::epoch`].
    pub fn ack(&self) -> &GenerationResult {
        &self.ack
    }

    /// Bounds how long [`SubscriptionStream::next_update`] may block waiting
    /// for a frame (`None` blocks indefinitely). A timed-out wait surfaces
    /// as [`ClientError::Io`] with a timeout kind; the stream stays usable.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Blocks for the next `witness_update` frame. `Ok(None)` means the
    /// server closed the stream (shutdown or slow-consumer drop). A timed
    /// read (see [`SubscriptionStream::set_read_timeout`]) that expires
    /// surfaces the io error without losing stream position — partially
    /// received frames resume on the next call.
    pub fn next_update(&mut self) -> Result<Option<wire::WitnessUpdate>, ClientError> {
        loop {
            // `read_line` appends, so `partial` survives timeouts intact.
            if self.reader.read_line(&mut self.partial)? == 0 {
                if !self.partial.trim().is_empty() {
                    return Err(ClientError::Protocol(
                        0,
                        "stream truncated mid-frame".to_string(),
                    ));
                }
                return Ok(None);
            }
            if !self.partial.ends_with('\n') {
                continue; // timeout-free short read: keep accumulating
            }
            let line = std::mem::take(&mut self.partial);
            if line.trim().is_empty() {
                continue;
            }
            match wire::frame_from_body(line.trim_end())? {
                wire::Frame::WitnessUpdate(update) => return Ok(Some(update)),
                wire::Frame::Subscribed { .. } => {
                    return Err(ClientError::Protocol(
                        200,
                        "unexpected second subscribed frame".to_string(),
                    ))
                }
            }
        }
    }
}
