//! Seeded, deterministic fault injection for the serving tier.
//!
//! A [`FaultPlan`] maps *named sites* — places in the server, connection
//! handling, and engine repair path that can fail in production — to firing
//! rules. Code under test asks [`FaultPlan::fires`] at each site; the plan
//! answers from a per-site seeded RNG, so a given `(spec, seed)` pair drives
//! the exact same fault schedule on every run. Rules with probability `1`
//! and a firing limit (`site=1@3`) fire on exactly the first *N* hits
//! regardless of thread interleaving, which is what lets the chaos suite
//! assert exact `/stats` accounting.
//!
//! The plan is config- or env-driven (`RCW_FAULT_PLAN`, `RCW_FAULT_SEED`):
//! production binaries run with the empty plan (every site answers "no" with
//! zero locking), tests and the nightly chaos leg install one.
//!
//! Spec grammar: comma-separated `site=probability[@limit]` clauses, e.g.
//! `worker_panic=1@2,conn_drop=0.1,repair_fail=1@1`.

use rcw_core::{EngineFaultHook, FAULT_SITE_REGEN, FAULT_SITE_REPAIR};
use rcw_linalg::Rng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Site: a worker panics on a claimed request (possibly mid-batch) before
/// answering; the request's connection dies, the batch's other members and
/// the worker survive.
pub const SITE_WORKER_PANIC: &str = "worker_panic";
/// Site: a claimed request's connection is dropped unanswered (possibly
/// mid-batch) before it is counted or routed.
pub const SITE_CONN_DROP: &str = "conn_drop";
/// Site: the worker stalls after claiming from the admission scheduler, as
/// a slow disk or lock would — later admissions back up behind the claim
/// (clients see slow/penalized requests).
pub const SITE_READ_STALL: &str = "read_stall";
/// Site: the server drops the connection instead of writing the response.
pub const SITE_WRITE_DROP: &str = "write_drop";
/// Site: the server writes a truncated response, then drops the connection.
pub const SITE_WRITE_TRUNCATE: &str = "write_truncate";
/// Site: a `disturb` repair step is forced to fail (engine hook).
pub const SITE_REPAIR_FAIL: &str = "repair_fail";
/// Site: a regeneration/heal step is forced to fail (engine hook).
pub const SITE_REGEN_FAIL: &str = "regen_fail";

/// Every site name a spec may mention, for parse-time typo rejection.
pub const ALL_SITES: &[&str] = &[
    SITE_WORKER_PANIC,
    SITE_CONN_DROP,
    SITE_READ_STALL,
    SITE_WRITE_DROP,
    SITE_WRITE_TRUNCATE,
    SITE_REPAIR_FAIL,
    SITE_REGEN_FAIL,
];

#[derive(Debug)]
struct SiteState {
    /// Probability a hit fires, in `[0, 1]`.
    probability: f64,
    /// Hard cap on lifetime firings (`None` = unlimited).
    limit: Option<usize>,
    /// Per-site RNG: seeded from `(plan seed, site name)`, so one site's
    /// draw sequence is independent of which other sites exist or fire.
    rng: Mutex<Rng>,
    /// Lifetime hits (queries) at this site.
    hits: AtomicUsize,
    /// Lifetime firings at this site.
    fired: AtomicUsize,
}

/// A deterministic fault schedule over named sites. Cheap to share
/// (`Arc<FaultPlan>`); the empty plan answers every query lock-free.
#[derive(Debug, Default)]
pub struct FaultPlan {
    sites: BTreeMap<&'static str, SiteState>,
}

impl FaultPlan {
    /// The empty plan: no site ever fires.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Parses a spec like `worker_panic=1@2,conn_drop=0.1` with a seed that
    /// fixes every probabilistic draw. Unknown sites, bad probabilities, and
    /// malformed clauses are errors — a typo'd fault plan that silently
    /// never fires would defeat the whole harness.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut sites = BTreeMap::new();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (name, rule) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not site=probability"))?;
            let name = name.trim();
            let site = *ALL_SITES
                .iter()
                .find(|&&s| s == name)
                .ok_or_else(|| format!("unknown fault site `{name}`"))?;
            let (prob_str, limit) = match rule.split_once('@') {
                Some((p, l)) => {
                    let limit: usize = l
                        .trim()
                        .parse()
                        .map_err(|_| format!("fault limit `{l}` is not a count"))?;
                    (p.trim(), Some(limit))
                }
                None => (rule.trim(), None),
            };
            let probability: f64 = prob_str
                .parse()
                .map_err(|_| format!("fault probability `{prob_str}` is not a number"))?;
            if !(0.0..=1.0).contains(&probability) {
                return Err(format!("fault probability {probability} outside [0, 1]"));
            }
            let prior = sites.insert(
                site,
                SiteState {
                    probability,
                    limit,
                    rng: Mutex::new(Rng::seed_from_u64(seed ^ site_salt(site))),
                    hits: AtomicUsize::new(0),
                    fired: AtomicUsize::new(0),
                },
            );
            if prior.is_some() {
                return Err(format!("fault site `{site}` specified twice"));
            }
        }
        Ok(FaultPlan { sites })
    }

    /// Builds a plan from `RCW_FAULT_PLAN` / `RCW_FAULT_SEED`. An unset or
    /// empty plan variable yields the empty plan; a malformed one is an
    /// error (see [`FaultPlan::parse`]).
    pub fn from_env() -> Result<Self, String> {
        let spec = match std::env::var("RCW_FAULT_PLAN") {
            Ok(spec) if !spec.trim().is_empty() => spec,
            _ => return Ok(FaultPlan::none()),
        };
        let seed = match std::env::var("RCW_FAULT_SEED") {
            Ok(s) => s
                .trim()
                .parse()
                .map_err(|_| format!("RCW_FAULT_SEED `{s}` is not a u64"))?,
            Err(_) => 0,
        };
        FaultPlan::parse(&spec, seed)
    }

    /// Whether any site is configured at all. The serving hot path checks
    /// this once and skips per-site queries entirely for the empty plan.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// One hit at `site`: returns whether the fault fires. Unconfigured
    /// sites never fire and cost one map lookup. Probability-1 rules skip
    /// the RNG so their firing count depends only on hit order pressure
    /// against the limit, never on draw interleaving.
    pub fn fires(&self, site: &str) -> bool {
        let Some(state) = self.sites.get(site) else {
            return false;
        };
        state.hits.fetch_add(1, Ordering::Relaxed);
        let wants = if state.probability >= 1.0 {
            true
        } else if state.probability <= 0.0 {
            false
        } else {
            let mut rng = state.rng.lock().unwrap_or_else(|e| e.into_inner());
            rng.gen_bool(state.probability)
        };
        if !wants {
            return false;
        }
        match state.limit {
            None => {
                state.fired.fetch_add(1, Ordering::Relaxed);
                true
            }
            // Claim a firing slot atomically: under a limit, exactly `limit`
            // hits fire across all threads, never more.
            Some(limit) => state
                .fired
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                    (n < limit).then_some(n + 1)
                })
                .is_ok(),
        }
    }

    /// Lifetime firings at `site` (0 for unconfigured sites).
    pub fn fired(&self, site: &str) -> usize {
        self.sites
            .get(site)
            .map_or(0, |s| s.fired.load(Ordering::Relaxed))
    }

    /// Lifetime hits at `site` (0 for unconfigured sites).
    pub fn hits(&self, site: &str) -> usize {
        self.sites
            .get(site)
            .map_or(0, |s| s.hits.load(Ordering::Relaxed))
    }

    /// Bridges this plan into the engine's fault hook: the engine's
    /// `repair`/`regen` sites map to this plan's `repair_fail`/`regen_fail`.
    /// Install with `WitnessEngine::with_fault_hook`.
    pub fn engine_hook(self: &Arc<Self>) -> EngineFaultHook {
        let plan = Arc::clone(self);
        Arc::new(move |site: &str| match site {
            FAULT_SITE_REPAIR => plan.fires(SITE_REPAIR_FAIL),
            FAULT_SITE_REGEN => plan.fires(SITE_REGEN_FAIL),
            _ => false,
        })
    }
}

/// Stable per-site seed salt (FNV-1a), so each site draws an independent
/// stream from the same plan seed.
fn site_salt(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for &site in ALL_SITES {
            assert!(!plan.fires(site));
            assert_eq!(plan.fired(site), 0);
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("worker_panic", 0).is_err());
        assert!(FaultPlan::parse("no_such_site=1", 0).is_err());
        assert!(FaultPlan::parse("worker_panic=2.0", 0).is_err());
        assert!(FaultPlan::parse("worker_panic=-0.5", 0).is_err());
        assert!(FaultPlan::parse("worker_panic=1@x", 0).is_err());
        assert!(FaultPlan::parse("worker_panic=1,worker_panic=0.5", 0).is_err());
        assert!(FaultPlan::parse("worker_panic=nope", 0).is_err());
    }

    #[test]
    fn probability_one_with_limit_fires_exactly_n_times() {
        let plan = FaultPlan::parse("worker_panic=1@3", 7).unwrap();
        let fired: usize = (0..10).filter(|_| plan.fires(SITE_WORKER_PANIC)).count();
        assert_eq!(fired, 3);
        assert_eq!(plan.fired(SITE_WORKER_PANIC), 3);
        assert_eq!(plan.hits(SITE_WORKER_PANIC), 10);
    }

    #[test]
    fn limit_is_exact_under_concurrency() {
        let plan = Arc::new(FaultPlan::parse("conn_drop=1@5", 0).unwrap());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let plan = Arc::clone(&plan);
                scope.spawn(move || {
                    for _ in 0..25 {
                        plan.fires(SITE_CONN_DROP);
                    }
                });
            }
        });
        assert_eq!(plan.fired(SITE_CONN_DROP), 5);
        assert_eq!(plan.hits(SITE_CONN_DROP), 100);
    }

    #[test]
    fn probabilistic_sites_are_seed_deterministic() {
        let a = FaultPlan::parse("write_drop=0.3,read_stall=0.7", 42).unwrap();
        let b = FaultPlan::parse("write_drop=0.3,read_stall=0.7", 42).unwrap();
        let seq_a: Vec<bool> = (0..64).map(|_| a.fires(SITE_WRITE_DROP)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.fires(SITE_WRITE_DROP)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&f| f) && seq_a.iter().any(|&f| !f));
        // another seed gives another schedule
        let c = FaultPlan::parse("write_drop=0.3", 43).unwrap();
        let seq_c: Vec<bool> = (0..64).map(|_| c.fires(SITE_WRITE_DROP)).collect();
        assert_ne!(seq_a, seq_c);
        // sites draw independent streams: consuming one leaves the other's
        // schedule untouched (b never drew from read_stall above)
        let d = FaultPlan::parse("write_drop=0.3,read_stall=0.7", 42).unwrap();
        for _ in 0..10 {
            d.fires(SITE_WRITE_DROP);
        }
        let stall_b: Vec<bool> = (0..32).map(|_| b.fires(SITE_READ_STALL)).collect();
        let stall_d: Vec<bool> = (0..32).map(|_| d.fires(SITE_READ_STALL)).collect();
        assert_eq!(stall_b, stall_d);
    }

    #[test]
    fn engine_hook_maps_core_sites() {
        let plan = Arc::new(FaultPlan::parse("repair_fail=1@1,regen_fail=1", 0).unwrap());
        let hook = plan.engine_hook();
        assert!(hook(FAULT_SITE_REPAIR));
        assert!(!hook(FAULT_SITE_REPAIR), "limit exhausted");
        assert!(hook(FAULT_SITE_REGEN));
        assert!(hook(FAULT_SITE_REGEN));
        assert!(!hook("unknown-site"));
        assert_eq!(plan.fired(SITE_REPAIR_FAIL), 1);
        assert_eq!(plan.fired(SITE_REGEN_FAIL), 2);
    }

    #[test]
    fn from_env_defaults_to_empty() {
        // Runs without RCW_FAULT_PLAN set in the test environment; if a
        // parallel test ever sets it process-wide, this would need isolation.
        if std::env::var("RCW_FAULT_PLAN").is_err() {
            assert!(FaultPlan::from_env().unwrap().is_empty());
        }
    }
}
