//! `rcw_serve` — stand up a [`rcw_server::RcwServer`] over a trained model.
//!
//! Builds the CiteSeer stand-in at the requested scale, trains the requested
//! classifier deterministically, and serves witness queries until a
//! `POST /shutdown` arrives:
//!
//! ```text
//! rcw_serve [--addr 127.0.0.1:0] [--workers 4] [--scale tiny|small|full]
//!           [--model appnp|gcn] [--seed 7] [--k 2]
//! ```
//!
//! The bound address is printed as the first stdout line
//! (`rcw-serve listening on http://HOST:PORT`), so callers binding port 0 can
//! discover the ephemeral port — the smoke test does exactly that.

use rcw_core::{RcwConfig, VerifiableModel, WitnessEngine};
use rcw_datasets::{citeseer, Scale};
use rcw_server::RcwServer;
use std::process::ExitCode;
use std::sync::Arc;

struct Options {
    addr: String,
    workers: usize,
    scale: Scale,
    model: String,
    seed: u64,
    k: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        scale: Scale::Tiny,
        model: "appnp".to_string(),
        seed: 7,
        k: 2,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "invalid --workers".to_string())?
            }
            "--scale" => {
                opts.scale = match value("--scale")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale '{other}'")),
                }
            }
            "--model" => opts.model = value("--model")?,
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed".to_string())?
            }
            "--k" => {
                opts.k = value("--k")?
                    .parse()
                    .map_err(|_| "invalid --k".to_string())?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: rcw_serve [--addr A] [--workers N] [--scale tiny|small|full] \
                            [--model appnp|gcn] [--seed S] [--k K]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn serve_config(k: usize) -> RcwConfig {
    RcwConfig {
        k,
        local_budget: 2,
        candidate_hops: 2,
        max_expand_rounds: 3,
        sampled_disturbances: 6,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::default()
    }
}

fn run<M: VerifiableModel + ?Sized>(engine: &WitnessEngine<'_, M>, opts: &Options) -> ExitCode {
    let server = match RcwServer::bind(&opts.addr) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("rcw-serve: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    // First stdout line is machine-readable: callers on port 0 parse the
    // ephemeral port from it.
    println!("rcw-serve listening on http://{}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    match server.serve(engine, opts.workers) {
        Ok(report) => {
            println!(
                "rcw-serve: shut down after {} requests over {} connections {:?}",
                report.requests_total(),
                report.connections,
                report.requests_per_worker,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rcw-serve: serve failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("rcw-serve: {message}");
            return ExitCode::FAILURE;
        }
    };
    let ds = citeseer::build(opts.scale, opts.seed);
    eprintln!(
        "rcw-serve: dataset {} (|V|={}, |E|={}), training {}...",
        ds.name,
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        opts.model,
    );
    let graph = Arc::new(ds.graph.clone());
    let cfg = serve_config(opts.k);
    // The model lives for the rest of the process: leak it to get the
    // 'static borrow the engine wants.
    match opts.model.as_str() {
        "appnp" => {
            let appnp = Box::leak(Box::new(ds.train_appnp(16, opts.seed)));
            let engine = WitnessEngine::new(graph, appnp, cfg);
            run(&engine, &opts)
        }
        "gcn" => {
            let gcn = Box::leak(Box::new(ds.train_gcn(16, opts.seed)));
            let engine = WitnessEngine::new(graph, gcn, cfg);
            run(&engine, &opts)
        }
        other => {
            eprintln!("rcw-serve: unknown model '{other}' (use appnp or gcn)");
            ExitCode::FAILURE
        }
    }
}
